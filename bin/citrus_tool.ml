(* Operator CLI for the dictionaries in this repository.

     dune exec bin/citrus_tool.exe -- list
     dune exec bin/citrus_tool.exe -- stress citrus --threads 8 --duration 2
     dune exec bin/citrus_tool.exe -- lincheck skiplist --rounds 50

   [stress] hammers one structure with a mixed workload, validates its
   invariants afterwards, and prints throughput; [lincheck] records small
   high-contention histories and model-checks them for linearizability. *)

module W = Repro_workload.Workload
module Runner = Repro_workload.Runner
module Report = Repro_workload.Report
module Dict = Repro_dict.Dict
module Checker = Repro_linchecker.Checker
module Lin_harness = Repro_linchecker.Lin_harness
module Fault = Repro_fault.Fault
module Torture = Repro_rcu.Torture
module Serve = Repro_server.Serve
module Chaos = Repro_server.Chaos
module Health = Repro_server.Health
module Shard_router = Repro_server.Shard_router

(* A full thread registry is an operator error (too many --threads for the
   structure's slot capacity), not a crash: report it in one line and exit
   2 like the other usage errors. *)
let registry_guard threads f =
  try f ()
  with Repro_sync.Registry.Full ->
    Printf.eprintf
      "error: RCU thread registry full — %d worker domains exceed the \
       structure's registered-thread capacity; reduce --threads\n"
      threads;
    exit 2

let list_cmd () =
  print_endline "available structures:";
  List.iter
    (fun (module D : Dict.DICT) -> Printf.printf "  %s\n" D.name)
    Dict.all

let resolve name =
  match Dict.find name with
  | d -> d
  | exception Not_found ->
      Printf.eprintf
        "unknown structure %S; run `citrus_tool list` for the choices\n" name;
      exit 2

(* Contains percentage -> mix, splitting the rest between insert/delete. *)
let contains_mix contains_pct =
  if contains_pct < 0 || contains_pct > 100 then begin
    Printf.eprintf "--contains must be between 0 and 100 (got %d)\n"
      contains_pct;
    exit 2
  end;
  let updates = 100 - contains_pct in
  W.mix ~contains:contains_pct
    ~insert:((updates / 2) + (updates mod 2))
    ~delete:(updates / 2)

let stress name threads duration key_range contains_pct =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let cfg =
    W.config ~key_range ~threads ~duration ~role:(W.Uniform mix) ()
  in
  Printf.printf "stressing %s: %d threads, %.1fs, keys [0,%d), %s\n%!" D.name
    threads duration key_range
    (Format.asprintf "%a" W.pp_mix mix);
  let r = registry_guard threads (fun () -> Runner.run (module D) cfg) in
  Report.print_result r;
  print_endline "invariants: OK"

let lincheck name rounds threads ops keys =
  let (module D) = resolve name in
  Printf.printf
    "lincheck %s: %d rounds of %d threads x %d ops on %d keys\n%!" D.name
    rounds threads ops keys;
  for seed = 1 to rounds do
    let events =
      Lin_harness.record_random
        (module D)
        ~threads ~ops_per_thread:ops ~key_range:keys
        ~seed:(Int64.of_int (seed * 7919))
    in
    Checker.check_exn events;
    if seed mod 10 = 0 then Printf.printf "  %d/%d ok\n%!" seed rounds
  done;
  Printf.printf "all %d histories linearizable\n" rounds

(* Single-key conservation soak: all traffic on one key, so successful
   inserts/deletes must alternate strictly — a cheap, sharp detector for
   lost or duplicated updates (it caught a descriptor-ABA bug in the Ellen
   port; see DESIGN.md §8). *)
let soak name trials =
  let (module D) = resolve name in
  Printf.printf "soaking %s: %d trials of 3 domains x 30 single-key ops\n%!"
    D.name trials;
  let bad = ref 0 in
  for trial = 1 to trials do
    let t = D.create () in
    let ins = Atomic.make 0 and del = Atomic.make 0 in
    let workers =
      List.init 3 (fun i ->
          Domain.spawn (fun () ->
              let h = D.register t in
              let rng =
                Repro_sync.Rng.create (Int64.of_int ((trial * 10) + i))
              in
              for _ = 1 to 30 do
                if Repro_sync.Rng.bool rng then begin
                  if D.insert h 7 7 then Atomic.incr ins
                end
                else if D.delete h 7 then Atomic.incr del
              done;
              D.unregister h))
    in
    List.iter Domain.join workers;
    let diff = Atomic.get ins - Atomic.get del in
    let h = D.register t in
    let present = D.mem h 7 in
    D.unregister h;
    if diff < 0 || diff > 1 || present <> (diff = 1) then begin
      incr bad;
      Printf.printf "  trial %d VIOLATION: ins=%d del=%d present=%b\n%!" trial
        (Atomic.get ins) (Atomic.get del) present
    end;
    (try D.check t
     with e ->
       incr bad;
       Printf.printf "  trial %d INVARIANT: %s\n%!" trial (Printexc.to_string e));
    if trial mod 2000 = 0 then Printf.printf "  %d/%d ok\n%!" trial trials
  done;
  if !bad = 0 then Printf.printf "clean: %d trials, no violations\n" trials
  else begin
    Printf.printf "%d violations!\n" !bad;
    exit 1
  end

let latency name threads duration keys contains_pct =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let cfg =
    W.config ~key_range:keys ~threads ~duration ~role:(W.Uniform mix) ()
  in
  Printf.printf "latency of %s: %d threads, %.1fs, keys [0,%d)\n%!" D.name
    threads duration keys;
  let per_op =
    registry_guard threads (fun () ->
        Repro_workload.Latency.measure (module D) cfg)
  in
  List.iter
    (fun (op, s) ->
      let op_name =
        match op with
        | W.Contains -> "contains"
        | W.Insert -> "insert"
        | W.Delete -> "delete"
      in
      Format.printf "  %-9s %a@." op_name Repro_workload.Latency.pp_summary s)
    per_op

(* Live observability: run a short observed workload and dump the
   serialization metrics (and optionally the event trace) that explain its
   throughput. The JSON output uses the same schema as `bench --json`. *)
let stats name threads duration keys contains_pct trace_events json_file =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let cfg =
    W.config ~key_range:keys ~threads ~duration ~role:(W.Uniform mix) ()
  in
  if trace_events > 0 then begin
    Repro_sync.Trace.configure ~capacity:(max 1024 trace_events);
    Repro_sync.Trace.start ()
  end;
  Printf.printf "observing %s: %d threads, %.1fs, keys [0,%d), %s\n%!" D.name
    threads duration keys
    (Format.asprintf "%a" W.pp_mix mix);
  let r =
    registry_guard threads (fun () -> Runner.run ~observe:true (module D) cfg)
  in
  Repro_sync.Trace.stop ();
  Report.print_result r;
  Format.printf "@.serialization metrics (catalogue: OBSERVABILITY.md):@.";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.printf "  %-24s %12.0f@." k v
      else Format.printf "  %-24s %12.1f@." k v)
    r.Runner.metrics;
  Format.printf "@.per-operation latency (sampled 1 in 16):@.";
  List.iter
    (fun (op, h) ->
      let op_name =
        match op with
        | W.Contains -> "contains"
        | W.Insert -> "insert"
        | W.Delete -> "delete"
      in
      Format.printf "  %-9s %a@." op_name Repro_workload.Latency.pp_summary
        (Repro_workload.Latency.summarize h))
    r.Runner.latency;
  if trace_events > 0 then begin
    let events = Repro_sync.Trace.dump () in
    let n = List.length events in
    let tail = max 0 (n - trace_events) in
    Format.printf
      "@.trace: %d events recorded, %d retained, newest %d shown:@."
      (Repro_sync.Trace.recorded ())
      n
      (min n trace_events);
    let t0 =
      match events with [] -> 0 | e :: _ -> e.Repro_sync.Trace.t_ns
    in
    List.iteri
      (fun i (e : Repro_sync.Trace.event) ->
        if i >= tail then
          Format.printf "  %+12dns d%d %-14s %d@." (e.t_ns - t0) e.domain
            (Repro_sync.Trace.kind_to_string e.kind)
            e.arg)
      events
  end;
  match json_file with
  | None -> ()
  | Some file ->
      let meta =
        if trace_events > 0 then
          [ ("trace", Repro_obs.Export.trace_json ~limit:trace_events ()) ]
        else []
      in
      let doc =
        Repro_workload.Json_report.report ~meta
          [
            {
              Repro_workload.Json_report.name = "stats: " ^ D.name;
              points = [ { Repro_workload.Json_report.cfg; result = r } ];
            };
          ]
      in
      (match Repro_workload.Json_report.write file doc with
      | () -> Printf.printf "wrote JSON report: %s\n" file
      | exception Sys_error msg ->
          Printf.eprintf "cannot write JSON report: %s\n" msg;
          exit 1)

(* Open-loop serving demo: stand up the sharded service over one
   structure, offer a fixed load, report per-op latency percentiles and
   the drop/queue accounting (SERVING.md). *)
(* Flip the process-global call_rcu switch around [f] (structures created
   inside pick it up), restoring the previous setting. *)
let with_call_rcu enabled f =
  let module Rec = Repro_rcu.Reclaimer in
  let was = Rec.call_rcu_enabled () in
  Rec.set_call_rcu enabled;
  Fun.protect ~finally:(fun () -> Rec.set_call_rcu was) f

let serve name shards clients queue_depth drain_batch rate duration keys
    contains_pct write_mode max_retries retry_base_us deadline_ms call_rcu
    quick json_file =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let duration = if quick then Float.min duration 0.3 else duration in
  let rate = if quick then Float.min rate 4_000.0 else rate in
  let c =
    try
      Serve.cfg ~shards ~clients ~queue_depth ~drain_batch ~rate ~duration
        ~mix ~key_range:keys ~write_mode ~max_retries
        ~retry_base_ns:(retry_base_us * 1_000)
        ~deadline_ns:(deadline_ms * 1_000_000)
        ()
    with Invalid_argument msg ->
      Printf.eprintf "bad serve configuration: %s\n" msg;
      exit 2
  in
  Printf.printf
    "serving %s: %d shards, %d clients, %.0f ops/s offered for %.1fs, keys \
     [0,%d), %s, %s writes, queue depth %d, drain batch %d%s\n\
     %!"
    D.name shards clients rate duration keys
    (Format.asprintf "%a" W.pp_mix mix)
    (Serve.write_mode_name write_mode)
    queue_depth drain_batch
    (if call_rcu then ", call_rcu reclaimers" else "");
  let r =
    try
      with_call_rcu call_rcu (fun () ->
          registry_guard clients (fun () ->
              Serve.run ~observe:true (module D) c))
    with Invalid_argument msg ->
      Printf.eprintf "bad serve configuration: %s\n" msg;
      exit 2
  in
  let l = r.Serve.load in
  Printf.printf
    "offered %.0f ops/s, achieved %.0f ops/s (%d issued, %d completed, %d \
     dropped, %d retries, %d deadline-exhausted, max schedule lag %.2fms)\n"
    l.Repro_workload.Open_loop.offered l.Repro_workload.Open_loop.achieved
    l.Repro_workload.Open_loop.issued l.Repro_workload.Open_loop.completed
    l.Repro_workload.Open_loop.dropped l.Repro_workload.Open_loop.retries
    l.Repro_workload.Open_loop.exhausted
    (float_of_int l.Repro_workload.Open_loop.max_lag_ns /. 1e6);
  if r.Serve.rejects_by_reason <> [] then
    Printf.printf "write rejects: %s\n"
      (String.concat ", "
         (List.map
            (fun (rej, n) ->
              Printf.sprintf "%s %d" (Shard_router.reject_name rej) n)
            r.Serve.rejects_by_reason));
  Printf.printf
    "write path: %d applied in window (%.0f ops/s), %d total after backlog \
     drain, final size %d\n"
    r.Serve.drained r.Serve.write_throughput r.Serve.drained_total
    r.Serve.final_size;
  Array.iteri
    (fun i (q : Repro_server.Mod_queue.stats) ->
      Printf.printf
        "  shard %d: enqueued %d, drained %d, dropped %d, purged %d, \
         high-water %d/%d, health %s\n"
        i q.enqueued q.drained q.dropped q.purged q.max_depth q.depth
        (Health.state_name r.Serve.health.(i)))
    r.Serve.queues;
  (match r.Serve.shutdown with
  | Shard_router.Drained -> ()
  | Shard_router.Forced reports ->
      Printf.printf
        "shutdown FORCED after %.0fms drain deadline (%d shard(s) reported)\n"
        (float_of_int c.Serve.shutdown_deadline_ns /. 1e6)
        (List.length reports));
  Format.printf "per-operation latency (scheduled arrival -> completion):@.";
  List.iter
    (fun (op, h) ->
      Format.printf "  %-9s %a@."
        (Repro_workload.Json_report.op_name op)
        Repro_workload.Latency.pp_summary
        (Repro_workload.Latency.summarize h))
    l.Repro_workload.Open_loop.latency;
  print_endline "invariants: OK";
  match json_file with
  | None -> ()
  | Some file -> (
      let doc = Serve.report [ r ] in
      match Repro_workload.Json_report.write file doc with
      | () -> Printf.printf "wrote JSON report: %s\n" file
      | exception Sys_error msg ->
          Printf.eprintf "cannot write JSON report: %s\n" msg;
          exit 1)

(* Chaos harness (ROBUSTNESS.md): open-loop load while a driver crashes
   every shard's updater and optionally wedges drains; asserts zero
   accepted-write loss, bounded recovery, no failed shards, clean drain.
   Any violated claim (or armed-validator violation) exits 1. *)
let chaos name shards clients queue_depth drain_batch rate duration keys
    contains_pct crashes stall_rate stall_delay_ms stall_reader p99_bound_ms
    seed sanitize lockdep call_rcu quick json_file =
  let (module D) = resolve name in
  let duration = if quick then Float.min duration 0.5 else duration in
  let rate = if quick then Float.min rate 6_000.0 else rate in
  let crashes = if quick then min crashes 1 else crashes in
  (* The stall-reader scenario watches reclamation pressure, which only
     exists on call_rcu tables (epoch tables free inline under their own
     grace periods) — force the reclaimer on. A dense key range keeps
     delete hit rates high so the parked reader's retired backlog
     actually climbs within the run. *)
  let call_rcu = call_rcu || stall_reader in
  let keys =
    if stall_reader then min keys (if quick then 256 else 2_048) else keys
  in
  let c =
    try
      Chaos.cfg ~shards ~clients ~queue_depth ~drain_batch ~rate ~duration
        ~key_range:keys ~contains_pct ~crashes_per_shard:crashes ~stall_rate
        ~stall_delay_ns:(int_of_float (stall_delay_ms *. 1e6))
        ~stall_reader
        ~stall_reader_watermark:(if quick then 16 else 128)
        ~recovery_p99_bound_ns:(int_of_float (p99_bound_ms *. 1e6))
        ~seed:(Int64.of_int seed) ()
    with Invalid_argument msg ->
      Printf.eprintf "bad chaos configuration: %s\n" msg;
      exit 2
  in
  Printf.printf
    "chaos on %s: %d shards, %d clients, %.0f ops/s for %.1fs, %d forced \
     crash(es) per shard, stall rate %g, stall-reader=%b, sanitize=%b \
     lockdep=%b call_rcu=%b\n\
     %!"
    D.name shards clients c.Chaos.rate c.Chaos.duration c.Chaos.crashes_per_shard
    stall_rate stall_reader sanitize lockdep call_rcu;
  if sanitize then Repro_sanitizer.Sanitizer.arm ();
  if lockdep then Repro_lockdep.Lockdep.arm ();
  let r =
    Fun.protect
      ~finally:(fun () ->
        if lockdep then Repro_lockdep.Lockdep.disarm ();
        if sanitize then Repro_sanitizer.Sanitizer.disarm ())
      (fun () ->
        with_call_rcu call_rcu (fun () ->
            registry_guard (clients + 2) (fun () -> Chaos.run (module D) c)))
  in
  let validator_failures =
    (if sanitize && Repro_sanitizer.Sanitizer.violations () > 0 then
       [
         Printf.sprintf "sanitizer: %d violation(s)"
           (Repro_sanitizer.Sanitizer.violations ());
       ]
     else [])
    @
    if lockdep && Repro_lockdep.Lockdep.violations () > 0 then
      [
        Printf.sprintf "lockdep: %d violation(s)"
          (Repro_lockdep.Lockdep.violations ());
      ]
    else []
  in
  let l = r.Chaos.load in
  Printf.printf
    "load: %d issued, %d completed, %d dropped, %d retries, %d \
     deadline-exhausted; %d writes accepted on %d keys\n"
    l.Repro_workload.Open_loop.issued l.Repro_workload.Open_loop.completed
    l.Repro_workload.Open_loop.dropped l.Repro_workload.Open_loop.retries
    l.Repro_workload.Open_loop.exhausted r.Chaos.accepted r.Chaos.ledger_keys;
  Array.iteri
    (fun i n ->
      Printf.printf "  shard %d: %d crash(es), %d restart(s), health %s\n" i n
        r.Chaos.restarts.(i)
        (Health.state_name r.Chaos.health.(i)))
    r.Chaos.crashes;
  Printf.printf "recovery: %d sample(s), p99 %.2fms (bound %.0fms); shutdown %s\n"
    r.Chaos.recovery_samples
    (float_of_int r.Chaos.recovery_p99_ns /. 1e6)
    (float_of_int c.Chaos.recovery_p99_bound_ns /. 1e6)
    (match r.Chaos.shutdown with
    | Shard_router.Drained -> "drained"
    | Shard_router.Forced _ -> "FORCED");
  if stall_reader then
    Printf.printf
      "stall-reader: %d breaker trip(s), max reclamation pressure %.2f \
       (watermark %d)\n"
      r.Chaos.breaker_trips r.Chaos.max_pressure c.Chaos.stall_reader_watermark;
  (match json_file with
  | None -> ()
  | Some file -> (
      match Repro_workload.Json_report.write file (Chaos.json c r) with
      | () -> Printf.printf "wrote JSON report: %s\n" file
      | exception Sys_error msg ->
          Printf.eprintf "cannot write JSON report: %s\n" msg;
          exit 1));
  match r.Chaos.failures @ validator_failures with
  | [] ->
      print_endline
        (if stall_reader then
           "chaos: OK (zero accepted-write loss across forced crashes and a \
            parked reader; pressure latched and bounded, breakers opened, \
            recovery within bound, clean drain)"
         else
           "chaos: OK (zero accepted-write loss across forced crashes, \
            recovery within bound, clean drain)")
  | failures ->
      List.iter (fun f -> Printf.eprintf "chaos: FAILED — %s\n" f) failures;
      exit 1

(* Fault-driven rcutorture over the library harness (ROBUSTNESS.md). Runs
   every RCU flavour unless one is named; non-zero torture errors exit 1,
   usage errors (unknown flavour / fault point, bad spec) exit 2. *)
let torture flavour seed fault_specs stall_ms stall_mode readers writers
    updates use_defer use_poll use_call_rcu park_ms sanitize lockdep quick
    verbose =
  let faults =
    List.map
      (fun spec ->
        match Fault.parse_spec spec with
        | Ok parsed -> parsed
        | Error msg ->
            Printf.eprintf "bad --fault %S: %s\n" spec msg;
            exit 2)
      fault_specs
  in
  let known_points () =
    String.concat ", " (List.map Fault.name (Fault.points ()))
  in
  List.iter
    (fun (nm, _, _) ->
      if Fault.find nm = None then begin
        Printf.eprintf "unknown fault point %S; registered points: %s\n" nm
          (known_points ());
        exit 2
      end)
    faults;
  let flavours =
    match flavour with
    | None -> Torture.flavours
    | Some f when List.mem f Torture.flavours -> [ f ]
    | Some f ->
        Printf.eprintf "unknown RCU flavour %S; choices: %s\n" f
          (String.concat ", " Torture.flavours);
        exit 2
  in
  let updates = if quick then min updates 100 else updates in
  let cfg =
    {
      Torture.default with
      readers;
      writers;
      updates_per_writer = updates;
      use_defer;
      use_poll;
      use_call_rcu;
      reader_park_ms = park_ms;
      faults;
      stall_ms;
      stall_fail = (stall_mode = `Fail);
      sanitize;
      lockdep;
      verbose;
    }
  in
  Printf.printf
    "torture: seed=%d readers=%d writers=%d updates=%d park_ms=%d \
     stall_ms=%d mode=%s sanitize=%b lockdep=%b call_rcu=%b faults=[%s]\n\
     %!"
    seed readers writers updates park_ms stall_ms
    (match stall_mode with `Warn -> "warn" | `Fail -> "fail")
    sanitize lockdep use_call_rcu
    (String.concat ", "
       (List.map (fun (nm, rate, _) -> Printf.sprintf "%s=%g" nm rate) faults));
  let failed = ref false in
  List.iter
    (fun f ->
      let out = Torture.run_flavour ~seed f cfg in
      Printf.printf
        "  %-10s errors=%d grace_periods=%d stalls=%d stalled_writers=%d \
         violations=%d leaks=%d lockdep=%d\n\
         %!"
        f out.Torture.errors out.grace_periods out.stalls out.stalled_writers
        out.violations out.leaks out.lockdep_violations;
      if out.errors > 0 then failed := true;
      if sanitize && (out.violations > 0 || out.leaks > 0) then failed := true;
      if lockdep && out.lockdep_violations > 0 then failed := true)
    flavours;
  if !failed then begin
    Printf.eprintf
      "torture: FAILED (freed elements observed by readers, sanitizer \
       violations, leaked deferrals, or lockdep violations)\n";
    exit 1
  end
  else print_endline "torture: OK"

(* Systematic-interleaving model checking (CORRECTNESS.md): exhaustively
   explore the protocol models' schedules with the DPOR engine. Exit 1 on
   any property violation or on a budget-truncated (non-exhaustive)
   exploration — a verdict from a partial search is not a verdict. *)
let model scenario_name max_states no_dpor quick json_file =
  let module Engine = Repro_modelcheck.Engine in
  let module Models = Repro_modelcheck.Models in
  let scenarios =
    match scenario_name with
    | None -> Models.controls
    | Some n -> (
        match Models.find n with
        | Some sc -> [ sc ]
        | None ->
            Printf.eprintf "unknown scenario %S; choices: %s\n" n
              (String.concat ", "
                 (List.map (fun (s : Engine.scenario) -> s.name) Models.all));
            exit 2)
  in
  let max_states =
    match max_states with Some n -> n | None -> if quick then 3_000_000 else 20_000_000
  in
  let results =
    List.map
      (fun (sc : Engine.scenario) ->
        let r = Engine.explore ~dpor:(not no_dpor) ~max_states sc in
        Format.printf "%a@." Engine.pp_result r;
        (sc, r))
      scenarios
  in
  (match json_file with
  | None -> ()
  | Some file -> (
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n  \"scenarios\": [\n";
      List.iteri
        (fun i ((sc : Engine.scenario), (r : Engine.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"name\": %S, \"descr\": %S, \"dpor\": %b, \"traces\": \
                %d, \"pruned\": %d, \"states\": %d, \"deepest\": %d, \
                \"exhausted\": %b, \"violation\": %s}%s\n"
               sc.name sc.descr r.dpor r.stats.traces r.stats.pruned
               r.stats.steps_total r.stats.deepest r.stats.exhausted
               (match r.counterexample with
               | None -> "null"
               | Some cx -> Printf.sprintf "%S" cx.error)
               (if i < List.length results - 1 then "," else "")))
        results;
      Buffer.add_string buf "  ]\n}\n";
      match
        let oc = open_out file in
        output_string oc (Buffer.contents buf);
        close_out oc
      with
      | () -> Printf.printf "wrote JSON report: %s\n" file
      | exception Sys_error msg ->
          Printf.eprintf "cannot write JSON report: %s\n" msg;
          exit 1));
  let violated =
    List.filter (fun (_, (r : Engine.result)) -> r.counterexample <> None) results
  in
  let truncated =
    List.filter (fun (_, (r : Engine.result)) -> not r.stats.exhausted) results
  in
  if violated <> [] then begin
    Printf.eprintf "model: FAILED — property violation(s) in: %s\n"
      (String.concat ", "
         (List.map (fun ((sc : Engine.scenario), _) -> sc.name) violated));
    exit 1
  end;
  if truncated <> [] then begin
    Printf.eprintf
      "model: FAILED — state budget exceeded before exhaustion in: %s \
       (raise --max-states)\n"
      (String.concat ", "
         (List.map (fun ((sc : Engine.scenario), _) -> sc.name) truncated));
    exit 1
  end;
  Printf.printf "model: OK (%d scenario(s) exhaustively explored, no \
                 violations)\n"
    (List.length results)

(* Model-checker mutation suite: every seeded protocol bug must produce a
   replayable counterexample under exhaustive exploration, and every
   control model must stay silent. *)
let model_mutants skip_controls =
  let module Engine = Repro_modelcheck.Engine in
  let module Models = Repro_modelcheck.Models in
  Printf.printf "model-checker mutation suite:\n%!";
  let failed = ref false in
  List.iter
    (fun (sc : Engine.scenario) ->
      let r = Engine.explore ~max_states:3_000_000 sc in
      match r.counterexample with
      | Some cx ->
          Printf.printf "  %-28s caught in %d trace(s):\n%!" sc.name
            r.stats.traces;
          Format.printf "%a@." Engine.pp_counterexample cx
      | None ->
          failed := true;
          Printf.printf "  %-28s ESCAPED (%d traces, exhausted=%b)\n%!"
            sc.name r.stats.traces r.stats.exhausted)
    Models.mutants;
  if not skip_controls then
    List.iter
      (fun (sc : Engine.scenario) ->
        let r = Engine.explore ~max_states:3_000_000 sc in
        match r.counterexample with
        | None when r.stats.exhausted ->
            Printf.printf "  %-28s (control) silent, %d trace(s)\n%!" sc.name
              r.stats.traces
        | None ->
            failed := true;
            Printf.printf "  %-28s (control) BUDGET-EXCEEDED\n%!" sc.name
        | Some cx ->
            failed := true;
            Printf.printf "  %-28s (control) TRIPPED: %s\n%!" sc.name cx.error)
      Models.controls;
  if !failed then begin
    Printf.eprintf
      "mutants: FAILED — a seeded protocol bug escaped the model checker \
       or a control model tripped (see above)\n";
    exit 1
  end;
  print_endline
    "mutants: OK (every seeded protocol bug yields a replayable \
     counterexample; controls exhaustively clean)";
  exit 0

(* Mutation suite (ROBUSTNESS.md): each seeded grace-period bug must trip
   the reclamation sanitizer; the matching clean configurations must not.
   Any escape or control trip exits 1. *)
let mutants seed attempts skip_controls lockdep chaos_suite model_suite =
  let module Mutation = Repro_citrus.Mutation in
  if model_suite then model_mutants skip_controls;
  if chaos_suite then begin
    (* The chaos mutations are deterministic (crashes armed to land at
       known batch positions, deadlines pre-expired by construction): no
       seeds or attempt budgets. Each mutant must be caught and its
       control must stay silent on the identical schedule. *)
    Printf.printf "chaos mutation suite:\n%!";
    let failed = ref false in
    let verdict ~mutant caught =
      if mutant then
        if caught then "caught"
        else begin
          failed := true;
          "ESCAPED"
        end
      else if caught then begin
        failed := true;
        "TRIPPED"
      end
      else "silent"
    in
    let backlog mutant =
      let m = Chaos.mutation ~mutate:mutant (module Dict.Citrus_epoch) in
      Printf.printf
        "  forget-backlog-on-restart%s: expected %d, final %d, lost %d -> \
         %s\n\
         %!"
        (if mutant then "" else " (control)")
        m.Chaos.expected m.Chaos.final_size m.Chaos.lost
        (verdict ~mutant m.Chaos.caught)
    in
    let breaker mutant =
      let m = Chaos.mutation_breaker ~mutate:mutant (module Dict.Citrus_epoch) in
      Printf.printf
        "  breaker-never-opens%s: crash=%b tripped=%b rejected=%b -> %s\n%!"
        (if mutant then "" else " (control)")
        m.Chaos.crash_seen m.Chaos.tripped m.Chaos.rejected
        (verdict ~mutant m.Chaos.caught)
    in
    let deadline mutant =
      let m =
        Chaos.mutation_deadline ~mutate:mutant (module Dict.Citrus_epoch)
      in
      Printf.printf
        "  drain-skips-deadline%s: queued %d, applied %d -> %s\n%!"
        (if mutant then "" else " (control)")
        m.Chaos.queued m.Chaos.applied
        (verdict ~mutant m.Chaos.caught)
    in
    backlog true;
    breaker true;
    deadline true;
    if not skip_controls then begin
      backlog false;
      breaker false;
      deadline false
    end;
    if !failed then begin
      Printf.eprintf
        "mutants: FAILED — a seeded serving-layer bug escaped or a control \
         tripped (see above)\n";
      exit 1
    end;
    print_endline
      "mutants: OK (backlog loss, silent breaker, and skipped deadlines all \
       detected; controls clean)";
    exit 0
  end;
  let results, controls =
    if lockdep then begin
      (* The lockdep mutants are control-flow bugs: one single-domain
         round each, deterministic, no seeds or attempt budgets. *)
      Printf.printf "lockdep mutation suite:\n%!";
      ( Mutation.lockdep_all (),
        if skip_controls then [] else Mutation.lockdep_controls () )
    end
    else begin
      Printf.printf "mutation suite: seed=%d attempts=%d\n%!" seed attempts;
      ( Mutation.all ~seed ~attempts (),
        if skip_controls then [] else Mutation.controls ~seed () )
    end
  in
  List.iter (fun r -> Printf.printf "  %s\n%!" (Mutation.pp_result r)) results;
  List.iter (fun r -> Printf.printf "  %s\n%!" (Mutation.pp_result r)) controls;
  let escaped = List.filter (fun r -> not r.Mutation.caught) results in
  let tripped = List.filter (fun r -> r.Mutation.caught) controls in
  if escaped <> [] then begin
    Printf.eprintf "mutants: FAILED — seeded bug(s) not detected: %s\n"
      (String.concat ", " (List.map (fun r -> r.Mutation.mutant) escaped));
    exit 1
  end;
  if tripped <> [] then begin
    Printf.eprintf "mutants: FAILED — control run(s) raised violations: %s\n"
      (String.concat ", " (List.map (fun r -> r.Mutation.mutant) tripped));
    exit 1
  end;
  print_endline "mutants: OK (all seeded bugs detected, controls clean)"

let balance_demo keys =
  let module T = Repro_citrus.Citrus_int.Epoch in
  let t = T.create () in
  let h = T.register t in
  for k = 1 to keys do
    ignore (T.insert h k k)
  done;
  Printf.printf "inserted %d ascending keys: height %d (degenerate)\n%!" keys
    (T.height t);
  let t0 = Unix.gettimeofday () in
  let rotations = T.balance ~max_passes:200 h in
  Printf.printf "balance: %d rotations in %.2fs -> height %d (log2 ~ %d)\n"
    rotations
    (Unix.gettimeofday () -. t0)
    (T.height t)
    (int_of_float (ceil (log (float_of_int keys) /. log 2.)));
  T.check_invariants t;
  assert (T.size t = keys);
  T.unregister h;
  print_endline "contents verified intact"

open Cmdliner

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STRUCTURE" ~doc:"Structure name (see `list`).")

let stress_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  Cmd.v
    (Cmd.info "stress" ~doc:"Stress one structure and verify its invariants.")
    Term.(const stress $ name_arg $ threads $ duration $ keys $ contains)

let lincheck_cmd =
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Histories to record.")
  in
  let threads =
    Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Recording domains.")
  in
  let ops =
    Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per domain.")
  in
  let keys =
    Arg.(value & opt int 4 & info [ "keys" ] ~doc:"Key range (keep tiny).")
  in
  Cmd.v
    (Cmd.info "lincheck"
       ~doc:"Record concurrent histories and check linearizability.")
    Term.(const lincheck $ name_arg $ rounds $ threads $ ops $ keys)

let list_command =
  Cmd.v (Cmd.info "list" ~doc:"List available structures.")
    Term.(const list_cmd $ const ())

let soak_cmd =
  let trials =
    Arg.(value & opt int 5_000 & info [ "trials" ] ~doc:"Soak trials.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Single-key conservation soak (lost/duplicated-update detector).")
    Term.(const soak $ name_arg $ trials)

let latency_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Per-operation latency percentiles.")
    Term.(const latency $ name_arg $ threads $ duration $ keys $ contains)

let stats_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let duration =
    Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  let trace =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N"
          ~doc:
            "Also record the event trace and print the newest $(docv) \
             events (0 disables tracing).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the metrics (and trace, with --trace) as JSON.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a short observed workload and dump live serialization \
          metrics (grace periods, lock contention, restarts; see \
          OBSERVABILITY.md).")
    Term.(
      const stats $ name_arg $ threads $ duration $ keys $ contains $ trace
      $ json)

let balance_cmd =
  let keys =
    Arg.(value & opt int 50_000 & info [ "keys" ] ~doc:"Ascending keys to insert.")
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:"Demonstrate maintenance rebalancing on a degenerate tree.")
    Term.(const balance_demo $ keys)

let serve_cmd =
  let structure =
    Arg.(
      value & pos 0 string "citrus"
      & info [] ~docv:"STRUCTURE"
          ~doc:"Structure to serve (default citrus; see `list`).")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~doc:"Hash-partitioned shards, one updater each.")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~doc:"Client domains (Poisson sources).")
  in
  let queue_depth =
    Arg.(
      value & opt int 1024
      & info [ "queue-depth" ]
          ~doc:"Per-shard modification-queue capacity (backpressure bound).")
  in
  let drain_batch =
    Arg.(
      value & opt int 64
      & info [ "drain-batch" ]
          ~doc:"Operations an updater splices out per drain.")
  in
  let rate =
    Arg.(
      value & opt float 20_000.0
      & info [ "rate" ] ~doc:"Aggregate offered load, operations per second.")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  let write_mode =
    Arg.(
      value
      & opt (enum [ ("wait", Serve.Wait); ("async", Serve.Async) ]) Serve.Wait
      & info [ "write-mode" ]
          ~doc:
            "$(b,wait): each write spins on a completion cell until its \
             shard's updater applies it (latency includes queueing delay); \
             $(b,async): fire-and-forget, complete on enqueue.")
  in
  let max_retries =
    Arg.(
      value & opt int 0
      & info [ "max-retries" ]
          ~doc:
            "Client-side retry budget on retryable rejects (Full/Overload); \
             0 disables retries.")
  in
  let retry_base_us =
    Arg.(
      value & opt int 100
      & info [ "retry-base-us" ]
          ~doc:
            "First-retry backoff in microseconds (doubles per attempt, \
             jittered).")
  in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ]
          ~doc:
            "Per-operation completion deadline in milliseconds, measured \
             from the scheduled arrival; 0 disables.")
  in
  let call_rcu =
    Arg.(
      value & flag
      & info [ "call-rcu" ]
          ~doc:
            "Serve over call_rcu tables: two-child deletes hand their \
             grace-period wait to a background reclaimer domain instead of \
             blocking the shard updater.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Cap duration at 0.3s and rate at 4k ops/s (CI smoke runs).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the serve report as schema-v1 JSON.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the sharded key-value service under open-loop load: direct \
          RCU reads, writes through per-shard modification queues drained \
          by updater domains (see SERVING.md).")
    Term.(
      const serve $ structure $ shards $ clients $ queue_depth $ drain_batch
      $ rate $ duration $ keys $ contains $ write_mode $ max_retries
      $ retry_base_us $ deadline_ms $ call_rcu $ quick $ json)

let chaos_cmd =
  let structure =
    Arg.(
      value & pos 0 string "citrus"
      & info [] ~docv:"STRUCTURE"
          ~doc:"Structure to serve (default citrus; see `list`).")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Hash-partitioned shards.")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~doc:"Client domains (Poisson sources).")
  in
  let queue_depth =
    Arg.(
      value & opt int 1024
      & info [ "queue-depth" ] ~doc:"Per-shard modification-queue capacity.")
  in
  let drain_batch =
    Arg.(
      value & opt int 64
      & info [ "drain-batch" ]
          ~doc:"Operations an updater splices out per drain.")
  in
  let rate =
    Arg.(
      value & opt float 20_000.0
      & info [ "rate" ] ~doc:"Aggregate offered load, operations per second.")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Seconds of load.")
  in
  let keys =
    Arg.(
      value & opt int 8_192
      & info [ "keys" ] ~doc:"Per-client key range (pre-slicing).")
  in
  let contains =
    Arg.(
      value & opt int 20
      & info [ "contains" ]
          ~doc:
            "Percentage of contains operations (the rest splits 2:1 \
             insert:delete).")
  in
  let crashes =
    Arg.(
      value & opt int 3
      & info [ "crashes-per-shard" ]
          ~doc:"Forced updater crashes per shard, spread across the run.")
  in
  let stall_rate =
    Arg.(
      value & opt float 0.0
      & info [ "stall-rate" ]
          ~doc:
            "Firing rate of the $(b,server.drain.stall) fault point (0 \
             disables drain wedging).")
  in
  let stall_delay_ms =
    Arg.(
      value & opt float 2.0
      & info [ "stall-delay-ms" ]
          ~doc:"Drain-wedge duration per firing, milliseconds.")
  in
  let stall_reader =
    Arg.(
      value & flag
      & info [ "stall-reader" ]
          ~doc:
            "Park an RCU reader mid-section on shard 0 for ~40% of the run \
             under a narrowed reclaimer watermark, and additionally assert \
             graceful degradation: reclamation pressure crosses the latch \
             threshold but stays bounded, and at least one circuit breaker \
             opens. Implies $(b,--call-rcu) (pressure needs a reclaimer) \
             and narrows the key range for delete density.")
  in
  let p99_bound_ms =
    Arg.(
      value & opt float 250.0
      & info [ "recovery-p99-ms" ]
          ~doc:"Asserted bound on the p99 crash-to-adoption latency.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Arm the reclamation sanitizer for the run; any violation \
             fails it.")
  in
  let lockdep =
    Arg.(
      value & flag
      & info [ "lockdep" ]
          ~doc:
            "Arm the lockdep validator for the run; any violation fails it.")
  in
  let call_rcu =
    Arg.(
      value & flag
      & info [ "call-rcu" ]
          ~doc:
            "Serve over call_rcu tables (background reclaimer domains) — \
             chaos then also covers reclaimer teardown under forced \
             shutdown.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Cap duration at 0.5s, rate at 6k ops/s, and crashes per shard \
             at 1 (CI smoke runs).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the chaos run summary as JSON.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash the serving layer on purpose under open-loop load — forced \
          updater crashes, optional drain stalls — and prove zero \
          accepted-write loss, bounded recovery, and a clean drain (see \
          ROBUSTNESS.md).")
    Term.(
      const chaos $ structure $ shards $ clients $ queue_depth $ drain_batch
      $ rate $ duration $ keys $ contains $ crashes $ stall_rate
      $ stall_delay_ms $ stall_reader $ p99_bound_ms $ seed $ sanitize
      $ lockdep $ call_rcu $ quick $ json)

let torture_cmd =
  let flavour =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FLAVOUR"
          ~doc:"RCU flavour to torture (default: all).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:"Deterministic seed for the harness and fault streams.")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"POINT=RATE"
          ~doc:
            "Arm a fault point (repeatable), e.g. \
             $(b,urcu.sync.pre_flip=0.3) or \
             $(b,defer.flush=0.5:yield=512). See ROBUSTNESS.md for the \
             catalogue.")
  in
  let stall_ms =
    Arg.(
      value & opt int 0
      & info [ "stall-ms" ]
          ~doc:
            "Arm the grace-period stall watchdog at this threshold (0 \
             disables).")
  in
  let stall_mode =
    Arg.(
      value
      & opt (enum [ ("warn", `Warn); ("fail", `Fail) ]) `Warn
      & info [ "stall-mode" ]
          ~doc:
            "Watchdog reaction: $(b,warn) keeps waiting and reports; \
             $(b,fail) raises so writers abort.")
  in
  let readers =
    Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Reader domains.")
  in
  let writers =
    Arg.(value & opt int 1 & info [ "writers" ] ~doc:"Writer domains.")
  in
  let updates =
    Arg.(value & opt int 300 & info [ "updates" ] ~doc:"Updates per writer.")
  in
  let use_defer =
    Arg.(
      value & flag
      & info [ "defer" ]
          ~doc:
            "Writers free through the deferred-reclamation queue (exercises \
             $(b,defer.flush)).")
  in
  let use_poll =
    Arg.(
      value & flag
      & info [ "poll" ]
          ~doc:
            "Writers free through the polled grace-period path: take a \
             cookie with $(b,read_gp_seq) after unpublishing, dawdle, then \
             $(b,cond_synchronize) — exercising grace-period elision and \
             coalescing.")
  in
  let use_call_rcu =
    Arg.(
      value & flag
      & info [ "call-rcu" ]
          ~doc:
            "Writers hand frees to a background reclaimer domain \
             (epoch-tagged bags, $(b,Reclaimer)) and never wait for a \
             grace period themselves; overrides $(b,--defer) and \
             $(b,--poll).")
  in
  let park_ms =
    Arg.(
      value & opt int 0
      & info [ "park-ms" ]
          ~doc:
            "Park reader 0 inside a read-side critical section this long \
             at start, stalling the grace period on purpose.")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Arm the reclamation sanitizer: every element carries a shadow \
             record and readers check it on each touch; violations or \
             leaked deferrals fail the run (see ROBUSTNESS.md).")
  in
  let lockdep =
    Arg.(
      value & flag
      & info [ "lockdep" ]
          ~doc:
            "Arm the lockdep validator: every lock acquisition/release and \
             read-side entry/exit is checked against the locking protocol; \
             any violation fails the run (see CORRECTNESS.md).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Cap updates per writer at 100 (CI smoke runs).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print stall reports and per-run summaries.")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "rcutorture with fault injection, stall detection, and the \
          reclamation sanitizer (see ROBUSTNESS.md).")
    Term.(
      const torture $ flavour $ seed $ faults $ stall_ms $ stall_mode
      $ readers $ writers $ updates $ use_defer $ use_poll $ use_call_rcu
      $ park_ms $ sanitize $ lockdep $ quick $ verbose)

let mutants_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Base seed (attempt $(i,i) uses seed+$(i,i)).")
  in
  let attempts =
    Arg.(
      value & opt int 8
      & info [ "attempts" ]
          ~doc:"Attempt budget per mutant before declaring it escaped.")
  in
  let skip_controls =
    Arg.(
      value & flag
      & info [ "skip-controls" ]
          ~doc:"Only run the seeded bugs, not the clean control runs.")
  in
  let lockdep =
    Arg.(
      value & flag
      & info [ "lockdep" ]
          ~doc:
            "Run the lockdep mutation suite instead: seeded \
             locking-protocol bugs (ABBA delete, synchronize inside a \
             read section, unbalanced unlock) must each raise a \
             structured lockdep violation, and clean lockdep-armed \
             rounds over all flavours must stay silent.")
  in
  let chaos_suite =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run the chaos mutation instead: a supervisor that forgets the \
             crashed updater's pending batch must lose accepted writes and \
             be caught by the ledger audit, deterministically; the \
             adopting supervisor must stay silent on the identical crash \
             schedule.")
  in
  let model_suite =
    Arg.(
      value & flag
      & info [ "model" ]
          ~doc:
            "Run the model-checker mutation suite instead: each seeded \
             protocol bug (skipped urcu flip, publish-before-init, stale \
             reclaimer cookie, ...) must produce a replayable \
             counterexample under exhaustive DPOR exploration, and every \
             control model must stay silent.")
  in
  Cmd.v
    (Cmd.info "mutants"
       ~doc:
         "Prove the reclamation sanitizer catches seeded grace-period bugs \
          (skipped synchronize, single urcu flip, qsbr quiescence inside a \
          section) and stays quiet on the clean controls; with \
          $(b,--lockdep), prove the same for the lockdep validator; with \
          $(b,--chaos), prove the serving layer's crash-recovery audit \
          catches a backlog-losing supervisor; with $(b,--model), prove \
          the systematic-interleaving model checker catches seeded \
          protocol bugs.")
    Term.(
      const mutants $ seed $ attempts $ skip_controls $ lockdep $ chaos_suite
      $ model_suite)

let model_cmd =
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Explore one scenario by name (control or mutant, e.g. \
             $(b,epoch) or $(b,urcu!single-flip)); default: the \
             store-buffering litmus and every control model.")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Executed-step budget across all interleavings; exceeding it \
             fails the run as non-exhaustive.")
  in
  let no_dpor =
    Arg.(
      value & flag
      & info [ "no-dpor" ]
          ~doc:
            "Disable partial-order reduction and enumerate every \
             interleaving naively (for cross-checking the reduction).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Cap the state budget at 3M (CI smoke runs).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write per-scenario exploration stats and verdicts as JSON.")
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Exhaustively model-check the RCU flavours' and Citrus's racy \
          windows: every interleaving of each protocol model is explored \
          (with DPOR pruning commuted permutations), and any property \
          violation prints a replayable counterexample (see \
          CORRECTNESS.md).")
    Term.(const model $ scenario $ max_states $ no_dpor $ quick $ json)

let main =
  Cmd.group
    (Cmd.info "citrus_tool" ~doc:"Stress and check the Citrus reproduction.")
    [
      list_command;
      stress_cmd;
      model_cmd;
      serve_cmd;
      chaos_cmd;
      stats_cmd;
      lincheck_cmd;
      balance_cmd;
      latency_cmd;
      soak_cmd;
      torture_cmd;
      mutants_cmd;
    ]

let () = exit (Cmd.eval main)
