(* Operator CLI for the dictionaries in this repository.

     dune exec bin/citrus_tool.exe -- list
     dune exec bin/citrus_tool.exe -- stress citrus --threads 8 --duration 2
     dune exec bin/citrus_tool.exe -- lincheck skiplist --rounds 50

   [stress] hammers one structure with a mixed workload, validates its
   invariants afterwards, and prints throughput; [lincheck] records small
   high-contention histories and model-checks them for linearizability. *)

module W = Repro_workload.Workload
module Runner = Repro_workload.Runner
module Report = Repro_workload.Report
module Dict = Repro_dict.Dict
module Checker = Repro_linchecker.Checker
module Lin_harness = Repro_linchecker.Lin_harness

let list_cmd () =
  print_endline "available structures:";
  List.iter
    (fun (module D : Dict.DICT) -> Printf.printf "  %s\n" D.name)
    Dict.all

let resolve name =
  match Dict.find name with
  | d -> d
  | exception Not_found ->
      Printf.eprintf
        "unknown structure %S; run `citrus_tool list` for the choices\n" name;
      exit 2

(* Contains percentage -> mix, splitting the rest between insert/delete. *)
let contains_mix contains_pct =
  if contains_pct < 0 || contains_pct > 100 then begin
    Printf.eprintf "--contains must be between 0 and 100 (got %d)\n"
      contains_pct;
    exit 2
  end;
  let updates = 100 - contains_pct in
  W.mix ~contains:contains_pct
    ~insert:((updates / 2) + (updates mod 2))
    ~delete:(updates / 2)

let stress name threads duration key_range contains_pct =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let cfg =
    W.config ~key_range ~threads ~duration ~role:(W.Uniform mix) ()
  in
  Printf.printf "stressing %s: %d threads, %.1fs, keys [0,%d), %s\n%!" D.name
    threads duration key_range
    (Format.asprintf "%a" W.pp_mix mix);
  let r = Runner.run (module D) cfg in
  Report.print_result r;
  print_endline "invariants: OK"

let lincheck name rounds threads ops keys =
  let (module D) = resolve name in
  Printf.printf
    "lincheck %s: %d rounds of %d threads x %d ops on %d keys\n%!" D.name
    rounds threads ops keys;
  for seed = 1 to rounds do
    let events =
      Lin_harness.record_random
        (module D)
        ~threads ~ops_per_thread:ops ~key_range:keys
        ~seed:(Int64.of_int (seed * 7919))
    in
    Checker.check_exn events;
    if seed mod 10 = 0 then Printf.printf "  %d/%d ok\n%!" seed rounds
  done;
  Printf.printf "all %d histories linearizable\n" rounds

(* Single-key conservation soak: all traffic on one key, so successful
   inserts/deletes must alternate strictly — a cheap, sharp detector for
   lost or duplicated updates (it caught a descriptor-ABA bug in the Ellen
   port; see DESIGN.md §8). *)
let soak name trials =
  let (module D) = resolve name in
  Printf.printf "soaking %s: %d trials of 3 domains x 30 single-key ops\n%!"
    D.name trials;
  let bad = ref 0 in
  for trial = 1 to trials do
    let t = D.create () in
    let ins = Atomic.make 0 and del = Atomic.make 0 in
    let workers =
      List.init 3 (fun i ->
          Domain.spawn (fun () ->
              let h = D.register t in
              let rng =
                Repro_sync.Rng.create (Int64.of_int ((trial * 10) + i))
              in
              for _ = 1 to 30 do
                if Repro_sync.Rng.bool rng then begin
                  if D.insert h 7 7 then Atomic.incr ins
                end
                else if D.delete h 7 then Atomic.incr del
              done;
              D.unregister h))
    in
    List.iter Domain.join workers;
    let diff = Atomic.get ins - Atomic.get del in
    let h = D.register t in
    let present = D.mem h 7 in
    D.unregister h;
    if diff < 0 || diff > 1 || present <> (diff = 1) then begin
      incr bad;
      Printf.printf "  trial %d VIOLATION: ins=%d del=%d present=%b\n%!" trial
        (Atomic.get ins) (Atomic.get del) present
    end;
    (try D.check t
     with e ->
       incr bad;
       Printf.printf "  trial %d INVARIANT: %s\n%!" trial (Printexc.to_string e));
    if trial mod 2000 = 0 then Printf.printf "  %d/%d ok\n%!" trial trials
  done;
  if !bad = 0 then Printf.printf "clean: %d trials, no violations\n" trials
  else begin
    Printf.printf "%d violations!\n" !bad;
    exit 1
  end

let latency name threads duration keys contains_pct =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let cfg =
    W.config ~key_range:keys ~threads ~duration ~role:(W.Uniform mix) ()
  in
  Printf.printf "latency of %s: %d threads, %.1fs, keys [0,%d)\n%!" D.name
    threads duration keys;
  let per_op = Repro_workload.Latency.measure (module D) cfg in
  List.iter
    (fun (op, s) ->
      let op_name =
        match op with
        | W.Contains -> "contains"
        | W.Insert -> "insert"
        | W.Delete -> "delete"
      in
      Format.printf "  %-9s %a@." op_name Repro_workload.Latency.pp_summary s)
    per_op

(* Live observability: run a short observed workload and dump the
   serialization metrics (and optionally the event trace) that explain its
   throughput. The JSON output uses the same schema as `bench --json`. *)
let stats name threads duration keys contains_pct trace_events json_file =
  let (module D) = resolve name in
  let mix = contains_mix contains_pct in
  let cfg =
    W.config ~key_range:keys ~threads ~duration ~role:(W.Uniform mix) ()
  in
  if trace_events > 0 then begin
    Repro_sync.Trace.configure ~capacity:(max 1024 trace_events);
    Repro_sync.Trace.start ()
  end;
  Printf.printf "observing %s: %d threads, %.1fs, keys [0,%d), %s\n%!" D.name
    threads duration keys
    (Format.asprintf "%a" W.pp_mix mix);
  let r = Runner.run ~observe:true (module D) cfg in
  Repro_sync.Trace.stop ();
  Report.print_result r;
  Format.printf "@.serialization metrics (catalogue: OBSERVABILITY.md):@.";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.printf "  %-24s %12.0f@." k v
      else Format.printf "  %-24s %12.1f@." k v)
    r.Runner.metrics;
  Format.printf "@.per-operation latency (sampled 1 in 16):@.";
  List.iter
    (fun (op, h) ->
      let op_name =
        match op with
        | W.Contains -> "contains"
        | W.Insert -> "insert"
        | W.Delete -> "delete"
      in
      Format.printf "  %-9s %a@." op_name Repro_workload.Latency.pp_summary
        (Repro_workload.Latency.summarize h))
    r.Runner.latency;
  if trace_events > 0 then begin
    let events = Repro_sync.Trace.dump () in
    let n = List.length events in
    let tail = max 0 (n - trace_events) in
    Format.printf
      "@.trace: %d events recorded, %d retained, newest %d shown:@."
      (Repro_sync.Trace.recorded ())
      n
      (min n trace_events);
    let t0 =
      match events with [] -> 0 | e :: _ -> e.Repro_sync.Trace.t_ns
    in
    List.iteri
      (fun i (e : Repro_sync.Trace.event) ->
        if i >= tail then
          Format.printf "  %+12dns d%d %-14s %d@." (e.t_ns - t0) e.domain
            (Repro_sync.Trace.kind_to_string e.kind)
            e.arg)
      events
  end;
  match json_file with
  | None -> ()
  | Some file ->
      let meta =
        if trace_events > 0 then
          [ ("trace", Repro_obs.Export.trace_json ~limit:trace_events ()) ]
        else []
      in
      let doc =
        Repro_workload.Json_report.report ~meta
          [
            {
              Repro_workload.Json_report.name = "stats: " ^ D.name;
              points = [ { Repro_workload.Json_report.cfg; result = r } ];
            };
          ]
      in
      (match Repro_workload.Json_report.write file doc with
      | () -> Printf.printf "wrote JSON report: %s\n" file
      | exception Sys_error msg ->
          Printf.eprintf "cannot write JSON report: %s\n" msg;
          exit 1)

let balance_demo keys =
  let module T = Repro_citrus.Citrus_int.Epoch in
  let t = T.create () in
  let h = T.register t in
  for k = 1 to keys do
    ignore (T.insert h k k)
  done;
  Printf.printf "inserted %d ascending keys: height %d (degenerate)\n%!" keys
    (T.height t);
  let t0 = Unix.gettimeofday () in
  let rotations = T.balance ~max_passes:200 h in
  Printf.printf "balance: %d rotations in %.2fs -> height %d (log2 ~ %d)\n"
    rotations
    (Unix.gettimeofday () -. t0)
    (T.height t)
    (int_of_float (ceil (log (float_of_int keys) /. log 2.)));
  T.check_invariants t;
  assert (T.size t = keys);
  T.unregister h;
  print_endline "contents verified intact"

open Cmdliner

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STRUCTURE" ~doc:"Structure name (see `list`).")

let stress_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  Cmd.v
    (Cmd.info "stress" ~doc:"Stress one structure and verify its invariants.")
    Term.(const stress $ name_arg $ threads $ duration $ keys $ contains)

let lincheck_cmd =
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Histories to record.")
  in
  let threads =
    Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Recording domains.")
  in
  let ops =
    Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per domain.")
  in
  let keys =
    Arg.(value & opt int 4 & info [ "keys" ] ~doc:"Key range (keep tiny).")
  in
  Cmd.v
    (Cmd.info "lincheck"
       ~doc:"Record concurrent histories and check linearizability.")
    Term.(const lincheck $ name_arg $ rounds $ threads $ ops $ keys)

let list_command =
  Cmd.v (Cmd.info "list" ~doc:"List available structures.")
    Term.(const list_cmd $ const ())

let soak_cmd =
  let trials =
    Arg.(value & opt int 5_000 & info [ "trials" ] ~doc:"Soak trials.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Single-key conservation soak (lost/duplicated-update detector).")
    Term.(const soak $ name_arg $ trials)

let latency_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Per-operation latency percentiles.")
    Term.(const latency $ name_arg $ threads $ duration $ keys $ contains)

let stats_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let duration =
    Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Seconds.")
  in
  let keys =
    Arg.(value & opt int 16_384 & info [ "keys" ] ~doc:"Key range size.")
  in
  let contains =
    Arg.(
      value & opt int 50
      & info [ "contains" ] ~doc:"Percentage of contains operations.")
  in
  let trace =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N"
          ~doc:
            "Also record the event trace and print the newest $(docv) \
             events (0 disables tracing).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the metrics (and trace, with --trace) as JSON.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a short observed workload and dump live serialization \
          metrics (grace periods, lock contention, restarts; see \
          OBSERVABILITY.md).")
    Term.(
      const stats $ name_arg $ threads $ duration $ keys $ contains $ trace
      $ json)

let balance_cmd =
  let keys =
    Arg.(value & opt int 50_000 & info [ "keys" ] ~doc:"Ascending keys to insert.")
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:"Demonstrate maintenance rebalancing on a degenerate tree.")
    Term.(const balance_demo $ keys)

let main =
  Cmd.group
    (Cmd.info "citrus_tool" ~doc:"Stress and check the Citrus reproduction.")
    [
      list_command;
      stress_cmd;
      stats_cmd;
      lincheck_cmd;
      balance_cmd;
      latency_cmd;
      soak_cmd;
    ]

let () = exit (Cmd.eval main)
