(* lint: repository-local static checks over the lib/ source tree, wired
   into `dune build @lint` (see HACKING.md). Every .ml is parsed with the
   compiler's own parser (compiler-libs) and the rules walk the
   parsetree, so comments and string literals can never trigger false
   positives the way a grep-based lint would. Rules:

   1. No [Mutex] / [Condition] (including through [Stdlib.]) outside
      lib/rcu/gp.ml: blocking primitives belong to the one audited wait
      queue ([Gp.Waitq]); anywhere else they would hide from the lockdep
      validator, which instruments [Spinlock]/[Ticket_lock]/[Gp.Waitq]
      only.
   2. No [Obj.magic], anywhere: this repository proves its safety
      properties with runtime validators, and a single unsound cast
      voids all of them.
   3. No raw [Atomic] writes to documented lock-protected fields from
      outside the owning file: [gp_seq] (urcu — written only by the
      gp_lock holder), [serving] (ticket lock — written only by the
      lock holder), [tags] (citrus — written only under the node lock).
      Reads stay free, as the algorithms require.
   4. Every .ml under lib/ has a matching .mli, so representation
      invariants stay sealed; module-type-only *_intf.ml files are
      exempt (an .mli would duplicate them token for token).
   5. No [Random] and no wall-clock-fed [Rng.create] seeding under
      lib/server/ or lib/workload/: every run in those layers must be
      replayable from the config's explicit seed (chaos schedules,
      mutation verdicts, and latency reports all depend on it).
   6. No get-then-set read-modify-write on the protocol counters
      ([gp_seq], [gp_completed], [gp_started], [scanning], [serving],
      [tags]): an [Atomic.set] whose value nests an [Atomic.get] of the
      same field loses concurrent updates — use [fetch_and_add] or
      [compare_and_set]. Reader slot words and the lock-held [gp_ctr]
      flip are exempt: their get-then-set is single-writer by protocol.

   Exits 1 with file:line diagnostics on any violation, silently 0
   otherwise. *)

open Parsetree

let errors = ref 0

let err ~file ~line fmt =
  incr errors;
  Printf.ksprintf (fun s -> Printf.eprintf "%s:%d: %s\n" file line s) fmt

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* --- rule tables --- *)

let forbidden_modules = [ "Mutex"; "Condition" ]
let mutex_exempt file = Filename.check_suffix file "rcu/gp.ml"

(* field name -> the one file allowed to write it through Atomic. *)
let protected_fields =
  [
    ("gp_seq", "lib/rcu/urcu.ml");
    ("serving", "lib/sync/ticket_lock.ml");
    ("tags", "lib/citrus/citrus.ml");
  ]

let atomic_write_fns =
  [ "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr"; "decr" ]

(* Layers that must replay deterministically from their config seed. *)
let deterministic_dirs = [ "lib/server/"; "lib/workload/" ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let in_deterministic_dir file =
  List.exists (contains_sub file) deterministic_dirs

(* Idents that smuggle wall-clock time into an Rng seed. *)
let wall_clock_idents = [ "gettimeofday"; "time"; "now_ns"; "now" ]

(* Fields whose writers race: a get-then-set RMW on them is a lost-update
   bug. Reader slot words ([slot]) and [gp_ctr] are deliberately absent —
   their get-then-set is single-writer (own slot, or under gp_lock). *)
let rmw_fields =
  [ "gp_seq"; "gp_completed"; "gp_started"; "scanning"; "serving"; "tags" ]

(* --- parsetree rules --- *)

(* Module components of a dotted path: all but the final value/type name
   for idents and type constructors, every component for module paths.
   [Stdlib.Mutex.lock] and [Mutex.lock] both expose "Mutex". *)
let check_modules ~file ~all (lid : Longident.t Location.loc) =
  let comps = Longident.flatten lid.txt in
  let modules =
    if all then comps
    else match List.rev comps with [] -> [] | _ :: ms -> List.rev ms
  in
  List.iter
    (fun m ->
      if List.mem m forbidden_modules && not (mutex_exempt file) then
        err ~file ~line:(line_of lid.loc)
          "use of %s: blocking primitives are reserved for lib/rcu/gp.ml \
           (Gp.Waitq); use Spinlock/Ticket_lock so lockdep sees the lock"
          m;
      if m = "Random" && in_deterministic_dir file then
        err ~file ~line:(line_of lid.loc)
          "use of Random: the serving and workload layers must replay \
           deterministically — thread a Repro_sync.Rng seeded from the \
           config instead")
    modules;
  match comps with
  | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] ->
      err ~file ~line:(line_of lid.loc)
        "Obj.magic: unsound casts are forbidden in lib/"
  | _ -> ()

(* Protected-field accesses anywhere inside [e] (the arguments of an
   Atomic write): each is a violation unless [file] owns the field. *)
let check_protected_args ~file ~call_line e =
  let rec it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun _ ex ->
          (match ex.pexp_desc with
          | Pexp_field (_, fld) -> (
              let name = Longident.last fld.txt in
              match List.assoc_opt name protected_fields with
              | Some owner when not (Filename.check_suffix file owner) ->
                  err ~file ~line:call_line
                    "raw Atomic write touching lock-protected field %S \
                     (written only by %s under its documented lock)"
                    name owner
              | Some _ | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e

(* Wall-clock idents anywhere inside [e] (the arguments of an Rng.create
   call in a deterministic layer): each one is a seeding violation. *)
let check_seed_args ~file ~call_line e =
  let rec it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun _ ex ->
          (match ex.pexp_desc with
          | Pexp_ident lid ->
              let name = Longident.last lid.txt in
              if List.mem name wall_clock_idents then
                err ~file ~line:call_line
                  "Rng.create seeded from the wall clock (%s): the serving \
                   and workload layers must replay deterministically from \
                   the config's explicit seed"
                  name
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e

(* Every record field name accessed anywhere inside [e]. *)
let fields_in e =
  let acc = ref [] in
  let rec it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun _ ex ->
          (match ex.pexp_desc with
          | Pexp_field (_, fld) -> acc := Longident.last fld.txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  !acc

(* Does [e] contain an [Atomic.get] whose argument touches field
   [fname]?  The witness of a get-then-set RMW when [e] is the value
   being [Atomic.set] into that same field. *)
let gets_field ~fname e =
  let found = ref false in
  let rec it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun _ ex ->
          (match ex.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident fn; _ }, args) -> (
              match Longident.flatten fn.txt with
              | [ "Atomic"; "get" ] | [ "Stdlib"; "Atomic"; "get" ] ->
                  List.iter
                    (fun (_, a) ->
                      if List.mem fname (fields_in a) then found := true)
                    args
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  !found

let check_rmw ~file ~call_line args =
  match args with
  | (_, target) :: value_args ->
      List.iter
        (fun fname ->
          if
            List.mem fname rmw_fields
            && List.exists (fun (_, v) -> gets_field ~fname v) value_args
          then
            err ~file ~line:call_line
              "get-then-set read-modify-write on %S: a concurrent writer \
               between the Atomic.get and the Atomic.set is silently \
               overwritten — use Atomic.fetch_and_add or a \
               compare_and_set loop"
              fname)
        (fields_in target)
  | [] -> ()

let check_file file =
  let str =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Location.init lexbuf file;
        try Some (Parse.implementation lexbuf)
        with e ->
          err ~file ~line:1 "parse error: %s" (Printexc.to_string e);
          None)
  in
  match str with
  | None -> ()
  | Some str ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident lid -> check_modules ~file ~all:false lid
              | Pexp_new lid -> check_modules ~file ~all:false lid
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident fn; pexp_loc; _ }, args) -> (
                  let call_line = line_of pexp_loc in
                  match Longident.flatten fn.txt with
                  | [ "Atomic"; w ] | [ "Stdlib"; "Atomic"; w ]
                    when List.mem w atomic_write_fns ->
                      List.iter
                        (fun (_, a) ->
                          check_protected_args ~file ~call_line a)
                        args;
                      if w = "set" || w = "exchange" then
                        check_rmw ~file ~call_line args
                  | comps -> (
                      match List.rev comps with
                      | "create" :: "Rng" :: _
                        when in_deterministic_dir file ->
                          List.iter
                            (fun (_, a) ->
                              check_seed_args ~file ~call_line a)
                            args
                      | _ -> ()))
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
          typ =
            (fun it t ->
              (match t.ptyp_desc with
              | Ptyp_constr (lid, _) -> check_modules ~file ~all:false lid
              | Ptyp_class (lid, _) -> check_modules ~file ~all:false lid
              | _ -> ());
              Ast_iterator.default_iterator.typ it t);
          module_expr =
            (fun it m ->
              (match m.pmod_desc with
              | Pmod_ident lid -> check_modules ~file ~all:true lid
              | _ -> ());
              Ast_iterator.default_iterator.module_expr it m);
        }
      in
      it.structure it str

(* --- rule 4 + directory walk --- *)

let check_has_mli file =
  if
    Filename.check_suffix file ".ml"
    && (not (Filename.check_suffix file "_intf.ml"))
    && not (Sys.file_exists (file ^ "i"))
  then
    err ~file ~line:1
      "missing interface: every lib/ module is sealed by an .mli \
       (module-type files are *_intf.ml)"

let rec walk dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path
      else if Filename.check_suffix path ".ml" then begin
        check_has_mli path;
        check_file path
      end)
    (Sys.readdir dir)

let () =
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: r -> r
  in
  List.iter walk roots;
  if !errors > 0 then begin
    Printf.eprintf "lint: %d violation(s)\n" !errors;
    exit 1
  end
