(* Tests for the lockdep validator (lib/lockdep) and its integration:
   instrumented locks, RCU context rules, ordered tree-node classes, the
   Metrics/Trace surfacing, the lockdep-armed torture run, and the
   mutation suite proving the three seeded locking-protocol bugs are
   caught while clean runs stay silent. *)

module Lockdep = Repro_lockdep.Lockdep
module Spinlock = Repro_sync.Spinlock
module Ticket_lock = Repro_sync.Ticket_lock
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Torture = Repro_rcu.Torture
module Epoch = Repro_rcu.Epoch_rcu
module Mutation = Repro_citrus.Mutation
module Tree = Repro_citrus.Citrus_int.Epoch

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Arm around [f] from a quiescent point, restoring and clearing all
   lockdep state either way. *)
let with_lockdep f =
  Lockdep.reset ();
  let was = Lockdep.enabled () in
  Lockdep.arm ();
  Fun.protect
    ~finally:(fun () ->
      if not was then Lockdep.disarm ();
      Lockdep.reset ())
    f

let expect kind f =
  match f () with
  | _ -> Alcotest.failf "expected %s violation" (Lockdep.kind_to_string kind)
  | exception Lockdep.Violation r ->
      Alcotest.check Alcotest.string "violation kind"
        (Lockdep.kind_to_string kind)
        (Lockdep.kind_to_string r.Lockdep.kind);
      (* The structured report must always render. *)
      checkb "report renders" true
        (String.length (Lockdep.report_to_string r) > 0);
      r

(* --- core validator --- *)

let test_disarmed_silent () =
  Lockdep.reset ();
  checkb "disarmed" false (Lockdep.enabled ());
  let cls = Lockdep.new_class ~ordered:true Lockdep.Tree_node "test/disarmed" in
  let a = Spinlock.create ~cls () and b = Spinlock.create ~cls () in
  (* Inverted order with lockdep off: no contention, so this must simply
     succeed — and record nothing. *)
  Spinlock.acquire_ordered b 1;
  Spinlock.acquire_ordered a 0;
  Spinlock.release a;
  Spinlock.release b;
  checki "no checks recorded while disarmed" 0 (Lockdep.checks ());
  checki "no violations" 0 (Lockdep.violations ())

let test_order_inversion () =
  with_lockdep (fun () ->
      let cls =
        Lockdep.new_class ~ordered:true Lockdep.Tree_node "test/ordered"
      in
      let a = Spinlock.create ~cls () and b = Spinlock.create ~cls () in
      Spinlock.acquire_ordered b 1;
      let r =
        expect Lockdep.Order_inversion (fun () -> Spinlock.acquire_ordered a 0)
      in
      Alcotest.check Alcotest.string "names the class" (Lockdep.cls_name cls)
        r.Lockdep.cls;
      checkb "held stack reported" true (r.Lockdep.held <> []);
      (* The violating acquisition must not have taken the lock. *)
      checkb "refused lock not taken" false (Spinlock.is_locked a);
      Spinlock.release b;
      (* Ascending order within the class is the protocol: silent. *)
      Spinlock.acquire_ordered a 0;
      Spinlock.acquire_ordered b 1;
      Spinlock.release b;
      Spinlock.release a)

let test_dependency_cycle () =
  with_lockdep (fun () ->
      let ca = Lockdep.new_class Lockdep.Registry "test/cycle-a" in
      let cb = Lockdep.new_class Lockdep.Registry "test/cycle-b" in
      let a = Spinlock.create ~cls:ca () and b = Spinlock.create ~cls:cb () in
      (* Establish the dependency a -> b, fully released afterwards. *)
      Spinlock.acquire a;
      Spinlock.acquire b;
      Spinlock.release b;
      Spinlock.release a;
      (* The inverted nesting closes the cycle — flagged immediately, on
         one domain, with no second thread and no actual deadlock. *)
      Spinlock.acquire b;
      let r =
        expect Lockdep.Dependency_cycle (fun () -> Spinlock.acquire a)
      in
      checkb "names both classes" true
        (r.Lockdep.cls <> "" && r.Lockdep.other_cls <> "");
      Spinlock.release b)

let test_recursive_lock () =
  with_lockdep (fun () ->
      let cls = Lockdep.new_class Lockdep.Registry "test/recursive" in
      let l = Spinlock.create ~cls () in
      Spinlock.acquire l;
      ignore (expect Lockdep.Recursive_lock (fun () -> Spinlock.acquire l));
      Spinlock.release l)

let test_trylock_never_reports () =
  with_lockdep (fun () ->
      let cls =
        Lockdep.new_class ~ordered:true Lockdep.Tree_node "test/trylock"
      in
      let a = Spinlock.create ~cls () and b = Spinlock.create ~cls () in
      Spinlock.acquire_ordered b 1;
      (* Same inversion as above, as a trylock: cannot deadlock, so it is
         recorded but never reported. *)
      checkb "trylock succeeds" true (Spinlock.try_acquire a);
      Spinlock.release a;
      Spinlock.release b;
      checki "no violations" 0 (Lockdep.violations ()))

let test_ticket_release_not_held () =
  with_lockdep (fun () ->
      let l = Ticket_lock.create () in
      ignore
        (expect Lockdep.Release_not_held (fun () -> Ticket_lock.release l));
      (* The refused release must not have corrupted the FIFO. *)
      checkb "still free" false (Ticket_lock.is_locked l);
      Ticket_lock.acquire l;
      Ticket_lock.release l)

(* --- RCU context rules --- *)

let test_sync_in_read_section () =
  with_lockdep (fun () ->
      let r = Epoch.create () in
      let th = Epoch.register r in
      Epoch.read_lock th;
      let rep =
        expect Lockdep.Sync_in_read_section (fun () -> Epoch.synchronize r)
      in
      checki "reader slot" (Epoch.reader_slot th) rep.Lockdep.reader_slot;
      checki "nesting" 1 rep.Lockdep.reader_nesting;
      Epoch.read_unlock th;
      (* Legal outside the section. *)
      Epoch.synchronize r;
      Epoch.unregister th)

let test_cond_sync_checked_even_when_elided () =
  with_lockdep (fun () ->
      let r = Epoch.create () in
      let th = Epoch.register r in
      let snap = Epoch.read_gp_seq r in
      Epoch.synchronize r;
      (* The snapshot is now covered, so cond_synchronize would return
         without waiting — the context rule must fire anyway, or the bug
         hides until the unlucky schedule. *)
      Epoch.read_lock th;
      ignore
        (expect Lockdep.Sync_in_read_section (fun () ->
             Epoch.cond_synchronize r snap));
      Epoch.read_unlock th;
      Epoch.unregister th)

let test_unbalanced_read_unlock () =
  with_lockdep (fun () ->
      let r = Epoch.create () in
      let th = Epoch.register r in
      ignore
        (expect Lockdep.Unbalanced_read_unlock (fun () ->
             Epoch.read_unlock th));
      Epoch.unregister th)

(* --- clean integration runs must be silent --- *)

let test_clean_citrus_silent () =
  with_lockdep (fun () ->
      let t = Tree.create ~reclamation:true () in
      let domains =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                let h = Tree.register t in
                for k = 0 to 200 do
                  ignore (Tree.insert h (((k * 7) + i) mod 101) k);
                  ignore (Tree.mem h (k mod 101));
                  ignore (Tree.delete h (((k * 3) + i) mod 101))
                done;
                Tree.unregister h))
      in
      List.iter Domain.join domains;
      checki "no violations" 0 (Lockdep.violations ());
      checkb "protocol was actually validated" true (Lockdep.checks () > 0))

let test_torture_lockdep_clean () =
  let cfg =
    {
      Torture.default with
      updates_per_writer = 60;
      nest = true;
      use_poll = true;
      lockdep = true;
    }
  in
  List.iter
    (fun f ->
      let out = Torture.run_flavour f cfg in
      checki (f ^ ": no torture errors") 0 out.Torture.errors;
      checki (f ^ ": lockdep silent") 0 out.Torture.lockdep_violations)
    Torture.flavours

(* --- mutation proof --- *)

let test_lockdep_mutants_caught () =
  List.iter
    (fun r -> checkb (r.Mutation.mutant ^ " caught") true r.Mutation.caught)
    (Mutation.lockdep_all ())

let test_lockdep_controls_silent () =
  List.iter
    (fun r -> checki (r.Mutation.mutant ^ " silent") 0 r.Mutation.violations)
    (Mutation.lockdep_controls ())

(* --- observability surfacing --- *)

let test_metrics_rows () =
  with_lockdep (fun () ->
      Lockdep.reset_counters ();
      let l = Spinlock.create () in
      Spinlock.acquire l;
      Spinlock.release l;
      let snap = Metrics.snapshot () in
      let get k =
        match List.assoc_opt k snap with
        | Some v -> v
        | None -> Alcotest.failf "metric %s missing from snapshot" k
      in
      checkb "lockdep_checks counted" true (get "lockdep_checks" > 0.);
      Alcotest.check (Alcotest.float 0.) "lockdep_violations zero" 0.
        (get "lockdep_violations"))

let test_trace_records_violation () =
  with_lockdep (fun () ->
      Trace.configure ~capacity:256;
      Trace.start ();
      let l = Ticket_lock.create () in
      (try Ticket_lock.release l with Lockdep.Violation _ -> ());
      Trace.stop ();
      let events = Trace.dump () in
      checkb "lockdep_violation event recorded" true
        (List.exists
           (fun (e : Trace.event) -> e.Trace.kind = Trace.Lockdep_violation)
           events))

let () =
  Alcotest.run "lockdep"
    [
      ( "validator",
        [
          Alcotest.test_case "disarmed is silent" `Quick test_disarmed_silent;
          Alcotest.test_case "order inversion" `Quick test_order_inversion;
          Alcotest.test_case "dependency cycle (ABBA)" `Quick
            test_dependency_cycle;
          Alcotest.test_case "recursive lock" `Quick test_recursive_lock;
          Alcotest.test_case "trylock never reports" `Quick
            test_trylock_never_reports;
          Alcotest.test_case "release not held (ticket)" `Quick
            test_ticket_release_not_held;
        ] );
      ( "rcu-context",
        [
          Alcotest.test_case "synchronize in read section" `Quick
            test_sync_in_read_section;
          Alcotest.test_case "cond_synchronize checked when elided" `Quick
            test_cond_sync_checked_even_when_elided;
          Alcotest.test_case "unbalanced read_unlock" `Quick
            test_unbalanced_read_unlock;
        ] );
      ( "clean-runs",
        [
          Alcotest.test_case "citrus stress silent" `Quick
            test_clean_citrus_silent;
          Alcotest.test_case "lockdep-armed torture silent" `Slow
            test_torture_lockdep_clean;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "all three caught" `Quick
            test_lockdep_mutants_caught;
          Alcotest.test_case "controls silent" `Quick
            test_lockdep_controls_silent;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics rows" `Quick test_metrics_rows;
          Alcotest.test_case "trace kind" `Quick test_trace_records_violation;
        ] );
    ]
