(* Tests for both RCU implementations: API discipline, the RCU property
   (synchronize waits for pre-existing readers but not for later ones), and
   deferred reclamation ordering. Each behavioural test runs against both
   flavours via the functor below. *)

module Barrier = Repro_sync.Barrier

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Behaviour (R : Repro_rcu.Rcu.S) = struct
  let test_register_basics () =
    let r = R.create ~max_threads:2 () in
    let a = R.register r in
    let b = R.register r in
    Alcotest.check_raises "full" Repro_sync.Registry.Full (fun () ->
        ignore (R.register r));
    R.unregister a;
    let c = R.register r in
    R.unregister b;
    R.unregister c

  let test_read_nesting () =
    let r = R.create () in
    let th = R.register r in
    R.read_lock th;
    R.read_lock th;
    R.read_unlock th;
    R.read_unlock th;
    (* Quiescent again: synchronize from another registered thread must not
       block. *)
    R.synchronize r;
    R.unregister th

  let test_unlock_without_lock () =
    let r = R.create () in
    let th = R.register r in
    checkb "raises"
      true
      (match R.read_unlock th with
      | () -> false
      | exception Invalid_argument _ -> true);
    R.unregister th

  let test_unregister_inside_cs_rejected () =
    let r = R.create () in
    let th = R.register r in
    R.read_lock th;
    checkb "raises" true
      (match R.unregister th with
      | () -> false
      | exception Invalid_argument _ -> true);
    R.read_unlock th;
    R.unregister th

  let test_synchronize_no_readers () =
    let r = R.create () in
    let gp0 = R.grace_periods r in
    R.synchronize r;
    R.synchronize r;
    checki "grace periods counted" (gp0 + 2) (R.grace_periods r)

  (* The RCU property, blocking direction: a synchronize that starts while a
     reader is inside its critical section must not return before the reader
     leaves. *)
  let test_synchronize_waits_for_preexisting_reader () =
    let r = R.create () in
    let ready = Barrier.create 2 in
    let reader_done = Atomic.make false in
    let sync_returned = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let th = R.register r in
          R.read_lock th;
          Barrier.wait ready;
          (* Hold the critical section long enough for the synchronizer to
             be clearly waiting. *)
          Unix.sleepf 0.05;
          checkb "synchronize still blocked" false (Atomic.get sync_returned);
          Atomic.set reader_done true;
          R.read_unlock th;
          R.unregister th)
    in
    let syncer =
      Domain.spawn (fun () ->
          Barrier.wait ready;
          (* The reader is inside its critical section now. *)
          R.synchronize r;
          Atomic.set sync_returned true;
          checkb "reader finished before synchronize returned" true
            (Atomic.get reader_done))
    in
    Domain.join reader;
    Domain.join syncer

  (* Non-blocking direction: a reader that starts *after* synchronize does
     not block it. *)
  let test_synchronize_ignores_later_readers () =
    let r = R.create () in
    let stop = Atomic.make false in
    let churner =
      Domain.spawn (fun () ->
          let th = R.register r in
          while not (Atomic.get stop) do
            R.read_lock th;
            R.read_unlock th
          done;
          R.unregister th)
    in
    (* If synchronize waited for the ever-restarting reader stream, this
       would hang. *)
    for _ = 1 to 100 do
      R.synchronize r
    done;
    Atomic.set stop true;
    Domain.join churner

  (* Publication pattern: a writer retires a value, synchronizes, then
     invalidates it. Readers that took a reference inside a critical section
     must never observe the invalidation. *)
  let test_publication_safety () =
    let r = R.create () in
    let cell = Atomic.make (ref 1) in
    let violations = Atomic.make 0 in
    let stop = Atomic.make false in
    let reader () =
      let th = R.register r in
      while not (Atomic.get stop) do
        R.read_lock th;
        let v = Atomic.get cell in
        (* Anything reachable inside the critical section must still be
           valid (non-zero) until we leave it. *)
        if !v = 0 then Atomic.incr violations;
        Domain.cpu_relax ();
        if !v = 0 then Atomic.incr violations;
        R.read_unlock th
      done;
      R.unregister th
    in
    let writer () =
      let rec loop n =
        if n > 0 then begin
          let fresh = ref (n + 1) in
          let old = Atomic.exchange cell fresh in
          R.synchronize r;
          (* No reader can still hold [old]: "freeing" it is safe. *)
          old := 0;
          loop (n - 1)
        end
      in
      loop 300
    in
    let readers = List.init 2 (fun _ -> Domain.spawn reader) in
    let w = Domain.spawn writer in
    Domain.join w;
    Atomic.set stop true;
    List.iter Domain.join readers;
    checki "no use-after-free observed" 0 (Atomic.get violations)

  let test_concurrent_synchronizers () =
    let r = R.create () in
    let n = 4 in
    let per = 50 in
    let stop = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let th = R.register r in
          while not (Atomic.get stop) do
            R.read_lock th;
            Domain.cpu_relax ();
            R.read_unlock th
          done;
          R.unregister th)
    in
    let syncers =
      List.init n (fun _ ->
          Domain.spawn (fun () ->
              for _ = 1 to per do
                R.synchronize r
              done))
    in
    List.iter Domain.join syncers;
    Atomic.set stop true;
    Domain.join reader;
    checkb "grace periods all completed" true (R.grace_periods r >= n * per)

  (* --- Grace-period sequence numbers (read_gp_seq / poll /
     cond_synchronize) --- *)

  let test_gp_seq_advances () =
    let r = R.create () in
    let snap = R.read_gp_seq r in
    checkb "fresh snapshot not yet satisfied" false (R.poll r snap);
    R.synchronize r;
    checkb "satisfied after one grace period" true (R.poll r snap);
    (* A snapshot taken now demands a *future* grace period. *)
    checkb "new snapshot not satisfied by old GP" false
      (R.poll r (R.read_gp_seq r))

  (* poll must never report completion while a reader that pre-dates the
     snapshot is still inside its critical section: the only way
     [gp_completed] advances past the snapshot is a full scan, and that
     scan is blocked by the parked reader. *)
  let test_poll_never_early () =
    let r = R.create () in
    let ready = Barrier.create 2 in
    let release = Atomic.make false in
    let exited = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let th = R.register r in
          R.read_lock th;
          Barrier.wait ready;
          while not (Atomic.get release) do
            Domain.cpu_relax ()
          done;
          Atomic.set exited true;
          R.read_unlock th;
          R.unregister th)
    in
    Barrier.wait ready;
    (* The reader is parked inside its critical section. *)
    let snap = R.read_gp_seq r in
    let syncer = Domain.spawn (fun () -> R.synchronize r) in
    for _ = 1 to 5 do
      Unix.sleepf 0.01;
      checkb "poll false while pre-existing reader parked" false
        (R.poll r snap)
    done;
    Atomic.set release true;
    Domain.join reader;
    Domain.join syncer;
    checkb "poll true after grace period" true (R.poll r snap);
    checkb "reader had exited" true (Atomic.get exited)

  (* cond_synchronize after the grace period already elapsed must be a
     no-op: no new grace period is driven (the [grace_periods] counter
     ticks on every synchronize return, so a no-op leaves it alone). *)
  let test_cond_synchronize_elided () =
    let r = R.create () in
    let snap = R.read_gp_seq r in
    R.synchronize r;
    let gp0 = R.grace_periods r in
    R.cond_synchronize r snap;
    checki "elided: no extra grace period" gp0 (R.grace_periods r);
    (* An unsatisfied snapshot still forces a real synchronize. *)
    let fresh = R.read_gp_seq r in
    R.cond_synchronize r fresh;
    checki "unsatisfied snapshot drives a grace period" (gp0 + 1)
      (R.grace_periods r);
    checkb "and satisfies it" true (R.poll r fresh)

  (* The coalescing fast paths must not weaken the synchronize guarantee:
     several domains synchronizing at once (so most of them piggyback on
     a shared grace period) must all still wait out a pre-existing
     reader. *)
  let test_coalesced_synchronize_keeps_guarantee () =
    let n = 4 in
    let r = R.create () in
    let ready = Barrier.create (n + 1) in
    let reader_done = Atomic.make false in
    let early = Atomic.make 0 in
    let reader =
      Domain.spawn (fun () ->
          let th = R.register r in
          R.read_lock th;
          Barrier.wait ready;
          Unix.sleepf 0.05;
          Atomic.set reader_done true;
          R.read_unlock th;
          R.unregister th)
    in
    let syncers =
      List.init n (fun _ ->
          Domain.spawn (fun () ->
              Barrier.wait ready;
              for _ = 1 to 20 do
                R.synchronize r;
                if not (Atomic.get reader_done) then Atomic.incr early
              done))
    in
    List.iter Domain.join syncers;
    Domain.join reader;
    checki "no synchronize returned before the pre-existing reader" 0
      (Atomic.get early)

  let suite name =
    ( name,
      [
        Alcotest.test_case "register basics" `Quick test_register_basics;
        Alcotest.test_case "read nesting" `Quick test_read_nesting;
        Alcotest.test_case "unlock without lock" `Quick test_unlock_without_lock;
        Alcotest.test_case "unregister inside CS rejected" `Quick
          test_unregister_inside_cs_rejected;
        Alcotest.test_case "synchronize with no readers" `Quick
          test_synchronize_no_readers;
        Alcotest.test_case "waits for pre-existing reader" `Quick
          test_synchronize_waits_for_preexisting_reader;
        Alcotest.test_case "ignores later readers" `Quick
          test_synchronize_ignores_later_readers;
        Alcotest.test_case "publication safety" `Quick test_publication_safety;
        Alcotest.test_case "concurrent synchronizers" `Quick
          test_concurrent_synchronizers;
        Alcotest.test_case "gp_seq advances" `Quick test_gp_seq_advances;
        Alcotest.test_case "poll never early" `Quick test_poll_never_early;
        Alcotest.test_case "cond_synchronize elided" `Quick
          test_cond_synchronize_elided;
        Alcotest.test_case "coalesced synchronize keeps guarantee" `Quick
          test_coalesced_synchronize_keeps_guarantee;
      ] )
end

module Epoch_behaviour = Behaviour (Repro_rcu.Epoch_rcu)
module Urcu_behaviour = Behaviour (Repro_rcu.Urcu)
module Qsbr_behaviour = Behaviour (Repro_rcu.Qsbr)

(* --- implementation-specific details --- *)

(* QSBR native API: free read side, explicit quiescent announcements. *)
let test_qsbr_native_api () =
  let module Q = Repro_rcu.Qsbr in
  let r = Q.create () in
  let th = Q.register r in
  (* An offline thread never blocks a grace period. *)
  Q.offline th;
  Q.synchronize r;
  Q.online th;
  (* Online thread that announces quiescence unblocks the writer. *)
  let ready = Barrier.create 2 in
  let done_ = Atomic.make false in
  let syncer =
    Domain.spawn (fun () ->
        let th2 = Q.register r in
        Barrier.wait ready;
        Q.synchronize r;
        Atomic.set done_ true;
        Q.unregister th2)
  in
  Barrier.wait ready;
  (* The writer flips the grace period and waits for us. *)
  Unix.sleepf 0.02;
  Q.quiescent_state th;
  Domain.join syncer;
  checkb "synchronize completed after quiescent_state" true (Atomic.get done_);
  Q.offline th;
  Q.unregister th

let test_qsbr_guards () =
  let module Q = Repro_rcu.Qsbr in
  let r = Q.create () in
  let th = Q.register r in
  Q.read_lock th;
  checkb "quiescent_state inside CS rejected" true
    (match Q.quiescent_state th with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "offline inside CS rejected" true
    (match Q.offline th with
    | () -> false
    | exception Invalid_argument _ -> true);
  Q.read_unlock th;
  Q.unregister th

let test_epoch_read_depth () =
  let module E = Repro_rcu.Epoch_rcu in
  let r = E.create () in
  let th = E.register r in
  checki "depth 0" 0 (E.read_depth th);
  E.read_lock th;
  E.read_lock th;
  checki "depth 2" 2 (E.read_depth th);
  E.read_unlock th;
  checki "depth 1" 1 (E.read_depth th);
  E.read_unlock th;
  E.unregister th

let test_urcu_read_depth () =
  let module U = Repro_rcu.Urcu in
  let r = U.create () in
  let th = U.register r in
  checki "depth 0" 0 (U.read_depth th);
  U.read_lock th;
  U.read_lock th;
  checki "depth 2" 2 (U.read_depth th);
  U.read_unlock th;
  U.read_unlock th;
  checki "depth 0 again" 0 (U.read_depth th);
  U.unregister th

let test_implementations_list () =
  let names = List.map fst Repro_rcu.Rcu.implementations in
  Alcotest.check
    Alcotest.(list string)
    "registered flavours"
    [ "epoch-rcu"; "urcu"; "qsbr" ]
    names

(* --- Defer --- *)

module Defer_tests (R : Repro_rcu.Rcu.S) = struct
  module D = Repro_rcu.Defer.Make (R)

  let test_batching () =
    let r = R.create () in
    let d = D.create ~batch:3 r in
    let log = ref [] in
    D.defer d (fun () -> log := 1 :: !log);
    D.defer d (fun () -> log := 2 :: !log);
    checki "pending below batch" 2 (D.pending d);
    Alcotest.check Alcotest.(list int) "nothing ran yet" [] !log;
    D.defer d (fun () -> log := 3 :: !log);
    checki "flushed at batch" 0 (D.pending d);
    Alcotest.check Alcotest.(list int) "FIFO order" [ 3; 2; 1 ] !log;
    checki "executed" 3 (D.executed d)

  let test_flush_empty () =
    let r = R.create () in
    let d = D.create r in
    let gp0 = R.grace_periods r in
    D.flush d;
    checki "no grace period for empty flush" gp0 (R.grace_periods r)

  (* A deferred callback must not run while any reader that pre-dates the
     defer-triggered grace period is still inside its critical section. *)
  let test_defer_respects_grace_period () =
    let r = R.create () in
    let ready = Barrier.create 2 in
    let freed = Atomic.make false in
    let observed_freed_inside_cs = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let th = R.register r in
          R.read_lock th;
          Barrier.wait ready;
          Unix.sleepf 0.05;
          if Atomic.get freed then Atomic.set observed_freed_inside_cs true;
          R.read_unlock th;
          R.unregister th)
    in
    let writer =
      Domain.spawn (fun () ->
          let d = D.create ~batch:1 r in
          Barrier.wait ready;
          D.defer d (fun () -> Atomic.set freed true))
    in
    Domain.join reader;
    Domain.join writer;
    checkb "callback ran after reader exited" false
      (Atomic.get observed_freed_inside_cs);
    checkb "callback did run" true (Atomic.get freed)

  let suite name =
    ( name,
      [
        Alcotest.test_case "batching and order" `Quick test_batching;
        Alcotest.test_case "empty flush is free" `Quick test_flush_empty;
        Alcotest.test_case "respects grace period" `Quick
          test_defer_respects_grace_period;
      ] )
end

module Defer_epoch = Defer_tests (Repro_rcu.Epoch_rcu)
module Defer_urcu = Defer_tests (Repro_rcu.Urcu)
module Defer_qsbr = Defer_tests (Repro_rcu.Qsbr)

let () =
  Alcotest.run "rcu"
    [
      Epoch_behaviour.suite "epoch-rcu behaviour";
      Urcu_behaviour.suite "urcu behaviour";
      Qsbr_behaviour.suite "qsbr behaviour";
      ( "specifics",
        [
          Alcotest.test_case "epoch read_depth" `Quick test_epoch_read_depth;
          Alcotest.test_case "urcu read_depth" `Quick test_urcu_read_depth;
          Alcotest.test_case "qsbr native API" `Quick test_qsbr_native_api;
          Alcotest.test_case "qsbr guards" `Quick test_qsbr_guards;
          Alcotest.test_case "implementations list" `Quick
            test_implementations_list;
        ] );
      Defer_epoch.suite "defer over epoch-rcu";
      Defer_urcu.suite "defer over urcu";
      Defer_qsbr.suite "defer over qsbr";
    ]
