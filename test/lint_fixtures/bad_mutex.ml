(* BAD (rule 1): blocking primitive outside lib/rcu/gp.ml. *)
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
