(* BAD (rule 5): wall-clock-fed seed in the workload layer — every run
   gets a different schedule, so nothing replays. *)
let rng () = Rng.create (Int64.of_float (Unix.gettimeofday ()))
