val rng : unit -> Rng.t
