(* BAD (rule 5): Random in the serving layer breaks replayability. *)
let () = Random.self_init ()
let jitter () = Random.int 100
