val jitter : unit -> int
