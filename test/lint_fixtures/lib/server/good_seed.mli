type cfg = { seed : int64 }

val rng_of : cfg -> Rng.t
