(* Clean: the Rng is seeded from the config's explicit seed, so runs
   replay — rule 5 must not fire. *)
type cfg = { seed : int64 }

let rng_of (c : cfg) = Rng.create c.seed
