(* BAD (rule 4): no matching .mli seals this module. *)
let answer = 42
