(* Clean fixture: no lint pass may fire on the implementation. *)
type t

val create : unit -> t
val bump : t -> unit
val read : t -> int
