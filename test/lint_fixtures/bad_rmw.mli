type t = { gp_completed : int Atomic.t }

val post : t -> unit
