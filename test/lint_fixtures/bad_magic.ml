(* BAD (rule 2): unsound cast. *)
let reinterpret (x : int) : bool = Obj.magic x
