val reinterpret : int -> bool
