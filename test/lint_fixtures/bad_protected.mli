type fake = { gp_seq : int Atomic.t }

val corrupt : fake -> unit
