val locked : (unit -> 'a) -> 'a
