(* Clean module: explicit seeds, RMW through fetch_and_add, sealed by an
   .mli — no lint pass may fire here. *)
type t = { counter : int Atomic.t }

let create () = { counter = Atomic.make 0 }
let bump t = ignore (Atomic.fetch_and_add t.counter 1)
let read t = Atomic.get t.counter
