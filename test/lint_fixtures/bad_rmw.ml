(* BAD (rule 6): get-then-set read-modify-write on a racy protocol
   counter — a concurrent post between the get and the set is lost. *)
type t = { gp_completed : int Atomic.t }

let post (r : t) =
  Atomic.set r.gp_completed (Atomic.get r.gp_completed + 1)
