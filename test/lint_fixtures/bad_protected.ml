(* BAD (rule 3): raw Atomic write to urcu's lock-protected [gp_seq] from
   a file that does not own it. *)
type fake = { gp_seq : int Atomic.t }

let corrupt (r : fake) = Atomic.set r.gp_seq 42
