(* Fault-injection and stall-detection tests (ROBUSTNESS.md).

   Fault points must be deterministic functions of (seed, point, domain,
   arrival), invisible when disarmed, and strict about unknown names. The
   stall watchdog must name the blocking reader slot, emit one report per
   threshold window in warn mode, raise [Rcu.Stalled] in fail mode, and
   stay silent on healthy runs — for all three RCU flavours. Draining a
   deferral queue at teardown must run every callback, including callbacks
   enqueued by callbacks. *)

module Fault = Repro_fault.Fault
module Stall = Repro_rcu.Rcu.Stall
module Torture = Repro_rcu.Torture

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* Every test owns the process-global fault/watchdog state for its
   duration and restores a clean slate on the way out. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Fault.disable_all ();
      Stall.disarm ();
      Stall.reset_handler ())
    f

(* ------------------------------------------------------------------ *)
(* Fault core *)

let test_determinism () =
  isolated (fun () ->
      let p = Fault.register "test.determinism" in
      let draw () =
        Fault.configure ~seed:123L [ ("test.determinism", 0.5) ];
        List.init 200 (fun _ -> Fault.fires p)
      in
      let a = draw () and b = draw () in
      checkb "same seed, same fire sequence" true (a = b);
      checkb "rate 0.5 fires sometimes" true (List.mem true a);
      checkb "rate 0.5 skips sometimes" true (List.mem false a);
      Fault.configure ~seed:321L [ ("test.determinism", 0.5) ];
      let c = List.init 200 (fun _ -> Fault.fires p) in
      checkb "different seed, different sequence" true (a <> c))

let test_rate_extremes () =
  isolated (fun () ->
      let p = Fault.register "test.extremes" in
      Fault.configure ~seed:7L [ ("test.extremes", 1.0) ];
      checkb "rate 1 always fires" true
        (List.init 100 (fun _ -> Fault.fires p) |> List.for_all Fun.id);
      Fault.set "test.extremes" ~rate:0.0;
      checkb "rate 0 disarms the point" false (Fault.enabled ());
      Alcotest.check_raises "rate out of range"
        (Invalid_argument "Fault.set: rate must be within [0, 1]") (fun () ->
          Fault.set "test.extremes" ~rate:1.5))

let test_counters () =
  isolated (fun () ->
      let p = Fault.register "test.counters" in
      Fault.configure ~seed:11L [ ("test.counters", 0.5) ];
      Fault.reset_counters ();
      for _ = 1 to 200 do
        ignore (Fault.fires p)
      done;
      match
        List.find_opt
          (fun (n, _, _) -> n = "test.counters")
          (Fault.stats ())
      with
      | None -> Alcotest.fail "point missing from stats"
      | Some (_, hits, fired) ->
          checki "hits counts arrivals" 200 hits;
          checkb "fired is a nontrivial fraction" true
            (fired > 0 && fired < 200))

let test_unknown_point () =
  isolated (fun () ->
      Alcotest.check_raises "strict set"
        (Fault.Unknown_point "no.such.point") (fun () ->
          Fault.set "no.such.point" ~rate:0.5);
      checkb "find is total" true (Fault.find "no.such.point" = None);
      (* The subsystem catalogue is pre-registered even before any fault
         call site has executed. *)
      List.iter
        (fun n -> checkb n true (Fault.find n <> None))
        [
          "urcu.sync.pre_flip";
          "qsbr.wait";
          "epoch.advance";
          "defer.flush";
          "lock.spin.acquire";
          "lock.ticket.acquire";
          "citrus.delete.window";
        ])

let test_parse_spec () =
  let ok spec expected =
    match Fault.parse_spec spec with
    | Ok got -> checkb spec true (got = expected)
    | Error e -> Alcotest.fail (spec ^ ": " ^ e)
  in
  ok "urcu.sync.pre_flip=0.3" ("urcu.sync.pre_flip", 0.3, None);
  ok "defer.flush=0.5:yield=512" ("defer.flush", 0.5, Some (Fault.Yield 512));
  ok "p=1:delay_ns=1000" ("p", 1.0, Some (Fault.Delay_ns 1000));
  List.iter
    (fun bad ->
      match Fault.parse_spec bad with
      | Ok _ -> Alcotest.fail (bad ^ ": accepted")
      | Error _ -> ())
    [ "nonsense"; "p=abc"; "p=0.5:frob=3"; "=0.5"; "p=" ]

let test_disabled_is_invisible () =
  isolated (fun () ->
      Fault.disable_all ();
      checkb "disabled" false (Fault.enabled ());
      let p = Fault.register "test.invisible" in
      (* inject on a disarmed point is a no-op, not a crash *)
      Fault.inject p;
      checkb "disarmed point never fires" false (Fault.fires p))

(* ------------------------------------------------------------------ *)
(* Defer.drain *)

let test_drain () =
  let module R = Repro_rcu.Epoch_rcu in
  let module Defer = Repro_rcu.Defer.Make (R) in
  let r = R.create () in
  let d = Defer.create ~batch:32 r in
  let ran = ref 0 in
  (* A callback that enqueues another callback: one flush is not enough,
     drain must iterate to a fixed point. *)
  Defer.defer d (fun () ->
      incr ran;
      Defer.defer d (fun () -> incr ran));
  for _ = 1 to 3 do
    Defer.defer d (fun () -> incr ran)
  done;
  checkb "queue below batch" true (Defer.pending d < 32);
  Defer.drain d;
  checki "nothing pending after drain" 0 (Defer.pending d);
  checki "every callback ran, including chained" 5 !ran;
  checki "executed counter agrees" 5 (Defer.executed d)

(* ------------------------------------------------------------------ *)
(* Stall watchdog, per flavour *)

module Stall_tests (R : Repro_rcu.Rcu.S) = struct
  (* A reader that parks inside one read-side critical section; [flag]
     flips once it is inside, so the updater can synchronize knowing the
     grace period is actually blocked. *)
  let parked_reader r ~park_s flag =
    Domain.spawn (fun () ->
        let th = R.register r in
        R.read_lock th;
        Atomic.set flag true;
        Unix.sleepf park_s;
        R.read_unlock th;
        R.unregister th)

  let test_warn () =
    isolated (fun () ->
        let r = R.create () in
        let flag = Atomic.make false in
        let d = parked_reader r ~park_s:0.1 flag in
        while not (Atomic.get flag) do
          Domain.cpu_relax ()
        done;
        let reports = ref [] in
        Stall.set_handler (fun rep -> reports := rep :: !reports);
        Stall.arm ~mode:Stall.Warn ~threshold_ns:30_000_000 ();
        R.synchronize r;
        Domain.join d;
        let n = List.length !reports in
        (* 100 ms park / 30 ms threshold: one report per window means a
           handful, not zero and not dozens. *)
        checkb "at least one report" true (n >= 1);
        checkb "one report per window, not a flood" true (n <= 8);
        List.iter
          (fun (rep : Stall.report) ->
            checks "flavour" R.name rep.flavour;
            checki "blocking slot is the parked reader" 0 rep.slot;
            checkb "elapsed at least the threshold" true
              (rep.elapsed_ns >= 30_000_000))
          !reports)

  let test_fail () =
    isolated (fun () ->
        let r = R.create () in
        let flag = Atomic.make false in
        let d = parked_reader r ~park_s:0.1 flag in
        while not (Atomic.get flag) do
          Domain.cpu_relax ()
        done;
        Stall.set_handler ignore;
        Stall.arm ~mode:Stall.Fail ~threshold_ns:20_000_000 ();
        (match R.synchronize r with
        | () -> Alcotest.fail "synchronize returned despite fail mode"
        | exception Repro_rcu.Rcu.Stalled rep ->
            checks "flavour" R.name rep.flavour;
            checki "blocking slot is the parked reader" 0 rep.slot);
        Domain.join d;
        (* The flavour must recover once the reader leaves: the next grace
           period (watchdog off) completes normally. *)
        Stall.disarm ();
        R.synchronize r;
        checkb "recovered after the stall" true (R.grace_periods r >= 1))

  let test_quiet () =
    isolated (fun () ->
        let r = R.create () in
        let reports = ref 0 in
        Stall.set_handler (fun _ -> incr reports);
        Stall.arm ~mode:Stall.Warn ~threshold_ns:50_000_000 ();
        let stop = Atomic.make false in
        let d =
          Domain.spawn (fun () ->
              let th = R.register r in
              while not (Atomic.get stop) do
                R.read_lock th;
                R.read_unlock th
              done;
              R.unregister th)
        in
        for _ = 1 to 50 do
          R.synchronize r
        done;
        Atomic.set stop true;
        Domain.join d;
        checki "healthy run, zero reports" 0 !reports)

  let suite flavour =
    ( "stall/" ^ flavour,
      [
        Alcotest.test_case "warn: parked reader reported" `Quick test_warn;
        Alcotest.test_case "fail: synchronize raises Stalled" `Quick test_fail;
        Alcotest.test_case "armed but healthy: silent" `Quick test_quiet;
      ] )
end

module Stall_epoch = Stall_tests (Repro_rcu.Epoch_rcu)
module Stall_urcu = Stall_tests (Repro_rcu.Urcu)
module Stall_qsbr = Stall_tests (Repro_rcu.Qsbr)

(* ------------------------------------------------------------------ *)
(* Torture-harness integration: the same scenarios end-to-end *)

let test_torture_warn () =
  let out =
    Torture.run_flavour ~seed:3 "urcu"
      {
        Torture.default with
        updates_per_writer = 100;
        reader_park_ms = 80;
        stall_ms = 25;
      }
  in
  checki "no torture errors" 0 out.Torture.errors;
  checkb "stall reported" true (out.stalls >= 1);
  checki "warn mode aborts nobody" 0 out.stalled_writers

let test_torture_fail () =
  let out =
    Torture.run_flavour ~seed:3 "epoch-rcu"
      {
        Torture.default with
        updates_per_writer = 500;
        reader_park_ms = 100;
        stall_ms = 20;
        stall_fail = true;
      }
  in
  checki "no torture errors" 0 out.Torture.errors;
  checkb "writer aborted on Stalled" true (out.stalled_writers >= 1)

(* ------------------------------------------------------------------ *)
(* Citrus under faults: stretched delete windows and lock delays must
   not break the tree or let a reader touch reclaimed memory. *)

let test_citrus_faults () =
  isolated (fun () ->
      let module C = Repro_citrus.Citrus_int.Epoch in
      Fault.configure ~seed:17L
        [ ("citrus.delete.window", 0.5); ("lock.spin.acquire", 0.05) ];
      let t = C.create ~reclamation:true () in
      let workers =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                let h = C.register t in
                let rng = Repro_sync.Rng.create (Int64.of_int (40 + i)) in
                for _ = 1 to 400 do
                  let k = Repro_sync.Rng.int rng 32 in
                  match Repro_sync.Rng.int rng 3 with
                  | 0 -> ignore (C.insert h k k)
                  | 1 -> ignore (C.delete h k)
                  | _ -> ignore (C.contains h k)
                done;
                C.unregister h))
      in
      List.iter Domain.join workers;
      C.check_invariants t;
      checki "no use-after-reclaim under faults" 0
        (List.assoc "use_after_reclaim" (C.stats t)))

let () =
  Alcotest.run "fault"
    [
      ( "fault-core",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_determinism;
          Alcotest.test_case "rate extremes" `Quick test_rate_extremes;
          Alcotest.test_case "hit/fire counters" `Quick test_counters;
          Alcotest.test_case "unknown point is strict" `Quick
            test_unknown_point;
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
          Alcotest.test_case "disabled is invisible" `Quick
            test_disabled_is_invisible;
        ] );
      ( "defer",
        [ Alcotest.test_case "drain runs chained callbacks" `Quick test_drain ] );
      Stall_epoch.suite "epoch-rcu";
      Stall_urcu.suite "urcu";
      Stall_qsbr.suite "qsbr";
      ( "torture-harness",
        [
          Alcotest.test_case "warn stall end-to-end" `Quick test_torture_warn;
          Alcotest.test_case "fail stall end-to-end" `Quick test_torture_fail;
        ] );
      ( "citrus-under-faults",
        [
          Alcotest.test_case "invariants hold, no use-after-reclaim" `Quick
            test_citrus_faults;
        ] );
    ]
