(* rcutorture: the Linux kernel's RCU torture methodology over the three
   user-space RCU implementations, driven through the shared
   [Repro_rcu.Torture] harness (also behind `citrus_tool torture`).

   Readers flag an error if they ever observe an element after it was
   freed — which can only happen if synchronize returned while a
   pre-existing reader still held the element. Every configuration runs
   over every RCU flavour; all must report zero torture errors.

   On top of the classic configurations, the fault-driven cases arm the
   injection points from ROBUSTNESS.md: delays inside the grace-period
   machinery, extra grace periods in Defer.flush, parked readers. Faults
   stretch the windows the algorithm must already tolerate, so the
   correctness criterion is unchanged: zero errors. *)

module Torture = Repro_rcu.Torture

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let base = Torture.default

module Suite (R : Repro_rcu.Rcu.S) = struct
  module T = Torture.Make (R)

  let case name cfg min_gps =
    Alcotest.test_case name `Quick (fun () ->
        let out = T.run cfg in
        checki (name ^ ": torture errors") 0 out.Torture.errors;
        checkb
          (name ^ ": grace periods elapsed")
          true
          (out.grace_periods >= min_gps))

  (* The per-flavour grace-period fault point: stretching the wait with
     yield storms must not let a freed element escape. *)
  let sync_fault =
    match R.name with
    | "urcu" -> "urcu.sync.pre_flip"
    | "qsbr" -> "qsbr.wait"
    | _ -> "epoch.advance"

  let suite flavour =
    ( Printf.sprintf "rcutorture/%s" flavour,
      [
        case "baseline (2r/1w)"
          { base with slots = 4; updates_per_writer = 300 }
          300;
        case "nested readers"
          { base with slots = 2; updates_per_writer = 200; nest = true }
          200;
        case "dawdling readers"
          {
            base with
            readers = 3;
            slots = 2;
            updates_per_writer = 150;
            reader_delay = true;
          }
          150;
        case "concurrent writers"
          {
            base with
            writers = 3;
            slots = 8;
            updates_per_writer = 100;
            reader_delay = true;
          }
          300;
        case "deferred frees"
          {
            base with
            writers = 2;
            slots = 4;
            updates_per_writer = 200;
            nest = true;
            reader_delay = true;
            use_defer = true;
          }
          10;
        case "faults: delayed grace periods"
          {
            base with
            readers = 3;
            writers = 2;
            slots = 4;
            updates_per_writer = 80;
            reader_delay = true;
            faults = [ (sync_fault, 0.3, None) ];
          }
          160;
        case "faults: parked reader across flips"
          {
            base with
            slots = 4;
            updates_per_writer = 150;
            reader_park_ms = 30;
            faults = [ (sync_fault, 0.2, None) ];
          }
          150;
        case "faults: defer churn"
          {
            base with
            writers = 2;
            slots = 4;
            updates_per_writer = 150;
            use_defer = true;
            faults = [ ("defer.flush", 0.5, None) ];
          }
          10;
        (* Writers snapshot the grace-period sequence at unlink, dawdle,
           then cond_synchronize: elided waits must still never free an
           element a pre-existing reader can observe. *)
        case "polled grace periods (cond_synchronize)"
          {
            base with
            readers = 2;
            writers = 2;
            slots = 4;
            updates_per_writer = 200;
            use_poll = true;
          }
          1;
        case "polled grace periods under faults"
          {
            base with
            readers = 3;
            slots = 4;
            updates_per_writer = 100;
            use_poll = true;
            reader_delay = true;
            faults = [ (sync_fault, 0.3, None) ];
          }
          1;
      ] )
end

module Epoch_torture = Suite (Repro_rcu.Epoch_rcu)
module Urcu_torture = Suite (Repro_rcu.Urcu)
module Qsbr_torture = Suite (Repro_rcu.Qsbr)

let () =
  Alcotest.run "rcutorture"
    [
      Epoch_torture.suite "epoch-rcu";
      Urcu_torture.suite "urcu";
      Qsbr_torture.suite "qsbr";
    ]
