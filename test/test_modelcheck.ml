(* DPOR engine core + the protocol models.

   The store-buffering litmus pins the explorer's counts exactly: 4
   accesses, two per proc, give C(4,2) = 6 interleavings for naive DFS.
   There are 3 Mazurkiewicz classes (order of Wx/Rx x order of Wy/Ry
   minus the cyclic combination); Flanagan-Godefroid backtracking
   explores 4 traces — schedules 0011, 0101, 1100, 1001, with the
   both-writes-first class visited twice, because a race-demanded
   backtrack point is deliberately never sleep-blocked (that pruning is
   only sound for source-set style insertions, see engine.ml).  All
   counts are hand-derived and asserted exactly, so the reduction
   factor is measured, not assumed. *)

module Engine = Repro_modelcheck.Engine
module Models = Repro_modelcheck.Models
module T = Repro_modelcheck.Tracedatomic

let check = Alcotest.check
let checki = check Alcotest.int

(* --- litmus counts --- *)

let test_sb_counts () =
  let naive = Engine.explore ~dpor:false Models.sb in
  let dpor = Engine.explore ~dpor:true Models.sb in
  check Alcotest.bool "naive exhausted" true naive.stats.exhausted;
  check Alcotest.bool "dpor exhausted" true dpor.stats.exhausted;
  check Alcotest.bool "naive no violation" true (naive.counterexample = None);
  check Alcotest.bool "dpor no violation" true (dpor.counterexample = None);
  checki "naive visits all 6 interleavings" 6 naive.stats.traces;
  checki "dpor explores 4 traces for the 3 Mazurkiewicz classes" 4
    dpor.stats.traces;
  let factor =
    float_of_int naive.stats.traces /. float_of_int dpor.stats.traces
  in
  check (Alcotest.float 0.0) "measured reduction factor is 1.5x" 1.5 factor

(* --- a seeded-bug scenario really yields a replayable counterexample --- *)

let test_counterexample_replay () =
  match Models.find "urcu!single-flip" with
  | None -> Alcotest.fail "urcu!single-flip not registered"
  | Some sc -> (
      let r = Engine.explore sc in
      match r.counterexample with
      | None -> Alcotest.fail "single-flip urcu survived exploration"
      | Some cx ->
          check Alcotest.bool "steps recorded" true (List.length cx.steps > 0);
          checki "schedule length matches steps" (List.length cx.steps)
            (List.length cx.schedule);
          let steps', err = Engine.replay sc cx.schedule in
          check Alcotest.bool "replay reproduces the violation" true
            (err = Some cx.error);
          checki "replay step count" (List.length cx.steps)
            (List.length steps'))

(* --- deadlock detection --- *)

let test_deadlock () =
  let sc =
    {
      Engine.name = "deadlock";
      descr = "two procs each awaiting a flag only the other would set";
      make =
        (fun () ->
          let a = T.make_int "a" 0 and b = T.make_int "b" 0 in
          let wait_then_set x y =
            T.await [ T.watch x ] (fun () -> T.peek x = 1);
            T.set y 1
          in
          ( [
              ("p0", fun () -> wait_then_set a b);
              ("p1", fun () -> wait_then_set b a);
            ],
            fun () -> () ));
    }
  in
  let r = Engine.explore sc in
  match r.counterexample with
  | Some cx ->
      check Alcotest.bool "reported as deadlock" true
        (String.length cx.error >= 8 && String.sub cx.error 0 8 = "deadlock")
  | None -> Alcotest.fail "deadlock not detected"

(* --- budget --- *)

let test_budget () =
  let r = Engine.explore ~max_states:2 ~dpor:false Models.sb in
  check Alcotest.bool "budget stops exploration" false r.stats.exhausted

(* --- every control is exhaustively clean, every mutant is caught --- *)

let explore_quick sc = Engine.explore ~max_states:3_000_000 sc

let test_controls () =
  List.iter
    (fun (sc : Engine.scenario) ->
      let r = explore_quick sc in
      check Alcotest.bool (sc.name ^ " exhausted") true r.stats.exhausted;
      check Alcotest.bool (sc.name ^ " clean") true (r.counterexample = None))
    Models.controls

let test_mutants () =
  List.iter
    (fun (sc : Engine.scenario) ->
      let r = explore_quick sc in
      check Alcotest.bool (sc.name ^ " caught") true
        (r.counterexample <> None))
    Models.mutants

(* --- dpor agrees with naive DFS on a harder model --- *)

let test_dpor_sound_vs_naive () =
  (* qsbr is small enough to explore naively; DPOR must agree on the
     verdict for both the control and the mutant. *)
  let agree name =
    match Models.find name with
    | None -> Alcotest.fail (name ^ " not registered")
    | Some sc ->
        let n = Engine.explore ~dpor:false ~max_states:20_000_000 sc in
        let d = Engine.explore ~dpor:true sc in
        check Alcotest.bool (name ^ ": naive exhausted") true n.stats.exhausted;
        check Alcotest.bool
          (name ^ ": same verdict")
          (n.counterexample = None)
          (d.counterexample = None);
        check Alcotest.bool
          (name ^ ": dpor explores fewer traces")
          true
          (d.stats.traces <= n.stats.traces)
  in
  agree "qsbr";
  agree "qsbr!quiesce-in-section"

let () =
  Alcotest.run "modelcheck"
    [
      ( "engine",
        [
          Alcotest.test_case "sb litmus counts" `Quick test_sb_counts;
          Alcotest.test_case "counterexample replay" `Quick
            test_counterexample_replay;
          Alcotest.test_case "deadlock" `Quick test_deadlock;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "dpor vs naive verdicts" `Quick
            test_dpor_sound_vs_naive;
        ] );
      ( "models",
        [
          Alcotest.test_case "controls clean" `Quick test_controls;
          Alcotest.test_case "mutants caught" `Quick test_mutants;
        ] );
    ]
