(* Tests for the observability layer: striped counters and timers under
   concurrency, the trace ring buffer's bounded/non-blocking behaviour, the
   JSON encoder/parser round-trip, and the exactly-once grace-period
   accounting across all three RCU flavours. *)

module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Json = Repro_obs.Json
module W = Repro_workload.Workload
module Runner = Repro_workload.Runner
module Json_report = Repro_workload.Json_report

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- striped counters under concurrency --- *)

let test_counter_monotone_concurrent () =
  let c = Stats.create "test" in
  let n_domains = 4 and per_domain = 50_000 in
  let writers_done = Atomic.make 0 in
  let writers =
    List.init n_domains (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Stats.incr c i
            done;
            Atomic.incr writers_done))
  in
  (* A concurrent reader must only ever see the sum grow: stripe reads are
     racy but each stripe is monotone. *)
  let monotone = ref true in
  let last = ref 0 in
  while Atomic.get writers_done < n_domains do
    let v = Stats.read c in
    if v < !last then monotone := false;
    last := v
  done;
  List.iter Domain.join writers;
  checkb "reads never decreased" true !monotone;
  checki "no increment lost" (n_domains * per_domain) (Stats.read c)

let test_timer_concurrent () =
  let t = Stats.Timer.create "test" in
  let n_domains = 4 and per_domain = 10_000 in
  let sample = 37 in
  let workers =
    List.init n_domains (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Stats.Timer.record t i sample
            done))
  in
  List.iter Domain.join workers;
  checki "sample count" (n_domains * per_domain) (Stats.Timer.count t);
  checki "sample sum" (n_domains * per_domain * sample)
    (Stats.Timer.total_ns t);
  checki "max" sample (Stats.Timer.max_ns t);
  Alcotest.check (Alcotest.float 0.001) "mean" (float_of_int sample)
    (Stats.Timer.mean_ns t);
  Stats.Timer.reset t;
  checki "count after reset" 0 (Stats.Timer.count t);
  checki "max after reset" 0 (Stats.Timer.max_ns t)

let test_timer_max_concurrent () =
  let t = Stats.Timer.create ~stripes:1 "test" in
  (* All domains contend on one stripe's max cell: the CAS publication must
     keep the true maximum. *)
  let workers =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            for v = 1 to 5_000 do
              Stats.Timer.record t 0 ((v * 4) + i)
            done))
  in
  List.iter Domain.join workers;
  checki "true maximum survives racing CAS" ((5_000 * 4) + 3)
    (Stats.Timer.max_ns t)

(* --- trace ring buffer --- *)

let test_trace_disabled_records_nothing () =
  Trace.stop ();
  Trace.configure ~capacity:64;
  Trace.record Trace.Restart 1;
  checki "nothing recorded while disabled" 0 (Trace.recorded ());
  checki "dump empty" 0 (List.length (Trace.dump ()))

let test_trace_order_and_fields () =
  Trace.configure ~capacity:16;
  Trace.start ();
  for i = 0 to 9 do
    Trace.record Trace.Restart i
  done;
  Trace.stop ();
  let events = Trace.dump () in
  checki "all retained" 10 (List.length events);
  List.iteri
    (fun i (e : Trace.event) ->
      checki "args in recording order" i e.arg;
      checkb "kind preserved" true (e.kind = Trace.Restart);
      checkb "timestamp plausible" true (e.t_ns > 0))
    events

let test_trace_wraps_keeping_newest () =
  Trace.configure ~capacity:8;
  Trace.start ();
  for i = 0 to 10 do
    Trace.record Trace.Read_enter i
  done;
  Trace.stop ();
  checki "total recorded counts overwrites" 11 (Trace.recorded ());
  let events = Trace.dump () in
  checki "retention bounded by capacity" 8 (List.length events);
  (match events with
  | first :: _ -> checki "oldest retained is recorded - capacity" 3 first.arg
  | [] -> Alcotest.fail "empty dump");
  match List.rev events with
  | last :: _ -> checki "newest retained" 10 last.arg
  | [] -> Alcotest.fail "empty dump"

let test_trace_bounded_under_concurrency () =
  let capacity = 1_024 in
  Trace.configure ~capacity;
  Trace.start ();
  let n_domains = 4 and per_domain = 100_000 in
  let workers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            (* Far more events than capacity: recording must neither block
               nor grow memory — it overwrites. Completion of this loop IS
               the non-blocking check. *)
            for i = 1 to per_domain do
              Trace.record Trace.Lock_acquire i
            done))
  in
  List.iter Domain.join workers;
  Trace.stop ();
  checki "every record claimed a slot" (n_domains * per_domain)
    (Trace.recorded ());
  checki "retention stays at capacity" capacity (List.length (Trace.dump ()));
  checki "capacity unchanged" capacity (Trace.capacity ())

(* --- JSON encode/parse --- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.String x, Json.String y -> x = y
  | Json.List x, Json.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
           x y
  | _ -> false

let sample_doc =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("pi", Json.Float 3.141592653589793);
      ("negative", Json.Int (-42));
      ("huge", Json.Float 1.5e300);
      ("small", Json.Float 2.5e-10);
      ("flag", Json.Bool true);
      ("nothing", Json.Null);
      ("name", Json.String "quotes \" backslash \\ newline \n tab \t end");
      ("control", Json.String "\001\031");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List
          [ Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Float 2.0 ]) ] ] );
    ]

let test_json_roundtrip () =
  let pretty = Json.to_string sample_doc in
  checkb "pretty round-trips" true (json_equal sample_doc (Json.of_string pretty));
  let mini = Json.to_string ~minify:true sample_doc in
  checkb "minified round-trips" true (json_equal sample_doc (Json.of_string mini));
  checkb "minified has no newline" true (not (String.contains mini '\n'))

let test_json_parse_external () =
  (* Whitespace tolerance and escapes as another producer would write them. *)
  let doc =
    "  { \"a\" : [ 1 , 2.5 , -3e2 , \"x\\u0041\\n\" ] , \"b\" : null }  "
  in
  match Json.of_string doc with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Float f; Json.String s ]); ("b", Json.Null) ] ->
      Alcotest.check (Alcotest.float 0.0001) "exponent" (-300.0) f;
      Alcotest.check Alcotest.string "unicode + newline escape" "xA\n" s
  | _ -> Alcotest.fail "unexpected parse"

let test_json_rejects_garbage () =
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed input %S" s
  in
  List.iter rejects
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_nonfinite_floats_stay_valid () =
  let doc = Json.Obj [ ("bad", Json.Float Float.nan); ("inf", Json.Float Float.infinity) ] in
  match Json.of_string (Json.to_string doc) with
  | Json.Obj [ ("bad", Json.Null); ("inf", Json.Null) ] -> ()
  | _ -> Alcotest.fail "non-finite floats must serialize as null"

(* --- report round-trip through a real observed run --- *)

let test_report_roundtrip () =
  let cfg =
    W.config ~key_range:512 ~threads:2 ~duration:0.05
      ~role:(W.Uniform W.contains_50) ()
  in
  let r = Runner.run ~observe:true (module Repro_dict.Dict.Citrus_epoch) cfg in
  checkb "metrics captured" true (r.Runner.metrics <> []);
  checkb "latency captured" true (r.Runner.latency <> []);
  let doc =
    Json_report.report
      [ { Json_report.name = "test"; points = [ { Json_report.cfg; result = r } ] } ]
  in
  let parsed = Json.of_string (Json.to_string doc) in
  checkb "round-trips" true (json_equal doc parsed);
  (* Walk the parsed tree for the fields the trajectory tooling relies on. *)
  let get path =
    List.fold_left
      (fun acc key ->
        match acc with
        | Some j -> (
            match int_of_string_opt key with
            | Some i -> (
                match Json.to_list_opt j with
                | Some l when List.length l > i -> Some (List.nth l i)
                | _ -> None)
            | None -> Json.member key j)
        | None -> None)
      (Some parsed) path
  in
  checki "schema version" Json_report.schema_version
    (Option.get (Option.bind (get [ "schema_version" ]) Json.to_int_opt));
  let point = [ "experiments"; "0"; "points"; "0" ] in
  let has_float path =
    match Option.bind (get path) Json.to_float_opt with
    | Some _ -> true
    | None -> false
  in
  checkb "throughput" true (has_float (point @ [ "throughput_ops_per_s" ]));
  checkb "p50" true (has_float (point @ [ "latency_ns"; "contains"; "p50_ns" ]));
  checkb "p99" true (has_float (point @ [ "latency_ns"; "contains"; "p99_ns" ]));
  checkb "p99.9" true
    (has_float (point @ [ "latency_ns"; "contains"; "p999_ns" ]));
  checkb "grace periods" true (has_float (point @ [ "metrics"; "grace_periods" ]));
  checkb "grace period mean" true
    (has_float (point @ [ "metrics"; "grace_period_mean_ns" ]));
  checkb "lock contention" true
    (has_float (point @ [ "metrics"; "lock_contended" ]));
  checkb "restarts" true (has_float (point @ [ "metrics"; "restarts" ]))

(* --- grace-period accounting --- *)

let test_grace_period_exactly_once (module R : Repro_rcu.Rcu.S) () =
  Metrics.reset ();
  let rcu = R.create () in
  let th = R.register rcu in
  let rounds = 100 in
  (* A concurrently active reader population makes the synchronize path
     take its wait branches; the count must still be exact. *)
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let th = R.register rcu in
        while not (Atomic.get stop) do
          R.read_lock th;
          Domain.cpu_relax ();
          R.read_unlock th
        done;
        R.unregister th)
  in
  for _ = 1 to rounds do
    R.synchronize rcu
  done;
  Atomic.set stop true;
  Domain.join reader;
  R.unregister th;
  checki "implementation count" rounds (R.grace_periods rcu);
  checki "metrics count matches synchronize calls" rounds
    (Stats.Timer.count Metrics.grace_period_ns);
  checkb "durations accumulated" true
    (Stats.Timer.total_ns Metrics.grace_period_ns > 0);
  Metrics.reset ()

let test_metrics_disabled_records_nothing () =
  Metrics.reset ();
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      let module R = Repro_rcu.Epoch_rcu in
      let rcu = R.create () in
      let th = R.register rcu in
      R.read_lock th;
      R.read_unlock th;
      R.synchronize rcu;
      R.unregister th;
      checki "no grace period recorded" 0
        (Stats.Timer.count Metrics.grace_period_ns);
      checki "no read section recorded" 0 (Stats.read Metrics.rcu_read_sections);
      checki "implementation count unaffected" 1 (R.grace_periods rcu))

let test_lock_contention_metrics () =
  Metrics.reset ();
  let l = Repro_sync.Spinlock.create () in
  Repro_sync.Spinlock.acquire l;
  let waiter =
    Domain.spawn (fun () ->
        Repro_sync.Spinlock.acquire l;
        Repro_sync.Spinlock.release l)
  in
  Unix.sleepf 0.02;
  Repro_sync.Spinlock.release l;
  Domain.join waiter;
  checkb "contended acquisition counted" true
    (Stats.read Metrics.lock_contended >= 1);
  checkb "wait time recorded" true
    (Stats.Timer.total_ns Metrics.lock_wait_ns > 0);
  checkb "acquisitions counted" true (Stats.read Metrics.lock_acquires >= 2);
  Metrics.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "monotone under concurrency" `Quick
            test_counter_monotone_concurrent;
          Alcotest.test_case "timer concurrent totals" `Quick
            test_timer_concurrent;
          Alcotest.test_case "timer max under contention" `Quick
            test_timer_max_concurrent;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "order and fields" `Quick
            test_trace_order_and_fields;
          Alcotest.test_case "wraps keeping newest" `Quick
            test_trace_wraps_keeping_newest;
          Alcotest.test_case "bounded and non-blocking" `Quick
            test_trace_bounded_under_concurrency;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "external input" `Quick test_json_parse_external;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "non-finite floats" `Quick
            test_json_nonfinite_floats_stay_valid;
          Alcotest.test_case "report round-trip" `Quick test_report_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "grace periods exact (epoch)" `Quick
            (test_grace_period_exactly_once (module Repro_rcu.Epoch_rcu));
          Alcotest.test_case "grace periods exact (urcu)" `Quick
            (test_grace_period_exactly_once (module Repro_rcu.Urcu));
          Alcotest.test_case "grace periods exact (qsbr)" `Quick
            (test_grace_period_exactly_once (module Repro_rcu.Qsbr));
          Alcotest.test_case "disabled records nothing" `Quick
            test_metrics_disabled_records_nothing;
          Alcotest.test_case "lock contention" `Quick
            test_lock_contention_metrics;
        ] );
    ]
