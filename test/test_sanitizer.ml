(* Reclamation sanitizer: shadow state machine, integration with Defer
   and the RCU flavours, read-side exception safety, and the mutation
   suite proving seeded grace-period bugs are detected (ROBUSTNESS.md,
   "Reclamation sanitizer"). *)

module San = Repro_sanitizer.Sanitizer
module Fault = Repro_fault.Fault
module Torture = Repro_rcu.Torture
module Mutation = Repro_citrus.Mutation
module Stall = Repro_rcu.Stall

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* The sanitizer switch is process-global; every test restores it. *)
let with_san f =
  let was = San.enabled () in
  San.arm ();
  Fun.protect ~finally:(fun () -> if not was then San.disarm ()) f

(* ------------------------------------------------------------------ *)
(* Shadow state machine *)

let test_state_machine () =
  with_san (fun () ->
      San.reset_violations ();
      let d = San.create "sm" in
      let s = San.register d in
      checkb "fresh record is Live" true (San.state s = San.Live);
      San.check s;
      (* Live: fine *)
      San.on_defer s ~gp:5;
      checkb "Deferred carries the enqueue cookie" true
        (San.state s = San.Deferred 5);
      San.check s;
      (* Deferred: the free has not run yet, touching is still legal *)
      San.on_reclaim ~gp:7 s;
      checkb "Reclaimed carries both cookies" true
        (San.state s = San.Reclaimed (5, 7));
      (match San.check ~slot:3 ~cookie:6 s with
      | () -> Alcotest.fail "touching a Reclaimed record must raise"
      | exception San.Violation rep ->
          checkb "kind" true (rep.San.kind = San.Use_after_reclaim);
          checki "node id" (San.id s) rep.San.node_id;
          Alcotest.(check string) "domain" "sm" rep.San.domain;
          checki "deferred gp" 5 rep.San.deferred_gp;
          checki "reclaimed gp" 7 rep.San.reclaimed_gp;
          checki "reader slot" 3 rep.San.reader_slot;
          checki "reader cookie" 6 rep.San.reader_cookie;
          checkb "cookie <= reclaimed_gp is the smoking gun" true
            (rep.San.reader_cookie <= rep.San.reclaimed_gp));
      (* [note] flags without raising; [observe] never flags. *)
      let v0 = San.violations () in
      San.note s;
      checki "note counts a violation" (v0 + 1) (San.violations ());
      San.observe s;
      checki "observe never counts a violation" (v0 + 1) (San.violations ());
      San.reset_violations ())

let test_double_free () =
  with_san (fun () ->
      San.reset_violations ();
      let d = San.create "df" in
      let s = San.register d in
      San.on_defer s ~gp:1;
      (match San.on_defer s ~gp:2 with
      | () -> Alcotest.fail "second on_defer must raise"
      | exception San.Violation rep ->
          checkb "double-enqueue is a double free" true
            (rep.San.kind = San.Double_free));
      San.on_reclaim ~gp:3 s;
      (match San.on_reclaim ~gp:4 s with
      | () -> Alcotest.fail "second on_reclaim must raise"
      | exception San.Violation rep ->
          checkb "double reclaim is a double free" true
            (rep.San.kind = San.Double_free));
      (* Manual reclamation that never went through a queue is fine. *)
      let s2 = San.register d in
      San.on_reclaim s2;
      checkb "Live -> Reclaimed tolerated" true
        (match San.state s2 with San.Reclaimed _ -> true | _ -> false);
      San.reset_violations ())

let test_leak_audit () =
  with_san (fun () ->
      let d = San.create "leak" in
      let a = San.register d in
      let b = San.register d in
      San.on_defer a ~gp:1;
      San.on_defer b ~gp:2;
      let reps = San.audit d in
      checki "two leaked deferrals" 2 (List.length reps);
      List.iter
        (fun r -> checkb "kind" true (r.San.kind = San.Leaked_deferral))
        reps;
      checkb "ordered by id" true
        (List.map (fun r -> r.San.node_id) reps
        = List.sort compare [ San.id a; San.id b ]);
      checki "deferred_count agrees" 2 (San.deferred_count d);
      San.on_reclaim ~gp:3 a;
      checki "reclaim empties the table" 1 (San.deferred_count d);
      San.on_reclaim ~gp:3 b;
      checki "audit now clean" 0 (List.length (San.audit d)))

(* ------------------------------------------------------------------ *)
(* Defer integration *)

let test_defer_shadow_lifecycle () =
  with_san (fun () ->
      San.reset_violations ();
      let module R = Repro_rcu.Epoch_rcu in
      let module Defer = Repro_rcu.Defer.Make (R) in
      let dom = San.create "defer" in
      let r = R.create () in
      let d = Defer.create r in
      let s = San.register dom in
      let ran = ref 0 in
      Defer.defer d ~shadow:s (fun () -> incr ran);
      checkb "enqueue marks Deferred" true
        (match San.state s with San.Deferred _ -> true | _ -> false);
      (* Re-enqueueing the same object is rejected before the queue is
         touched, so the free still runs exactly once. *)
      (match Defer.defer d ~shadow:s (fun () -> incr ran) with
      | () -> Alcotest.fail "double enqueue must raise"
      | exception San.Violation rep ->
          checkb "rejected as double free" true
            (rep.San.kind = San.Double_free));
      Defer.drain d;
      checki "callback ran exactly once" 1 !ran;
      checkb "drain marks Reclaimed" true
        (match San.state s with San.Reclaimed _ -> true | _ -> false);
      checki "no leaked deferrals" 0 (San.deferred_count dom);
      San.reset_violations ())

let test_defer_leak_detected () =
  with_san (fun () ->
      let module R = Repro_rcu.Epoch_rcu in
      let module Defer = Repro_rcu.Defer.Make (R) in
      let dom = San.create "defer-leak" in
      let r = R.create () in
      let d = Defer.create r in
      let s = San.register dom in
      Defer.defer d ~shadow:s ignore;
      checki "pending free visible to the audit" 1 (San.deferred_count dom);
      Defer.drain d;
      checki "drained queue leaks nothing" 0 (San.deferred_count dom))

(* ------------------------------------------------------------------ *)
(* Per-flavour: clean lifecycle and forced early reclaim *)

module FlavourTests (R : Repro_rcu.Rcu.S) = struct
  let test_clean () =
    with_san (fun () ->
        San.reset_violations ();
        let dom = San.create ("clean/" ^ R.name) in
        let r = R.create () in
        let th = R.register r in
        let s = San.register dom in
        R.read_lock th;
        San.check ~slot:(R.reader_slot th) ~cookie:(R.reader_cookie th) s;
        R.read_unlock th;
        San.on_defer s ~gp:(R.gp_cookie r);
        R.synchronize r;
        San.on_reclaim ~gp:(R.gp_cookie r) s;
        checki "no violations" 0 (San.violations ());
        checki "no leaks" 0 (San.deferred_count dom);
        R.unregister th)

  (* Reclaim with no grace period while a reader is inside its critical
     section: the reader's next touch must raise, and the report must
     name that reader's slot and entry cookie. *)
  let test_early_reclaim () =
    with_san (fun () ->
        San.reset_violations ();
        let dom = San.create ("early/" ^ R.name) in
        let r = R.create () in
        let th = R.register r in
        let s = San.register dom in
        R.read_lock th;
        let cookie = R.reader_cookie th in
        San.on_defer s ~gp:(R.gp_cookie r);
        San.on_reclaim ~gp:(R.gp_cookie r) s;
        (match
           San.check ~slot:(R.reader_slot th) ~cookie:(R.reader_cookie th) s
         with
        | () -> Alcotest.fail "early reclaim must be detected"
        | exception San.Violation rep ->
            checkb "kind" true (rep.San.kind = San.Use_after_reclaim);
            checki "names the detecting reader's slot" (R.reader_slot th)
              rep.San.reader_slot;
            checki "carries the section's entry cookie" cookie
              rep.San.reader_cookie);
        R.read_unlock th;
        R.unregister th;
        San.reset_violations ())

  (* A short sanitized torture run on the correct implementation must be
     silent: zero errors, zero violations, zero leaked deferrals. *)
  let flavour_key =
    String.map (function '_' -> '-' | c -> c) R.name

  let test_torture_clean () =
    let cfg =
      {
        Torture.default with
        readers = 2;
        writers = 2;
        slots = 2;
        updates_per_writer = 150;
        reader_delay = true;
        use_defer = true;
        sanitize = true;
      }
    in
    let out = Torture.run_flavour ~seed:11 flavour_key cfg in
    checki "errors" 0 out.Torture.errors;
    checki "violations" 0 out.Torture.violations;
    checki "leaks" 0 out.Torture.leaks

  let tests =
    [
      Alcotest.test_case ("clean lifecycle " ^ R.name) `Quick test_clean;
      Alcotest.test_case ("early reclaim " ^ R.name) `Quick test_early_reclaim;
      Alcotest.test_case ("sanitized torture " ^ R.name) `Quick
        test_torture_clean;
    ]
end

module Epoch_tests = FlavourTests (Repro_rcu.Epoch_rcu)
module Urcu_tests = FlavourTests (Repro_rcu.Urcu)
module Qsbr_tests = FlavourTests (Repro_rcu.Qsbr)

(* ------------------------------------------------------------------ *)
(* Mutation suite: every seeded grace-period bug must be caught, the
   clean controls must stay silent. *)

let test_mutants_caught () =
  let results = Mutation.all ~seed:11 ~attempts:12 () in
  List.iter
    (fun r ->
      checkb (r.Mutation.mutant ^ " caught") true r.Mutation.caught;
      checkb
        (r.Mutation.mutant ^ " produced violations")
        true
        (r.Mutation.violations > 0))
    results;
  checki "four mutants" 4 (List.length results);
  San.reset_violations ()

let test_controls_clean () =
  let results = Mutation.controls ~seed:11 () in
  List.iter
    (fun r -> checki (r.Mutation.mutant ^ " silent") 0 r.Mutation.violations)
    results;
  San.reset_violations ()

(* ------------------------------------------------------------------ *)
(* Read-side exception safety: a raise out of a Citrus read-side
   critical section must release the read lock. If it leaked, the
   two-child delete below would stall its grace period forever — the
   fail-mode watchdog turns that hang into a test failure. *)

let stall_guarded f =
  Stall.arm ~mode:Stall.Fail ~threshold_ns:2_000_000_000 ();
  Fun.protect ~finally:Stall.disarm f

let boom = ref false

module Bad_key = struct
  type t = int

  let compare a b = if !boom then failwith "boom" else compare (a : int) b
end

module TBad = Repro_citrus.Citrus.Make (Bad_key) (Repro_rcu.Epoch_rcu)

let test_exception_safety_compare () =
  boom := false;
  let t = TBad.create () in
  let h = TBad.register t in
  checkb "insert 2" true (TBad.insert h 2 2);
  checkb "insert 1" true (TBad.insert h 1 1);
  checkb "insert 3" true (TBad.insert h 3 3);
  boom := true;
  (match TBad.mem h 1 with
  | _ -> Alcotest.fail "comparison was supposed to raise"
  | exception Failure _ -> ());
  boom := false;
  (* Root has two children, so this delete pays a grace period; it can
     only complete if the raise above released the read lock. *)
  stall_guarded (fun () -> checkb "two-child delete" true (TBad.delete h 2));
  checkb "successor promoted" true (TBad.mem h 3);
  TBad.unregister h

module TInt = Repro_citrus.Citrus_int.Epoch

let test_exception_safety_fault_raise () =
  let t = TInt.create () in
  let h = TInt.register t in
  checkb "insert 2" true (TInt.insert h 2 2);
  checkb "insert 1" true (TInt.insert h 1 1);
  checkb "insert 3" true (TInt.insert h 3 3);
  Fault.configure ~seed:3L [];
  Fault.set "citrus.read.step" ~rate:1.0 ~action:Fault.Raise;
  (match TInt.mem h 1 with
  | _ -> Alcotest.fail "armed raise fault was supposed to fire"
  | exception Fault.Injected point ->
      Alcotest.(check string) "names the point" "citrus.read.step" point);
  Fault.disable_all ();
  stall_guarded (fun () -> checkb "two-child delete" true (TInt.delete h 2));
  TInt.unregister h

let test_parse_raise_action () =
  match Fault.parse_spec "citrus.read.step=0.5:raise" with
  | Ok ("citrus.read.step", rate, Some Fault.Raise) ->
      Alcotest.(check (float 1e-9)) "rate" 0.5 rate
  | Ok _ -> Alcotest.fail "parsed into the wrong spec"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Sanitized Citrus stress: concurrent readers and two-child deletes on
   the correct implementation, sanitizer armed — must be silent. *)

let test_citrus_sanitized_clean () =
  with_san (fun () ->
      San.reset_violations ();
      let t = TInt.create ~reclamation:true () in
      let h0 = TInt.register t in
      for k = 0 to 63 do
        ignore (TInt.insert h0 k k)
      done;
      let stop = Atomic.make false in
      let readers =
        List.init 2 (fun i ->
            Domain.spawn (fun () ->
                let h = TInt.register t in
                let rng = Repro_sync.Rng.create (Int64.of_int (100 + i)) in
                while not (Atomic.get stop) do
                  ignore (TInt.mem h (Repro_sync.Rng.int rng 64))
                done;
                TInt.unregister h))
      in
      for _ = 1 to 4 do
        for k = 0 to 63 do
          ignore (TInt.delete h0 k);
          ignore (TInt.insert h0 k k)
        done
      done;
      Atomic.set stop true;
      List.iter Domain.join readers;
      TInt.unregister h0;
      checki "no violations on correct Citrus" 0 (San.violations ()))

(* ------------------------------------------------------------------ *)
(* Baselines: rb_rcu's instrumented delete path, and the attach_shadow
   test hook on the GC-reclaimed structures. *)

let test_rb_rcu_sanitized () =
  with_san (fun () ->
      San.reset_violations ();
      let module T = Repro_baselines.Rb_rcu.Make (Repro_rcu.Epoch_rcu) in
      let t = T.create () in
      let h = T.register t in
      for k = 1 to 31 do
        ignore (T.insert h k k)
      done;
      for k = 8 to 24 do
        ignore (T.delete h k)
      done;
      checki "correct rb_rcu is silent" 0 (San.violations ());
      checkb "survivors intact" true (T.mem h 30);
      T.check_invariants t;
      T.unregister h)

let test_rcu_hash_shadow () =
  with_san (fun () ->
      San.reset_violations ();
      let module H = Repro_baselines.Rcu_hash in
      let t = H.create ~buckets:8 () in
      checkb "insert" true (H.insert t 1 "a");
      checkb "no shadow for absent key" true (H.attach_shadow t 99 = None);
      let sh = Option.get (H.attach_shadow t 1) in
      Alcotest.(check (option string)) "Live: reads fine" (Some "a")
        (H.contains t 1);
      San.on_defer sh ~gp:1;
      Alcotest.(check (option string)) "Deferred: reads fine" (Some "a")
        (H.contains t 1);
      San.on_reclaim ~gp:2 sh;
      (match H.contains t 1 with
      | _ -> Alcotest.fail "read of shadow-reclaimed node must raise"
      | exception San.Violation rep ->
          checkb "kind" true (rep.San.kind = San.Use_after_reclaim));
      San.reset_violations ())

let test_lazy_list_shadow () =
  with_san (fun () ->
      San.reset_violations ();
      let module L = Repro_baselines.Lazy_list in
      let t = L.create () in
      checkb "insert" true (L.insert t 5 "x");
      checkb "insert" true (L.insert t 9 "y");
      let sh = Option.get (L.attach_shadow t 5) in
      San.on_reclaim ~gp:1 sh;
      (* Key 9's traversal passes through node 5. *)
      (match L.contains t 9 with
      | _ -> Alcotest.fail "traversal through reclaimed node must raise"
      | exception San.Violation rep ->
          checkb "kind" true (rep.San.kind = San.Use_after_reclaim));
      San.reset_violations ())

(* ------------------------------------------------------------------ *)
(* Observability wiring *)

let test_trace_kind () =
  let module Trace = Repro_sync.Trace in
  Alcotest.(check string)
    "kind name" "sanitize_violation"
    (Trace.kind_to_string Trace.Sanitize_violation)

let () =
  Alcotest.run "sanitizer"
    [
      ( "state-machine",
        [
          Alcotest.test_case "lifecycle and violation report" `Quick
            test_state_machine;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "leak audit" `Quick test_leak_audit;
        ] );
      ( "defer",
        [
          Alcotest.test_case "shadow lifecycle" `Quick
            test_defer_shadow_lifecycle;
          Alcotest.test_case "leak detection" `Quick test_defer_leak_detected;
        ] );
      ("epoch-rcu", Epoch_tests.tests);
      ("urcu", Urcu_tests.tests);
      ("qsbr", Qsbr_tests.tests);
      ( "mutation-suite",
        [
          Alcotest.test_case "all mutants caught" `Slow test_mutants_caught;
          Alcotest.test_case "controls clean" `Slow test_controls_clean;
        ] );
      ( "exception-safety",
        [
          Alcotest.test_case "raising compare releases the read lock" `Quick
            test_exception_safety_compare;
          Alcotest.test_case "raise-action fault releases the read lock"
            `Quick test_exception_safety_fault_raise;
          Alcotest.test_case "spec parses :raise" `Quick
            test_parse_raise_action;
        ] );
      ( "structures",
        [
          Alcotest.test_case "citrus sanitized stress is silent" `Slow
            test_citrus_sanitized_clean;
          Alcotest.test_case "rb_rcu sanitized deletes are silent" `Quick
            test_rb_rcu_sanitized;
          Alcotest.test_case "rcu_hash shadow hook" `Quick
            test_rcu_hash_shadow;
          Alcotest.test_case "lazy_list shadow hook" `Quick
            test_lazy_list_shadow;
        ] );
      ( "observability",
        [ Alcotest.test_case "trace kind" `Quick test_trace_kind ] );
    ]
