(* Tests for the call_rcu reclaimer (Repro_rcu.Reclaimer): teardown
   drains every bag (with a sanitizer audit proving zero leaked
   deferrals), the high-watermark backpressure engages when grace
   periods stall, a crashing reclaimer is caught by its supervisor
   without losing a single retired pointer, and a Citrus tree built
   with [call_rcu:true] round-trips and checks clean after shutdown. *)

module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Reclaimer = Repro_rcu.Reclaimer

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Behaviour (R : Repro_rcu.Rcu.S) = struct
  module Rec = Reclaimer.Make (R)

  (* stop: every callback ever enqueued runs, across several producers,
     and the sanitizer sees every shadow reach Reclaimed. *)
  let test_stop_drains () =
    let was = San.enabled () in
    San.arm ();
    let d = San.create ("reclaimer/" ^ R.name) in
    Fun.protect
      ~finally:(fun () -> if not was then San.disarm ())
      (fun () ->
        let r = R.create () in
        let rc = Rec.create r in
        let freed = Atomic.make 0 in
        let producers = List.init 3 (fun _ -> Rec.new_producer rc) in
        List.iter
          (fun p ->
            for _ = 1 to 100 do
              let s = San.register d in
              Rec.call_rcu rc p ~shadow:s (fun () -> Atomic.incr freed)
            done)
          producers;
        Rec.stop rc;
        checki "all callbacks ran" 300 (Atomic.get freed);
        checki "no pending items" 0 (Rec.pending rc);
        checki "zero leaked deferrals" 0 (List.length (San.audit d));
        checkb "stopped" true (Rec.stopped rc);
        (* Idempotent. *)
        Rec.stop rc;
        checki "stop twice is safe" 300 (Atomic.get freed))

  (* Backpressure: park a reader inside a critical section so no grace
     period can elapse, then retire past the watermark. The overflowing
     enqueues must be counted (and degrade to inline frees, which
     complete once the reader leaves); nothing is lost. *)
  let test_backpressure () =
    let r = R.create () in
    let rc = Rec.create ~watermark:4 ~batch:2 r in
    let p = Rec.new_producer rc in
    let freed = Atomic.make 0 in
    let parked = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let th = R.register r in
          R.read_lock th;
          Atomic.set parked true;
          Unix.sleepf 0.2;
          R.read_unlock th;
          R.unregister th)
    in
    while not (Atomic.get parked) do
      Domain.cpu_relax ()
    done;
    for _ = 1 to 32 do
      Rec.call_rcu rc p (fun () -> Atomic.incr freed)
    done;
    checkb "watermark engaged" true (Rec.backpressure_waits rc > 0);
    Domain.join reader;
    Rec.stop rc;
    checki "nothing lost past the watermark" 32 (Atomic.get freed)

  (* Stall-aware pressure: a parked reader blocks the reclaimer inside
     one grace-period wait; once that wait exceeds the stall threshold,
     [pressure] must report saturation (>= 1.0) even though the bag is
     nearly empty — the lock-convoy blind spot the chaos stall-reader
     scenario exposed — and fall back below 1.0 once the reader leaves
     and the backlog drains. *)
  let test_stall_pressure () =
    let saved = Reclaimer.gp_stall_ns () in
    Reclaimer.set_gp_stall_ns 2_000_000;
    Fun.protect
      ~finally:(fun () -> Reclaimer.set_gp_stall_ns saved)
      (fun () ->
        let r = R.create () in
        let rc = Rec.create ~watermark:64 ~batch:8 r in
        let p = Rec.new_producer rc in
        let freed = Atomic.make 0 in
        let parked = Atomic.make false in
        let release = Atomic.make false in
        let reader =
          Domain.spawn (fun () ->
              let th = R.register r in
              R.read_lock th;
              Atomic.set parked true;
              while not (Atomic.get release) do
                Unix.sleepf 0.001
              done;
              R.read_unlock th;
              R.unregister th)
        in
        while not (Atomic.get parked) do
          Domain.cpu_relax ()
        done;
        for _ = 1 to 4 do
          Rec.call_rcu rc p (fun () -> Atomic.incr freed)
        done;
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Rec.pressure rc < 1.0 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done;
        checkb "pressure saturates on a stalled grace period" true
          (Rec.pressure rc >= 1.0);
        checkb "the bag itself is nowhere near the watermark" true
          (Rec.pending rc <= 4);
        Atomic.set release true;
        Domain.join reader;
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Atomic.get freed < 4 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done;
        checki "backlog drains once the reader leaves" 4 (Atomic.get freed);
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Rec.pressure rc >= 1.0 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done;
        checkb "pressure clears after the stall" true (Rec.pressure rc < 1.0);
        Rec.stop rc)

  (* Crash recovery: arm the reclaimer's crash fault point, retire a
     batch, and require (a) at least one supervised crash, (b) the
     restarted incarnation still alive, and (c) every retired pointer
     freed by the end — the gathered-but-unfreed remainder survives the
     crash via the holdover cursor. *)
  let test_crash_recovery () =
    Fault.configure ~seed:7L [];
    Fun.protect ~finally:Fault.disable_all (fun () ->
        let r = R.create () in
        let rc = Rec.create ~batch:4 ~max_restarts:10_000 r in
        let p = Rec.new_producer rc in
        let freed = Atomic.make 0 in
        Fault.set "rcu.reclaim.crash" ~rate:0.5 ~action:Fault.Raise;
        for _ = 1 to 40 do
          Rec.call_rcu rc p (fun () -> Atomic.incr freed)
        done;
        let deadline = Unix.gettimeofday () +. 10.0 in
        while Rec.crashes rc = 0 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done;
        checkb "supervisor caught a crash" true (Rec.crashes rc > 0);
        Fault.disable_all ();
        let deadline = Unix.gettimeofday () +. 10.0 in
        while Atomic.get freed < 40 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done;
        checkb "alive after restarts" true (Rec.alive rc);
        Rec.stop rc;
        checki "no retired pointer lost" 40 (Atomic.get freed))

  let tests name =
    [
      Alcotest.test_case (name ^ ": stop drains all bags") `Quick
        test_stop_drains;
      Alcotest.test_case (name ^ ": backpressure watermark") `Quick
        test_backpressure;
      Alcotest.test_case (name ^ ": stall-aware pressure") `Quick
        test_stall_pressure;
      Alcotest.test_case (name ^ ": crash recovery") `Quick
        test_crash_recovery;
    ]
end

module Epoch_tests = Behaviour (Repro_rcu.Epoch_rcu)
module Urcu_tests = Behaviour (Repro_rcu.Urcu)
module Qsbr_tests = Behaviour (Repro_rcu.Qsbr)

(* Citrus over call_rcu: deletes return without waiting, shutdown
   quiesces, and the tree then passes the full invariant check. *)
let test_citrus_call_rcu () =
  let module T = Repro_citrus.Citrus_int.Epoch in
  let t = T.create ~reclamation:true ~call_rcu:true () in
  let h = T.register t in
  for k = 0 to 199 do
    checkb "insert" true (T.insert h k k)
  done;
  for k = 0 to 199 do
    checkb "mem" true (T.mem h k)
  done;
  for k = 0 to 199 do
    checkb "delete" true (T.delete h k)
  done;
  for k = 0 to 199 do
    checkb "gone" false (T.mem h k)
  done;
  (* Churn again over the same keys: pending asynchronous unlinks must
     not disturb membership semantics. *)
  for k = 0 to 99 do
    checkb "re-insert" true (T.insert h k (2 * k))
  done;
  T.unregister h;
  T.shutdown t;
  T.check_invariants t;
  checki "final size" 100 (T.size t);
  let stats = T.stats t in
  checkb "reclaimer stats exported" true
    (List.mem_assoc "reclaim_batches" stats);
  checki "use_after_reclaim" 0 (List.assoc "use_after_reclaim" stats);
  (* Shutdown is idempotent and the quiescent helpers stay usable. *)
  T.shutdown t;
  checki "size stable" 100 (T.size t)

(* Concurrent churn: a writer deleting/inserting against parked-free
   readers, all through the call_rcu path, then a clean shutdown. *)
let test_citrus_call_rcu_concurrent () =
  let module T = Repro_citrus.Citrus_int.Epoch in
  let t = T.create ~reclamation:true ~call_rcu:true () in
  let h0 = T.register t in
  let keys = 128 in
  for k = 0 to keys - 1 do
    ignore (T.insert h0 k k)
  done;
  let stop = Atomic.make false in
  let readers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = T.register t in
            let rng = Repro_sync.Rng.create (Int64.of_int (100 + i)) in
            while not (Atomic.get stop) do
              ignore (T.mem h (Repro_sync.Rng.int rng keys))
            done;
            T.unregister h))
  in
  for _round = 1 to 30 do
    for k = 0 to keys - 1 do
      ignore (T.delete h0 k);
      ignore (T.insert h0 k k)
    done
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  T.unregister h0;
  T.shutdown t;
  T.check_invariants t;
  checki "all keys survive the churn" keys (T.size t);
  checki "use_after_reclaim" 0 (List.assoc "use_after_reclaim" (T.stats t))

let () =
  Alcotest.run "reclaimer"
    [
      ("epoch", Epoch_tests.tests "epoch");
      ("urcu", Urcu_tests.tests "urcu");
      ("qsbr", Qsbr_tests.tests "qsbr");
      ( "citrus",
        [
          Alcotest.test_case "citrus call_rcu round-trip" `Quick
            test_citrus_call_rcu;
          Alcotest.test_case "citrus call_rcu concurrent churn" `Quick
            test_citrus_call_rcu_concurrent;
        ] );
    ]
