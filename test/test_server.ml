(* Tests for the serving layer: hash distribution across shards, FIFO
   drain order and backpressure of the modification queue, completion
   wake-up, the open-loop generator's accounting, and an end-to-end serve
   run with lockdep and the reclamation sanitizer armed. *)

module Mod_queue = Repro_server.Mod_queue
module Serve = Repro_server.Serve
module Open_loop = Repro_workload.Open_loop
module W = Repro_workload.Workload
module Dict = Repro_dict.Dict
module Router = Repro_server.Shard_router.Make (Dict.Citrus_epoch)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Shard_router: hashing --- *)

let test_shard_distribution () =
  let t = Router.create ~shards:8 ~max_clients:2 () in
  let counts = Array.make 8 0 in
  let n = 64_000 in
  for k = 0 to n - 1 do
    let s = Router.shard_of t k in
    checkb "in range" true (s >= 0 && s < 8);
    counts.(s) <- counts.(s) + 1
  done;
  (* A dense ascending key range must spread evenly: each shard within
     ±25% of the fair share (splitmix64 is far tighter; the slack keeps
     the test robust). *)
  Array.iteri
    (fun i c ->
      checkb
        (Printf.sprintf "shard %d near fair share (got %d)" i c)
        true
        (abs (c - (n / 8)) < n / 32))
    counts;
  Router.shutdown t

let test_shard_of_deterministic () =
  let t = Router.create ~shards:5 ~max_clients:2 () in
  for k = 0 to 1000 do
    checki "stable" (Router.shard_of t k) (Router.shard_of t k)
  done;
  Router.shutdown t

(* --- Mod_queue: FIFO drain order --- *)

let test_fifo_drain () =
  let q = Mod_queue.create ~depth:128 () in
  for k = 0 to 99 do
    checkb "accepted" true (Mod_queue.try_enqueue q (Mod_queue.Insert (k, k)))
  done;
  checki "length" 100 (Mod_queue.length q);
  (* Drain in two unequal batches across the ring seam and check order. *)
  let seen = ref [] in
  let batch1 = Mod_queue.drain q ~max:64 in
  let batch2 = Mod_queue.drain q ~max:64 in
  checki "first batch" 64 (Array.length batch1);
  checki "second batch" 36 (Array.length batch2);
  Array.iter
    (fun (e : Mod_queue.entry) ->
      match e.op with
      | Mod_queue.Insert (k, _) -> seen := k :: !seen
      | _ -> Alcotest.fail "unexpected op")
    batch1;
  Array.iter
    (fun (e : Mod_queue.entry) ->
      match e.op with
      | Mod_queue.Insert (k, _) -> seen := k :: !seen
      | _ -> Alcotest.fail "unexpected op")
    batch2;
  Alcotest.check
    Alcotest.(list int)
    "FIFO order" (List.init 100 Fun.id) (List.rev !seen);
  checki "empty after" 0 (Mod_queue.length q);
  checki "drain on empty" 0 (Array.length (Mod_queue.drain q ~max:8))

let test_fifo_per_shard_through_router () =
  (* Same-key updates serialize through one shard's queue: alternating
     insert/delete of one key must leave the table in the state the last
     operation dictates, for every interleaving prefix. *)
  let t = Router.create ~shards:4 ~max_clients:2 () in
  let h = Router.register t in
  Router.start t;
  for round = 1 to 200 do
    (match Router.insert_wait h 7 round with
    | Some _ -> ()
    | None -> Alcotest.fail "insert rejected");
    match Router.delete_wait h 7 with
    | Some deleted -> checkb "delete saw the insert" true deleted
    | None -> Alcotest.fail "delete rejected"
  done;
  checkb "absent at end" false (Router.mem h 7);
  Router.unregister h;
  Router.shutdown t;
  Router.check t

(* --- Mod_queue: backpressure --- *)

let test_queue_full_backpressure () =
  (* No updater running: the bound must hold exactly and rejections must
     not clobber queued entries. *)
  let t = Router.create ~shards:1 ~queue_depth:8 ~max_clients:2 () in
  let h = Router.register t in
  for k = 0 to 7 do
    checkb "accepted" true (Router.insert h k k)
  done;
  checkb "ninth rejected" false (Router.insert h 8 8);
  checkb "wait-insert rejected" true (Router.insert_wait h 9 9 = None);
  let q = (Router.queue_stats t).(0) in
  checki "enqueued" 8 q.Mod_queue.enqueued;
  checki "dropped" 2 q.Mod_queue.dropped;
  checki "high-water" 8 q.Mod_queue.max_depth;
  (* Start the updater: the backlog must drain and later writes flow. *)
  Router.start t;
  (match Router.insert_wait h 100 100 with
  | Some fresh -> checkb "applied after drain" true fresh
  | None ->
      (* The queue may still be full at the instant of the call; retry
         once the backlog clears. *)
      let rec retry n =
        if n = 0 then Alcotest.fail "insert never accepted"
        else
          match Router.insert_wait h 100 100 with
          | Some _ -> ()
          | None ->
              Unix.sleepf 0.01;
              retry (n - 1)
      in
      retry 100);
  Router.unregister h;
  Router.shutdown t;
  let q = (Router.queue_stats t).(0) in
  checki "all accepted ops drained" q.Mod_queue.enqueued q.Mod_queue.drained;
  checki "size" 9 (Router.size t)

let test_rejected_after_shutdown () =
  let t = Router.create ~shards:2 ~max_clients:2 () in
  let h = Router.register t in
  Router.start t;
  checkb "accepted while running" true (Router.insert_wait h 1 1 <> None);
  Router.shutdown t;
  checkb "rejected after shutdown" false (Router.insert h 2 2);
  checkb "wait rejected after shutdown" true (Router.insert_wait h 3 3 = None);
  checkb "reads still work" true (Router.mem h 1);
  Router.unregister h

(* --- completions --- *)

let test_completion_wakeup () =
  let c = Mod_queue.completion () in
  checkb "pending" true (Mod_queue.peek c = None);
  let waiter = Domain.spawn (fun () -> Mod_queue.await c) in
  Unix.sleepf 0.02;
  Mod_queue.complete c true;
  checkb "woke with result" true (Domain.join waiter);
  checkb "peek after" true (Mod_queue.peek c = Some true)

let test_completion_through_updater () =
  let t = Router.create ~shards:2 ~max_clients:2 () in
  Router.start t;
  let h = Router.register t in
  checkb "fresh insert" true (Router.insert_wait h 5 50 = Some true);
  checkb "duplicate insert" true (Router.insert_wait h 5 51 = Some false);
  checkb "read sees it" true (Router.get h 5 = Some 50);
  checkb "delete" true (Router.delete_wait h 5 = Some true);
  checkb "double delete" true (Router.delete_wait h 5 = Some false);
  Router.unregister h;
  Router.shutdown t

(* --- shutdown drains the backlog --- *)

let test_shutdown_drains_backlog () =
  let t = Router.create ~shards:4 ~queue_depth:2048 ~max_clients:2 () in
  let h = Router.register t in
  (* Enqueue before any updater exists, then start and immediately stop:
     every accepted operation must still be applied. *)
  let accepted = ref 0 in
  for k = 0 to 999 do
    if Router.insert h k k then incr accepted
  done;
  Router.start t;
  Router.shutdown t;
  checki "all accepted applied" !accepted (Router.drained t);
  checki "size matches" !accepted (Router.size t);
  Router.check t;
  Router.unregister h

(* --- open-loop generator --- *)

let test_open_loop_spec_validation () =
  checkb "defaults ok" true (ignore (Open_loop.spec ()); true);
  Alcotest.check_raises "clients"
    (Invalid_argument "Open_loop.spec: clients must be positive") (fun () ->
      ignore (Open_loop.spec ~clients:0 ()));
  Alcotest.check_raises "rate"
    (Invalid_argument "Open_loop.spec: rate must be positive") (fun () ->
      ignore (Open_loop.spec ~rate:0.0 ()))

let test_open_loop_accounting () =
  (* A client that drops every delete and applies the rest: the harness
     must split the counts per op type and never lose an operation. *)
  let spec =
    Open_loop.spec ~clients:2 ~rate:4000.0 ~duration:0.2
      ~mix:(W.mix ~contains:50 ~insert:25 ~delete:25)
      ()
  in
  let r =
    Open_loop.run spec (fun _ ->
        {
          Open_loop.run_op =
            (fun op _ ->
              match op with
              | W.Delete -> Open_loop.Dropped
              | _ -> Open_loop.Applied true);
          finish = ignore;
        })
  in
  checkb "issued some" true (r.Open_loop.issued > 50);
  checki "conservation" r.Open_loop.issued
    (r.Open_loop.completed + r.Open_loop.dropped);
  checkb "all drops are deletes" true
    (match r.Open_loop.dropped_by_op with
    | [ (W.Delete, n) ] -> n = r.Open_loop.dropped
    | [] -> r.Open_loop.dropped = 0
    | _ -> false);
  checkb "no delete latency recorded" true
    (not (List.mem_assoc W.Delete r.Open_loop.latency));
  List.iter
    (fun (_, h) ->
      checkb "histogram populated" true (Repro_workload.Latency.count h > 0))
    r.Open_loop.latency

let test_open_loop_paces () =
  (* An instant-service run must issue roughly rate * duration ops — the
     generator is open-loop, not as-fast-as-possible. Generous bounds:
     the container has one core and sleep jitter. *)
  let spec = Open_loop.spec ~clients:2 ~rate:2000.0 ~duration:0.3 () in
  let r =
    Open_loop.run spec (fun _ ->
        {
          Open_loop.run_op = (fun _ _ -> Open_loop.Applied true);
          finish = ignore;
        })
  in
  let expected = 2000.0 *. r.Open_loop.wall in
  checkb
    (Printf.sprintf "issued %d near offered %.0f" r.Open_loop.issued expected)
    true
    (float_of_int r.Open_loop.issued > 0.5 *. expected
    && float_of_int r.Open_loop.issued < 1.5 *. expected)

(* --- end-to-end serve runs --- *)

let test_serve_end_to_end () =
  let c =
    Serve.cfg ~shards:3 ~clients:2 ~rate:3000.0 ~duration:0.25
      ~key_range:512 ~write_mode:Serve.Wait ()
  in
  let r = Serve.run ~observe:true (module Dict.Citrus_epoch) c in
  checkb "completed ops" true (r.Serve.load.Open_loop.completed > 0);
  checki "queues per shard" 3 (Array.length r.Serve.queues);
  checkb "writes drained" true (r.Serve.drained_total > 0);
  checkb "final size positive" true (r.Serve.final_size > 0);
  (* In Wait mode every accepted write resolves, so client-side completed
     writes = accepted = drained_total. *)
  let client_writes =
    List.fold_left
      (fun acc (op, h) ->
        if op = W.Contains then acc else acc + Repro_workload.Latency.count h)
      0 r.Serve.load.Open_loop.latency
  in
  checki "every accepted write applied" client_writes r.Serve.drained_total;
  checkb "metrics captured" true (r.Serve.metrics <> []);
  (* The JSON point must carry the schema-v1 latency fields per op. *)
  let doc = Serve.report [ r ] in
  let open Repro_obs.Json in
  let point =
    match
      Option.bind (member "experiments" doc) to_list_opt |> Option.get
    with
    | [ e ] ->
        (match Option.bind (member "points" e) to_list_opt with
        | Some [ p ] -> p
        | _ -> Alcotest.fail "expected one point")
    | _ -> Alcotest.fail "expected one experiment"
  in
  let lat = Option.get (member "latency_ns" point) in
  List.iter
    (fun op ->
      match member op lat with
      | Some s ->
          List.iter
            (fun f ->
              checkb
                (Printf.sprintf "%s has %s" op f)
                true
                (member f s <> None))
            [ "p50_ns"; "p99_ns"; "p999_ns" ]
      | None -> Alcotest.fail (op ^ " missing from latency_ns"))
    [ "contains"; "insert"; "delete" ]

let test_serve_armed () =
  (* The serve path under both validators: lockdep checks the queue-lock
     protocol (leaf lock, no tree-lock nesting), the sanitizer shadows
     every reclamation. Any violation raises and fails the test. *)
  Repro_sanitizer.Sanitizer.arm ();
  Repro_lockdep.Lockdep.arm ();
  Fun.protect
    ~finally:(fun () ->
      Repro_lockdep.Lockdep.disarm ();
      Repro_sanitizer.Sanitizer.disarm ())
    (fun () ->
      let c =
        Serve.cfg ~shards:2 ~clients:2 ~rate:2000.0 ~duration:0.2
          ~key_range:256 ~write_mode:Serve.Wait ()
      in
      let r = Serve.run (module Dict.Citrus_epoch) c in
      checkb "ops flowed" true (r.Serve.load.Open_loop.completed > 0));
  checki "no lockdep violations" 0 (Repro_lockdep.Lockdep.violations ());
  checki "no sanitizer violations" 0 (Repro_sanitizer.Sanitizer.violations ())

let () =
  Alcotest.run "server"
    [
      ( "shard-router",
        [
          Alcotest.test_case "hash distribution" `Quick
            test_shard_distribution;
          Alcotest.test_case "shard_of deterministic" `Quick
            test_shard_of_deterministic;
          Alcotest.test_case "FIFO per shard via router" `Quick
            test_fifo_per_shard_through_router;
          Alcotest.test_case "rejects after shutdown" `Quick
            test_rejected_after_shutdown;
          Alcotest.test_case "shutdown drains backlog" `Quick
            test_shutdown_drains_backlog;
        ] );
      ( "mod-queue",
        [
          Alcotest.test_case "FIFO drain order" `Quick test_fifo_drain;
          Alcotest.test_case "queue-full backpressure" `Quick
            test_queue_full_backpressure;
          Alcotest.test_case "completion wake-up" `Quick
            test_completion_wakeup;
          Alcotest.test_case "completions through updater" `Quick
            test_completion_through_updater;
        ] );
      ( "open-loop",
        [
          Alcotest.test_case "spec validation" `Quick
            test_open_loop_spec_validation;
          Alcotest.test_case "outcome accounting" `Quick
            test_open_loop_accounting;
          Alcotest.test_case "paces to offered load" `Quick
            test_open_loop_paces;
        ] );
      ( "serve",
        [
          Alcotest.test_case "end to end with JSON" `Quick
            test_serve_end_to_end;
          Alcotest.test_case "lockdep + sanitizer armed" `Quick
            test_serve_armed;
        ] );
    ]
