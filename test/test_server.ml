(* Tests for the serving layer: hash distribution across shards, FIFO
   drain order and backpressure of the modification queue, completion
   wake-up, typed admission rejects and overload shedding, supervisor
   crash-restart (with both validators armed), restart-budget exhaustion
   (including that a failed shard aborts rather than strands its
   waiters), the closed-admission barrier, the staleness watchdog, the
   shutdown drain deadline and no-updater backlog sweep, the open-loop
   generator's retry/deadline accounting, the chaos backlog-loss
   mutation, and an end-to-end serve run with lockdep and the
   reclamation sanitizer armed. *)

module Mod_queue = Repro_server.Mod_queue
module Shard_router = Repro_server.Shard_router
module Supervisor = Repro_server.Supervisor
module Health = Repro_server.Health
module Breaker = Repro_server.Breaker
module Chaos = Repro_server.Chaos
module Serve = Repro_server.Serve
module Open_loop = Repro_workload.Open_loop
module W = Repro_workload.Workload
module Dict = Repro_dict.Dict
module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats
module Router = Shard_router.Make (Dict.Citrus_epoch)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Shard_router: hashing --- *)

let test_shard_distribution () =
  let t = Router.create ~shards:8 ~max_clients:2 () in
  let counts = Array.make 8 0 in
  let n = 64_000 in
  for k = 0 to n - 1 do
    let s = Router.shard_of t k in
    checkb "in range" true (s >= 0 && s < 8);
    counts.(s) <- counts.(s) + 1
  done;
  (* A dense ascending key range must spread evenly: each shard within
     ±25% of the fair share (splitmix64 is far tighter; the slack keeps
     the test robust). *)
  Array.iteri
    (fun i c ->
      checkb
        (Printf.sprintf "shard %d near fair share (got %d)" i c)
        true
        (abs (c - (n / 8)) < n / 32))
    counts;
  ignore (Router.shutdown t)

let test_shard_of_deterministic () =
  let t = Router.create ~shards:5 ~max_clients:2 () in
  for k = 0 to 1000 do
    checki "stable" (Router.shard_of t k) (Router.shard_of t k)
  done;
  ignore (Router.shutdown t)

(* --- Mod_queue: FIFO drain order --- *)

let test_fifo_drain () =
  let q = Mod_queue.create ~depth:128 () in
  for k = 0 to 99 do
    checkb "accepted" true (Mod_queue.try_enqueue q (Mod_queue.Insert (k, k)))
  done;
  checki "length" 100 (Mod_queue.length q);
  (* Drain in two unequal batches across the ring seam and check order. *)
  let seen = ref [] in
  let batch1 = Mod_queue.drain q ~max:64 in
  let batch2 = Mod_queue.drain q ~max:64 in
  checki "first batch" 64 (Array.length batch1);
  checki "second batch" 36 (Array.length batch2);
  Array.iter
    (fun (e : Mod_queue.entry) ->
      match e.op with
      | Mod_queue.Insert (k, _) -> seen := k :: !seen
      | _ -> Alcotest.fail "unexpected op")
    batch1;
  Array.iter
    (fun (e : Mod_queue.entry) ->
      match e.op with
      | Mod_queue.Insert (k, _) -> seen := k :: !seen
      | _ -> Alcotest.fail "unexpected op")
    batch2;
  Alcotest.check
    Alcotest.(list int)
    "FIFO order" (List.init 100 Fun.id) (List.rev !seen);
  checki "empty after" 0 (Mod_queue.length q);
  checki "drain on empty" 0 (Array.length (Mod_queue.drain q ~max:8))

let test_fifo_per_shard_through_router () =
  (* Same-key updates serialize through one shard's queue: alternating
     insert/delete of one key must leave the table in the state the last
     operation dictates, for every interleaving prefix. *)
  let t = Router.create ~shards:4 ~max_clients:2 () in
  let h = Router.register t in
  Router.start t;
  for round = 1 to 200 do
    (match Router.insert_wait h 7 round with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "insert rejected");
    match Router.delete_wait h 7 with
    | Ok r ->
        checkb "delete saw the insert" true (Shard_router.write_result_value r)
    | Error _ -> Alcotest.fail "delete rejected"
  done;
  checkb "absent at end" false (Router.mem h 7);
  Router.unregister h;
  ignore (Router.shutdown t);
  Router.check t

(* --- typed rejects: overload shedding and queue-full backpressure --- *)

let test_typed_rejects () =
  (* No updater running, one shard, depth 8, default watermarks (high =
     6). Fire-and-forget writes shed with [Overload] once the high
     watermark is reached; completion-waited writes are still admitted
     until the queue itself is full, which rejects with [Full]. *)
  let t = Router.create ~shards:1 ~queue_depth:8 ~max_clients:8 () in
  let h = Router.register t in
  let oks = ref 0 and overloads = ref 0 in
  for k = 0 to 9 do
    match Router.insert h k k with
    | Ok () -> incr oks
    | Error Shard_router.Overload -> incr overloads
    | Error r ->
        Alcotest.fail ("unexpected reject " ^ Shard_router.reject_name r)
  done;
  checki "accepted up to high watermark" 6 !oks;
  checki "shed after high watermark" 4 !overloads;
  let q = (Router.queue_stats t).(0) in
  checki "enqueued" 6 q.Mod_queue.enqueued;
  checki "shed writes never reach the queue" 0 q.Mod_queue.dropped;
  (* Two waited writes on top fill the queue to its bound... *)
  let waiters =
    List.init 2 (fun i ->
        Domain.spawn (fun () -> Router.insert_wait h (100 + i) (100 + i)))
  in
  let rec until_enqueued n tries =
    if (Router.queue_stats t).(0).Mod_queue.enqueued < n then
      if tries = 0 then Alcotest.fail "waited writes never enqueued"
      else begin
        Unix.sleepf 0.005;
        until_enqueued n (tries - 1)
      end
  in
  until_enqueued 8 400;
  (* ...so a further waited write hits the bound itself: [Full]. *)
  checkb "full for waited" true
    (Router.insert_wait h 200 200 = Error Shard_router.Full);
  (* Start the updater: the backlog (6 async + 2 waited) must drain. *)
  Router.start t;
  List.iter
    (fun d ->
      match Domain.join d with
      | Ok wr ->
          checkb "waited write applied" true
            (Shard_router.write_result_value wr)
      | Error r ->
          Alcotest.fail ("waited write lost: " ^ Shard_router.reject_name r))
    waiters;
  Router.unregister h;
  checkb "drained shutdown" true (Router.shutdown t = Shard_router.Drained);
  let q = (Router.queue_stats t).(0) in
  checki "all accepted ops drained" q.Mod_queue.enqueued q.Mod_queue.drained;
  checki "size" 8 (Router.size t)

let test_rejected_after_shutdown () =
  let t = Router.create ~shards:2 ~max_clients:2 () in
  let h = Router.register t in
  Router.start t;
  checkb "accepted while running" true
    (Router.insert_wait h 1 1 = Ok (Shard_router.Applied true));
  ignore (Router.shutdown t);
  checkb "rejected after shutdown" true
    (Router.insert h 2 2 = Error Shard_router.Shutdown);
  checkb "wait rejected after shutdown" true
    (Router.insert_wait h 3 3 = Error Shard_router.Shutdown);
  checkb "reads still work" true (Router.mem h 1);
  Router.unregister h

(* --- completions --- *)

let test_completion_wakeup () =
  let c = Mod_queue.completion () in
  checkb "pending" true (Mod_queue.peek c = Mod_queue.Pending);
  let waiter = Domain.spawn (fun () -> Mod_queue.await c) in
  Unix.sleepf 0.02;
  Mod_queue.complete c true;
  checkb "woke with result" true (Domain.join waiter = Mod_queue.Done true);
  checkb "peek after" true (Mod_queue.peek c = Mod_queue.Done true)

let test_completion_abort () =
  let c = Mod_queue.completion () in
  let waiter = Domain.spawn (fun () -> Mod_queue.await c) in
  Unix.sleepf 0.02;
  Mod_queue.abort c;
  checkb "waiter unblocked as aborted" true
    (Domain.join waiter = Mod_queue.Aborted);
  checkb "peek aborted" true (Mod_queue.peek c = Mod_queue.Aborted);
  (* A resolved result is never un-resolved, in either direction. *)
  Mod_queue.complete c true;
  checkb "complete after abort is a no-op" true
    (Mod_queue.peek c = Mod_queue.Aborted);
  let c2 = Mod_queue.completion () in
  Mod_queue.complete c2 false;
  Mod_queue.abort c2;
  checkb "abort after complete is a no-op" true
    (Mod_queue.peek c2 = Mod_queue.Done false)

let test_completion_through_updater () =
  let t = Router.create ~shards:2 ~max_clients:2 () in
  Router.start t;
  let h = Router.register t in
  checkb "fresh insert" true
    (Router.insert_wait h 5 50 = Ok (Shard_router.Applied true));
  checkb "duplicate insert" true
    (Router.insert_wait h 5 51 = Ok (Shard_router.Applied false));
  checkb "read sees it" true (Router.get h 5 = Some 50);
  checkb "delete" true
    (Router.delete_wait h 5 = Ok (Shard_router.Applied true));
  checkb "double delete" true
    (Router.delete_wait h 5 = Ok (Shard_router.Applied false));
  Router.unregister h;
  ignore (Router.shutdown t)

(* --- Mod_queue: purge and stats consistency --- *)

let test_purge_aborts_completions () =
  let q = Mod_queue.create ~depth:32 () in
  let cs = List.init 5 (fun _ -> Mod_queue.completion ()) in
  List.iteri
    (fun i c ->
      checkb "accepted" true
        (Mod_queue.try_enqueue q ~completion:c (Mod_queue.Insert (i, i))))
    cs;
  let lost_before = Stats.read Metrics.writes_lost in
  checki "purged count" 5 (Mod_queue.purge q);
  checki "queue empty" 0 (Mod_queue.length q);
  List.iter
    (fun c ->
      checkb "completion aborted" true (Mod_queue.await c = Mod_queue.Aborted))
    cs;
  checki "writes_lost counted" (lost_before + 5)
    (Stats.read Metrics.writes_lost);
  let s = Mod_queue.stats q in
  checki "stats enqueued" 5 s.Mod_queue.enqueued;
  checki "stats purged" 5 s.Mod_queue.purged;
  checki "stats drained" 0 s.Mod_queue.drained

(* --- Mod_queue: closed admission barrier --- *)

let test_close_rejects_enqueue () =
  let q = Mod_queue.create ~depth:8 () in
  checkb "open accepts" true (Mod_queue.try_enqueue q (Mod_queue.Insert (1, 1)));
  checkb "not closed yet" false (Mod_queue.is_closed q);
  Mod_queue.close q;
  checkb "closed" true (Mod_queue.is_closed q);
  checkb "closed rejects, typed" true
    (Mod_queue.enqueue q (Mod_queue.Insert (2, 2)) = Mod_queue.Admit_closed);
  checkb "closed rejects, boolean" false
    (Mod_queue.try_enqueue q (Mod_queue.Insert (3, 3)));
  (* A closed reject is not backpressure: it must not count as a drop. *)
  checki "no drop counted" 0 (Mod_queue.stats q).Mod_queue.dropped;
  (* Draining the pre-close backlog still works, so close-then-sweep
     strands nothing. *)
  checki "pre-close entry drains" 1 (Array.length (Mod_queue.drain q ~max:8));
  Mod_queue.close q (* idempotent *);
  checki "purge after close finds nothing" 0 (Mod_queue.purge q)

(* --- shutdown without start: the backlog sweep --- *)

let test_shutdown_applies_pre_start_backlog () =
  (* [start] is never called: the only thing standing between these
     accepted writes (and their waiters) and a permanent hang is the
     shutdown sweep. *)
  let t = Router.create ~shards:2 ~queue_depth:64 ~max_clients:4 () in
  let h = Router.register t in
  let accepted = ref 0 in
  for k = 0 to 19 do
    if Router.insert h k k = Ok () then incr accepted
  done;
  checkb "writes accepted before start" true (!accepted > 0);
  let waiter = Domain.spawn (fun () -> Router.insert_wait h 100 100) in
  let rec until_enqueued tries =
    let n =
      Array.fold_left
        (fun acc (q : Mod_queue.stats) -> acc + q.Mod_queue.enqueued)
        0 (Router.queue_stats t)
    in
    if n < !accepted + 1 then
      if tries = 0 then Alcotest.fail "waited write never enqueued"
      else begin
        Unix.sleepf 0.005;
        until_enqueued (tries - 1)
      end
  in
  until_enqueued 400;
  checkb "drained without updaters" true
    (Router.shutdown t = Shard_router.Drained);
  (match Domain.join waiter with
  | Ok wr ->
      checkb "waiter resolved by the sweep" true
        (Shard_router.write_result_value wr)
  | Error r ->
      Alcotest.fail ("waited write lost: " ^ Shard_router.reject_name r));
  checki "every accepted write applied" (!accepted + 1) (Router.size t);
  Router.check t;
  Router.unregister h

(* --- Supervisor: a failed shard aborts its waiters --- *)

let test_failed_shard_unblocks_waiter () =
  (* Budget of zero: the first crash fails the shard. The waited write is
     the very entry the crash lands on — its completion must abort (the
     failure path closes admission, purges the queue and aborts the
     adopted batch), so the waiter unblocks with [Failed] instead of
     spinning forever on a queue no updater will ever drain again. *)
  let policy =
    {
      Supervisor.max_restarts = 0;
      backoff_base_ns = 100_000;
      backoff_max_ns = 1_000_000;
      reset_after_ns = 60_000_000_000;
    }
  in
  let t =
    Router.create ~shards:1 ~queue_depth:64 ~max_clients:4 ~supervisor:policy
      ()
  in
  let h = Router.register t in
  checkb "prefilled" true (Router.load h 1 1);
  let waiter = Domain.spawn (fun () -> Router.insert_wait h 7 7) in
  let rec until_enqueued tries =
    if (Router.queue_stats t).(0).Mod_queue.enqueued < 1 then
      if tries = 0 then Alcotest.fail "waited write never enqueued"
      else begin
        Unix.sleepf 0.005;
        until_enqueued (tries - 1)
      end
  in
  until_enqueued 400;
  Router.crash_updater t 0;
  Router.start t;
  (match Domain.join waiter with
  | Error Shard_router.Failed -> ()
  | Error r ->
      Alcotest.fail ("unexpected reject " ^ Shard_router.reject_name r)
  | Ok _ -> Alcotest.fail "aborted write reported applied");
  checkb "shard failed" true ((Router.health t).(0) = Health.Failed);
  (* Late producers get the typed reject even though they race no
     explicit purge anymore — admission is closed for good. *)
  checkb "write rejected as failed" true
    (Router.insert h 9 9 = Error Shard_router.Failed);
  checkb "reads keep working" true (Router.mem h 1);
  checkb "failed shard shuts down cleanly" true
    (Router.shutdown t = Shard_router.Drained);
  Router.unregister h

(* --- Mod_queue: staleness watchdog --- *)

let test_stall_watchdog () =
  let q = Mod_queue.create ~id:3 ~depth:16 () in
  Fun.protect
    ~finally:(fun () -> Mod_queue.set_stall_threshold_ns 0)
    (fun () ->
      Mod_queue.set_stall_threshold_ns 10_000_000 (* 10 ms *);
      let stalls_before = Stats.read Metrics.mod_queue_stalls in
      checkb "accepted" true (Mod_queue.try_enqueue q (Mod_queue.Insert (1, 1)));
      Unix.sleepf 0.03;
      (* The queue is non-empty and nothing has drained for 30 ms >
         threshold: the next producer-side check fires one report. *)
      checkb "accepted" true (Mod_queue.try_enqueue q (Mod_queue.Insert (2, 2)));
      checki "stall reported" (stalls_before + 1)
        (Stats.read Metrics.mod_queue_stalls);
      (* Inside the same window: throttled, no second report. *)
      Mod_queue.check_stall q;
      checki "one report per window" (stalls_before + 1)
        (Stats.read Metrics.mod_queue_stalls);
      (* A drain resets staleness: no report after draining. *)
      ignore (Mod_queue.drain q ~max:16);
      Unix.sleepf 0.03;
      Mod_queue.check_stall q;
      checki "empty queue never stalls" (stalls_before + 1)
        (Stats.read Metrics.mod_queue_stalls))

(* --- Health: watermarks, hysteresis, terminal failure --- *)

let test_health_state_machine () =
  let hl = Health.create ~shard:0 ~capacity:100 () in
  checkb "starts healthy" true (Health.state hl = Health.Healthy);
  Health.observe_depth hl 74;
  checkb "below high watermark" true (Health.state hl = Health.Healthy);
  Health.observe_depth hl 75;
  checkb "degrades at high watermark" true (Health.state hl = Health.Degraded);
  Health.observe_depth hl 50;
  checkb "hysteresis holds between watermarks" true
    (Health.state hl = Health.Degraded);
  Health.observe_depth hl 25;
  checkb "recovers at low watermark" true (Health.state hl = Health.Healthy);
  Health.note_stall hl;
  checkb "stall degrades" true (Health.state hl = Health.Degraded);
  checkb "first failure marks" true (Health.mark_failed hl);
  checkb "second failure is a no-op" false (Health.mark_failed hl);
  Health.observe_depth hl 0;
  checkb "failed is terminal" true (Health.state hl = Health.Failed)

let test_health_pressure_latch () =
  (* Reclamation pressure is a latch, not an edge: while it is set,
     depth-based healing is blocked — a drained queue does not make a
     shard healthy while its retired backlog is still behind. *)
  let hl = Health.create ~shard:0 ~capacity:100 () in
  Health.observe_reclaim_pressure hl 0.5;
  checkb "below high threshold: healthy" true (Health.state hl = Health.Healthy);
  checkb "not latched" false (Health.pressure_latched hl);
  Health.observe_reclaim_pressure hl 0.8;
  checkb "high pressure degrades" true (Health.state hl = Health.Degraded);
  checkb "latched" true (Health.pressure_latched hl);
  Health.observe_depth hl 0;
  checkb "depth healing blocked while latched" true
    (Health.state hl = Health.Degraded);
  Health.observe_reclaim_pressure hl 0.5;
  checkb "hysteresis holds between thresholds" true
    (Health.pressure_latched hl);
  Health.observe_reclaim_pressure hl 0.2;
  checkb "latch clears at low threshold" false (Health.pressure_latched hl);
  Health.observe_depth hl 0;
  checkb "heals once the latch is clear" true (Health.state hl = Health.Healthy)

(* --- Breaker: pure state machine, driven without sleeping --- *)

let breaker_cfg =
  {
    Breaker.window_ns = 1_000_000_000;
    min_samples = 4;
    failure_pct = 50;
    open_base_ns = 1_000;
    open_max_ns = 1_000_000;
    probes = 2;
  }

let test_breaker_trip_probe_close () =
  let b = Breaker.create ~config:breaker_cfg ~shard:0 () in
  checkb "starts closed" true (Breaker.state b = Breaker.Closed);
  checkb "closed admits" true (Breaker.admit b ~now_ns:0 = Breaker.Admit);
  (* One success, one failure: 50% but below min_samples — no trip. *)
  Breaker.on_success b ~now_ns:0 ~probe:false;
  Breaker.on_failure b ~now_ns:0 ~probe:false;
  checkb "below min_samples stays closed" true
    (Breaker.state b = Breaker.Closed);
  (* Two more failures reach 4 samples at 75% >= 50%: trip. *)
  Breaker.on_failure b ~now_ns:0 ~probe:false;
  Breaker.on_failure b ~now_ns:0 ~probe:false;
  checkb "tripped open" true (Breaker.state b = Breaker.Open);
  checki "one trip" 1 (Breaker.trips b);
  let d1 = Breaker.open_until_ns b in
  checkb "first interval jittered into [base/2, base)" true
    (d1 >= 500 && d1 < 1_000);
  checkb "open rejects" true (Breaker.admit b ~now_ns:0 = Breaker.Reject);
  checki "reject counted" 1 (Breaker.rejects b);
  (* Interval over: half-open, two probe slots, then reject. *)
  checkb "first probe slot" true (Breaker.admit b ~now_ns:d1 = Breaker.Probe);
  checkb "half-open" true (Breaker.state b = Breaker.Half_open);
  checkb "second probe slot" true (Breaker.admit b ~now_ns:d1 = Breaker.Probe);
  checkb "slots exhausted reject" true
    (Breaker.admit b ~now_ns:d1 = Breaker.Reject);
  (* Ordinary failures cannot re-trip a probing breaker. *)
  Breaker.on_failure b ~now_ns:d1 ~probe:false;
  checkb "straggler failure ignored while half-open" true
    (Breaker.state b = Breaker.Half_open);
  (* A probe failure re-opens with the doubled interval. *)
  Breaker.on_failure b ~now_ns:d1 ~probe:true;
  checkb "probe failure re-opens" true (Breaker.state b = Breaker.Open);
  checki "second trip" 2 (Breaker.trips b);
  let d2 = Breaker.open_until_ns b in
  checkb "second interval doubled" true (d2 - d1 >= 1_000 && d2 - d1 < 2_000);
  (* All probes succeeding closes the breaker and resets the backoff. *)
  checkb "probe after interval" true (Breaker.admit b ~now_ns:d2 = Breaker.Probe);
  Breaker.on_success b ~now_ns:d2 ~probe:true;
  checkb "one probe success is not enough" true
    (Breaker.state b = Breaker.Half_open);
  checkb "second probe" true (Breaker.admit b ~now_ns:d2 = Breaker.Probe);
  Breaker.on_success b ~now_ns:d2 ~probe:true;
  checkb "all probes succeed: closed" true (Breaker.state b = Breaker.Closed);
  checkb "window reset on close" true (Breaker.window b = (0, 0));
  (* Backoff reset: the next trip is back at the base interval. *)
  Breaker.on_crash b ~now_ns:d2;
  checki "crash trips unconditionally" 3 (Breaker.trips b);
  let d3 = Breaker.open_until_ns b in
  checkb "backoff reset after close" true (d3 - d2 >= 500 && d3 - d2 < 1_000)

let test_breaker_window_rotation () =
  let b = Breaker.create ~config:breaker_cfg ~shard:0 () in
  (* Three failures in one window: still below min_samples. *)
  for _ = 1 to 3 do
    Breaker.on_failure b ~now_ns:0 ~probe:false
  done;
  checkb "still closed" true (Breaker.state b = Breaker.Closed);
  (* A failure in the next window rotates first: the old samples are
     gone, so the count restarts and nothing trips. *)
  Breaker.on_failure b ~now_ns:(breaker_cfg.Breaker.window_ns + 1) ~probe:false;
  checkb "rotated window" true (Breaker.window b = (0, 1));
  checkb "no trip across windows" true (Breaker.state b = Breaker.Closed)

let test_breaker_jitter_deterministic () =
  let trip_interval seed =
    let b = Breaker.create ~config:breaker_cfg ~seed ~shard:0 () in
    Breaker.on_crash b ~now_ns:0;
    Breaker.open_until_ns b
  in
  checki "same seed, same schedule" (trip_interval 7L) (trip_interval 7L);
  checkb "different seeds decorrelate" true
    (trip_interval 1L <> trip_interval 2L)

let test_breaker_never_open_mutant () =
  let b = Breaker.create ~config:breaker_cfg ~mutate_never_open:true ~shard:0 () in
  Breaker.on_crash b ~now_ns:0;
  for _ = 1 to 10 do
    Breaker.on_failure b ~now_ns:0 ~probe:false
  done;
  checkb "mutant never opens" true (Breaker.state b = Breaker.Closed);
  checki "no trips" 0 (Breaker.trips b);
  checkb "mutant admits everything" true
    (Breaker.admit b ~now_ns:0 = Breaker.Admit)

let test_breaker_config_validation () =
  let bad cfg =
    match Breaker.create ~config:cfg ~shard:0 () with
    | _ -> Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { breaker_cfg with Breaker.failure_pct = 0 };
  bad { breaker_cfg with Breaker.failure_pct = 101 };
  bad { breaker_cfg with Breaker.probes = 0 };
  bad { breaker_cfg with Breaker.open_max_ns = 1 }

(* --- deadline propagation: dead-on-arrival admission --- *)

let test_deadline_dead_on_arrival () =
  let t = Router.create ~shards:1 ~max_clients:2 () in
  let h = Router.register t in
  Router.start t;
  checkb "DOA write rejected expired" true
    (Router.insert h ~deadline_ns:1 1 1 = Error Shard_router.Expired);
  checkb "waited DOA rejected expired" true
    (Router.insert_wait h ~deadline_ns:1 2 2 = Error Shard_router.Expired);
  checkb "live deadline admits and applies" true
    (Router.insert_wait h
       ~deadline_ns:(Metrics.now_ns () + 1_000_000_000)
       3 3
    = Ok (Shard_router.Applied true));
  checkb "expired writes never reached the tree" false (Router.mem h 1);
  Router.unregister h;
  ignore (Router.shutdown t)

(* --- Supervisor: crash restart with both validators armed --- *)

let test_supervisor_restart_armed () =
  Repro_sanitizer.Sanitizer.arm ();
  Repro_lockdep.Lockdep.arm ();
  Fun.protect
    ~finally:(fun () ->
      Repro_lockdep.Lockdep.disarm ();
      Repro_sanitizer.Sanitizer.disarm ())
    (fun () ->
      (* Each crash trips the shard's breaker; a 1 ns open interval makes
         the re-offer immediate, so the next round's waited write is
         admitted (as a probe) without a retry loop — the property under
         test is crash survival, not the re-offer schedule. *)
      let breaker =
        { Breaker.default_config with Breaker.open_base_ns = 1; probes = 16 }
      in
      let t = Router.create ~shards:2 ~max_clients:4 ~breaker () in
      Router.start t;
      let h = Router.register t in
      (* Keys landing on each shard, found via the router's own hash. *)
      let key_on shard from =
        let k = ref from in
        while Router.shard_of t !k <> shard do
          incr k
        done;
        !k
      in
      for round = 0 to 2 do
        for shard = 0 to 1 do
          Router.crash_updater t shard;
          (* The waited write rides through the crash: the one-shot flag
             fires before this very entry applies, the supervisor
             restarts the updater, and the successor adopts the pending
             batch — so the completion must resolve, and honestly: this
             entry is deterministically part of the adopted batch, so its
             status is [Replayed], never plain [Applied]. The key is
             fresh, so the replay observes [true]. *)
          let k = key_on shard (1000 * (round + 1)) in
          match Router.insert_wait h k k with
          | Ok (Shard_router.Replayed fresh) ->
              checkb "write survived the crash" true fresh
          | Ok (Shard_router.Applied _) ->
              Alcotest.fail
                "adopted-batch write reported Applied, expected Replayed"
          | Error r ->
              Alcotest.fail
                ("write lost to crash: " ^ Shard_router.reject_name r)
        done
      done;
      let crashes = Router.crashes t in
      let restarts = Router.restarts t in
      for shard = 0 to 1 do
        checkb
          (Printf.sprintf "shard %d crashed 3 times" shard)
          true
          (crashes.(shard) = 3);
        checkb
          (Printf.sprintf "shard %d restarted each time" shard)
          true
          (restarts.(shard) = 3)
      done;
      Array.iter
        (fun st -> checkb "still healthy" true (st <> Health.Failed))
        (Router.health t);
      checkb "recovery latencies sampled" true
        (List.length (Router.restart_latencies_ns t) = 6);
      Router.unregister h;
      checkb "drained shutdown" true (Router.shutdown t = Shard_router.Drained);
      Router.check t);
  checki "no lockdep violations" 0 (Repro_lockdep.Lockdep.violations ());
  checki "no sanitizer violations" 0 (Repro_sanitizer.Sanitizer.violations ())

(* --- Supervisor: restart-budget exhaustion fails the shard --- *)

let test_budget_exhaustion_fails_shard () =
  let policy =
    {
      Supervisor.max_restarts = 2;
      backoff_base_ns = 100_000;
      backoff_max_ns = 1_000_000;
      reset_after_ns = 60_000_000_000 (* no window reset during the test *);
    }
  in
  let t =
    Router.create ~shards:1 ~queue_depth:64 ~max_clients:4 ~supervisor:policy
      ()
  in
  let h = Router.register t in
  checkb "prefilled" true (Router.load h 1 1);
  Router.start t;
  let wait_crashes n =
    let rec go tries =
      if (Router.crashes t).(0) < n then
        if tries = 0 then Alcotest.fail "crash never happened"
        else begin
          Unix.sleepf 0.005;
          go (tries - 1)
        end
    in
    go 1000
  in
  (* Crashes 1 and 2 are within budget; crash 3 exceeds it. Each needs a
     write to consume the one-shot flag. *)
  for round = 1 to 3 do
    Router.crash_updater t 0;
    let rec trigger tries =
      if (Router.crashes t).(0) < round then
        if tries = 0 then Alcotest.fail "trigger write never accepted"
        else begin
          (match Router.insert h (100 + round) round with
          | Ok () | Error _ -> ());
          Unix.sleepf 0.002;
          trigger (tries - 1)
        end
    in
    trigger 2000;
    wait_crashes round
  done;
  let rec wait_failed tries =
    if (Router.health t).(0) <> Health.Failed then
      if tries = 0 then Alcotest.fail "shard never failed"
      else begin
        Unix.sleepf 0.005;
        wait_failed (tries - 1)
      end
  in
  wait_failed 1000;
  checki "exactly 3 crashes" 3 (Router.crashes t).(0);
  checki "restarted only within budget" 2 (Router.restarts t).(0);
  (* The failed shard still serves reads; writes reject as [Failed]. *)
  checkb "read on failed shard" true (Router.mem h 1);
  checkb "write rejected as failed" true
    (Router.insert h 7 7 = Error Shard_router.Failed);
  checkb "waited write rejected as failed" true
    (Router.insert_wait h 8 8 = Error Shard_router.Failed);
  Router.unregister h;
  checkb "failed shard shuts down cleanly" true
    (Router.shutdown t = Shard_router.Drained)

(* --- shutdown drain deadline: force-stop instead of blocking --- *)

let test_shutdown_drain_deadline () =
  (* Wedge recovery, not the updater: a crash puts the supervisor into a
     2 s backoff nap while accepted writes sit in the queue. A 100 ms
     drain deadline must force-stop — purging the backlog, aborting its
     completions, reporting the shard — instead of waiting out the
     backoff. *)
  let policy =
    {
      Supervisor.max_restarts = 5;
      backoff_base_ns = 2_000_000_000;
      backoff_max_ns = 2_000_000_000;
      reset_after_ns = 60_000_000_000;
    }
  in
  (* The crash trips the breaker; an immediate re-offer with generous
     probe slots keeps the post-crash writes admissible — this test is
     about the drain deadline, not the breaker schedule. *)
  let breaker =
    { Breaker.default_config with Breaker.open_base_ns = 1; probes = 16 }
  in
  let t =
    Router.create ~shards:1 ~queue_depth:64 ~max_clients:4 ~supervisor:policy
      ~breaker ()
  in
  let h = Router.register t in
  checkb "prefilled" true (Router.load h 1 1);
  Router.start t;
  Router.crash_updater t 0;
  let rec trigger tries =
    if (Router.crashes t).(0) < 1 then
      if tries = 0 then Alcotest.fail "crash never happened"
      else begin
        (match Router.insert h 10 10 with Ok () | Error _ -> ());
        Unix.sleepf 0.002;
        trigger (tries - 1)
      end
  in
  trigger 2000;
  (* The updater is down for ~2 s. Accepted writes now pile up. *)
  let accepted = ref 0 in
  for k = 20 to 28 do
    match Router.insert h k k with Ok () -> incr accepted | Error _ -> ()
  done;
  checkb "writes accepted while recovering" true (!accepted > 0);
  let waiter = Domain.spawn (fun () -> Router.insert_wait h 30 30) in
  Unix.sleepf 0.02 (* let the waited write enqueue *);
  (match Router.shutdown ~deadline_ns:100_000_000 t with
  | Shard_router.Drained -> Alcotest.fail "expected a forced shutdown"
  | Shard_router.Forced [ rep ] ->
      checki "report names the shard" 0 rep.Shard_router.shard;
      checkb "accepted writes reported lost" true (rep.Shard_router.lost > 0);
      checki "crashes in the report" 1 rep.Shard_router.crashes;
      checkb "chain exited via abort, not wedged" true
        (not rep.Shard_router.wedged)
  | Shard_router.Forced reps ->
      Alcotest.fail
        (Printf.sprintf "expected one report, got %d" (List.length reps)));
  (* The purge aborted the waited write's completion: its waiter
     unblocks with a typed reject rather than spinning forever. *)
  (match Domain.join waiter with
  | Error Shard_router.Shutdown -> ()
  | Error r ->
      Alcotest.fail ("unexpected reject " ^ Shard_router.reject_name r)
  | Ok _ -> Alcotest.fail "aborted write reported applied");
  checkb "reads after forced shutdown" true (Router.mem h 1);
  checkb "idempotent" true
    (match Router.shutdown t with
    | Shard_router.Forced _ -> true
    | Shard_router.Drained -> false);
  Router.unregister h

(* --- shutdown drains the backlog --- *)

let test_shutdown_drains_backlog () =
  let t = Router.create ~shards:4 ~queue_depth:2048 ~max_clients:2 () in
  let h = Router.register t in
  (* Enqueue before any updater exists, then start and immediately stop:
     every accepted operation must still be applied. *)
  let accepted = ref 0 in
  for k = 0 to 999 do
    if Router.insert h k k = Ok () then incr accepted
  done;
  Router.start t;
  checkb "drained" true (Router.shutdown t = Shard_router.Drained);
  checki "all accepted applied" !accepted (Router.drained t);
  checki "size matches" !accepted (Router.size t);
  Router.check t;
  Router.unregister h

(* --- open-loop generator --- *)

let test_open_loop_spec_validation () =
  checkb "defaults ok" true (ignore (Open_loop.spec ()); true);
  Alcotest.check_raises "clients"
    (Invalid_argument "Open_loop.spec: clients must be positive") (fun () ->
      ignore (Open_loop.spec ~clients:0 ()));
  Alcotest.check_raises "rate"
    (Invalid_argument "Open_loop.spec: rate must be positive") (fun () ->
      ignore (Open_loop.spec ~rate:0.0 ()));
  Alcotest.check_raises "retries"
    (Invalid_argument "Open_loop.spec: max_retries must be >= 0") (fun () ->
      ignore (Open_loop.spec ~max_retries:(-1) ()))

let test_open_loop_accounting () =
  (* A client that drops every delete and applies the rest: the harness
     must split the counts per op type and never lose an operation. *)
  let spec =
    Open_loop.spec ~clients:2 ~rate:4000.0 ~duration:0.2
      ~mix:(W.mix ~contains:50 ~insert:25 ~delete:25)
      ()
  in
  let r =
    Open_loop.run spec (fun _ ->
        {
          Open_loop.run_op =
            (fun op _ _ ->
              match op with
              | W.Delete -> Open_loop.Dropped
              | _ -> Open_loop.Applied true);
          finish = ignore;
        })
  in
  checkb "issued some" true (r.Open_loop.issued > 50);
  checki "conservation" r.Open_loop.issued
    (r.Open_loop.completed + r.Open_loop.dropped + r.Open_loop.exhausted
   + r.Open_loop.expired);
  checki "no retries without Busy" 0 r.Open_loop.retries;
  checkb "all drops are deletes" true
    (match r.Open_loop.dropped_by_op with
    | [ (W.Delete, n) ] -> n = r.Open_loop.dropped
    | [] -> r.Open_loop.dropped = 0
    | _ -> false);
  checkb "no delete latency recorded" true
    (not (List.mem_assoc W.Delete r.Open_loop.latency));
  List.iter
    (fun (_, h) ->
      checkb "histogram populated" true (Repro_workload.Latency.count h > 0))
    r.Open_loop.latency

let test_open_loop_retries () =
  (* Every op is Busy once, then applies: with a retry budget each
     completed op costs exactly one retry, and nothing is dropped. *)
  let spec =
    Open_loop.spec ~clients:2 ~rate:4000.0 ~duration:0.2 ~max_retries:3
      ~retry_base_ns:50_000 ()
  in
  let r =
    Open_loop.run spec (fun _ ->
        let busy_next = ref true in
        {
          Open_loop.run_op =
            (fun _ _ _ ->
              if !busy_next then begin
                busy_next := false;
                Open_loop.Busy
              end
              else begin
                busy_next := true;
                Open_loop.Applied true
              end);
          finish = ignore;
        })
  in
  checkb "issued some" true (r.Open_loop.issued > 50);
  checki "conservation" r.Open_loop.issued
    (r.Open_loop.completed + r.Open_loop.dropped + r.Open_loop.exhausted
   + r.Open_loop.expired);
  checki "nothing dropped" 0 r.Open_loop.dropped;
  (* One retry per completed op; ops cut off mid-backoff by the end of
     the run also counted their retry before going exhausted. *)
  checki "retries separately accounted" r.Open_loop.retries
    (r.Open_loop.completed + r.Open_loop.exhausted)

let test_open_loop_retry_budget_drops () =
  (* Always-Busy service, no deadline: the attempt budget runs out and
     the op is a terminal drop, with exactly max_retries retries. *)
  let spec =
    Open_loop.spec ~clients:1 ~rate:2000.0 ~duration:0.15 ~max_retries:2
      ~retry_base_ns:10_000 ()
  in
  let r =
    Open_loop.run spec (fun _ ->
        { Open_loop.run_op = (fun _ _ _ -> Open_loop.Busy); finish = ignore })
  in
  checkb "issued some" true (r.Open_loop.issued > 20);
  checki "conservation" r.Open_loop.issued
    (r.Open_loop.completed + r.Open_loop.dropped + r.Open_loop.exhausted
   + r.Open_loop.expired);
  checki "nothing completed" 0 r.Open_loop.completed;
  checkb "budget exhaustion drops" true (r.Open_loop.dropped > 0);
  (* Every terminal drop burned its full budget of 2 retries; ops cut
     off at the end of the run may have burned fewer. *)
  checkb "two retries per dropped op" true
    (r.Open_loop.retries >= 2 * r.Open_loop.dropped)

let test_open_loop_deadline_exhausts () =
  (* Always-Busy service under a deadline shorter than the first backoff:
     no retry is ever issued; every op exhausts its deadline — accounted
     separately from drops. *)
  let spec =
    Open_loop.spec ~clients:1 ~rate:2000.0 ~duration:0.15 ~max_retries:5
      ~retry_base_ns:1_000_000 ~deadline_ns:1 ()
  in
  let r =
    Open_loop.run spec (fun _ ->
        { Open_loop.run_op = (fun _ _ _ -> Open_loop.Busy); finish = ignore })
  in
  checkb "issued some" true (r.Open_loop.issued > 20);
  checki "every op exhausted its deadline" r.Open_loop.issued
    r.Open_loop.exhausted;
  checki "no terminal drops" 0 r.Open_loop.dropped;
  checki "no retries under a 1ns deadline" 0 r.Open_loop.retries

let test_open_loop_paces () =
  (* An instant-service run must issue roughly rate * duration ops — the
     generator is open-loop, not as-fast-as-possible. Generous bounds:
     the container has one core and sleep jitter. *)
  let spec = Open_loop.spec ~clients:2 ~rate:2000.0 ~duration:0.3 () in
  let r =
    Open_loop.run spec (fun _ ->
        {
          Open_loop.run_op = (fun _ _ _ -> Open_loop.Applied true);
          finish = ignore;
        })
  in
  let expected = 2000.0 *. r.Open_loop.wall in
  checkb
    (Printf.sprintf "issued %d near offered %.0f" r.Open_loop.issued expected)
    true
    (float_of_int r.Open_loop.issued > 0.5 *. expected
    && float_of_int r.Open_loop.issued < 1.5 *. expected)

let test_open_loop_expired_accounting () =
  (* A service that expires every third operation: [Expired] is terminal
     (never retried) and accounted separately, and the four-way
     conservation invariant holds exactly. *)
  let spec =
    Open_loop.spec ~clients:2 ~rate:4000.0 ~duration:0.2 ~max_retries:3
      ~retry_base_ns:10_000 ()
  in
  let r =
    Open_loop.run spec (fun _ ->
        let n = ref 0 in
        {
          Open_loop.run_op =
            (fun _ _ _ ->
              incr n;
              if !n mod 3 = 0 then Open_loop.Expired
              else Open_loop.Applied true);
          finish = ignore;
        })
  in
  checkb "issued some" true (r.Open_loop.issued > 50);
  checkb "expirations observed" true (r.Open_loop.expired > 0);
  checki "conservation" r.Open_loop.issued
    (r.Open_loop.completed + r.Open_loop.dropped + r.Open_loop.exhausted
   + r.Open_loop.expired);
  checki "expired is terminal: no retries" 0 r.Open_loop.retries;
  checki "expired is not dropped" 0 r.Open_loop.dropped

(* --- chaos: the seeded backlog-loss mutation --- *)

let test_chaos_mutation_caught () =
  let m = Chaos.mutation ~mutate:true (module Dict.Citrus_epoch) in
  checkb "mutant caught" true m.Chaos.caught;
  checkb "the forgotten batch is visible as loss" true (m.Chaos.lost > 0)

let test_chaos_control_silent () =
  let m = Chaos.mutation ~mutate:false (module Dict.Citrus_epoch) in
  checkb "control silent" false m.Chaos.caught;
  checki "nothing lost" 0 m.Chaos.lost;
  checki "every write applied" m.Chaos.expected m.Chaos.final_size

(* --- chaos: the seeded breaker and deadline mutations --- *)

let test_chaos_breaker_mutation_caught () =
  let m = Chaos.mutation_breaker ~mutate:true (module Dict.Citrus_epoch) in
  checkb "crash fired" true m.Chaos.crash_seen;
  checkb "mutant never tripped" false m.Chaos.tripped;
  checkb "mutant admitted the post-crash write" false m.Chaos.rejected;
  checkb "mutant caught" true m.Chaos.caught

let test_chaos_breaker_control_silent () =
  let m = Chaos.mutation_breaker ~mutate:false (module Dict.Citrus_epoch) in
  checkb "crash fired" true m.Chaos.crash_seen;
  checkb "control tripped at crash" true m.Chaos.tripped;
  checkb "control rejected the post-crash write" true m.Chaos.rejected;
  checkb "control silent" false m.Chaos.caught

let test_chaos_deadline_mutation_caught () =
  let m = Chaos.mutation_deadline ~mutate:true (module Dict.Citrus_epoch) in
  checkb "mutant caught" true m.Chaos.caught;
  checki "every expired write applied anyway" m.Chaos.queued m.Chaos.applied

let test_chaos_deadline_control_silent () =
  let m = Chaos.mutation_deadline ~mutate:false (module Dict.Citrus_epoch) in
  checkb "control silent" false m.Chaos.caught;
  checki "no expired write applied" 0 m.Chaos.applied

(* --- chaos: quick end-to-end run with both validators armed --- *)

let test_chaos_quick_armed () =
  Repro_sanitizer.Sanitizer.arm ();
  Repro_lockdep.Lockdep.arm ();
  Fun.protect
    ~finally:(fun () ->
      Repro_lockdep.Lockdep.disarm ();
      Repro_sanitizer.Sanitizer.disarm ())
    (fun () ->
      let c =
        Chaos.cfg ~shards:2 ~clients:2 ~rate:4000.0 ~duration:0.4
          ~key_range:1024 ~crashes_per_shard:1 ()
      in
      let r = Chaos.run (module Dict.Citrus_epoch) c in
      List.iter (fun f -> Alcotest.fail ("chaos: " ^ f)) r.Chaos.failures;
      checkb "writes accepted" true (r.Chaos.accepted > 0);
      checkb "crashes delivered" true
        (Array.for_all (fun n -> n >= 1) r.Chaos.crashes));
  checki "no lockdep violations" 0 (Repro_lockdep.Lockdep.violations ());
  checki "no sanitizer violations" 0 (Repro_sanitizer.Sanitizer.violations ())

(* --- end-to-end serve runs --- *)

let test_serve_end_to_end () =
  let c =
    Serve.cfg ~shards:3 ~clients:2 ~rate:3000.0 ~duration:0.25
      ~key_range:512 ~write_mode:Serve.Wait ()
  in
  let r = Serve.run ~observe:true (module Dict.Citrus_epoch) c in
  checkb "completed ops" true (r.Serve.load.Open_loop.completed > 0);
  checki "queues per shard" 3 (Array.length r.Serve.queues);
  checkb "writes drained" true (r.Serve.drained_total > 0);
  checkb "final size positive" true (r.Serve.final_size > 0);
  checkb "clean shutdown" true (r.Serve.shutdown = Shard_router.Drained);
  (* In Wait mode every accepted write resolves, so client-side completed
     writes = accepted = drained_total. *)
  let client_writes =
    List.fold_left
      (fun acc (op, h) ->
        if op = W.Contains then acc else acc + Repro_workload.Latency.count h)
      0 r.Serve.load.Open_loop.latency
  in
  checki "every accepted write applied" client_writes r.Serve.drained_total;
  checkb "metrics captured" true (r.Serve.metrics <> []);
  (* The JSON point must carry the schema-v1 latency fields per op, and
     the new retry/shutdown accounting. *)
  let doc = Serve.report [ r ] in
  let open Repro_obs.Json in
  let point =
    match
      Option.bind (member "experiments" doc) to_list_opt |> Option.get
    with
    | [ e ] ->
        (match Option.bind (member "points" e) to_list_opt with
        | Some [ p ] -> p
        | _ -> Alcotest.fail "expected one point")
    | _ -> Alcotest.fail "expected one experiment"
  in
  let lat = Option.get (member "latency_ns" point) in
  List.iter
    (fun op ->
      match member op lat with
      | Some s ->
          List.iter
            (fun f ->
              checkb
                (Printf.sprintf "%s has %s" op f)
                true
                (member f s <> None))
            [ "p50_ns"; "p99_ns"; "p999_ns" ]
      | None -> Alcotest.fail (op ^ " missing from latency_ns"))
    [ "contains"; "insert"; "delete" ];
  let ops = Option.get (member "ops" point) in
  List.iter
    (fun f -> checkb (f ^ " present") true (member f ops <> None))
    [ "retries"; "deadline_exhausted" ];
  checkb "shutdown mode reported" true
    (match Option.bind (member "shutdown" point) (member "mode") with
    | Some (String "drained") -> true
    | _ -> false);
  checkb "health reported per shard" true
    (match Option.bind (member "health" point) to_list_opt with
    | Some l -> List.length l = 3
    | None -> false)

let test_serve_armed () =
  (* The serve path under both validators: lockdep checks the queue-lock
     protocol (leaf lock, no tree-lock nesting), the sanitizer shadows
     every reclamation. Any violation raises and fails the test. *)
  Repro_sanitizer.Sanitizer.arm ();
  Repro_lockdep.Lockdep.arm ();
  Fun.protect
    ~finally:(fun () ->
      Repro_lockdep.Lockdep.disarm ();
      Repro_sanitizer.Sanitizer.disarm ())
    (fun () ->
      let c =
        Serve.cfg ~shards:2 ~clients:2 ~rate:2000.0 ~duration:0.2
          ~key_range:256 ~write_mode:Serve.Wait ()
      in
      let r = Serve.run (module Dict.Citrus_epoch) c in
      checkb "ops flowed" true (r.Serve.load.Open_loop.completed > 0));
  checki "no lockdep violations" 0 (Repro_lockdep.Lockdep.violations ());
  checki "no sanitizer violations" 0 (Repro_sanitizer.Sanitizer.violations ())

let () =
  Alcotest.run "server"
    [
      ( "shard-router",
        [
          Alcotest.test_case "hash distribution" `Quick
            test_shard_distribution;
          Alcotest.test_case "shard_of deterministic" `Quick
            test_shard_of_deterministic;
          Alcotest.test_case "FIFO per shard via router" `Quick
            test_fifo_per_shard_through_router;
          Alcotest.test_case "typed rejects: overload and full" `Quick
            test_typed_rejects;
          Alcotest.test_case "rejects after shutdown" `Quick
            test_rejected_after_shutdown;
          Alcotest.test_case "shutdown drains backlog" `Quick
            test_shutdown_drains_backlog;
          Alcotest.test_case "shutdown applies pre-start backlog" `Quick
            test_shutdown_applies_pre_start_backlog;
          Alcotest.test_case "shutdown drain deadline forces" `Quick
            test_shutdown_drain_deadline;
          Alcotest.test_case "deadline dead on arrival" `Quick
            test_deadline_dead_on_arrival;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip, probe, close" `Quick
            test_breaker_trip_probe_close;
          Alcotest.test_case "window rotation" `Quick
            test_breaker_window_rotation;
          Alcotest.test_case "jitter deterministic" `Quick
            test_breaker_jitter_deterministic;
          Alcotest.test_case "never-open mutant" `Quick
            test_breaker_never_open_mutant;
          Alcotest.test_case "config validation" `Quick
            test_breaker_config_validation;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "health state machine" `Quick
            test_health_state_machine;
          Alcotest.test_case "health pressure latch" `Quick
            test_health_pressure_latch;
          Alcotest.test_case "crash restart, validators armed" `Quick
            test_supervisor_restart_armed;
          Alcotest.test_case "budget exhaustion fails shard" `Quick
            test_budget_exhaustion_fails_shard;
          Alcotest.test_case "failed shard unblocks its waiter" `Quick
            test_failed_shard_unblocks_waiter;
        ] );
      ( "mod-queue",
        [
          Alcotest.test_case "FIFO drain order" `Quick test_fifo_drain;
          Alcotest.test_case "completion wake-up" `Quick
            test_completion_wakeup;
          Alcotest.test_case "completion abort" `Quick test_completion_abort;
          Alcotest.test_case "completions through updater" `Quick
            test_completion_through_updater;
          Alcotest.test_case "purge aborts completions" `Quick
            test_purge_aborts_completions;
          Alcotest.test_case "close rejects enqueue" `Quick
            test_close_rejects_enqueue;
          Alcotest.test_case "staleness watchdog" `Quick test_stall_watchdog;
        ] );
      ( "open-loop",
        [
          Alcotest.test_case "spec validation" `Quick
            test_open_loop_spec_validation;
          Alcotest.test_case "outcome accounting" `Quick
            test_open_loop_accounting;
          Alcotest.test_case "retry accounting" `Quick test_open_loop_retries;
          Alcotest.test_case "retry budget drops" `Quick
            test_open_loop_retry_budget_drops;
          Alcotest.test_case "deadline exhaustion" `Quick
            test_open_loop_deadline_exhausts;
          Alcotest.test_case "paces to offered load" `Quick
            test_open_loop_paces;
          Alcotest.test_case "expired accounting" `Quick
            test_open_loop_expired_accounting;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "backlog-loss mutation caught" `Quick
            test_chaos_mutation_caught;
          Alcotest.test_case "control silent" `Quick test_chaos_control_silent;
          Alcotest.test_case "breaker mutation caught" `Quick
            test_chaos_breaker_mutation_caught;
          Alcotest.test_case "breaker control silent" `Quick
            test_chaos_breaker_control_silent;
          Alcotest.test_case "deadline mutation caught" `Quick
            test_chaos_deadline_mutation_caught;
          Alcotest.test_case "deadline control silent" `Quick
            test_chaos_deadline_control_silent;
          Alcotest.test_case "quick run, validators armed" `Quick
            test_chaos_quick_armed;
        ] );
      ( "serve",
        [
          Alcotest.test_case "end to end with JSON" `Quick
            test_serve_end_to_end;
          Alcotest.test_case "lockdep + sanitizer armed" `Quick
            test_serve_armed;
        ] );
    ]
