(* Fixture-based tests for bin/lint.ml: each pass must fire on exactly
   its seeded-bad fixture and stay silent on the good ones.

   test/lint_fixtures/ is a data_only_dir (dune never compiles it), laid
   out like a miniature lib/ — including lib/server/ and lib/workload/
   subtrees so the path-scoped determinism pass exercises its scoping.
   The lint binary is run over that tree exactly as `dune build @lint`
   runs it over lib/, and its stderr is parsed line by line. *)

let fixture_root = "lint_fixtures"

(* message fragment -> the one fixture file allowed to produce it *)
let expected =
  [
    ("use of Mutex", "lint_fixtures/bad_mutex.ml");
    ("Obj.magic", "lint_fixtures/bad_magic.ml");
    ("lock-protected field", "lint_fixtures/bad_protected.ml");
    ("missing interface", "lint_fixtures/bad_no_mli.ml");
    ("read-modify-write", "lint_fixtures/bad_rmw.ml");
    ("use of Random", "lint_fixtures/lib/server/bad_random.ml");
    ("wall clock", "lint_fixtures/lib/workload/bad_clock_seed.ml");
  ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let run_lint () =
  let cmd = Printf.sprintf "../bin/lint.exe %s 2>&1" fixture_root in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (List.rev !lines, status)

(* The diagnostic lines: "file:line: message" on fixture files (the
   trailing "lint: N violation(s)" summary is not one). *)
let diagnostics lines =
  List.filter (fun l -> contains_sub l (fixture_root ^ "/")) lines

let test_exit_and_summary () =
  let lines, status = run_lint () in
  (match status with
  | Unix.WEXITED 1 -> ()
  | Unix.WEXITED n -> Alcotest.failf "lint exited %d, expected 1" n
  | _ -> Alcotest.fail "lint killed by signal");
  Alcotest.(check bool)
    "summary line present" true
    (List.exists (fun l -> contains_sub l "violation(s)") lines)

let test_each_pass_fires () =
  let lines, _ = run_lint () in
  List.iter
    (fun (msg, file) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S reported against %s" msg file)
        true
        (List.exists
           (fun l -> contains_sub l file && contains_sub l msg)
           (diagnostics lines)))
    expected

let test_no_cross_fire () =
  (* Every diagnostic names a seeded-bad file, and carries only that
     file's expected message — no pass fires on another pass's fixture
     or on a good file. *)
  let lines, _ = run_lint () in
  List.iter
    (fun l ->
      match
        List.find_opt (fun (_, file) -> contains_sub l file) expected
      with
      | None -> Alcotest.failf "diagnostic against an unexpected file: %s" l
      | Some (msg, file) ->
          Alcotest.(check bool)
            (Printf.sprintf "only %S may fire on %s (got: %s)" msg file l)
            true (contains_sub l msg))
    (diagnostics lines);
  List.iter
    (fun good ->
      Alcotest.(check bool)
        (good ^ " stays clean")
        false
        (List.exists (fun l -> contains_sub l good) (diagnostics lines)))
    [ "good.ml"; "good_seed.ml" ]

let test_real_tree_clean () =
  (* The passes hold on the actual library source: `lint lib` from the
     repo root is what `dune build @lint` enforces, and it must be
     silent — in particular the new determinism and RMW passes must not
     false-positive on the slot words, the lock-held gp_ctr flip, or the
     config-seeded Rngs. *)
  if not (Sys.file_exists "../../../lib") then () else
  let ic = Unix.open_process_in "../bin/lint.exe ../../../lib 2>&1" in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  Alcotest.(check bool) "no output" true (!lines = []);
  match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "lint over lib/ must exit 0"

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "exit code and summary" `Quick
            test_exit_and_summary;
          Alcotest.test_case "each pass fires on its fixture" `Quick
            test_each_pass_fires;
          Alcotest.test_case "no pass cross-fires" `Quick test_no_cross_fire;
          Alcotest.test_case "real lib/ tree is clean" `Quick
            test_real_tree_clean;
        ] );
    ]
