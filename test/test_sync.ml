(* Unit and property tests for the concurrency substrate (lib/sync). *)

module Spinlock = Repro_sync.Spinlock
module Backoff = Repro_sync.Backoff
module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng
module Registry = Repro_sync.Registry
module Stats = Repro_sync.Stats

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Spinlock --- *)

let test_spinlock_basic () =
  let l = Spinlock.create () in
  checkb "initially free" false (Spinlock.is_locked l);
  Spinlock.acquire l;
  checkb "locked after acquire" true (Spinlock.is_locked l);
  checkb "try_acquire fails when held" false (Spinlock.try_acquire l);
  Spinlock.release l;
  checkb "free after release" false (Spinlock.is_locked l);
  checkb "try_acquire succeeds when free" true (Spinlock.try_acquire l);
  Spinlock.release l

let test_spinlock_release_unheld () =
  let l = Spinlock.create () in
  Alcotest.check_raises "double release"
    (Invalid_argument "Spinlock.release: lock was not held") (fun () ->
      Spinlock.release l)

let test_spinlock_with_lock_exception () =
  let l = Spinlock.create () in
  (try Spinlock.with_lock l (fun () -> failwith "boom") with Failure _ -> ());
  checkb "released after exception" false (Spinlock.is_locked l);
  (* The lock must remain fully usable after the unwound section. *)
  Spinlock.with_lock l (fun () -> checkb "re-lockable" true (Spinlock.is_locked l));
  checkb "free again" false (Spinlock.is_locked l)

(* Lockdep-armed misuse detection (debug mode): double unlock and foreign
   unlock are structured violations raised *before* the lock word is
   touched, so the real holder is never broken. Disarmed, the historical
   Invalid_argument on a free lock still applies (tested above). *)

module Lockdep = Repro_lockdep.Lockdep

let with_lockdep f =
  Lockdep.reset ();
  let was = Lockdep.enabled () in
  Lockdep.arm ();
  Fun.protect
    ~finally:(fun () ->
      if not was then Lockdep.disarm ();
      Lockdep.reset ())
    f

let test_spinlock_double_unlock_armed () =
  with_lockdep (fun () ->
      let l = Spinlock.create () in
      Spinlock.acquire l;
      Spinlock.release l;
      match Spinlock.release l with
      | () -> Alcotest.fail "double unlock not detected"
      | exception Lockdep.Violation r ->
          checkb "release-not-held report" true
            (r.Lockdep.kind = Lockdep.Release_not_held))

let test_spinlock_foreign_unlock_armed () =
  with_lockdep (fun () ->
      let l = Spinlock.create () in
      (* Another domain takes the lock and keeps holding it. *)
      Domain.join (Domain.spawn (fun () -> Spinlock.acquire l));
      (match Spinlock.release l with
      | () -> Alcotest.fail "foreign unlock not detected"
      | exception Lockdep.Violation r ->
          checkb "release-not-held report" true
            (r.Lockdep.kind = Lockdep.Release_not_held));
      (* The refused release must leave the holder's lock intact. *)
      checkb "lock state untouched" true (Spinlock.is_locked l))

let test_spinlock_mutual_exclusion () =
  let l = Spinlock.create () in
  let counter = ref 0 in
  let iterations = 10_000 in
  let worker () =
    for _ = 1 to iterations do
      Spinlock.acquire l;
      (* Non-atomic increment: only correct if the lock really excludes. *)
      counter := !counter + 1;
      Spinlock.release l
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  checki "all increments preserved" (4 * iterations) !counter

(* --- Ticket lock --- *)

module Ticket_lock = Repro_sync.Ticket_lock

let test_ticket_basic () =
  let l = Ticket_lock.create () in
  checkb "initially free" false (Ticket_lock.is_locked l);
  Ticket_lock.acquire l;
  checkb "locked" true (Ticket_lock.is_locked l);
  checkb "try fails when held" false (Ticket_lock.try_acquire l);
  Ticket_lock.release l;
  checkb "free again" false (Ticket_lock.is_locked l);
  checkb "try succeeds when free" true (Ticket_lock.try_acquire l);
  Ticket_lock.release l;
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Ticket_lock.release: lock was not held") (fun () ->
      Ticket_lock.release l)

let test_ticket_mutual_exclusion () =
  let l = Ticket_lock.create () in
  let counter = ref 0 in
  let iterations = 10_000 in
  let worker () =
    for _ = 1 to iterations do
      Ticket_lock.with_lock l (fun () -> counter := !counter + 1)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  checki "all increments preserved" (4 * iterations) !counter

let test_ticket_with_lock_exception () =
  let l = Ticket_lock.create () in
  (try Ticket_lock.with_lock l (fun () -> failwith "boom")
   with Failure _ -> ());
  checkb "released after exception" false (Ticket_lock.is_locked l);
  (* The FIFO must not have lost a slot: later acquisitions proceed. *)
  Ticket_lock.with_lock l (fun () ->
      checkb "re-lockable" true (Ticket_lock.is_locked l));
  checkb "free again" false (Ticket_lock.is_locked l)

let test_ticket_fifo_order () =
  (* Threads arrive with generously staggered delays while the main thread
     holds the lock; service must follow arrival order. *)
  let l = Ticket_lock.create () in
  let served = ref [] in
  Ticket_lock.acquire l;
  let n = 3 in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            Unix.sleepf (0.06 *. float_of_int i);
            Ticket_lock.acquire l;
            served := i :: !served;
            Ticket_lock.release l))
  in
  (* Release only after every arrival is queued. *)
  Unix.sleepf (0.06 *. float_of_int n);
  Ticket_lock.release l;
  List.iter Domain.join domains;
  Alcotest.check
    Alcotest.(list int)
    "FIFO service order" [ 0; 1; 2 ] (List.rev !served)

(* --- Backoff --- *)

let test_backoff_escalates () =
  let b = Backoff.create ~max_spins:4 () in
  for _ = 1 to 100 do
    Backoff.once b
  done;
  checki "counts steps" 100 (Backoff.spins b);
  Backoff.reset b;
  checki "reset clears count" 0 (Backoff.spins b)

(* --- Barrier --- *)

let test_barrier_reusable () =
  let n = 4 in
  let bar = Barrier.create n in
  let rounds = 50 in
  let log = Array.make n 0 in
  let worker i () =
    for r = 1 to rounds do
      log.(i) <- r;
      Barrier.wait bar;
      (* After the barrier, every participant must have reached round r. *)
      Array.iter (fun v -> assert (v >= r)) log;
      Barrier.wait bar
    done
  in
  let domains = List.init n (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  checki "parties" n (Barrier.parties bar)

let test_barrier_second_cohort () =
  (* A barrier must reset itself completely: a second, entirely fresh
     cohort of domains (not the same ones looping) passes it too. *)
  let n = 3 in
  let bar = Barrier.create n in
  let wave () =
    let ds = List.init n (fun _ -> Domain.spawn (fun () -> Barrier.wait bar)) in
    List.iter Domain.join ds
  in
  wave ();
  wave ();
  checki "parties unchanged" n (Barrier.parties bar)

let test_barrier_invalid () =
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Barrier.create: parties must be positive") (fun () ->
      ignore (Barrier.create 0))

(* --- Rng (SplitMix64) --- *)

(* Reference outputs for seed 0 from the canonical SplitMix64 (Steele, Lea &
   Flood; same constants as Java's SplittableRandom). *)
let test_rng_reference_vector () =
  let r = Rng.create 0L in
  let expected =
    [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ]
  in
  List.iter
    (fun e ->
      Alcotest.check Alcotest.int64 "splitmix64 output" e (Rng.next64 r))
    expected

let test_rng_int_bounds () =
  let r = Rng.create 42L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_determinism () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 100 (fun _ -> Rng.next64 a) in
  let ys = List.init 100 (fun _ -> Rng.next64 b) in
  checkb "streams differ" true (xs <> ys)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:1000 QCheck.int64
    (fun seed ->
      let r = Rng.create seed in
      let f = Rng.float r in
      f >= 0.0 && f < 1.0)

(* --- Registry --- *)

let test_registry_acquire_release () =
  let reg = Registry.create ~capacity:3 ~make:(fun i -> i * 10) in
  let a = Registry.acquire reg in
  let b = Registry.acquire reg in
  let c = Registry.acquire reg in
  checki "distinct slots" 3 (List.length (List.sort_uniq compare [ a; b; c ]));
  checki "active" 3 (Registry.active reg);
  Alcotest.check_raises "full" Registry.Full (fun () ->
      ignore (Registry.acquire reg));
  Registry.release reg b;
  checki "slot reused" b (Registry.acquire reg);
  checki "payload" (a * 10) (Registry.get reg a);
  checki "capacity" 3 (Registry.capacity reg)

let test_registry_double_release () =
  let reg = Registry.create ~capacity:1 ~make:(fun _ -> ()) in
  let s = Registry.acquire reg in
  Registry.release reg s;
  Alcotest.check_raises "double release"
    (Invalid_argument "Registry.release: slot was not held") (fun () ->
      Registry.release reg s)

let test_registry_concurrent () =
  let capacity = 16 in
  let reg = Registry.create ~capacity ~make:(fun i -> i) in
  let worker () =
    for _ = 1 to 1000 do
      match Registry.acquire reg with
      | slot -> Registry.release reg slot
      | exception Registry.Full -> ()
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  checki "all free at the end" 0 (Registry.active reg)

(* --- Stats --- *)

let test_stats_counter () =
  let c = Stats.create ~stripes:4 "ops" in
  for i = 0 to 99 do
    Stats.incr c i
  done;
  Stats.add c 0 50;
  checki "sum over stripes" 150 (Stats.read c);
  Stats.reset c;
  checki "reset" 0 (Stats.read c);
  check Alcotest.string "name" "ops" (Stats.name c)

let test_stats_group () =
  let g = Stats.group () in
  let a = Stats.counter g "a" in
  let b = Stats.counter g "b" in
  Stats.incr a 0;
  Stats.add b 0 2;
  Alcotest.check
    Alcotest.(list (pair string int))
    "dump in creation order"
    [ ("a", 1); ("b", 2) ]
    (Stats.dump g)

let test_stats_concurrent () =
  let c = Stats.create "hits" in
  let per_domain = 25_000 in
  let worker i () =
    for _ = 1 to per_domain do
      Stats.incr c i
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  checki "no lost updates" (4 * per_domain) (Stats.read c)

let () =
  Alcotest.run "sync"
    [
      ( "spinlock",
        [
          Alcotest.test_case "basic" `Quick test_spinlock_basic;
          Alcotest.test_case "release unheld" `Quick
            test_spinlock_release_unheld;
          Alcotest.test_case "with_lock exception" `Quick
            test_spinlock_with_lock_exception;
          Alcotest.test_case "mutual exclusion" `Quick
            test_spinlock_mutual_exclusion;
          Alcotest.test_case "double unlock (lockdep)" `Quick
            test_spinlock_double_unlock_armed;
          Alcotest.test_case "foreign unlock (lockdep)" `Quick
            test_spinlock_foreign_unlock_armed;
        ] );
      ( "ticket_lock",
        [
          Alcotest.test_case "basic" `Quick test_ticket_basic;
          Alcotest.test_case "with_lock exception" `Quick
            test_ticket_with_lock_exception;
          Alcotest.test_case "mutual exclusion" `Quick
            test_ticket_mutual_exclusion;
          Alcotest.test_case "FIFO order" `Quick test_ticket_fifo_order;
        ] );
      ( "backoff",
        [ Alcotest.test_case "escalates and resets" `Quick test_backoff_escalates ] );
      ( "barrier",
        [
          Alcotest.test_case "reusable rounds" `Quick test_barrier_reusable;
          Alcotest.test_case "second cohort" `Quick test_barrier_second_cohort;
          Alcotest.test_case "invalid parties" `Quick test_barrier_invalid;
        ] );
      ( "rng",
        [
          Alcotest.test_case "reference vector" `Quick test_rng_reference_vector;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_float_unit;
        ] );
      ( "registry",
        [
          Alcotest.test_case "acquire/release" `Quick
            test_registry_acquire_release;
          Alcotest.test_case "double release" `Quick test_registry_double_release;
          Alcotest.test_case "concurrent churn" `Quick test_registry_concurrent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_stats_counter;
          Alcotest.test_case "group dump" `Quick test_stats_group;
          Alcotest.test_case "concurrent increments" `Quick
            test_stats_concurrent;
        ] );
    ]
