lib/dict/dict_intf.ml:
