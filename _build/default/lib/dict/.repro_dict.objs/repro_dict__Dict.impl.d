lib/dict/dict.ml: Dict_intf List Repro_baselines Repro_citrus Repro_rcu
