lib/dict/dict.mli: Dict_intf
