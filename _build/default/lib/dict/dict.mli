(** The registry of dictionary implementations benchmarked by the paper's
    evaluation (plus our control baselines), behind the common
    {!Dict_intf.DICT} interface. *)

module type DICT = Dict_intf.DICT

module Citrus_epoch : DICT
(** Citrus over the paper's new RCU — the headline configuration. *)

module Citrus_urcu : DICT
(** Citrus over stock global-lock URCU (Figure 8, left curve). *)

module Citrus_qsbr : DICT
(** Citrus over quiescent-state-based RCU (flavour ablation). *)

module Rb : DICT
(** Relativistic red-black tree (global writer lock + RCU readers). *)

module Bonsai : DICT
(** Path-copying balanced tree with a global writer lock. *)

module Avl : DICT
(** Bronson et al. optimistic AVL. *)

module Nm : DICT
(** Natarajan & Mittal lock-free external BST. *)

module Skiplist : DICT
(** Herlihy et al. lazy skiplist. *)

module Ellen : DICT
(** Ellen et al. non-blocking external BST (related work [10]). *)

module Cf : DICT
(** Crain et al. contention-friendly tree (related work [7]); the adapter
    does not run the background structural pass — drive
    {!Repro_baselines.Cf_tree.structural_pass} separately when needed. *)

module Rcu_hash : DICT
(** RCU hash table with per-bucket locks (the paper's "prior art" for
    concurrent updates with RCU; related work [25,26]). *)

module Lazy_list : DICT
(** Lazy list-based set (the origin of Citrus's marked bit; related work
    [14]). O(n) — only for small key ranges. *)

module Coarse : DICT
(** Single-lock BST (control; not in the paper). *)

val all : (module DICT) list
(** Every implementation, paper set first. *)

val paper_set : (module DICT) list
(** The six structures of Figures 9-10: citrus, avl, skiplist, bonsai,
    red-black, lock-free. *)

val find : string -> (module DICT)
(** Look up by [name]. @raise Not_found for unknown names. *)
