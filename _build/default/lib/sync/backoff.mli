(** Escalating backoff for spin loops.

    On this reproduction's single-core container a spinning domain can starve
    the domain it is waiting for, so every spin loop in the repository must go
    through this module: it starts with cheap [Domain.cpu_relax] pauses and
    escalates to yielding the OS timeslice ([Unix.sleepf 0.]) and finally to
    short sleeps. *)

type t

val create : ?max_spins:int -> unit -> t
(** [create ()] returns a fresh backoff state. [max_spins] bounds the number
    of pure [cpu_relax] rounds before the state escalates to yielding
    (default 64). *)

val once : t -> unit
(** Perform one backoff step and escalate the internal state. *)

val reset : t -> unit
(** Return to the cheapest backoff level (call after making progress). *)

val spins : t -> int
(** Total number of backoff steps performed since creation or [reset]
    (useful for contention statistics). *)
