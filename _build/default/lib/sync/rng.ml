type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used in workloads (<= 2^21 keys vs 2^62 range). [land max_int]
     clears the sign bit after the 64->63-bit truncation of [to_int]. *)
  let v = Int64.to_int (next64 t) land max_int in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L
