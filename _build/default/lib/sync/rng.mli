(** SplitMix64 pseudo-random number generator.

    Each benchmark/test domain owns its own generator, so random operation
    streams are deterministic per seed and free of cross-domain
    synchronization (the stdlib [Random] state would either be shared or
    domain-split non-deterministically). The algorithm is Steele, Lea &
    Flood's SplitMix64, matching the reference output (see test vectors in
    the test suite). *)

type t

val create : int64 -> t
(** [create seed] returns a generator with the given 64-bit seed. *)

val split : t -> t
(** Derive an independent generator; used to seed one generator per domain
    from a single experiment seed. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val bool : t -> bool
