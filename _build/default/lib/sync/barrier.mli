(** Reusable sense-reversing barrier for synchronizing domain start/stop in
    benchmarks and concurrency tests. *)

type t

val create : int -> t
(** [create n] makes a barrier for [n] participants. Raises
    [Invalid_argument] if [n <= 0]. *)

val wait : t -> unit
(** Block (with backoff) until all [n] participants have called [wait]. The
    barrier then resets and may be reused for the next round. *)

val parties : t -> int
(** The number of participants the barrier was created for. *)
