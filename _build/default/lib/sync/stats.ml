type t = {
  name : string;
  cells : int Atomic.t array;
}

let create ?(stripes = 64) name =
  if stripes <= 0 then invalid_arg "Stats.create: stripes must be positive";
  { name; cells = Array.init stripes (fun _ -> Atomic.make 0) }

let name t = t.name

let add t stripe n =
  let cell = t.cells.(stripe mod Array.length t.cells) in
  ignore (Atomic.fetch_and_add cell n)

let incr t stripe = add t stripe 1

let read t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells

let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells

type group = t list ref

let group () = ref []

let counter g ?stripes name =
  let c = create ?stripes name in
  g := c :: !g;
  c

let dump g = List.rev_map (fun c -> (c.name, read c)) !g
