type t = {
  parties : int;
  arrived : int Atomic.t;
  sense : bool Atomic.t;
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { parties; arrived = Atomic.make 0; sense = Atomic.make false }

let parties t = t.parties

(* Sense reversing: the last arriver flips [sense], which releases everyone
   spinning on the old sense; [arrived] is reset before the flip so the
   barrier is immediately reusable. *)
let wait t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.arrived 1 = t.parties - 1 then begin
    Atomic.set t.arrived 0;
    Atomic.set t.sense my_sense
  end
  else begin
    let b = Backoff.create () in
    while Atomic.get t.sense <> my_sense do
      Backoff.once b
    done
  end
