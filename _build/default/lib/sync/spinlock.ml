type t = bool Atomic.t

let create () = Atomic.make false

let try_acquire t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let acquire t =
  if not (try_acquire t) then begin
    let b = Backoff.create () in
    while not (try_acquire t) do
      Backoff.once b
    done
  end

let release t =
  if not (Atomic.exchange t false) then
    invalid_arg "Spinlock.release: lock was not held"

let is_locked t = Atomic.get t

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
