(** Striped event counters for contention statistics.

    A counter is an array of per-stripe cells; each thread increments its own
    stripe, so counting never becomes the bottleneck it is measuring. Reads
    sum all stripes (racy but monotone — adequate for throughput and restart
    statistics). *)

type t

val create : ?stripes:int -> string -> t
(** [create name] makes a named counter with [stripes] cells (default 64). *)

val name : t -> string

val incr : t -> int -> unit
(** [incr t stripe] adds one to the given stripe ([stripe] is typically the
    caller's thread slot; it is reduced modulo the stripe count). *)

val add : t -> int -> int -> unit
(** [add t stripe n] adds [n]. *)

val read : t -> int
(** Sum of all stripes. *)

val reset : t -> unit

type group

val group : unit -> group
(** A registry of counters, so a subsystem can expose all its statistics. *)

val counter : group -> ?stripes:int -> string -> t
(** Create a counter registered in [group]. *)

val dump : group -> (string * int) list
(** All counters of the group with their current values, in creation order. *)
