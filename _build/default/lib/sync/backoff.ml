type t = {
  max_spins : int;
  mutable level : int;
  mutable count : int;
}

let create ?(max_spins = 64) () = { max_spins; level = 0; count = 0 }

let reset t =
  t.level <- 0;
  t.count <- 0

(* Three regimes: busy pauses, timeslice yields, then short sleeps whose
   duration grows with the level (capped at ~1ms so grace-period waits stay
   responsive). *)
let once t =
  t.count <- t.count + 1;
  let level = t.level in
  t.level <- level + 1;
  if level < t.max_spins then Domain.cpu_relax ()
  else if level < t.max_spins * 4 then Unix.sleepf 0.
  else begin
    let excess = level - (t.max_spins * 4) in
    let micros = min 1000 (1 lsl min excess 10) in
    Unix.sleepf (float_of_int micros *. 1e-6)
  end

let spins t = t.count
