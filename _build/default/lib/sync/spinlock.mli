(** Test-and-test-and-set spin lock with backoff.

    Used as the per-node lock of Citrus and the lock-based baselines: a heap
    word per lock (much lighter than [Mutex.t]) and fast in the uncontended
    case. Acquisition loops use {!Backoff} so spinning never starves the
    holder on a single core. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Block (spin) until the lock is held by the caller. Not reentrant. *)

val try_acquire : t -> bool
(** Attempt to take the lock without spinning; [true] on success. *)

val release : t -> unit
(** Release a held lock. Releasing a free lock is a programming error and
    raises [Invalid_argument]. *)

val is_locked : t -> bool
(** Snapshot of the lock state, for assertions and statistics only. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] under the lock, releasing on exception. *)
