let line_words = 8

(* The pad array is kept alive via a global sink so the allocations are not
   immediately collected (dead pads would let later allocations reuse the
   space and defeat the spacing). *)
let sink : int array list ref = ref []

let spaced_atomic init =
  let a = Atomic.make init in
  sink := Array.make line_words 0 :: !sink;
  a

let spaced_atomics n init = Array.init n (fun _ -> spaced_atomic init)
