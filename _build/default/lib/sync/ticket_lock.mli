(** FIFO ticket lock — the fair alternative to {!Spinlock}'s
    test-and-test-and-set.

    Under heavy contention a TAS lock lets one thread re-acquire
    repeatedly (unfair but cache-friendly); a ticket lock serves strictly
    in arrival order. The micro-benchmarks compare both so the choice of
    per-node lock in the trees is a measured decision, not folklore. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Take a ticket and spin (with backoff) until served. Not reentrant. *)

val try_acquire : t -> bool
(** Acquire only if the lock is free and no one is waiting. *)

val release : t -> unit
(** Serve the next ticket. Raises [Invalid_argument] if the lock is not
    held. *)

val is_locked : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
