lib/sync/rng.ml: Int64
