lib/sync/rng.mli:
