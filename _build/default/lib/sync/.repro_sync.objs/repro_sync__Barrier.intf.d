lib/sync/barrier.mli:
