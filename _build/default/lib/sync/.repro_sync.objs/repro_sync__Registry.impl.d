lib/sync/registry.ml: Array Atomic
