lib/sync/backoff.mli:
