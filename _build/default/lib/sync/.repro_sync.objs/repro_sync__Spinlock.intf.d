lib/sync/spinlock.mli:
