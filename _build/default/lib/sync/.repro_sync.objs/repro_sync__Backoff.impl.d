lib/sync/backoff.ml: Domain Unix
