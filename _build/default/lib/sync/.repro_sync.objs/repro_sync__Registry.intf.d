lib/sync/registry.mli:
