lib/sync/padding.ml: Array Atomic
