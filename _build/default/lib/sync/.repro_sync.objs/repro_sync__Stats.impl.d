lib/sync/stats.ml: Array Atomic List
