lib/sync/ticket_lock.mli:
