lib/sync/stats.mli:
