lib/sync/barrier.ml: Atomic Backoff
