lib/citrus/citrus.ml: Array Atomic List Option Printf Repro_rcu Repro_sync
