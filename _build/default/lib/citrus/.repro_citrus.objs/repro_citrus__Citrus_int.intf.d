lib/citrus/citrus_int.mli: Citrus Repro_rcu
