lib/citrus/citrus.mli: Repro_rcu
