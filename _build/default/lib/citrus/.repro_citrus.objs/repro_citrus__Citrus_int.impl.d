lib/citrus/citrus_int.ml: Citrus Int Repro_rcu
