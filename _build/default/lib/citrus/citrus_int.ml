module Ord_int = struct
  type t = int

  let compare = Int.compare
end

module Epoch = Citrus.Make (Ord_int) (Repro_rcu.Epoch_rcu)
module Urcu = Citrus.Make (Ord_int) (Repro_rcu.Urcu)
module Qsbr = Citrus.Make (Ord_int) (Repro_rcu.Qsbr)
