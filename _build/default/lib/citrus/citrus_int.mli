(** Ready-made Citrus instantiations over [int] keys, one per RCU flavour —
    the configurations measured in the paper's evaluation. *)

module Ord_int : Citrus.ORDERED with type t = int

module Epoch : module type of Citrus.Make (Ord_int) (Repro_rcu.Epoch_rcu)
(** Citrus over the paper's new RCU (the default configuration, Fig. 8
    right / Figs. 9-10). *)

module Urcu : module type of Citrus.Make (Ord_int) (Repro_rcu.Urcu)
(** Citrus over the stock global-lock user-space RCU (Fig. 8 left). *)

module Qsbr : module type of Citrus.Make (Ord_int) (Repro_rcu.Qsbr)
(** Citrus over quiescent-state-based RCU (not in the paper; included for
    the RCU-flavour ablation). *)
