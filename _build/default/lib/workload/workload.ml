module Rng = Repro_sync.Rng

type op = Contains | Insert | Delete

type mix = { contains_pct : int; insert_pct : int; delete_pct : int }

let mix ~contains ~insert ~delete =
  if contains < 0 || insert < 0 || delete < 0
     || contains + insert + delete <> 100
  then invalid_arg "Workload.mix: percentages must be >= 0 and sum to 100";
  { contains_pct = contains; insert_pct = insert; delete_pct = delete }

let read_only = mix ~contains:100 ~insert:0 ~delete:0
let contains_98 = mix ~contains:98 ~insert:1 ~delete:1
let contains_50 = mix ~contains:50 ~insert:25 ~delete:25
let update_only = mix ~contains:0 ~insert:50 ~delete:50

let pp_mix ppf m =
  Format.fprintf ppf "%d%%c/%d%%i/%d%%d" m.contains_pct m.insert_pct
    m.delete_pct

type role = Uniform of mix | Single_writer of mix

type key_dist = Uniform_keys | Zipf of float

type config = {
  key_range : int;
  key_dist : key_dist;
  role : role;
  threads : int;
  duration : float;
  prefill_fraction : float;
  seed : int64;
}

let config ?(key_range = 20_000) ?(key_dist = Uniform_keys)
    ?(role = Uniform contains_50) ?(threads = 4) ?(duration = 1.0)
    ?(prefill_fraction = 0.5) ?(seed = 42L) () =
  if key_range <= 0 then invalid_arg "Workload.config: key_range must be positive";
  if threads <= 0 then invalid_arg "Workload.config: threads must be positive";
  if prefill_fraction < 0.0 || prefill_fraction > 1.0 then
    invalid_arg "Workload.config: prefill_fraction must be in [0,1]";
  (match key_dist with
  | Zipf theta when theta <= 0.0 || theta >= 1.0 ->
      invalid_arg "Workload.config: Zipf theta must be in (0,1)"
  | Zipf _ | Uniform_keys -> ());
  { key_range; key_dist; role; threads; duration; prefill_fraction; seed }

let pick rng m =
  let r = Rng.int rng 100 in
  if r < m.contains_pct then Contains
  else if r < m.contains_pct + m.insert_pct then Insert
  else Delete

(* Zipfian sampling after Gray et al., "Quickly generating billion-record
   synthetic databases" (SIGMOD 1994): rank 0 is the hottest key. *)
let key_generator cfg rng =
  match cfg.key_dist with
  | Uniform_keys ->
      let n = cfg.key_range in
      fun () -> Rng.int rng n
  | Zipf theta ->
      let n = cfg.key_range in
      let zeta =
        let s = ref 0.0 in
        for i = 1 to n do
          s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
        done;
        !s
      in
      let zeta2 = 1.0 +. (1.0 /. Float.pow 2.0 theta) in
      let alpha = 1.0 /. (1.0 -. theta) in
      let eta =
        (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
        /. (1.0 -. (zeta2 /. zeta))
      in
      fun () ->
        let u = Rng.float rng in
        let uz = u *. zeta in
        if uz < 1.0 then 0
        else if uz < zeta2 then 1
        else
          let r =
            float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
          in
          min (n - 1) (int_of_float r)
