(** Per-operation latency measurement with log-linear histograms
    (HdrHistogram-style: power-of-two major buckets, 16 linear sub-buckets,
    ≤ ~0.7% relative error). Complements throughput numbers: a structure
    whose synchronize_rcu stalls show up in p99 long before they dent the
    mean. *)

type histogram

val histogram : unit -> histogram
val record : histogram -> int -> unit
(** [record h ns] adds one sample (negative samples count as 0). *)

val merge : histogram list -> histogram
val count : histogram -> int

type summary = {
  count : int;
  mean_ns : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max_ns : float;
}

val summarize : histogram -> summary
val percentile : histogram -> float -> float
(** [percentile h 0.99] is the latency (ns) at or below which 99% of the
    samples fall; 0 for an empty histogram. *)

val pp_summary : Format.formatter -> summary -> unit

val measure :
  (module Repro_dict.Dict.DICT) ->
  Workload.config ->
  (Workload.op * summary) list
(** Run the workload (as {!Runner.run} does) but time every operation with
    the monotonic clock, returning one summary per operation type that
    actually occurred. *)
