(** Workload descriptions for the paper's evaluation (Section 5): uniform
    random keys over a range, an operation mix, a thread count, and a timed
    run over a pre-filled dictionary. *)

type op = Contains | Insert | Delete

type mix = private { contains_pct : int; insert_pct : int; delete_pct : int }
(** Percentages summing to 100. *)

val mix : contains:int -> insert:int -> delete:int -> mix
(** @raise Invalid_argument unless the percentages sum to 100. *)

val read_only : mix
(** 100% contains (Figure 10, left column). *)

val contains_98 : mix
(** 98% contains, 1% insert, 1% delete (Figure 10, middle column). *)

val contains_50 : mix
(** 50% contains, 25% insert, 25% delete (Figures 8 and 10, right). *)

val update_only : mix
(** 50% insert / 50% delete — the single-writer thread of Figure 9. *)

val pp_mix : Format.formatter -> mix -> unit

type role =
  | Uniform of mix (** every thread draws from the same mix *)
  | Single_writer of mix
      (** thread 0 draws from [mix]; all other threads run 100% contains
          (Figure 9's setup) *)

type key_dist =
  | Uniform_keys (** the paper's setting: keys uniform in the range *)
  | Zipf of float
      (** skewed access with parameter θ ∈ (0, 1): θ → 1 concentrates
          almost all traffic on a few hot keys (extension; not in the
          paper) *)

type config = {
  key_range : int; (** keys are drawn from [0, key_range) *)
  key_dist : key_dist;
  role : role;
  threads : int;
  duration : float; (** seconds of timed execution *)
  prefill_fraction : float; (** fraction of the key range inserted before
                                the clock starts (paper: 0.5) *)
  seed : int64; (** master seed; per-thread generators are split from it *)
}

val config :
  ?key_range:int ->
  ?key_dist:key_dist ->
  ?role:role ->
  ?threads:int ->
  ?duration:float ->
  ?prefill_fraction:float ->
  ?seed:int64 ->
  unit ->
  config
(** Defaults: key range 2·10⁴, uniform keys, uniform 50% contains mix,
    4 threads, 1s, 0.5 prefill, seed 42. *)

val pick : Repro_sync.Rng.t -> mix -> op
(** Draw an operation according to the mix. *)

val key_generator : config -> Repro_sync.Rng.t -> unit -> int
(** Per-thread key sampler for the config's distribution. Zipfian sampling
    uses Gray et al.'s method with the zeta normalizer computed once at
    generator creation. *)
