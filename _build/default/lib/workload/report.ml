type series = { label : string; points : (int * float) list }

let si v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let default_out = Format.std_formatter

let print_table ?(out = default_out) ~title ~threads series =
  let label_width =
    List.fold_left (fun w s -> max w (String.length s.label)) 10 series
  in
  let col_width = 9 in
  Format.fprintf out "@.== %s ==@." title;
  Format.fprintf out "%-*s" label_width "threads";
  List.iter (fun t -> Format.fprintf out " %*d" col_width t) threads;
  Format.fprintf out "@.";
  List.iter
    (fun s ->
      Format.fprintf out "%-*s" label_width s.label;
      List.iter
        (fun t ->
          match List.assoc_opt t s.points with
          | Some v -> Format.fprintf out " %*s" col_width (si v)
          | None -> Format.fprintf out " %*s" col_width "-")
        threads;
      Format.fprintf out "@.")
    series;
  Format.pp_print_flush out ()

let print_csv ?(out = default_out) ~title ~threads series =
  Format.fprintf out "experiment,structure,threads,ops_per_sec@.";
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          match List.assoc_opt t s.points with
          | Some v -> Format.fprintf out "%s,%s,%d,%.0f@." title s.label t v
          | None -> ())
        threads)
    series;
  Format.pp_print_flush out ()

let print_result ?(out = default_out) (r : Runner.result) =
  Format.fprintf out
    "  %-12s t=%-3d %8s ops/s (c=%d i=%d d=%d, wall %.2fs, size %d)@."
    r.name r.threads (si r.throughput) r.contains_ops r.insert_ops
    r.delete_ops r.wall r.final_size;
  Format.pp_print_flush out ()
