(** Multi-domain throughput measurement, reproducing the paper's
    methodology: pre-fill to half the key range, run every thread for a
    fixed wall-clock duration executing randomly chosen operations on
    randomly chosen keys, report overall throughput; repeat and take the
    arithmetic average. *)

type result = {
  name : string; (** dictionary name *)
  threads : int;
  total_ops : int;
  contains_ops : int;
  insert_ops : int;
  delete_ops : int;
  wall : float; (** measured wall-clock seconds *)
  throughput : float; (** operations per second *)
  final_size : int;
  samples : (float * float) list;
      (** (seconds since start, ops/s within that interval); empty unless
          [sample_interval] was given — stalls (e.g. long grace periods)
          appear as dips *)
}

val run :
  ?sample_interval:float ->
  (module Repro_dict.Dict.DICT) ->
  Workload.config ->
  result
(** One timed execution. The dictionary's invariant checker runs after the
    clock stops; violations raise. With [sample_interval] the aggregate
    progress counter is sampled on that period and reported in
    [samples]. *)

val run_avg :
  ?repeats:int ->
  (module Repro_dict.Dict.DICT) ->
  Workload.config ->
  result
(** Arithmetic average over [repeats] runs (paper: 5), reseeding each run
    deterministically from the config seed. Default 1. *)
