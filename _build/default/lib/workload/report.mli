(** Table rendering for benchmark output: one row per dictionary, one column
    per thread count — the textual equivalent of the paper's figures. *)

type series = { label : string; points : (int * float) list }
(** [points] maps thread count to throughput (ops/second). *)

val si : float -> string
(** Human SI formatting: [si 1.25e6 = "1.25M"]. *)

val print_table :
  ?out:Format.formatter -> title:string -> threads:int list -> series list -> unit
(** Render an aligned table; missing points print as "-". *)

val print_csv :
  ?out:Format.formatter -> title:string -> threads:int list -> series list -> unit
(** Machine-readable rendering: [title,label,threads,throughput] rows. *)

val print_result : ?out:Format.formatter -> Runner.result -> unit
(** One-line summary of a single run (used in verbose mode). *)
