lib/workload/runner.ml: Array Atomic Domain Float Int64 List Repro_dict Repro_sync Unix Workload
