lib/workload/latency.ml: Array Atomic Domain Format Int64 List Monotonic_clock Repro_dict Repro_sync Unix Workload
