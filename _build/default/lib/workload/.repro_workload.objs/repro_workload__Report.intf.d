lib/workload/report.mli: Format Runner
