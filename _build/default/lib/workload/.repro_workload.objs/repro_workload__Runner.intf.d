lib/workload/runner.mli: Repro_dict Workload
