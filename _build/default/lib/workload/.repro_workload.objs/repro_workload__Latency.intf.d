lib/workload/latency.mli: Format Repro_dict Workload
