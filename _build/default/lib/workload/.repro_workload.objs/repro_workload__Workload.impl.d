lib/workload/workload.ml: Float Format Repro_sync
