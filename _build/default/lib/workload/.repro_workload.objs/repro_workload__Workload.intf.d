lib/workload/workload.mli: Format Repro_sync
