(** Optimistic concurrent AVL tree of Bronson, Casper, Chafi & Olukotun
    (PPoPP 2010) — the paper's fine-grained-locking balanced baseline.

    Design (faithful to the original):
    - {e partially external}: removing a key from a node with two children
      just clears its value, leaving a routing node that a later insert can
      re-populate and rebalancing can unlink;
    - {e hand-over-hand optimistic validation}: readers descend without
      locks, capturing each node's version word (OVL) and re-validating it
      after reading the child; a node whose subtree may shrink (rotation or
      unlink) first sets its [shrinking] bit, so in-flight readers wait or
      retry at the parent;
    - {e relaxed balance}: height repairs and rotations happen after the
      update commits, node by node, each under the locks of the node and
      its parent.

    [contains] is lock-free in practice (waits only for in-flight
    rotations); updates lock O(1) nodes. *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

(** Quiescent-state helpers. *)

val size : 'v t -> int
(** Number of keys (routing nodes excluded). *)

val to_list : 'v t -> (int * 'v) list
val height : 'v t -> int

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** BST order, parent-pointer consistency, no reachable shrinking/unlinked
    node, exact cached heights, AVL balance within one at every node, and
    no reachable childless routing nodes. *)
