(** Optimistic lock-based lazy skiplist (Herlihy, Lev, Luchangco & Shavit,
    SIROCCO 2007) — the paper's skiplist baseline.

    [contains] traverses without locks and is unaffected by concurrent
    updates ([marked]/[fully_linked] flags make partial updates invisible).
    Updates lock only the predecessors of the affected node, validate, and
    retry on conflict. Removal is lazy: logically delete ([marked]) first,
    then unlink level by level.

    Handles exist to give each domain a private level-choosing RNG; the
    structure itself is shared freely. *)

type 'v t

type 'v handle

val create : ?max_level:int -> unit -> 'v t
(** [max_level] is the number of levels (default 20, enough for ~10⁶ keys).
    User keys must lie strictly between [min_int] and [max_int]. *)

val register : 'v t -> 'v handle

val contains : 'v handle -> int -> 'v option
(** Lock-free lookup. *)

val mem : 'v handle -> int -> bool
val insert : 'v handle -> int -> 'v -> bool
val delete : 'v handle -> int -> bool

(** Quiescent-state helpers. *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** Bottom-level order, level-inclusion (every key at level [i+1] appears at
    level [i]), no marked or partially-linked nodes, all locks free. *)
