(** Sequential internal binary search tree.

    Not thread-safe. Serves two roles: the reference model for randomized
    equivalence tests of every concurrent dictionary, and the body of
    {!Coarse_bst}. The delete algorithm mirrors the sequential algorithm
    Citrus is derived from (successor replacement), so structural tests can
    compare shapes. *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool

val insert : 'v t -> int -> 'v -> bool
(** [false] (no change) if the key is already present. *)

val delete : 'v t -> int -> bool
(** [false] if the key is absent. *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list
val height : 'v t -> int

exception Invariant_violation of string

val check_invariants : 'v t -> unit
