(** Contention-friendly binary search tree of Crain, Gramoli & Raynal
    (Euro-Par 2013) — the paper's reference [7].

    The design decouples the {e abstract} operation from the {e structural}
    work: updates only ever touch one or two nodes (a delete merely sets a
    [deleted] flag; an insert appends a leaf or revives a deleted node),
    while a background {e structural adapter} physically removes deleted
    nodes and performs rotations. Two tricks keep plain unsynchronized
    traversals safe:

    - a physically removed node's child pointers are redirected {e back to
      its parent}, so a traversal stranded on it climbs back into the live
      tree and continues;
    - rotations clone the node that moves down (as in relativistic trees),
      so no reader can lose its way mid-rotation.

    Run {!structural_pass} (or loop {!adapt}) from a dedicated domain to
    get the contention-friendly behaviour; without it the tree still works
    but accumulates logically-deleted nodes and imbalance. *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

val structural_pass : 'v t -> int
(** One background pass: physically unlink deleted nodes with at most one
    child and rotate where imbalance exceeds one. Returns the number of
    structural changes. Safe concurrently with all operations. *)

val adapt : ?max_passes:int -> 'v t -> int
(** Loop {!structural_pass} to a fixed point (or [max_passes], default
    64). *)

(** Quiescent-state helpers. *)

val size : 'v t -> int
(** Logical size (deleted nodes excluded). *)

val to_list : 'v t -> (int * 'v) list
val height : 'v t -> int

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** BST order over reachable nodes, no reachable removed node, locks free. *)
