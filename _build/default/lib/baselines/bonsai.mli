(** Bonsai: RCU-style balanced tree in the manner of Clements, Kaashoek &
    Zeldovich (ASPLOS 2012) — one of the paper's two RCU-based baselines.

    Bonsai never modifies the tree in place: every update builds fresh nodes
    along the modified path of a {e persistent} weight-balanced tree and then
    publishes the new root with a single atomic store. Readers atomically
    load the root and traverse an immutable snapshot, so lookups are
    wait-free and need no read-side critical section under a GC (the
    original uses RCU purely to delay freeing the replaced path; the OCaml
    GC provides that guarantee).

    Updates serialize on a single writer lock, which is exactly the
    coarse-grained updater synchronization the paper criticizes: 100%-read
    workloads fly, but throughput stops scaling the moment updates appear
    (Figures 9-10), and every update pays O(log n) allocation.

    Balancing: weight-balanced tree with the (Δ=3, Γ=2) parameters proved
    correct by Hirai & Yamamoto (JFP 2011). *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool
val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list
val height : 'v t -> int

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** BST order, correct cached weights, and the weight-balance invariant on
    every node. Safe to run concurrently with readers (pure traversal of a
    snapshot), quiescent recommended. *)
