lib/baselines/ellen_bst.mli:
