lib/baselines/rb_rcu.mli: Repro_rcu
