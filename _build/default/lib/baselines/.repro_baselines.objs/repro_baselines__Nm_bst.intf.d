lib/baselines/nm_bst.mli:
