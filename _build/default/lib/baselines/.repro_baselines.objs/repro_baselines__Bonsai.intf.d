lib/baselines/bonsai.mli:
