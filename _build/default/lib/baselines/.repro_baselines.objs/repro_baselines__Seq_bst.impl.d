lib/baselines/seq_bst.ml: Option
