lib/baselines/avl.ml: Array Atomic List Option Repro_sync
