lib/baselines/ellen_bst.ml: Atomic List Option Repro_sync
