lib/baselines/skiplist.ml: Array Atomic Int64 List Option Repro_sync
