lib/baselines/rcu_hash.ml: Array Atomic List Option Repro_sync
