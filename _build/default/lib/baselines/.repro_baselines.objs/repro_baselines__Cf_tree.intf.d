lib/baselines/cf_tree.mli:
