lib/baselines/seq_bst.mli:
