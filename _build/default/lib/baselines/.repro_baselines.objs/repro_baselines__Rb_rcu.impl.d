lib/baselines/rb_rcu.ml: Atomic List Option Repro_rcu Repro_sync
