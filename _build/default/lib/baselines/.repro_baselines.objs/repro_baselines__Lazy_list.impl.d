lib/baselines/lazy_list.ml: Atomic List Option Repro_sync
