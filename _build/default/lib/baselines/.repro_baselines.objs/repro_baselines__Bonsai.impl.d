lib/baselines/bonsai.ml: Atomic Option Repro_sync
