lib/baselines/skiplist.mli:
