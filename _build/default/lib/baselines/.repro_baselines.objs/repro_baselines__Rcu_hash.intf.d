lib/baselines/rcu_hash.mli:
