lib/baselines/avl.mli:
