lib/baselines/nm_bst.ml: Atomic List Option Repro_sync
