lib/baselines/coarse_bst.ml: Repro_sync Seq_bst
