lib/baselines/lazy_list.mli:
