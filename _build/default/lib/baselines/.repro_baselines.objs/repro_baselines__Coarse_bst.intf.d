lib/baselines/coarse_bst.mli:
