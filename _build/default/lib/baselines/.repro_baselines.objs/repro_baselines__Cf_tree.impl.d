lib/baselines/cf_tree.ml: Atomic List Option Repro_sync
