module Spinlock = Repro_sync.Spinlock
module Backoff = Repro_sync.Backoff

(* Version word (OVL) bits: bit 0 = unlinked (permanent), bit 1 = shrinking
   (a rotation is moving this node down), upper bits = shrink counter. A
   reader that captured version [v] at a node may trust its position as long
   as the node's version still equals [v]. *)
let unlinked_bit = 1
let shrinking_bit = 2
let shrink_increment = 4
let is_unlinked v = v land unlinked_bit <> 0
let is_shrinking_or_unlinked v = v land (unlinked_bit lor shrinking_bit) <> 0

let left = 0
let right = 1

type 'v node = {
  key : int;
  value : 'v option Atomic.t; (* None = routing node; written under lock *)
  version : int Atomic.t;
  height : int Atomic.t; (* written under lock; racy reads tolerated *)
  parent : 'v node option Atomic.t; (* written under the child's new parent's lock *)
  children : 'v node option Atomic.t array; (* written under this node's lock *)
  lock : Spinlock.t;
}

type 'v t = { holder : 'v node }
(* [holder] is Bronson's rootHolder: never rotated or unlinked, the real
   root is its right child, so every node has a locked parent frame. *)

let make_node key value parent height =
  {
    key;
    value = Atomic.make value;
    version = Atomic.make 0;
    height = Atomic.make height;
    parent = Atomic.make parent;
    children = [| Atomic.make None; Atomic.make None |];
    lock = Spinlock.create ();
  }

let create () = { holder = make_node min_int None None 0 }
let child n d = Atomic.get n.children.(d)
let set_child n d c = Atomic.set n.children.(d) c
let node_height = function None -> 0 | Some n -> Atomic.get n.height

let same_node a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | None, Some _ | Some _, None -> false

(* Spin until the node is no longer mid-rotation (unlinked is permanent and
   returns immediately: the caller revalidates and retries higher up). *)
let wait_until_not_changing n =
  let v = Atomic.get n.version in
  if v land shrinking_bit <> 0 then begin
    let b = Backoff.create () in
    while Atomic.get n.version = v do
      Backoff.once b
    done
  end

type 'v result = Retry | Found of 'v option

(* Hand-over-hand optimistic descent (Bronson's attemptGet). [node_ovl] is
   the version captured when we committed to [node]; any shrink of [node]
   invalidates the frame and propagates Retry to the parent frame. *)
let rec attempt_get key node dir node_ovl =
  let rec loop () =
    match child node dir with
    | None -> if Atomic.get node.version <> node_ovl then Retry else Found None
    | Some c ->
        if c.key = key then
          (* Value reads race with updates, like in the original: values are
             only set while the node is reachable and cleared before unlink,
             so the read is always linearizable within the interval. *)
          Found (Atomic.get c.value)
        else begin
          let child_ovl = Atomic.get c.version in
          if is_shrinking_or_unlinked child_ovl then begin
            wait_until_not_changing c;
            if Atomic.get node.version <> node_ovl then Retry else loop ()
          end
          else if not (same_node (child node dir) (Some c)) then
            if Atomic.get node.version <> node_ovl then Retry else loop ()
          else if Atomic.get node.version <> node_ovl then Retry
          else begin
            let next_dir = if key < c.key then left else right in
            match attempt_get key c next_dir child_ovl with
            | Retry -> loop ()
            | Found _ as r -> r
          end
        end
  in
  loop ()

let contains t key =
  (* The holder never shrinks, so its frame never yields Retry. *)
  match attempt_get key t.holder right (Atomic.get t.holder.version) with
  | Found v -> v
  | Retry -> assert false

let mem t key = Option.is_some (contains t key)

(* --- rebalancing (all _nl functions require the locks noted) --- *)

(* Direction from [p] to its child [n]; caller holds p's lock. *)
let dir_of p n = if same_node (child p left) (Some n) then left else right

(* Unlink routing node [n] (value None, at most one child) from parent [p].
   Locks held: p, n; caller has validated n.parent == p. *)
let attempt_unlink_nl p n =
  let nl = child n left and nr = child n right in
  if not (same_node (child p left) (Some n) || same_node (child p right) (Some n))
  then false
  else
    match (nl, nr) with
    | Some _, Some _ -> false (* grew a second child; cannot unlink *)
    | _ ->
        if Atomic.get n.value <> None then false
        else begin
          let splice = match nl with Some _ -> nl | None -> nr in
          set_child p (dir_of p n) splice;
          (match splice with
          | Some s -> Atomic.set s.parent (Some p)
          | None -> ());
          Atomic.set n.version (Atomic.get n.version lor unlinked_bit);
          true
        end

(* Single right rotation: nl moves up, n moves down-right.
   Locks held: parent, n, nl. Heights are the caller's (possibly stale)
   readings — staleness only degrades balance, never correctness. *)
let rotate_right_nl parent n nl hr hll nlr hlr =
  Atomic.set n.version (Atomic.get n.version lor shrinking_bit);
  set_child n left nlr;
  (match nlr with Some x -> Atomic.set x.parent (Some n) | None -> ());
  set_child nl right (Some n);
  let d = dir_of parent n in
  set_child parent d (Some nl);
  Atomic.set nl.parent (Some parent);
  Atomic.set n.parent (Some nl);
  let hn_repl = 1 + max hlr hr in
  Atomic.set n.height hn_repl;
  Atomic.set nl.height (1 + max hll hn_repl);
  Atomic.set n.version
    ((Atomic.get n.version + shrink_increment) land lnot shrinking_bit);
  (* Every participant may now be damaged (wrong height, imbalance, or a
     newly childless routing node); the fix worklist re-evaluates each. *)
  [ n; nl; parent ]

(* Single left rotation (mirror image). Locks held: parent, n, nr. *)
let rotate_left_nl parent n nr hl hrr nrl hrl =
  Atomic.set n.version (Atomic.get n.version lor shrinking_bit);
  set_child n right nrl;
  (match nrl with Some x -> Atomic.set x.parent (Some n) | None -> ());
  set_child nr left (Some n);
  let d = dir_of parent n in
  set_child parent d (Some nr);
  Atomic.set nr.parent (Some parent);
  Atomic.set n.parent (Some nr);
  let hn_repl = 1 + max hl hrl in
  Atomic.set n.height hn_repl;
  Atomic.set nr.height (1 + max hn_repl hrr);
  Atomic.set n.version
    ((Atomic.get n.version + shrink_increment) land lnot shrinking_bit);
  [ n; nr; parent ]

(* Double rotation right-over-left: nlr becomes the subtree root.
   Locks held: parent, n, nl, nlr. *)
let rotate_right_over_left_nl parent n nl hr hll nlr hlrl =
  let nlrl = child nlr left and nlrr = child nlr right in
  let hlrr = node_height nlrr in
  Atomic.set n.version (Atomic.get n.version lor shrinking_bit);
  Atomic.set nl.version (Atomic.get nl.version lor shrinking_bit);
  set_child n left nlrr;
  (match nlrr with Some x -> Atomic.set x.parent (Some n) | None -> ());
  set_child nl right nlrl;
  (match nlrl with Some x -> Atomic.set x.parent (Some nl) | None -> ());
  set_child nlr left (Some nl);
  set_child nlr right (Some n);
  let d = dir_of parent n in
  set_child parent d (Some nlr);
  Atomic.set nlr.parent (Some parent);
  Atomic.set nl.parent (Some nlr);
  Atomic.set n.parent (Some nlr);
  let hn_repl = 1 + max hlrr hr in
  Atomic.set n.height hn_repl;
  let hl_repl = 1 + max hll hlrl in
  Atomic.set nl.height hl_repl;
  Atomic.set nlr.height (1 + max hl_repl hn_repl);
  Atomic.set n.version
    ((Atomic.get n.version + shrink_increment) land lnot shrinking_bit);
  Atomic.set nl.version
    ((Atomic.get nl.version + shrink_increment) land lnot shrinking_bit);
  [ n; nl; nlr; parent ]

(* Double rotation left-over-right (mirror). Locks: parent, n, nr, nrl. *)
let rotate_left_over_right_nl parent n nr hl hrr nrl hrlr =
  let nrll = child nrl left and nrlr = child nrl right in
  let hrll = node_height nrll in
  Atomic.set n.version (Atomic.get n.version lor shrinking_bit);
  Atomic.set nr.version (Atomic.get nr.version lor shrinking_bit);
  set_child n right nrll;
  (match nrll with Some x -> Atomic.set x.parent (Some n) | None -> ());
  set_child nr left nrlr;
  (match nrlr with Some x -> Atomic.set x.parent (Some nr) | None -> ());
  set_child nrl right (Some nr);
  set_child nrl left (Some n);
  let d = dir_of parent n in
  set_child parent d (Some nrl);
  Atomic.set nrl.parent (Some parent);
  Atomic.set nr.parent (Some nrl);
  Atomic.set n.parent (Some nrl);
  let hn_repl = 1 + max hl hrll in
  Atomic.set n.height hn_repl;
  let hr_repl = 1 + max hrlr hrr in
  Atomic.set nr.height hr_repl;
  Atomic.set nrl.height (1 + max hn_repl hr_repl);
  Atomic.set n.version
    ((Atomic.get n.version + shrink_increment) land lnot shrinking_bit);
  Atomic.set nr.version
    ((Atomic.get nr.version + shrink_increment) land lnot shrinking_bit);
  [ n; nr; nrl; parent ]

(* Left-heavy repair. Locks held: parent, n; takes nl (and maybe nlr).
   The "neither rotation applies" case (Bronson's fall-through) converts
   the problem into a left-rotation of nl — performed after releasing nlr's
   lock, with n acting as the parent frame. *)
let rec rebalance_to_right_nl parent n nl hr0 =
  Spinlock.acquire nl.lock;
  let result =
    let hl = Atomic.get nl.height in
    if hl - hr0 <= 1 then `Done [ n ] (* already fixed; recheck n *)
    else begin
      let nlr = child nl right in
      let hll = node_height (child nl left) in
      let hlr0 = node_height nlr in
      if hll >= hlr0 then `Done (rotate_right_nl parent n nl hr0 hll nlr hlr0)
      else
        match nlr with
        | None -> `Done [ n ] (* stale heights; recheck *)
        | Some nlr_node ->
            Spinlock.acquire nlr_node.lock;
            let r =
              let hlr = Atomic.get nlr_node.height in
              if hll >= hlr then `Done (rotate_right_nl parent n nl hr0 hll nlr hlr)
              else begin
                let hlrl = node_height (child nlr_node left) in
                let b = hll - hlrl in
                if b >= -1 && b <= 1 then
                  `Done
                    (rotate_right_over_left_nl parent n nl hr0 hll nlr_node hlrl)
                else `Rotate_child_left hll
              end
            in
            Spinlock.release nlr_node.lock;
            r
    end
  in
  match result with
  | `Done damaged ->
      Spinlock.release nl.lock;
      damaged
  | `Rotate_child_left hll ->
      (* Locks held: parent, n, nl. First straighten nl by rotating it left
         (n is nl's parent frame); the caller's loop will then retry. *)
      let damaged =
        match child nl right with
        | None -> [ nl ] (* stale heights; recheck *)
        | Some nlr -> n :: rebalance_to_left_nl n nl nlr hll
      in
      Spinlock.release nl.lock;
      damaged

(* Right-heavy repair (mirror). Locks held: parent, n; takes nr. *)
and rebalance_to_left_nl parent n nr hl0 =
  Spinlock.acquire nr.lock;
  let result =
    let hr = Atomic.get nr.height in
    if hl0 - hr >= -1 then `Done [ n ]
    else begin
      let nrl = child nr left in
      let hrr = node_height (child nr right) in
      let hrl0 = node_height nrl in
      if hrr >= hrl0 then `Done (rotate_left_nl parent n nr hl0 hrr nrl hrl0)
      else
        match nrl with
        | None -> `Done [ n ]
        | Some nrl_node ->
            Spinlock.acquire nrl_node.lock;
            let r =
              let hrl = Atomic.get nrl_node.height in
              if hrr >= hrl then
                `Done (rotate_left_nl parent n nr hl0 hrr nrl hrl)
              else begin
                let hrlr = node_height (child nrl_node right) in
                let b = hrr - hrlr in
                if b >= -1 && b <= 1 then
                  `Done
                    (rotate_left_over_right_nl parent n nr hl0 hrr nrl_node hrlr)
                else `Rotate_child_right hrr
              end
            in
            Spinlock.release nrl_node.lock;
            r
    end
  in
  match result with
  | `Done damaged ->
      Spinlock.release nr.lock;
      damaged
  | `Rotate_child_right hrr ->
      (* Locks held: parent, n, nr. Straighten nr by rotating it right
         (n is nr's parent frame). *)
      let damaged =
        match child nr left with
        | None -> [ nr ] (* stale heights; recheck *)
        | Some nrl -> n :: rebalance_to_right_nl n nr nrl hrr
      in
      Spinlock.release nr.lock;
      damaged

(* Repair one node under parent+node locks; returns the damaged-candidate
   worklist. *)
let rebalance_nl parent n =
  let nl = child n left and nr = child n right in
  if (nl = None || nr = None) && Atomic.get n.value = None then
    if attempt_unlink_nl parent n then [ parent ] else [ n ]
  else begin
    let hn = Atomic.get n.height in
    let hl0 = node_height nl and hr0 = node_height nr in
    let hn_repl = 1 + max hl0 hr0 in
    if hl0 - hr0 > 1 then
      match nl with
      | Some nl -> rebalance_to_right_nl parent n nl hr0
      | None -> [ n ] (* stale height reading; recheck *)
    else if hl0 - hr0 < -1 then
      match nr with
      | Some nr -> rebalance_to_left_nl parent n nr hl0
      | None -> [ n ]
    else if hn_repl <> hn then begin
      Atomic.set n.height hn_repl;
      [ parent ]
    end
    else []
  end

type condition = Nothing | Fix_height | Unlink_or_rebalance

let node_condition n =
  let nl = child n left and nr = child n right in
  if (nl = None || nr = None) && Atomic.get n.value = None then
    Unlink_or_rebalance
  else begin
    let hn = Atomic.get n.height in
    let hl0 = node_height nl and hr0 = node_height nr in
    if hl0 - hr0 > 1 || hl0 - hr0 < -1 then Unlink_or_rebalance
    else if 1 + max hl0 hr0 <> hn then Fix_height
    else Nothing
  end

(* Walk the damage worklist, repairing each node under the proper locks
   (Bronson's fixHeightAndRebalance, generalized to a worklist so no
   damaged candidate of a rotation is ever dropped). *)
let rec fix_height_and_rebalance t n =
  if n != t.holder && not (is_unlinked (Atomic.get n.version)) then begin
    match node_condition n with
    | Nothing -> ()
    | Fix_height -> (
        Spinlock.acquire n.lock;
        let next =
          (* Recompute under the lock; if a structural repair is now needed,
             fall back to the locked-parent path by returning n itself. *)
          match node_condition n with
          | Nothing -> None
          | Unlink_or_rebalance -> Some n
          | Fix_height ->
              let h =
                1 + max (node_height (child n left)) (node_height (child n right))
              in
              if h = Atomic.get n.height then None
              else begin
                Atomic.set n.height h;
                Atomic.get n.parent
              end
        in
        Spinlock.release n.lock;
        match next with
        | Some next -> fix_height_and_rebalance t next
        | None -> ())
    | Unlink_or_rebalance -> (
        match Atomic.get n.parent with
        | None -> () (* concurrently unlinked from the holder *)
        | Some p ->
            Spinlock.acquire p.lock;
            if
              is_unlinked (Atomic.get p.version)
              || not (same_node (Atomic.get n.parent) (Some p))
            then begin
              (* Stale parent; retry with a fresh reading. *)
              Spinlock.release p.lock;
              fix_height_and_rebalance t n
            end
            else begin
              Spinlock.acquire n.lock;
              let damaged = rebalance_nl p n in
              Spinlock.release n.lock;
              Spinlock.release p.lock;
              List.iter (fix_height_and_rebalance t) damaged
            end)
  end

(* --- updates --- *)

let rec attempt_insert key value node dir node_ovl t =
  let rec loop () =
    if Atomic.get node.version <> node_ovl then Retry
    else
      match child node dir with
      | None -> (
          Spinlock.acquire node.lock;
          if Atomic.get node.version <> node_ovl then begin
            Spinlock.release node.lock;
            Retry
          end
          else
            match child node dir with
            | Some _ ->
                (* A child appeared without a shrink; re-examine. *)
                Spinlock.release node.lock;
                loop ()
            | None ->
                let leaf = make_node key (Some value) (Some node) 1 in
                set_child node dir (Some leaf);
                Spinlock.release node.lock;
                fix_height_and_rebalance t node;
                Found (Some ()))
      | Some c ->
          if c.key = key then begin
            (* Re-populate a routing node, or report a duplicate. *)
            Spinlock.acquire c.lock;
            if is_unlinked (Atomic.get c.version) then begin
              Spinlock.release c.lock;
              loop () (* c is gone; re-read the child slot *)
            end
            else if Atomic.get c.value <> None then begin
              Spinlock.release c.lock;
              Found None (* duplicate *)
            end
            else begin
              Atomic.set c.value (Some value);
              Spinlock.release c.lock;
              Found (Some ())
            end
          end
          else begin
            let child_ovl = Atomic.get c.version in
            if is_shrinking_or_unlinked child_ovl then begin
              wait_until_not_changing c;
              if Atomic.get node.version <> node_ovl then Retry else loop ()
            end
            else if not (same_node (child node dir) (Some c)) then
              if Atomic.get node.version <> node_ovl then Retry else loop ()
            else if Atomic.get node.version <> node_ovl then Retry
            else begin
              let next_dir = if key < c.key then left else right in
              match attempt_insert key value c next_dir child_ovl t with
              | Retry -> loop ()
              | Found _ as r -> r
            end
          end
  in
  loop ()

let insert t key value =
  if key = min_int then invalid_arg "Avl.insert: min_int is reserved";
  match
    attempt_insert key value t.holder right (Atomic.get t.holder.version) t
  with
  | Found (Some ()) -> true
  | Found None -> false
  | Retry -> assert false (* the holder never shrinks *)

let rec attempt_remove key node dir node_ovl t =
  let rec loop () =
    if Atomic.get node.version <> node_ovl then Retry
    else
      match child node dir with
      | None -> if Atomic.get node.version <> node_ovl then Retry else Found None
      | Some c ->
          if c.key = key then begin
            if Atomic.get c.value = None then Found None (* routing = absent *)
            else if child c left <> None && child c right <> None then begin
              (* Two children: demote to a routing node under c's lock. *)
              Spinlock.acquire c.lock;
              if is_unlinked (Atomic.get c.version) then begin
                Spinlock.release c.lock;
                loop ()
              end
              else if child c left = None || child c right = None then begin
                (* Shrunk meanwhile; take the unlink path instead. *)
                Spinlock.release c.lock;
                loop ()
              end
              else begin
                match Atomic.get c.value with
                | None ->
                    Spinlock.release c.lock;
                    Found None
                | Some v ->
                    Atomic.set c.value None;
                    Spinlock.release c.lock;
                    Found (Some v)
              end
            end
            else begin
              (* At most one child: unlink under parent+node locks. *)
              Spinlock.acquire node.lock;
              if is_unlinked (Atomic.get node.version) then begin
                Spinlock.release node.lock;
                Retry
              end
              else if not (same_node (child node dir) (Some c)) then begin
                Spinlock.release node.lock;
                loop ()
              end
              else begin
                Spinlock.acquire c.lock;
                match Atomic.get c.value with
                | None ->
                    Spinlock.release c.lock;
                    Spinlock.release node.lock;
                    Found None
                | Some v ->
                    if child c left = None || child c right = None then begin
                      let splice =
                        match child c left with
                        | Some _ as l -> l
                        | None -> child c right
                      in
                      set_child node dir splice;
                      (match splice with
                      | Some s -> Atomic.set s.parent (Some node)
                      | None -> ());
                      Atomic.set c.value None;
                      Atomic.set c.version
                        (Atomic.get c.version lor unlinked_bit);
                      Spinlock.release c.lock;
                      Spinlock.release node.lock;
                      fix_height_and_rebalance t node;
                      Found (Some v)
                    end
                    else begin
                      (* Grew a second child meanwhile: demote instead
                         (we hold c's lock, which suffices). *)
                      Atomic.set c.value None;
                      Spinlock.release c.lock;
                      Spinlock.release node.lock;
                      Found (Some v)
                    end
              end
            end
          end
          else begin
            let child_ovl = Atomic.get c.version in
            if is_shrinking_or_unlinked child_ovl then begin
              wait_until_not_changing c;
              if Atomic.get node.version <> node_ovl then Retry else loop ()
            end
            else if not (same_node (child node dir) (Some c)) then
              if Atomic.get node.version <> node_ovl then Retry else loop ()
            else if Atomic.get node.version <> node_ovl then Retry
            else begin
              let next_dir = if key < c.key then left else right in
              match attempt_remove key c next_dir child_ovl t with
              | Retry -> loop ()
              | Found _ as r -> r
            end
          end
  in
  loop ()

let delete t key =
  match attempt_remove key t.holder right (Atomic.get t.holder.version) t with
  | Found (Some _) -> true
  | Found None -> false
  | Retry -> assert false

(* --- Quiescent-state helpers --- *)

let fold_inorder f acc t =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let acc = go acc (child n left) in
        let acc =
          match Atomic.get n.value with Some v -> f acc n.key v | None -> acc
        in
        go acc (child n right)
  in
  go acc (child t.holder right)

let size t = fold_inorder (fun acc _ _ -> acc + 1) 0 t
let to_list t = List.rev (fold_inorder (fun acc k v -> (k, v) :: acc) [] t)

let height t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go (child n left)) (go (child n right))
  in
  go (child t.holder right)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  let rec check lo hi parent_node = function
    | None -> 0
    | Some n ->
        (match lo with
        | Some lo when n.key <= lo -> fail "BST order violated (lower bound)"
        | _ -> ());
        (match hi with
        | Some hi when n.key >= hi -> fail "BST order violated (upper bound)"
        | _ -> ());
        let v = Atomic.get n.version in
        if is_unlinked v then fail "reachable node is unlinked";
        if v land shrinking_bit <> 0 then fail "reachable node is shrinking";
        if Spinlock.is_locked n.lock then fail "reachable node is locked";
        (match Atomic.get n.parent with
        | Some p when p == parent_node -> ()
        | Some _ | None -> fail "parent pointer inconsistent");
        if
          Atomic.get n.value = None
          && (child n left = None || child n right = None)
        then fail "reachable childless routing node";
        let hl = check lo (Some n.key) n (child n left) in
        let hr = check (Some n.key) hi n (child n right) in
        if Atomic.get n.height <> 1 + max hl hr then fail "cached height wrong";
        if abs (hl - hr) > 1 then fail "AVL balance violated";
        1 + max hl hr
  in
  ignore (check None None t.holder (child t.holder right))
