module Spinlock = Repro_sync.Spinlock

type 'v tree =
  | Leaf
  | Node of { l : 'v tree; k : int; v : 'v; r : 'v tree; w : int }
      (* [w] = number of keys + 1 (the "weight" of weight-balanced trees). *)

type 'v t = { root : 'v tree Atomic.t; writer : Spinlock.t }

(* Hirai & Yamamoto's provably-correct integer parameters. *)
let delta = 3
let gamma = 2

let weight = function Leaf -> 1 | Node { w; _ } -> w
let node l k v r = Node { l; k; v; r; w = weight l + weight r }

let single_left l k v r =
  match r with
  | Leaf -> assert false
  | Node { l = rl; k = rk; v = rv; r = rr; _ } -> node (node l k v rl) rk rv rr

let single_right l k v r =
  match l with
  | Leaf -> assert false
  | Node { l = ll; k = lk; v = lv; r = lr; _ } -> node ll lk lv (node lr k v r)

let double_left l k v r =
  match r with
  | Node { l = Node { l = rll; k = rlk; v = rlv; r = rlr; _ }; k = rk; v = rv; r = rr; _ }
    ->
      node (node l k v rll) rlk rlv (node rlr rk rv rr)
  | Leaf | Node { l = Leaf; _ } -> assert false

let double_right l k v r =
  match l with
  | Node { l = ll; k = lk; v = lv; r = Node { l = lrl; k = lrk; v = lrv; r = lrr; _ }; _ }
    ->
      node (node ll lk lv lrl) lrk lrv (node lrr k v r)
  | Leaf | Node { r = Leaf; _ } -> assert false

(* Rebuild one node, restoring balance if an insertion/deletion skewed it by
   at most one element (the standard weight-balanced smart constructor). *)
let balance l k v r =
  let wl = weight l and wr = weight r in
  if wl + wr <= 2 then node l k v r
  else if wr > delta * wl then
    match r with
    | Leaf -> assert false
    | Node { l = rl; r = rr; _ } ->
        if weight rl < gamma * weight rr then single_left l k v r
        else double_left l k v r
  else if wl > delta * wr then
    match l with
    | Leaf -> assert false
    | Node { l = ll; r = lr; _ } ->
        if weight lr < gamma * weight ll then single_right l k v r
        else double_right l k v r
  else node l k v r

exception Unchanged

let rec insert_tree key value = function
  | Leaf -> node Leaf key value Leaf
  | Node { l; k; v; r; _ } ->
      if key < k then balance (insert_tree key value l) k v r
      else if key > k then balance l k v (insert_tree key value r)
      else raise Unchanged

let rec extract_min = function
  | Leaf -> assert false
  | Node { l = Leaf; k; v; r; _ } -> (k, v, r)
  | Node { l; k; v; r; _ } ->
      let mk, mv, rest = extract_min l in
      (mk, mv, balance rest k v r)

let rec delete_tree key = function
  | Leaf -> raise Unchanged
  | Node { l; k; v; r; _ } ->
      if key < k then balance (delete_tree key l) k v r
      else if key > k then balance l k v (delete_tree key r)
      else
        (match (l, r) with
        | Leaf, other | other, Leaf -> other
        | _, _ ->
            let sk, sv, rest = extract_min r in
            balance l sk sv rest)

let create () = { root = Atomic.make Leaf; writer = Spinlock.create () }

let contains t key =
  (* Wait-free: one atomic load, then a pure traversal of an immutable
     snapshot. *)
  let rec go = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
        if key < k then go l else if key > k then go r else Some v
  in
  go (Atomic.get t.root)

let mem t key = Option.is_some (contains t key)

let update t f =
  Spinlock.with_lock t.writer (fun () ->
      match f (Atomic.get t.root) with
      | fresh ->
          Atomic.set t.root fresh;
          true
      | exception Unchanged -> false)

let insert t key value = update t (insert_tree key value)
let delete t key = update t (delete_tree key)
let size t = weight (Atomic.get t.root) - 1

let to_list t =
  let rec go acc = function
    | Leaf -> acc
    | Node { l; k; v; r; _ } -> go ((k, v) :: go acc r) l
  in
  go [] (Atomic.get t.root)

let height t =
  let rec go = function
    | Leaf -> 0
    | Node { l; r; _ } -> 1 + max (go l) (go r)
  in
  go (Atomic.get t.root)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  let rec check lo hi = function
    | Leaf -> ()
    | Node { l; k; v = _; r; w } ->
        (match lo with
        | Some lo when k <= lo -> fail "BST order violated (lower bound)"
        | _ -> ());
        (match hi with
        | Some hi when k >= hi -> fail "BST order violated (upper bound)"
        | _ -> ());
        if w <> weight l + weight r then fail "cached weight incorrect";
        let wl = weight l and wr = weight r in
        if wl + wr > 2 && (wr > delta * wl || wl > delta * wr) then
          fail "weight balance violated";
        check lo (Some k) l;
        check (Some k) hi r
  in
  check None None (Atomic.get t.root)
