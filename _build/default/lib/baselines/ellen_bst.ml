module Backoff = Repro_sync.Backoff

(* Sentinels ∞₁ < ∞₂, both above every real key. *)
let inf1 = max_int - 1
let inf2 = max_int

type 'v node =
  | Leaf of { key : int; value : 'v option }
  | Internal of {
      key : int;
      left : 'v node Atomic.t;
      right : 'v node Atomic.t;
      update : 'v update Atomic.t;
    }

(* The descriptor protocol: each state transition replaces the whole
   [update] record with a CAS, so the (state, info) pair is read and
   updated atomically. The [stamp] makes every record physically unique:
   without it the all-constant Clean record would be statically allocated
   ONCE by the compiler, and the protocol's physical-equality CAS'es would
   suffer exactly the ABA the fresh allocations are meant to prevent. *)
and 'v update = { state : state; info : 'v info; stamp : int }

and state = Clean | IFlag | DFlag | Mark

and 'v info =
  | No_info
  | IInfo of { p : 'v node; l : 'v node; new_internal : 'v node }
  | DInfo of {
      gp : 'v node;
      p : 'v node;
      l : 'v node;
      pupdate : 'v update; (* p's descriptor as seen by the delete's search *)
    }

type 'v t = { root : 'v node }

(* Every descriptor must be a FRESH allocation: the protocol's CAS'es
   compare descriptors physically, and a shared Clean record would let a
   stale mark-CAS succeed after unrelated operations completed on the node
   (an ABA that resurrects backtracked deletes). *)
let stamps = Atomic.make 0
let fresh_clean () =
  { state = Clean; info = No_info; stamp = Atomic.fetch_and_add stamps 1 }

let internal key left right =
  Internal
    {
      key;
      left = Atomic.make left;
      right = Atomic.make right;
      update = Atomic.make (fresh_clean ());
    }

let create () =
  {
    root =
      internal inf2
        (Leaf { key = inf1; value = None })
        (Leaf { key = inf2; value = None });
  }

let key_of = function Leaf { key; _ } | Internal { key; _ } -> key

let child_field n key =
  match n with
  | Internal { key = k; left; right; _ } -> if key < k then left else right
  | Leaf _ -> assert false

let update_of = function
  | Internal { update; _ } -> update
  | Leaf _ -> assert false

type 'v search_result = {
  gp : 'v node option; (* None iff l's parent is the root *)
  p : 'v node;
  l : 'v node;
  pupdate : 'v update;
  gpupdate : 'v update;
}

let search t key =
  let rec go gp p gpupdate pupdate l =
    match l with
    | Internal _ ->
        let gp = Some p and gpupdate = pupdate in
        let pupdate = Atomic.get (update_of l) in
        go gp l gpupdate pupdate (Atomic.get (child_field l key))
    | Leaf _ -> { gp; p; l; pupdate; gpupdate }
  in
  let p = t.root in
  let pupdate = Atomic.get (update_of p) in
  (* The placeholder gpupdate is never CAS'ed against (gp = None). *)
  go None p (fresh_clean ()) pupdate (Atomic.get (child_field p key))

let contains t key =
  let r = search t key in
  match r.l with
  | Leaf { key = k; value } when k = key -> value
  | Leaf _ | Internal _ -> None

let mem t key = Option.is_some (contains t key)

(* CAS one of [parent]'s children from [expected] to [fresh]. *)
let cas_child parent expected fresh =
  let field = child_field parent (key_of expected) in
  let cur = Atomic.get field in
  cur == expected && Atomic.compare_and_set field cur fresh

(* --- helping --- *)

(* The parent is (permanently) marked: swing the grandparent's child
   pointer from the parent to the doomed leaf's sibling and unflag the
   grandparent. Both CAS'es are idempotent: the child CAS expects the
   parent, the unflag expects the physically-same DFlag descriptor. *)
let help_marked info =
  match info with
  | DInfo { gp; p; l; _ } ->
      let sibling_field =
        match p with
        | Internal { key; left; right; _ } ->
            if key_of l < key then right else left
        | Leaf _ -> assert false
      in
      let sibling = Atomic.get sibling_field in
      ignore (cas_child gp p sibling);
      let gu = update_of gp in
      let cur = Atomic.get gu in
      if cur.state = DFlag && cur.info == info then
        ignore (Atomic.compare_and_set gu cur (fresh_clean ()))
  | No_info | IInfo _ -> ()

(* Complete an insert whose parent carries the IFlag descriptor [u]:
   splice in the new subtree, then unflag. *)
let help_insert u =
  match u.info with
  | IInfo { p; l; new_internal } ->
      ignore (cas_child p l new_internal);
      ignore (Atomic.compare_and_set (update_of p) u (fresh_clean ()))
  | No_info | DInfo _ -> ()

(* Advance a delete whose grandparent carries the DFlag descriptor [u]:
   mark the parent (the commit point), then finish via help_marked; if the
   parent moved on, help its new owner and undo the flag (backtrack).
   Returns whether the delete committed. *)
let rec help_delete u =
  match u.info with
  | DInfo { gp; p; pupdate; _ } ->
      let pu = update_of p in
      let marked =
        { state = Mark; info = u.info; stamp = Atomic.fetch_and_add stamps 1 }
      in
      let committed =
        (Atomic.get pu == pupdate && Atomic.compare_and_set pu pupdate marked)
        ||
        (* Re-read AFTER the failed CAS: a concurrent helper may have
           installed the mark for this very operation between our read and
           our CAS — the deletion then committed and backtracking (and
           reporting failure to the owner) would double-count it. *)
        let cur = Atomic.get pu in
        cur.state = Mark && cur.info == u.info
      in
      if committed then begin
        help_marked u.info;
        true
      end
      else begin
        help (Atomic.get pu);
        ignore (Atomic.compare_and_set (update_of gp) u (fresh_clean ()));
        false
      end
  | No_info | IInfo _ -> false

and help u =
  match (u.state, u.info) with
  | IFlag, IInfo _ -> help_insert u
  | Mark, DInfo _ -> help_marked u.info
  | DFlag, DInfo _ -> ignore (help_delete u)
  | (Clean | IFlag | DFlag | Mark), _ -> ()

(* --- operations --- *)

let insert t key value =
  if key >= inf1 then invalid_arg "Ellen_bst.insert: key collides with sentinels";
  let b = Backoff.create () in
  let rec attempt () =
    let r = search t key in
    let lkey = key_of r.l in
    if lkey = key then false
    else if r.pupdate.state <> Clean then begin
      help r.pupdate;
      Backoff.once b;
      attempt ()
    end
    else begin
      let new_leaf = Leaf { key; value = Some value } in
      (* The displaced leaf goes into the new subtree as a COPY (as in the
         paper): if the original node were reused, a later deletion of
         new_leaf would promote it back into p's child slot, where a stale
         helper's ichild CAS (expecting that exact node) could re-splice
         this subtree and resurrect a deleted key — an ABA on the child
         pointer. *)
      let displaced =
        match r.l with
        | Leaf { key = lk; value = lv } -> Leaf { key = lk; value = lv }
        | Internal _ -> assert false
      in
      let new_internal =
        if key < lkey then internal lkey new_leaf displaced
        else internal key displaced new_leaf
      in
      let op =
        {
          state = IFlag;
          info = IInfo { p = r.p; l = r.l; new_internal };
          stamp = Atomic.fetch_and_add stamps 1;
        }
      in
      if Atomic.compare_and_set (update_of r.p) r.pupdate op then begin
        help_insert op;
        true
      end
      else begin
        help (Atomic.get (update_of r.p));
        Backoff.once b;
        attempt ()
      end
    end
  in
  attempt ()

let delete t key =
  let b = Backoff.create () in
  let rec attempt () =
    let r = search t key in
    if key_of r.l <> key then false
    else
      match r.gp with
      | None -> false (* real leaves always have a grandparent *)
      | Some gp ->
          if r.gpupdate.state <> Clean then begin
            help r.gpupdate;
            Backoff.once b;
            attempt ()
          end
          else if r.pupdate.state <> Clean then begin
            help r.pupdate;
            Backoff.once b;
            attempt ()
          end
          else begin
            let op =
              {
                state = DFlag;
                info = DInfo { gp; p = r.p; l = r.l; pupdate = r.pupdate };
                stamp = Atomic.fetch_and_add stamps 1;
              }
            in
            if Atomic.compare_and_set (update_of gp) r.gpupdate op then begin
              if help_delete op then true
              else begin
                Backoff.once b;
                attempt ()
              end
            end
            else begin
              help (Atomic.get (update_of gp));
              Backoff.once b;
              attempt ()
            end
          end
  in
  attempt ()

(* --- Quiescent-state helpers --- *)

let fold_leaves f acc t =
  let rec go acc n =
    match n with
    | Leaf { key; value } -> (
        match value with Some v when key < inf1 -> f acc key v | _ -> acc)
    | Internal { left; right; _ } ->
        let acc = go acc (Atomic.get left) in
        go acc (Atomic.get right)
  in
  go acc t.root

let size t = fold_leaves (fun acc _ _ -> acc + 1) 0 t
let to_list t = List.rev (fold_leaves (fun acc k v -> (k, v) :: acc) [] t)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  (* Bounds: keys in [lo, hi) with hi = None meaning unbounded (needed
     because the root sentinel key is max_int itself). *)
  let in_range lo hi k =
    k >= lo && match hi with None -> true | Some h -> k < h
  in
  let rec check lo hi n =
    match n with
    | Leaf { key; _ } ->
        if not (in_range lo hi key) then fail "leaf outside routing range"
    | Internal { key; left; right; update } ->
        if not (in_range lo hi key) then fail "internal key outside range";
        (match (Atomic.get update).state with
        | Clean -> ()
        | IFlag | DFlag | Mark -> fail "reachable descriptor not Clean");
        check lo (Some key) (Atomic.get left);
        check key hi (Atomic.get right)
  in
  (match t.root with
  | Internal { key; right; _ } ->
      if key <> inf2 then fail "root sentinel key corrupted";
      (match Atomic.get right with
      | Leaf { key; _ } when key = inf2 -> ()
      | _ -> fail "root right sentinel leaf corrupted")
  | Leaf _ -> fail "root is not internal");
  check min_int None t.root
