module Spinlock = Repro_sync.Spinlock
module Backoff = Repro_sync.Backoff
module Rng = Repro_sync.Rng

type 'v node = {
  key : int;
  value : 'v option; (* None only in the head/tail sentinels *)
  next : 'v node Atomic.t array; (* length top_level + 1; tail: [||] *)
  top_level : int;
  marked : bool Atomic.t;
  fully_linked : bool Atomic.t;
  lock : Spinlock.t;
}

type 'v t = {
  head : 'v node;
  tail : 'v node;
  max_level : int;
  seeds : int Atomic.t;
}

type 'v handle = { list : 'v t; rng : Rng.t }

let make_node key value top_level successor =
  {
    key;
    value;
    next = Array.init (top_level + 1) (fun _ -> Atomic.make successor);
    top_level;
    marked = Atomic.make false;
    fully_linked = Atomic.make false;
    lock = Spinlock.create ();
  }

let create ?(max_level = 20) () =
  if max_level < 1 then invalid_arg "Skiplist.create: max_level must be >= 1";
  let tail =
    {
      key = max_int;
      value = None;
      next = [||];
      top_level = max_level - 1;
      marked = Atomic.make false;
      fully_linked = Atomic.make true;
      lock = Spinlock.create ();
    }
  in
  let head = make_node min_int None (max_level - 1) tail in
  Atomic.set head.fully_linked true;
  { head; tail; max_level; seeds = Atomic.make 0x51ab }

let register list =
  let n = Atomic.fetch_and_add list.seeds 1 in
  { list; rng = Rng.create (Int64.of_int ((n * 0x9E3779B9) + 1)) }

(* Geometric level distribution, p = 1/2, capped at max_level - 1. *)
let random_level h =
  let cap = h.list.max_level - 1 in
  let rec go level = if level < cap && Rng.bool h.rng then go (level + 1) else level in
  go 0

(* [find] fills preds/succs for all levels and returns the highest level at
   which the key was found (or -1). Pure traversal: no locks. *)
let find t key preds succs =
  let lfound = ref (-1) in
  let pred = ref t.head in
  for level = t.max_level - 1 downto 0 do
    let curr = ref (Atomic.get (!pred).next.(level)) in
    while (!curr).key < key do
      pred := !curr;
      curr := Atomic.get (!pred).next.(level)
    done;
    if !lfound = -1 && (!curr).key = key then lfound := level;
    preds.(level) <- !pred;
    succs.(level) <- !curr
  done;
  !lfound

let contains h key =
  let t = h.list in
  (* Same traversal as [find] but only the bottom level matters. *)
  let pred = ref t.head in
  let found = ref None in
  for level = t.max_level - 1 downto 0 do
    let curr = ref (Atomic.get (!pred).next.(level)) in
    while (!curr).key < key do
      pred := !curr;
      curr := Atomic.get (!pred).next.(level)
    done;
    if Option.is_none !found && (!curr).key = key then found := Some !curr
  done;
  match !found with
  | Some n when Atomic.get n.fully_linked && not (Atomic.get n.marked) ->
      n.value
  | Some _ | None -> None

let mem h key = Option.is_some (contains h key)

(* Unlock [preds.(0..highest)], skipping physically-equal consecutive
   entries (the same predecessor can serve several levels and is locked
   once). *)
let unlock_preds preds highest =
  let last = ref None in
  for level = 0 to highest do
    let p = preds.(level) in
    let already = match !last with Some q -> q == p | None -> false in
    if not already then Spinlock.release p.lock;
    last := Some p
  done

let lock_pred preds level =
  let p = preds.(level) in
  if level > 0 && preds.(level - 1) == p then ()
  else Spinlock.acquire p.lock

let insert h key value =
  if key = min_int || key = max_int then
    invalid_arg "Skiplist.insert: key collides with a sentinel";
  let t = h.list in
  let top = random_level h in
  let preds = Array.make t.max_level t.head in
  let succs = Array.make t.max_level t.head in
  let b = Backoff.create () in
  let rec attempt () =
    let lfound = find t key preds succs in
    if lfound >= 0 then begin
      let found = succs.(lfound) in
      if not (Atomic.get found.marked) then begin
        (* Wait for the inserter to finish linking, then report duplicate. *)
        let wb = Backoff.create () in
        while not (Atomic.get found.fully_linked) do
          Backoff.once wb
        done;
        false
      end
      else begin
        (* The resident node is being removed; retry until it is gone. *)
        Backoff.once b;
        attempt ()
      end
    end
    else begin
      let valid = ref true in
      let highest_locked = ref (-1) in
      (let level = ref 0 in
       while !valid && !level <= top do
         lock_pred preds !level;
         highest_locked := !level;
         let pred = preds.(!level) and succ = succs.(!level) in
         valid :=
           (not (Atomic.get pred.marked))
           && (not (Atomic.get succ.marked))
           && Atomic.get pred.next.(!level) == succ;
         incr level
       done);
      if not !valid then begin
        unlock_preds preds !highest_locked;
        Backoff.once b;
        attempt ()
      end
      else begin
        let node = make_node key (Some value) top t.tail in
        for level = 0 to top do
          Atomic.set node.next.(level) succs.(level)
        done;
        for level = 0 to top do
          Atomic.set preds.(level).next.(level) node
        done;
        Atomic.set node.fully_linked true;
        unlock_preds preds !highest_locked;
        true
      end
    end
  in
  attempt ()

let delete h key =
  let t = h.list in
  let preds = Array.make t.max_level t.head in
  let succs = Array.make t.max_level t.head in
  let b = Backoff.create () in
  let victim = ref t.head in
  let is_marked = ref false in
  let top = ref (-1) in
  let rec attempt () =
    let lfound = find t key preds succs in
    if not !is_marked then begin
      if
        lfound < 0
        ||
        let cand = succs.(lfound) in
        not
          (Atomic.get cand.fully_linked
          && cand.top_level = lfound
          && not (Atomic.get cand.marked))
      then false
      else begin
        let cand = succs.(lfound) in
        victim := cand;
        top := cand.top_level;
        Spinlock.acquire cand.lock;
        if Atomic.get cand.marked then begin
          (* Lost the race to another remover. *)
          Spinlock.release cand.lock;
          false
        end
        else begin
          Atomic.set cand.marked true;
          is_marked := true;
          attempt ()
        end
      end
    end
    else begin
      (* We own the marked victim; lock and validate the predecessors. *)
      let valid = ref true in
      let highest_locked = ref (-1) in
      (let level = ref 0 in
       while !valid && !level <= !top do
         lock_pred preds !level;
         highest_locked := !level;
         let pred = preds.(!level) in
         valid :=
           (not (Atomic.get pred.marked))
           && Atomic.get pred.next.(!level) == !victim;
         incr level
       done);
      if not !valid then begin
        unlock_preds preds !highest_locked;
        Backoff.once b;
        attempt ()
      end
      else begin
        for level = !top downto 0 do
          Atomic.set preds.(level).next.(level)
            (Atomic.get (!victim).next.(level))
        done;
        Spinlock.release (!victim).lock;
        unlock_preds preds !highest_locked;
        true
      end
    end
  in
  attempt ()

(* --- Quiescent-state helpers --- *)

let size t =
  let rec go acc n =
    if n == t.tail then acc else go (acc + 1) (Atomic.get n.next.(0))
  in
  go 0 (Atomic.get t.head.next.(0))

let to_list t =
  let rec go acc n =
    if n == t.tail then List.rev acc
    else
      match n.value with
      | Some v -> go ((n.key, v) :: acc) (Atomic.get n.next.(0))
      | None -> go acc (Atomic.get n.next.(0))
  in
  go [] (Atomic.get t.head.next.(0))

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  (* Bottom level: strictly increasing keys, clean node states. *)
  let rec walk0 prev n =
    if n != t.tail then begin
      if n.key <= prev then fail "bottom level keys not strictly increasing";
      if Atomic.get n.marked then fail "reachable node is marked";
      if not (Atomic.get n.fully_linked) then fail "reachable node not fully linked";
      if Spinlock.is_locked n.lock then fail "reachable node is locked";
      if Array.length n.next <> n.top_level + 1 then fail "next array length";
      walk0 n.key (Atomic.get n.next.(0))
    end
  in
  walk0 min_int (Atomic.get t.head.next.(0));
  (* Every node reachable at level [l] must be reachable at level [l-1]
     (towers are contiguous), and each level is sorted. *)
  for level = 1 to t.max_level - 1 do
    let rec walk prev n =
      if n != t.tail then begin
        if n.key <= prev then fail "upper level keys not strictly increasing";
        if n.top_level < level then fail "node reachable above its top level";
        (* Check presence at the level below by searching from head. *)
        let rec present m =
          if m == t.tail then false
          else if m == n then true
          else present (Atomic.get m.next.(level - 1))
        in
        if not (present (Atomic.get t.head.next.(level - 1))) then
          fail "tower not contiguous across levels";
        walk n.key (Atomic.get n.next.(level))
      end
    in
    walk min_int (Atomic.get t.head.next.(level))
  done
