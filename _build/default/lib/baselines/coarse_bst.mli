(** The simplest thread-safe dictionary: a {!Seq_bst} under one spin lock.

    Not a structure from the paper — it is the control/ablation point: any
    fine-grained design should beat it as soon as operations overlap, and a
    design losing to it reveals synchronization overhead rather than
    contention. *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

(** Quiescent-state helpers (no locking). *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list
val check_invariants : 'v t -> unit
