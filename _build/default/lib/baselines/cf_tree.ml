module Spinlock = Repro_sync.Spinlock

type 'v node = {
  key : int; (* immutable *)
  value : 'v option Atomic.t; (* rewritten when a deleted node is revived *)
  left : 'v node option Atomic.t;
  right : 'v node option Atomic.t;
  deleted : bool Atomic.t; (* logical deletion *)
  removed : bool Atomic.t; (* physically unlinked (or replaced by a clone) *)
  lock : Spinlock.t;
}

type 'v t = { root : 'v node (* sentinel, key = max_int, never removed *) }

let left = 0
let right = 1
let field n d = if d = left then n.left else n.right
let child n d = Atomic.get (field n d)

let make_node key value =
  {
    key;
    value = Atomic.make value;
    left = Atomic.make None;
    right = Atomic.make None;
    deleted = Atomic.make false;
    removed = Atomic.make false;
    lock = Spinlock.create ();
  }

let create () = { root = make_node max_int None }

let same_node a b =
  match (a, b) with
  | Some x, Some y -> x == y
  | None, None -> true
  | None, Some _ | Some _, None -> false

(* Plain traversal. Removed nodes' child pointers lead back to their old
   parent, so a stranded traversal climbs back into the live tree; clones
   installed by rotations are found through the live path. Returns the
   node with the key, or the last node reached (where the key would
   attach). *)
let rec search n key =
  if n.key = key then n
  else
    let d = if key < n.key then left else right in
    match child n d with None -> n | Some c -> search c key

let contains t key =
  let n = search t.root key in
  if n.key = key && not (Atomic.get n.deleted) then Atomic.get n.value
  else None

let mem t key = Option.is_some (contains t key)

let insert t key value =
  if key = max_int then invalid_arg "Cf_tree.insert: max_int is reserved";
  let rec attempt () =
    let n = search t.root key in
    if n.key = key then begin
      Spinlock.acquire n.lock;
      if Atomic.get n.removed then begin
        Spinlock.release n.lock;
        attempt () (* replaced by a clone or unlinked; retry on fresh path *)
      end
      else if Atomic.get n.deleted then begin
        (* Revive: publish the value before clearing the flag so readers
           that see deleted=false see the new binding. *)
        Atomic.set n.value (Some value);
        Atomic.set n.deleted false;
        Spinlock.release n.lock;
        true
      end
      else begin
        Spinlock.release n.lock;
        false
      end
    end
    else begin
      let d = if key < n.key then left else right in
      Spinlock.acquire n.lock;
      if Atomic.get n.removed || child n d <> None then begin
        Spinlock.release n.lock;
        attempt ()
      end
      else begin
        Atomic.set (field n d) (Some (make_node key (Some value)));
        Spinlock.release n.lock;
        true
      end
    end
  in
  attempt ()

let delete t key =
  let rec attempt () =
    let n = search t.root key in
    if n.key <> key then false
    else begin
      Spinlock.acquire n.lock;
      if Atomic.get n.removed then begin
        Spinlock.release n.lock;
        attempt ()
      end
      else if Atomic.get n.deleted then begin
        Spinlock.release n.lock;
        false
      end
      else begin
        Atomic.set n.deleted true;
        Spinlock.release n.lock;
        true
      end
    end
  in
  attempt ()

(* --- the structural adapter (background work) --- *)

(* Physically unlink [n] (deleted, at most one child), the [d]-child of
   [p]. After the splice, n's child pointers are redirected to p so that
   traversals stranded on n climb back. *)
let try_remove p d n =
  Spinlock.acquire p.lock;
  Spinlock.acquire n.lock;
  let ok =
    (not (Atomic.get p.removed))
    && (not (Atomic.get n.removed))
    && same_node (child p d) (Some n)
    && Atomic.get n.deleted
    && (child n left = None || child n right = None)
  in
  if ok then begin
    let splice =
      match child n left with Some _ as l -> l | None -> child n right
    in
    Atomic.set (field p d) splice;
    Atomic.set n.left (Some p);
    Atomic.set n.right (Some p);
    Atomic.set n.removed true
  end;
  Spinlock.release n.lock;
  Spinlock.release p.lock;
  ok

(* Relativistic rotation, as in the maintained Citrus: the sinking node is
   replaced by an unmarked clone installed below the rising child, so
   readers never lose their way and updates retry via the removed flag. *)
let try_rotate p d n sink_dir =
  let rise_dir = 1 - sink_dir in
  Spinlock.acquire p.lock;
  Spinlock.acquire n.lock;
  let rising =
    if
      (not (Atomic.get p.removed))
      && (not (Atomic.get n.removed))
      && same_node (child p d) (Some n)
    then child n rise_dir
    else None
  in
  match rising with
  | None ->
      Spinlock.release n.lock;
      Spinlock.release p.lock;
      false
  | Some c ->
      Spinlock.acquire c.lock;
      if Atomic.get c.removed then begin
        Spinlock.release c.lock;
        Spinlock.release n.lock;
        Spinlock.release p.lock;
        false
      end
      else begin
        let clone = make_node n.key (Atomic.get n.value) in
        Atomic.set clone.deleted (Atomic.get n.deleted);
        Atomic.set (field clone rise_dir) (child c sink_dir);
        Atomic.set (field clone sink_dir) (child n sink_dir);
        Atomic.set n.removed true;
        Atomic.set (field c sink_dir) (Some clone);
        Atomic.set (field p d) (Some c);
        Spinlock.release c.lock;
        Spinlock.release n.lock;
        Spinlock.release p.lock;
        true
      end

let structural_pass t =
  let changes = ref 0 in
  (* Post-order; one structural change per position per pass (heights are
     refreshed by the next pass). Returns (height, hl, hr). *)
  let rec walk p d =
    match child p d with
    | None -> (0, 0, 0)
    | Some n ->
        if
          Atomic.get n.deleted
          && (child n left = None || child n right = None)
        then
          if try_remove p d n then begin
            incr changes;
            (1, 0, 0) (* conservative; next pass refines *)
          end
          else (1, 0, 0)
        else begin
          let hl, hll, hlr = walk n left in
          let hr, hrl, hrr = walk n right in
          let stale = (1 + max hl hr, hl, hr) in
          if hl > hr + 1 then begin
            if hlr > hll then begin
              (match child n left with
              | Some l when try_rotate n left l left -> incr changes
              | Some _ | None -> ());
              stale
            end
            else if try_rotate p d n right then begin
              incr changes;
              let hr' = 1 + max hlr hr in
              (1 + max hll hr', hll, hr')
            end
            else stale
          end
          else if hr > hl + 1 then begin
            if hrl > hrr then begin
              (match child n right with
              | Some r when try_rotate n right r right -> incr changes
              | Some _ | None -> ());
              stale
            end
            else if try_rotate p d n left then begin
              incr changes;
              let hl' = 1 + max hl hrl in
              (1 + max hl' hrr, hl', hrr)
            end
            else stale
          end
          else stale
        end
  in
  ignore (walk t.root left);
  !changes

let adapt ?(max_passes = 64) t =
  let rec go passes total =
    if passes >= max_passes then total
    else
      let c = structural_pass t in
      if c = 0 then total else go (passes + 1) (total + c)
  in
  go 0 0

(* --- Quiescent-state helpers --- *)

let fold_inorder f acc t =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let acc = go acc (child n left) in
        let acc =
          if Atomic.get n.deleted then acc
          else match Atomic.get n.value with Some v -> f acc n.key v | None -> acc
        in
        go acc (child n right)
  in
  go acc (child t.root left)

let size t = fold_inorder (fun acc _ _ -> acc + 1) 0 t
let to_list t = List.rev (fold_inorder (fun acc k v -> (k, v) :: acc) [] t)

let height t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go (child n left)) (go (child n right))
  in
  go (child t.root left)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  let rec check lo hi = function
    | None -> ()
    | Some n ->
        if Atomic.get n.removed then fail "reachable node is removed";
        if Spinlock.is_locked n.lock then fail "reachable node is locked";
        (match lo with
        | Some lo when n.key <= lo -> fail "BST order violated (lower bound)"
        | _ -> ());
        (match hi with
        | Some hi when n.key >= hi -> fail "BST order violated (upper bound)"
        | _ -> ());
        check lo (Some n.key) (child n left);
        check (Some n.key) hi (child n right)
  in
  if Atomic.get t.root.removed then fail "sentinel removed";
  check None (Some max_int) (child t.root left)
