(** Lock-free external binary search tree of Natarajan & Mittal (PPoPP 2014)
    — the paper's lock-free baseline.

    Keys live in leaves; internal nodes only route ([key < node.key] goes
    left). Deletion marks {e edges} rather than nodes: the edge to the
    doomed leaf is {b flagged}, the edge to its sibling is {b tagged} (so it
    cannot change), and then one CAS at the {e ancestor} — the origin of the
    last untagged edge on the access path — splices out both the leaf and
    its parent. Operations that encounter marked edges help complete the
    pending deletion.

    [contains] is wait-free; [insert]/[delete] are lock-free.

    Keys must be smaller than [max_int - 2] (the three largest [int] values
    are the paper's ∞₀ < ∞₁ < ∞₂ sentinels). *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

(** Quiescent-state helpers. *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** External-BST shape: internal nodes have two children; leaf keys respect
    the routing keys; no reachable edge is flagged or tagged; the three
    sentinels are intact. *)
