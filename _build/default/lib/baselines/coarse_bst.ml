module Spinlock = Repro_sync.Spinlock

type 'v t = { bst : 'v Seq_bst.t; lock : Spinlock.t }

let create () = { bst = Seq_bst.create (); lock = Spinlock.create () }
let contains t key = Spinlock.with_lock t.lock (fun () -> Seq_bst.contains t.bst key)
let mem t key = Spinlock.with_lock t.lock (fun () -> Seq_bst.mem t.bst key)

let insert t key value =
  Spinlock.with_lock t.lock (fun () -> Seq_bst.insert t.bst key value)

let delete t key = Spinlock.with_lock t.lock (fun () -> Seq_bst.delete t.bst key)
let size t = Seq_bst.size t.bst
let to_list t = Seq_bst.to_list t.bst
let check_invariants t = Seq_bst.check_invariants t.bst
