module Backoff = Repro_sync.Backoff

type 'v node =
  | Leaf of { key : int; value : 'v option (* None in sentinel leaves *) }
  | Internal of {
      key : int;
      left : 'v edge Atomic.t;
      right : 'v edge Atomic.t;
    }

and 'v edge = { target : 'v node; flag : bool; tag : bool }
(* An edge value is immutable; transitions replace the whole record with a
   CAS, so bit updates are atomic with respect to the pointer. [flag] marks
   the edge to a leaf under deletion; [tag] freezes a sibling edge. *)

(* Sentinel keys ∞₀ < ∞₁ < ∞₂. *)
let inf0 = max_int - 2
let inf1 = max_int - 1
let inf2 = max_int

type 'v t = { r : 'v node; s : 'v node }

let key_of = function Leaf { key; _ } | Internal { key; _ } -> key

let clean target = { target; flag = false; tag = false }

let create () =
  let s =
    Internal
      {
        key = inf1;
        left = Atomic.make (clean (Leaf { key = inf0; value = None }));
        right = Atomic.make (clean (Leaf { key = inf1; value = None }));
      }
  in
  let r =
    Internal
      {
        key = inf2;
        left = Atomic.make (clean s);
        right = Atomic.make (clean (Leaf { key = inf2; value = None }));
      }
  in
  { r; s }

(* The child field of internal node [n] on the access path of [key]. *)
let child_field n key =
  match n with
  | Internal { key = k; left; right; _ } -> if key < k then left else right
  | Leaf _ -> assert false

let sibling_fields n key =
  match n with
  | Internal { key = k; left; right; _ } ->
      if key < k then (left, right) else (right, left)
  | Leaf _ -> assert false

type 'v seek_record = {
  ancestor : 'v node; (* origin of the last untagged edge on the path *)
  successor : 'v node; (* its child on the path *)
  parent : 'v node; (* the leaf's parent *)
  leaf : 'v node;
}

let seek t key =
  (* Descend from the root; (ancestor, successor) advance on every untagged
     edge traversed. The path for any real key passes R.left then S.left. *)
  let rec go ancestor successor parent field =
    let e = Atomic.get field in
    match e.target with
    | Leaf _ -> { ancestor; successor; parent; leaf = e.target }
    | Internal _ as n ->
        let ancestor, successor =
          if not e.tag then (parent, n) else (ancestor, successor)
        in
        go ancestor successor n (child_field n key)
  in
  go t.r t.s t.r (child_field t.r key)

let contains t key =
  let rec go n =
    match n with
    | Leaf { key = k; value } -> if k = key then value else None
    | Internal _ -> go (Atomic.get (child_field n key)).target
  in
  go t.r

let mem t key = Option.is_some (contains t key)

(* cleanup: try to complete the (own or helped) deletion described by the
   seek record: tag the sibling edge at the parent, then splice the sibling
   subtree up to the ancestor with one CAS. Returns true iff the splice CAS
   succeeded. *)
let cleanup t key sr =
  ignore t;
  let successor_field = child_field sr.ancestor key in
  let path_field, other_field = sibling_fields sr.parent key in
  let e = Atomic.get path_field in
  (* If the flag is not on the path-side edge, we are helping a deletion
     whose doomed leaf is the sibling: promote the path-side child. *)
  let sibling_field = if e.flag then other_field else path_field in
  (* Freeze the promoted edge: set its tag (preserving any flag). The tag
     bit, once set, never clears, so this loop is bounded. *)
  let rec tag_edge () =
    let es = Atomic.get sibling_field in
    if not es.tag then
      if not (Atomic.compare_and_set sibling_field es { es with tag = true })
      then tag_edge ()
  in
  tag_edge ();
  let es = Atomic.get sibling_field in
  let expected = Atomic.get successor_field in
  expected.target == sr.successor
  && (not expected.flag) && (not expected.tag)
  && Atomic.compare_and_set successor_field expected
       { target = es.target; flag = es.flag; tag = false }

let insert t key value =
  if key >= inf0 then invalid_arg "Nm_bst.insert: key collides with sentinels";
  let b = Backoff.create () in
  let rec attempt () =
    let sr = seek t key in
    match sr.leaf with
    | Leaf { key = lk; _ } when lk = key -> false
    | leaf -> (
        let field = child_field sr.parent key in
        let e = Atomic.get field in
        if e.target != leaf then attempt () (* structure changed; re-seek *)
        else if e.flag || e.tag then begin
          (* Help the pending deletion, then retry. *)
          ignore (cleanup t key sr);
          Backoff.once b;
          attempt ()
        end
        else begin
          let new_leaf = Leaf { key; value = Some value } in
          let lk = key_of leaf in
          let internal =
            if key < lk then
              Internal
                {
                  key = lk;
                  left = Atomic.make (clean new_leaf);
                  right = Atomic.make (clean leaf);
                }
            else
              Internal
                {
                  key;
                  left = Atomic.make (clean leaf);
                  right = Atomic.make (clean new_leaf);
                }
          in
          if Atomic.compare_and_set field e (clean internal) then true
          else begin
            Backoff.once b;
            attempt ()
          end
        end)
  in
  attempt ()

let delete t key =
  let b = Backoff.create () in
  (* Injection phase: flag the edge to the leaf; cleanup phase: retry the
     splice until the leaf is unreachable. *)
  let rec inject () =
    let sr = seek t key in
    match sr.leaf with
    | Leaf { key = lk; _ } when lk <> key -> false
    | Internal _ -> assert false
    | leaf -> (
        let field = child_field sr.parent key in
        let e = Atomic.get field in
        if e.target != leaf then inject () (* leaf moved or replaced *)
        else if e.flag || e.tag then begin
          (* Another operation owns this edge; help and re-seek. If the
             other operation is deleting this very key, the re-seek will no
             longer find it and we return false. *)
          ignore (cleanup t key sr);
          Backoff.once b;
          inject ()
        end
        else if Atomic.compare_and_set field e { e with flag = true } then begin
          (* Injection succeeded: the delete is now ours to finish. *)
          if cleanup t key sr then true else finish leaf
        end
        else begin
          Backoff.once b;
          inject ()
        end)
  and finish leaf =
    let sr = seek t key in
    if sr.leaf != leaf then true (* someone helped us complete *)
    else if cleanup t key sr then true
    else begin
      Backoff.once b;
      finish leaf
    end
  in
  inject ()

(* --- Quiescent-state helpers --- *)

let fold_leaves f acc t =
  let rec go acc n =
    match n with
    | Leaf { key; value } -> (
        match value with Some v when key < inf0 -> f acc key v | _ -> acc)
    | Internal { left; right; _ } ->
        let acc = go acc (Atomic.get left).target in
        go acc (Atomic.get right).target
  in
  go acc t.r

let size t = fold_leaves (fun acc _ _ -> acc + 1) 0 t
let to_list t = List.rev (fold_leaves (fun acc k v -> (k, v) :: acc) [] t)

exception Invariant_violation of string

let check_invariants t =
  let fail msg = raise (Invariant_violation msg) in
  let rec check lo hi n =
    match n with
    | Leaf { key; _ } ->
        if key < lo || key >= hi then fail "leaf key outside routing range"
    | Internal { key; left; right } ->
        if key < lo || key >= hi then fail "internal key outside routing range";
        let el = Atomic.get left and er = Atomic.get right in
        if el.flag || el.tag || er.flag || er.tag then
          fail "reachable edge still flagged or tagged";
        check lo key el.target;
        check key hi er.target
  in
  (match t.r with
  | Internal { key; left; right } ->
      if key <> inf2 then fail "R sentinel key corrupted";
      let el = Atomic.get left and er = Atomic.get right in
      if el.target != t.s then fail "R.left no longer points to S";
      (match er.target with
      | Leaf { key; _ } when key = inf2 -> ()
      | _ -> fail "R.right sentinel leaf corrupted");
      (match t.s with
      | Internal { key; left = sl; right = sr } ->
          if key <> inf1 then fail "S sentinel key corrupted";
          (match (Atomic.get sr).target with
          | Leaf { key; _ } when key = inf1 -> ()
          | _ -> fail "S.right sentinel leaf corrupted");
          let esl = Atomic.get sl in
          if esl.flag || esl.tag then fail "S.left edge marked in quiescence";
          check min_int inf1 esl.target
      | Leaf _ -> fail "S is not internal")
  | Leaf _ -> fail "R is not internal");
  (* The rightmost leaf of the S.left subtree must be the ∞₀ sentinel. *)
  let rec rightmost n =
    match n with
    | Leaf { key; _ } -> key
    | Internal { right; _ } -> rightmost (Atomic.get right).target
  in
  match t.s with
  | Internal { left; _ } ->
      if rightmost (Atomic.get left).target <> inf0 then
        fail "∞₀ sentinel leaf lost"
  | Leaf _ -> assert false
