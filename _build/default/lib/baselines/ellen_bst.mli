(** Non-blocking external binary search tree of Ellen, Fatourou, Ruppert &
    van Breugel (PODC 2010) — the paper's reference [10] and the other
    canonical lock-free BST besides Natarajan & Mittal.

    Coordination goes through per-internal-node [update] descriptors
    instead of edge bits: an insert flags the parent (IFlag) before
    splicing in a new subtree; a delete flags the grandparent (DFlag),
    then marks the parent (Mark) — permanently, committing the deletion —
    before swinging the grandparent's child pointer. Any operation that
    encounters a non-Clean descriptor helps it finish, so every operation
    is lock-free and [contains] is wait-free.

    Keys must be smaller than [max_int - 1] (two sentinel keys). *)

type 'v t

val create : unit -> 'v t
val contains : 'v t -> int -> 'v option
val mem : 'v t -> int -> bool
val insert : 'v t -> int -> 'v -> bool
val delete : 'v t -> int -> bool

(** Quiescent-state helpers. *)

val size : 'v t -> int
val to_list : 'v t -> (int * 'v) list

exception Invariant_violation of string

val check_invariants : 'v t -> unit
(** External-BST shape, routing-key ranges, all reachable descriptors
    Clean, sentinels intact. *)
