type 'v node = {
  key : int;
  value : 'v;
  mutable left : 'v node option;
  mutable right : 'v node option;
}

type 'v t = { mutable root : 'v node option; mutable cardinal : int }

let create () = { root = None; cardinal = 0 }

let rec find_node node key =
  match node with
  | None -> None
  | Some n ->
      if key < n.key then find_node n.left key
      else if key > n.key then find_node n.right key
      else Some n

let contains t key =
  match find_node t.root key with None -> None | Some n -> Some n.value

let mem t key = Option.is_some (contains t key)

let insert t key value =
  let rec go node =
    if key < node.key then
      match node.left with
      | None ->
          node.left <- Some { key; value; left = None; right = None };
          true
      | Some child -> go child
    else if key > node.key then
      match node.right with
      | None ->
          node.right <- Some { key; value; left = None; right = None };
          true
      | Some child -> go child
    else false
  in
  let added =
    match t.root with
    | None ->
        t.root <- Some { key; value; left = None; right = None };
        true
    | Some root -> go root
  in
  if added then t.cardinal <- t.cardinal + 1;
  added

(* Delete by successor replacement, as in the sequential algorithm Citrus is
   modelled on: a node with two children is replaced by the minimum of its
   right subtree. *)
let delete t key =
  let rec remove node =
    match node with
    | None -> (None, false)
    | Some n ->
        if key < n.key then begin
          let l, removed = remove n.left in
          n.left <- l;
          (Some n, removed)
        end
        else if key > n.key then begin
          let r, removed = remove n.right in
          n.right <- r;
          (Some n, removed)
        end
        else
          (match (n.left, n.right) with
          | None, other | other, None -> (other, true)
          | Some _, Some r ->
              (* [extract_min m] unlinks and returns the leftmost node of
                 the subtree rooted at [m], together with the remaining
                 subtree. *)
              let rec extract_min m =
                match m.left with
                | None -> (m, m.right)
                | Some child ->
                    let min_node, rest = extract_min child in
                    m.left <- rest;
                    (min_node, Some m)
              in
              let min_node, rest = extract_min r in
              min_node.left <- n.left;
              min_node.right <- rest;
              (Some min_node, true))
  in
  let root, removed = remove t.root in
  t.root <- root;
  if removed then t.cardinal <- t.cardinal - 1;
  removed

let size t = t.cardinal

let to_list t =
  let rec go acc = function
    | None -> acc
    | Some n -> go ((n.key, n.value) :: go acc n.right) n.left
  in
  go [] t.root

let height t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go n.left) (go n.right)
  in
  go t.root

exception Invariant_violation of string

let check_invariants t =
  let count = ref 0 in
  let rec check lo hi = function
    | None -> ()
    | Some n ->
        incr count;
        (match lo with
        | Some lo when n.key <= lo ->
            raise (Invariant_violation "BST order violated (lower bound)")
        | _ -> ());
        (match hi with
        | Some hi when n.key >= hi ->
            raise (Invariant_violation "BST order violated (upper bound)")
        | _ -> ());
        check lo (Some n.key) n.left;
        check (Some n.key) hi n.right
  in
  check None None t.root;
  if !count <> t.cardinal then
    raise (Invariant_violation "cardinal out of sync with reachable nodes")
