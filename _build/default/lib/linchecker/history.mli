(** Concurrent history recording for linearizability checking.

    Invocation and response points are stamped from one global atomic tick
    counter, so the recorded real-time partial order is itself an event of
    the execution (ticket acquisition happens inside the operation's
    interval). Each thread records into its own buffer; [events] merges. *)

type op = Contains of int | Insert of int * int | Delete of int

type response = Bool of bool | Value of int option

type event = {
  thread : int;
  op : op;
  response : response;
  inv : int; (** tick at invocation *)
  res : int; (** tick at response; [inv < res] *)
}

type t

val create : threads:int -> t

val record : t -> thread:int -> op -> (unit -> response) -> response
(** [record t ~thread op f] stamps the invocation, runs [f], stamps the
    response, stores the event in [thread]'s buffer and returns [f]'s
    result. [thread] must be in [0, threads). *)

val events : t -> event list
(** All recorded events, sorted by invocation tick. Call only after all
    recording threads have finished. *)

val pp_event : Format.formatter -> event -> unit
