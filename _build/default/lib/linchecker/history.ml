type op = Contains of int | Insert of int * int | Delete of int

type response = Bool of bool | Value of int option

type event = {
  thread : int;
  op : op;
  response : response;
  inv : int;
  res : int;
}

type t = { clock : int Atomic.t; buffers : event list ref array }

let create ~threads =
  if threads <= 0 then invalid_arg "History.create: threads must be positive";
  { clock = Atomic.make 0; buffers = Array.init threads (fun _ -> ref []) }

let record t ~thread op f =
  let inv = Atomic.fetch_and_add t.clock 1 in
  let response = f () in
  let res = Atomic.fetch_and_add t.clock 1 in
  t.buffers.(thread) := { thread; op; response; inv; res } :: !(t.buffers.(thread));
  response

let events t =
  let all =
    Array.fold_left (fun acc b -> List.rev_append !b acc) [] t.buffers
  in
  List.sort (fun a b -> compare a.inv b.inv) all

let pp_op ppf = function
  | Contains k -> Format.fprintf ppf "contains(%d)" k
  | Insert (k, v) -> Format.fprintf ppf "insert(%d,%d)" k v
  | Delete k -> Format.fprintf ppf "delete(%d)" k

let pp_response ppf = function
  | Bool b -> Format.fprintf ppf "%b" b
  | Value None -> Format.fprintf ppf "None"
  | Value (Some v) -> Format.fprintf ppf "Some %d" v

let pp_event ppf e =
  Format.fprintf ppf "[t%d %d-%d] %a -> %a" e.thread e.inv e.res pp_op e.op
    pp_response e.response
