(** Wing & Gong linearizability checker for dictionary histories.

    Exhaustive backtracking over linearization orders: an operation may
    linearize next only if no pending operation's response precedes its
    invocation (real-time order is respected), and its recorded response
    must match the sequential dictionary specification at that point.
    Explored operation subsets are memoized — the sequential dictionary
    state is a deterministic function of the linearized set, so a set that
    failed once can be pruned forever. *)

val check : History.event list -> bool
(** [true] iff the history is linearizable with respect to the dictionary
    specification (insert/delete return booleans, contains returns the
    bound value option). *)

exception Not_linearizable of string

val check_exn : History.event list -> unit
(** @raise Not_linearizable with a rendering of the history otherwise. *)

val check_per_key : History.event list -> bool
(** Compositional variant: every dictionary operation touches exactly one
    key and the sequential specification is a product of independent
    per-key objects, so by the locality of linearizability (Herlihy &
    Wing) a history is linearizable iff each per-key subhistory is. The
    search cost drops from exponential in the whole history to exponential
    in the per-key contention window, so histories with thousands of
    events become checkable. *)

val check_per_key_exn : History.event list -> unit
(** @raise Not_linearizable naming the offending key's subhistory. *)
