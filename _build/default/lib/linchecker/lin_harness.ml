module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

let record_random (module D : Repro_dict.Dict.DICT) ~threads ~ops_per_thread
    ~key_range ~seed =
  let t = D.create ~max_threads:(threads + 1) () in
  let h = History.create ~threads in
  let bar = Barrier.create threads in
  let worker i () =
    let handle = D.register t in
    let rng = Rng.create (Int64.add seed (Int64.of_int (i * 7919))) in
    Barrier.wait bar;
    for _ = 1 to ops_per_thread do
      let k = Rng.int rng key_range in
      let r = Rng.int rng 10 in
      if r < 4 then
        ignore
          (History.record h ~thread:i (History.Contains k) (fun () ->
               History.Value (D.contains handle k)))
      else if r < 7 then
        ignore
          (History.record h ~thread:i (History.Insert (k, k)) (fun () ->
               History.Bool (D.insert handle k k)))
      else
        ignore
          (History.record h ~thread:i (History.Delete k) (fun () ->
               History.Bool (D.delete handle k)))
    done;
    D.unregister handle
  in
  let domains = List.init threads (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  History.events h
