(** Drive a real dictionary with concurrent domains while recording a
    history — the bridge between the implementations and {!Checker}.

    Key ranges are kept tiny and operation counts small so that the
    recorded histories contend heavily (small windows, many conflicts) yet
    stay within the checker's exponential budget. *)

val record_random :
  (module Repro_dict.Dict.DICT) ->
  threads:int ->
  ops_per_thread:int ->
  key_range:int ->
  seed:int64 ->
  History.event list
(** Each domain performs [ops_per_thread] random operations (40% contains,
    30% insert, 30% delete) on keys in [0, key_range), all recorded. *)
