lib/linchecker/checker.mli: History
