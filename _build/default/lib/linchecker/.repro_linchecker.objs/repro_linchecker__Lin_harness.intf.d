lib/linchecker/lin_harness.mli: History Repro_dict
