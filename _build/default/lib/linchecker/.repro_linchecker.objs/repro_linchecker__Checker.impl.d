lib/linchecker/checker.ml: Array Buffer Bytes Format Hashtbl History Int Int64 List Map
