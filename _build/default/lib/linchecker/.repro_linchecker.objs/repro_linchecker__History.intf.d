lib/linchecker/history.mli: Format
