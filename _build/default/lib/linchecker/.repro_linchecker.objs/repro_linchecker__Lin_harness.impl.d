lib/linchecker/lin_harness.ml: Domain History Int64 List Repro_dict Repro_sync
