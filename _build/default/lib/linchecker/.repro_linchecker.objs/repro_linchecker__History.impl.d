lib/linchecker/history.ml: Array Atomic Format List
