module IntMap = Map.Make (Int)

(* The sequential specification: does [op -> response] hold in state [map],
   and what is the next state? *)
let step map (e : History.event) =
  match (e.op, e.response) with
  | History.Insert (k, v), History.Bool b ->
      let expected = not (IntMap.mem k map) in
      if b <> expected then None
      else Some (if b then IntMap.add k v map else map)
  | History.Delete k, History.Bool b ->
      let expected = IntMap.mem k map in
      if b <> expected then None
      else Some (if b then IntMap.remove k map else map)
  | History.Contains k, History.Value r ->
      if IntMap.find_opt k map = r then Some map else None
  | History.Insert _, History.Value _
  | History.Delete _, History.Value _
  | History.Contains _, History.Bool _ ->
      None (* malformed history *)

let check events =
  let ops = Array.of_list events in
  let n = Array.length ops in
  if n = 0 then true
  else begin
    let words = (n + 62) / 63 in
    let taken = Bytes.make (words * 8) '\000' in
    let get_bit i =
      let w = i / 63 and b = i mod 63 in
      Int64.to_int (Bytes.get_int64_le taken (w * 8)) land (1 lsl b) <> 0
    in
    let set_bit i v =
      let w = i / 63 and b = i mod 63 in
      let cur = Int64.to_int (Bytes.get_int64_le taken (w * 8)) in
      let nxt = if v then cur lor (1 lsl b) else cur land lnot (1 lsl b) in
      Bytes.set_int64_le taken (w * 8) (Int64.of_int nxt)
    in
    (* Memo of linearized-sets that cannot be completed. *)
    let failed : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
    let rec dfs remaining map =
      if remaining = 0 then true
      else begin
        let key = Bytes.to_string taken in
        if Hashtbl.mem failed key then false
        else begin
          (* Minimal-response bound among pending operations: an op may
             linearize next iff its invocation precedes every pending
             response. *)
          let min_res = ref max_int in
          for i = 0 to n - 1 do
            if (not (get_bit i)) && ops.(i).History.res < !min_res then
              min_res := ops.(i).History.res
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let idx = !i in
            incr i;
            if not (get_bit idx) then begin
              let e = ops.(idx) in
              (* e is minimal iff no pending op responds before e invokes;
                 since e itself is pending, compare with the bound ignoring
                 e's own response. *)
              let minimal = e.History.inv < !min_res || e.History.res = !min_res in
              if minimal then
                match step map e with
                | Some map' ->
                    set_bit idx true;
                    if dfs (remaining - 1) map' then ok := true
                    else set_bit idx false
                | None -> ()
            end
          done;
          if not !ok then Hashtbl.replace failed key ();
          !ok
        end
      end
    in
    dfs n IntMap.empty
  end

exception Not_linearizable of string

let render ?key events =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match key with
  | Some k -> Format.fprintf ppf "history is not linearizable (key %d):@." k
  | None -> Format.fprintf ppf "history is not linearizable:@.");
  List.iter (fun e -> Format.fprintf ppf "  %a@." History.pp_event e) events;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let check_exn events =
  if not (check events) then raise (Not_linearizable (render events))

let key_of (e : History.event) =
  match e.op with
  | History.Contains k | History.Insert (k, _) | History.Delete k -> k

let by_key events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = key_of e in
      Hashtbl.replace tbl k
        (e :: (try Hashtbl.find tbl k with Not_found -> [])))
    events;
  Hashtbl.fold (fun k es acc -> (k, List.rev es) :: acc) tbl []

let check_per_key events =
  List.for_all (fun (_, es) -> check es) (by_key events)

let check_per_key_exn events =
  List.iter
    (fun (k, es) ->
      if not (check es) then raise (Not_linearizable (render ~key:k es)))
    (by_key events)
