module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff

type slot = int Atomic.t
(* Encoding: [count lsl 1) lor flag]. Only the owning thread writes its
   slot; [synchronize] only reads. *)

type t = {
  slots : slot Registry.t;
  gps : int Atomic.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : slot;
  mutable nesting : int;
}

let name = "epoch-rcu"

let create ?(max_threads = 128) () =
  {
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gps = Atomic.make 0;
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot (Atomic.get slot land lnot 1);
  { rcu; index; slot; nesting = 0 }

let unregister th =
  if th.nesting <> 0 then
    invalid_arg "Epoch_rcu.unregister: inside a read-side critical section";
  Registry.release th.rcu.slots th.index

let read_lock th =
  if th.nesting = 0 then begin
    let count = Atomic.get th.slot lsr 1 in
    (* One SC store publishes both the new count and the flag. *)
    Atomic.set th.slot (((count + 1) lsl 1) lor 1)
  end;
  th.nesting <- th.nesting + 1

let read_unlock th =
  if th.nesting <= 0 then
    invalid_arg "Epoch_rcu.read_unlock: not inside a read-side critical section";
  th.nesting <- th.nesting - 1;
  if th.nesting = 0 then Atomic.set th.slot (Atomic.get th.slot land lnot 1)

let read_depth th = th.nesting

let synchronize rcu =
  (* No lock, no handshake between concurrent synchronizers: each scans the
     slots independently. *)
  Registry.iter
    (fun slot ->
      let snapshot = Atomic.get slot in
      if snapshot land 1 = 1 then begin
        let b = Backoff.create () in
        while Atomic.get slot = snapshot do
          Backoff.once b
        done
      end)
    rcu.slots;
  ignore (Atomic.fetch_and_add rcu.gps 1)

let grace_periods rcu = Atomic.get rcu.gps
