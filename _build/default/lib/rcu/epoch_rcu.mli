(** The paper's new RCU implementation (Section 5, "New RCU").

    Each thread owns one padded atomic word packing
    [(critical-section count) * 2 + (inside-critical-section flag)]:

    - [read_lock] increments the count and sets the flag, in one store;
    - [read_unlock] clears the flag;
    - [synchronize] snapshots every slot and, for each slot whose flag was
      set, waits until the word changes — i.e. the reader either finished
      ([flag] cleared) or started a later section ([count] increased).

    Concurrent [synchronize] calls do not coordinate and take no lock, which
    is exactly what lets Citrus scale with many updaters (Figure 8, right).
    The count only grows, so "the word changed" is ABA-safe. *)

include Rcu_intf.S

val read_depth : thread -> int
(** Current read-side nesting depth of this thread (0 = quiescent); for
    assertions in tests. *)
