lib/rcu/rcu.ml: Epoch_rcu Qsbr Rcu_intf Urcu
