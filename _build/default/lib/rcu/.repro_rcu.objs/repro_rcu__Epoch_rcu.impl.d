lib/rcu/epoch_rcu.ml: Atomic Repro_sync
