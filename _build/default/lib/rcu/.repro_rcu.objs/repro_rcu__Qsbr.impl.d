lib/rcu/qsbr.ml: Atomic Repro_sync
