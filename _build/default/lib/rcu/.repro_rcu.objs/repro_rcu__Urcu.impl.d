lib/rcu/urcu.ml: Atomic Repro_sync
