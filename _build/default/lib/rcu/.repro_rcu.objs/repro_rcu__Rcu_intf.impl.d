lib/rcu/rcu_intf.ml:
