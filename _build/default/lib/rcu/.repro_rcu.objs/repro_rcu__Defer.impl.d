lib/rcu/defer.ml: List Rcu_intf
