lib/rcu/rcu.mli: Rcu_intf
