lib/rcu/qsbr.mli: Rcu_intf
