lib/rcu/epoch_rcu.mli: Rcu_intf
