lib/rcu/urcu.mli: Rcu_intf
