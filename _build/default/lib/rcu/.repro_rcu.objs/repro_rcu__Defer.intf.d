lib/rcu/defer.mli: Rcu_intf
