(** The subset of the RCU API used by Citrus (paper, Section 2), as a module
    signature so the tree is a functor over the RCU flavour.

    The RCU property: if a step of a read-side critical section precedes the
    invocation of [synchronize], then {e all} steps of that critical section
    precede the return from [synchronize]. [read_lock]/[read_unlock] must be
    wait-free. *)

module type S = sig
  type t
  (** A shared RCU domain: the set of threads that synchronize together. *)

  type thread
  (** Per-thread state; one per registered domain. Not shareable between
      domains. *)

  val name : string
  (** Implementation name, used in benchmark output. *)

  val create : ?max_threads:int -> unit -> t
  (** Create an RCU domain supporting up to [max_threads] concurrently
      registered threads (default 128). *)

  val register : t -> thread
  (** Claim per-thread state. Every domain that will call [read_lock] or
      [synchronize] must register first.
      @raise Repro_sync.Registry.Full if [max_threads] are registered. *)

  val unregister : thread -> unit
  (** Release the slot. The thread must not be inside a read-side critical
      section. *)

  val read_lock : thread -> unit
  (** Enter a read-side critical section. Wait-free. Nestable. *)

  val read_unlock : thread -> unit
  (** Leave the (innermost) read-side critical section. Wait-free. *)

  val synchronize : t -> unit
  (** Grace period: block until every read-side critical section that was in
      progress when [synchronize] was invoked has completed. Must be called
      outside any read-side critical section. *)

  val grace_periods : t -> int
  (** Number of completed [synchronize] calls (statistics). *)
end
