(* Tests for the linearizability checker itself (hand-crafted histories
   whose verdicts are known), and checker runs over histories recorded from
   every real dictionary implementation. *)

module H = Repro_linchecker.History
module Checker = Repro_linchecker.Checker
module Lin_harness = Repro_linchecker.Lin_harness

let checkb = Alcotest.check Alcotest.bool

(* Build events directly for hand-crafted cases. *)
let ev thread op response inv res = { H.thread; op; response; inv; res }

let test_empty_history () = checkb "empty" true (Checker.check [])

let test_sequential_valid () =
  let h =
    [
      ev 0 (H.Insert (1, 10)) (H.Bool true) 0 1;
      ev 0 (H.Contains 1) (H.Value (Some 10)) 2 3;
      ev 0 (H.Delete 1) (H.Bool true) 4 5;
      ev 0 (H.Contains 1) (H.Value None) 6 7;
      ev 0 (H.Delete 1) (H.Bool false) 8 9;
      ev 0 (H.Insert (1, 20)) (H.Bool true) 10 11;
    ]
  in
  checkb "valid sequential" true (Checker.check h)

let test_sequential_invalid_insert () =
  let h =
    [
      ev 0 (H.Insert (1, 10)) (H.Bool true) 0 1;
      ev 0 (H.Insert (1, 20)) (H.Bool true) 2 3;
      (* duplicate insert cannot succeed *)
    ]
  in
  checkb "invalid duplicate insert" false (Checker.check h)

let test_sequential_invalid_contains () =
  let h =
    [
      ev 0 (H.Insert (1, 10)) (H.Bool true) 0 1;
      ev 0 (H.Contains 1) (H.Value None) 2 3;
      (* key is present; None is wrong *)
    ]
  in
  checkb "stale read rejected" false (Checker.check h)

let test_concurrent_reorder_allowed () =
  (* contains(1)=None overlaps insert(1): legal — the read linearizes
     before the insert. *)
  let h =
    [
      ev 0 (H.Insert (1, 10)) (H.Bool true) 0 3;
      ev 1 (H.Contains 1) (H.Value None) 1 2;
    ]
  in
  checkb "overlapping read may miss" true (Checker.check h);
  (* But a read that BEGINS after the insert returned must see it. *)
  let h' =
    [
      ev 0 (H.Insert (1, 10)) (H.Bool true) 0 1;
      ev 1 (H.Contains 1) (H.Value None) 2 3;
    ]
  in
  checkb "read after response must see" false (Checker.check h')

let test_concurrent_double_delete () =
  (* Two overlapping deletes of the same key: only one may return true
     (when the key was inserted once). *)
  let both_true =
    [
      ev 0 (H.Insert (7, 7)) (H.Bool true) 0 1;
      ev 0 (H.Delete 7) (H.Bool true) 2 5;
      ev 1 (H.Delete 7) (H.Bool true) 3 4;
    ]
  in
  checkb "two winners rejected" false (Checker.check both_true);
  let one_true =
    [
      ev 0 (H.Insert (7, 7)) (H.Bool true) 0 1;
      ev 0 (H.Delete 7) (H.Bool true) 2 5;
      ev 1 (H.Delete 7) (H.Bool false) 3 4;
    ]
  in
  checkb "one winner accepted" true (Checker.check one_true)

let test_value_semantics () =
  (* Insert of a present key must not change the value. *)
  let h =
    [
      ev 0 (H.Insert (3, 30)) (H.Bool true) 0 1;
      ev 0 (H.Insert (3, 99)) (H.Bool false) 2 3;
      ev 0 (H.Contains 3) (H.Value (Some 30)) 4 5;
    ]
  in
  checkb "failed insert preserves value" true (Checker.check h);
  let h_bad =
    [
      ev 0 (H.Insert (3, 30)) (H.Bool true) 0 1;
      ev 0 (H.Insert (3, 99)) (H.Bool false) 2 3;
      ev 0 (H.Contains 3) (H.Value (Some 99)) 4 5;
    ]
  in
  checkb "value overwrite rejected" false (Checker.check h_bad)

let test_check_exn () =
  Alcotest.check_raises "raises with rendering"
    (Checker.Not_linearizable
       "history is not linearizable:\n\
       \  [t0 0-1] insert(1,10) -> true\n\
       \  [t0 2-3] insert(1,20) -> true\n")
    (fun () ->
      Checker.check_exn
        [
          ev 0 (H.Insert (1, 10)) (H.Bool true) 0 1;
          ev 0 (H.Insert (1, 20)) (H.Bool true) 2 3;
        ])

(* The window-respecting search: a long history that is only linearizable
   if the checker reorders within overlap windows correctly. *)
let test_interleaved_chain () =
  let h =
    [
      ev 0 (H.Insert (1, 1)) (H.Bool true) 0 5;
      ev 1 (H.Delete 1) (H.Bool true) 1 6;
      ev 2 (H.Contains 1) (H.Value (Some 1)) 2 3;
      ev 2 (H.Contains 1) (H.Value None) 7 8;
      ev 0 (H.Insert (1, 2)) (H.Bool true) 9 12;
      ev 1 (H.Contains 1) (H.Value (Some 2)) 10 11;
    ]
  in
  checkb "chain linearizable" true (Checker.check h)

(* --- property tests: the checker against generated histories --- *)

module IntMap = Map.Make (Int)

(* A well-formed sequential history: responses computed from the model,
   strictly ordered intervals. Always linearizable. *)
let gen_sequential_history =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (pair (int_bound 6) (pair (int_bound 3) (int_bound 100)))
    |> map (fun raw ->
           let tick = ref 0 in
           let map = ref IntMap.empty in
           List.map
             (fun (k, (kind, v)) ->
               let inv = !tick in
               let res = !tick + 1 in
               tick := !tick + 2;
               match kind with
               | 0 | 3 ->
                   let ok = not (IntMap.mem k !map) in
                   if ok then map := IntMap.add k v !map;
                   ev 0 (H.Insert (k, v)) (H.Bool ok) inv res
               | 1 ->
                   let ok = IntMap.mem k !map in
                   map := IntMap.remove k !map;
                   ev 0 (H.Delete k) (H.Bool ok) inv res
               | _ ->
                   ev 0 (H.Contains k) (H.Value (IntMap.find_opt k !map)) inv
                     res)
             raw))

let arb_sequential_history =
  QCheck.make
    ~print:(fun events ->
      String.concat "\n"
        (List.map (Format.asprintf "%a" H.pp_event) events))
    gen_sequential_history

let prop_sequential_histories_accepted =
  QCheck.Test.make ~name:"well-formed sequential histories accepted"
    ~count:300 arb_sequential_history (fun h ->
      Checker.check h && Checker.check_per_key h)

(* Flipping one response of a strictly sequential history always breaks
   linearizability (sequential responses are uniquely determined). *)
let flip_event e =
  let open H in
  match e.response with
  | Bool b -> { e with response = Bool (not b) }
  | Value (Some _) -> { e with response = Value None }
  | Value None -> { e with response = Value (Some 424242) }

let prop_mutated_sequential_histories_rejected =
  QCheck.Test.make ~name:"mutated sequential histories rejected" ~count:300
    QCheck.(pair arb_sequential_history small_nat)
    (fun (h, idx) ->
      QCheck.assume (h <> []);
      let idx = idx mod List.length h in
      let mutated = List.mapi (fun i e -> if i = idx then flip_event e else e) h in
      (not (Checker.check mutated)) && not (Checker.check_per_key mutated))

(* --- per-key compositional checking --- *)

let test_per_key_agrees_with_global () =
  (* On histories small enough for the global search, both checkers must
     give the same verdict. *)
  let samples =
    [
      ( true,
        [
          ev 0 (H.Insert (1, 1)) (H.Bool true) 0 3;
          ev 1 (H.Contains 1) (H.Value None) 1 2;
          ev 0 (H.Insert (2, 2)) (H.Bool true) 4 5;
          ev 1 (H.Delete 2) (H.Bool true) 6 7;
        ] );
      ( false,
        [
          ev 0 (H.Insert (1, 1)) (H.Bool true) 0 1;
          ev 1 (H.Insert (1, 9)) (H.Bool true) 2 3;
        ] );
      ( false,
        [
          ev 0 (H.Insert (5, 5)) (H.Bool true) 0 1;
          ev 0 (H.Contains 5) (H.Value None) 2 3;
          ev 1 (H.Insert (6, 6)) (H.Bool true) 4 5;
        ] );
    ]
  in
  List.iter
    (fun (expected, h) ->
      checkb "global verdict" expected (Checker.check h);
      checkb "per-key verdict" expected (Checker.check_per_key h))
    samples

let test_per_key_scales () =
  (* A history far beyond the global checker's reach: thousands of events
     across many keys, each key's subhistory trivial. *)
  let events = ref [] in
  let tick = ref 0 in
  for k = 0 to 499 do
    let t0 = !tick in
    events :=
      ev 0 (H.Insert (k, k)) (H.Bool true) t0 (t0 + 1)
      :: ev 1 (H.Contains k) (H.Value (Some k)) (t0 + 2) (t0 + 3)
      :: ev 0 (H.Delete k) (H.Bool true) (t0 + 4) (t0 + 5)
      :: !events;
    tick := t0 + 6
  done;
  checkb "2.5k events check quickly" true (Checker.check_per_key !events)

let test_per_key_exn_names_key () =
  let h =
    [
      ev 0 (H.Insert (1, 1)) (H.Bool true) 0 1;
      ev 0 (H.Insert (7, 7)) (H.Bool true) 2 3;
      ev 0 (H.Insert (7, 8)) (H.Bool true) 4 5;
    ]
  in
  checkb "raises mentioning key 7" true
    (match Checker.check_per_key_exn h with
    | () -> false
    | exception Checker.Not_linearizable msg ->
        let contains_sub hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        contains_sub msg "key 7")

(* --- recorded histories from real structures --- *)

let recorded_suite =
  List.map
    (fun (module D : Repro_dict.Dict.DICT) ->
      Alcotest.test_case (D.name ^ " histories linearizable") `Quick (fun () ->
          for seed = 1 to 8 do
            let events =
              Lin_harness.record_random
                (module D)
                ~threads:3 ~ops_per_thread:12 ~key_range:4
                ~seed:(Int64.of_int (seed * 997))
            in
            Checker.check_exn events
          done))
    Repro_dict.Dict.all

(* QCheck-generated concurrent schedules: two domains execute generated op
   lists simultaneously against a real structure while recording; the
   history must linearize. On failure QCheck shrinks the op lists toward a
   minimal counterexample schedule. *)
let gen_op_list =
  QCheck.Gen.(
    list_size (int_range 1 15)
      (pair (int_bound 3) (int_bound 2))
    |> map
         (List.map (fun (k, kind) ->
              match kind with
              | 0 -> `Insert k
              | 1 -> `Delete k
              | _ -> `Contains k)))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | `Insert k -> Printf.sprintf "I%d" k
         | `Delete k -> Printf.sprintf "D%d" k
         | `Contains k -> Printf.sprintf "C%d" k)
       ops)

let arb_schedule =
  QCheck.make
    ~print:(fun (a, b) -> print_ops a ^ " || " ^ print_ops b)
    QCheck.Gen.(pair gen_op_list gen_op_list)

let run_schedule (module D : Repro_dict.Dict.DICT) (ops_a, ops_b) =
  let t = D.create () in
  let hist = H.create ~threads:2 in
  let bar = Repro_sync.Barrier.create 2 in
  let runner thread ops =
    Domain.spawn (fun () ->
        let h = D.register t in
        Repro_sync.Barrier.wait bar;
        List.iter
          (fun op ->
            ignore
              (match op with
              | `Insert k ->
                  H.record hist ~thread (H.Insert (k, k)) (fun () ->
                      H.Bool (D.insert h k k))
              | `Delete k ->
                  H.record hist ~thread (H.Delete k) (fun () ->
                      H.Bool (D.delete h k))
              | `Contains k ->
                  H.record hist ~thread (H.Contains k) (fun () ->
                      H.Value (D.contains h k))))
          ops;
        D.unregister h)
  in
  let a = runner 0 ops_a and b = runner 1 ops_b in
  Domain.join a;
  Domain.join b;
  Checker.check (H.events hist)

let prop_generated_schedules (module D : Repro_dict.Dict.DICT) =
  QCheck.Test.make
    ~name:(D.name ^ " generated schedules linearize")
    ~count:40 arb_schedule
    (fun schedule -> run_schedule (module D) schedule)

let schedule_suite =
  List.map
    (fun d -> QCheck_alcotest.to_alcotest (prop_generated_schedules d))
    [
      (module Repro_dict.Dict.Citrus_epoch : Repro_dict.Dict.DICT);
      (module Repro_dict.Dict.Avl);
      (module Repro_dict.Dict.Nm);
      (module Repro_dict.Dict.Ellen);
      (module Repro_dict.Dict.Skiplist);
      (module Repro_dict.Dict.Cf);
    ]

(* Bigger recorded histories, feasible only through per-key composition. *)
let recorded_per_key_suite =
  List.map
    (fun (module D : Repro_dict.Dict.DICT) ->
      Alcotest.test_case (D.name ^ " large histories (per-key)") `Quick
        (fun () ->
          for seed = 1 to 3 do
            let events =
              Lin_harness.record_random
                (module D)
                ~threads:4 ~ops_per_thread:150 ~key_range:16
                ~seed:(Int64.of_int (seed * 131))
            in
            Checker.check_per_key_exn events
          done))
    Repro_dict.Dict.all

let () =
  Alcotest.run "linchecker"
    [
      ( "checker unit",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential valid" `Quick test_sequential_valid;
          Alcotest.test_case "duplicate insert" `Quick
            test_sequential_invalid_insert;
          Alcotest.test_case "stale read" `Quick test_sequential_invalid_contains;
          Alcotest.test_case "overlap reorder" `Quick
            test_concurrent_reorder_allowed;
          Alcotest.test_case "double delete" `Quick test_concurrent_double_delete;
          Alcotest.test_case "value semantics" `Quick test_value_semantics;
          Alcotest.test_case "check_exn message" `Quick test_check_exn;
          Alcotest.test_case "interleaved chain" `Quick test_interleaved_chain;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sequential_histories_accepted;
          QCheck_alcotest.to_alcotest prop_mutated_sequential_histories_rejected;
        ] );
      ( "per-key",
        [
          Alcotest.test_case "agrees with global" `Quick
            test_per_key_agrees_with_global;
          Alcotest.test_case "scales to large histories" `Quick
            test_per_key_scales;
          Alcotest.test_case "exception names key" `Quick
            test_per_key_exn_names_key;
        ] );
      ("recorded histories", recorded_suite);
      ("recorded large histories", recorded_per_key_suite);
      ("generated schedules", schedule_suite);
    ]
