(* rcutorture: a port of the Linux kernel's RCU torture methodology to the
   three user-space RCU implementations in this repository.

   A writer publishes fresh elements into shared slots; after replacing an
   element it waits one grace period and only then marks the old element
   freed. Readers continuously dereference the slots inside read-side
   critical sections (sometimes nested, sometimes with artificial delays)
   and flag an error if they ever observe an element after it was freed —
   which can only happen if synchronize returned while a pre-existing
   reader still held the element.

   Each configuration runs over every RCU flavour; all must report zero
   torture errors. *)

module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

type elem = { id : int; mutable freed : bool }

module Torture (R : Repro_rcu.Rcu.S) = struct
  module Defer = Repro_rcu.Defer.Make (R)

  type config = {
    readers : int;
    writers : int;
    slots : int;
    updates_per_writer : int;
    nest : bool; (* readers use nested read-side sections *)
    reader_delay : bool; (* readers dawdle inside the critical section *)
    use_defer : bool; (* writers free through Defer instead of inline *)
  }

  let run cfg =
    let r = R.create ~max_threads:(cfg.readers + cfg.writers + 1) () in
    let slots =
      Array.init cfg.slots (fun i -> Atomic.make { id = i; freed = false })
    in
    let errors = Atomic.make 0 in
    let stop = Atomic.make false in
    let start = Barrier.create (cfg.readers + cfg.writers) in
    let reader i =
      Domain.spawn (fun () ->
          let th = R.register r in
          let rng = Rng.create (Int64.of_int (7_000 + i)) in
          Barrier.wait start;
          while not (Atomic.get stop) do
            R.read_lock th;
            if cfg.nest then R.read_lock th;
            let slot = slots.(Rng.int rng cfg.slots) in
            let p = Atomic.get slot in
            if p.freed then Atomic.incr errors;
            if cfg.reader_delay then
              for _ = 1 to Rng.int rng 50 do
                Domain.cpu_relax ()
              done;
            (* The element must remain valid for the whole critical
               section, no matter how long we dawdled. *)
            if p.freed then Atomic.incr errors;
            if cfg.nest then R.read_unlock th;
            R.read_unlock th
          done;
          R.unregister th)
    in
    let writer i =
      Domain.spawn (fun () ->
          let th = R.register r in
          let defer = if cfg.use_defer then Some (Defer.create r) else None in
          let rng = Rng.create (Int64.of_int (9_000 + i)) in
          Barrier.wait start;
          for u = 1 to cfg.updates_per_writer do
            let slot = slots.(Rng.int rng cfg.slots) in
            let fresh = { id = (i * 1_000_000) + u; freed = false } in
            let old = Atomic.exchange slot fresh in
            (match defer with
            | Some d -> Defer.defer d (fun () -> old.freed <- true)
            | None ->
                R.synchronize r;
                old.freed <- true)
          done;
          (match defer with Some d -> Defer.flush d | None -> ());
          ignore th;
          R.unregister th)
    in
    let readers = List.init cfg.readers reader in
    let writers = List.init cfg.writers writer in
    List.iter Domain.join writers;
    Atomic.set stop true;
    List.iter Domain.join readers;
    (Atomic.get errors, R.grace_periods r)

  let case name cfg min_gps =
    Alcotest.test_case name `Quick (fun () ->
        let errors, gps = run cfg in
        checki (name ^ ": torture errors") 0 errors;
        checkb (name ^ ": grace periods elapsed") true (gps >= min_gps))

  let suite flavour =
    ( Printf.sprintf "rcutorture/%s" flavour,
      [
        case "baseline (2r/1w)"
          {
            readers = 2;
            writers = 1;
            slots = 4;
            updates_per_writer = 300;
            nest = false;
            reader_delay = false;
            use_defer = false;
          }
          300;
        case "nested readers"
          {
            readers = 2;
            writers = 1;
            slots = 2;
            updates_per_writer = 200;
            nest = true;
            reader_delay = false;
            use_defer = false;
          }
          200;
        case "dawdling readers"
          {
            readers = 3;
            writers = 1;
            slots = 2;
            updates_per_writer = 150;
            nest = false;
            reader_delay = true;
            use_defer = false;
          }
          150;
        case "concurrent writers"
          {
            readers = 2;
            writers = 3;
            slots = 8;
            updates_per_writer = 100;
            nest = false;
            reader_delay = true;
            use_defer = false;
          }
          300;
        case "deferred frees"
          {
            readers = 2;
            writers = 2;
            slots = 4;
            updates_per_writer = 200;
            nest = true;
            reader_delay = true;
            use_defer = true;
          }
          10;
      ] )
end

module Epoch_torture = Torture (Repro_rcu.Epoch_rcu)
module Urcu_torture = Torture (Repro_rcu.Urcu)
module Qsbr_torture = Torture (Repro_rcu.Qsbr)

let () =
  Alcotest.run "rcutorture"
    [
      Epoch_torture.suite "epoch-rcu";
      Urcu_torture.suite "urcu";
      Qsbr_torture.suite "qsbr";
    ]
