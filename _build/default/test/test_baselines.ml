(* Structure-specific tests for the baseline dictionaries: the properties
   that distinguish each design (balance bounds, external-tree shape,
   skiplist towers, red-black properties, path-copy snapshots). The shared
   dictionary semantics are covered by test_dict.ml. *)

module B = Repro_baselines
module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Seq_bst (the reference model itself needs a ground truth: Map) --- *)

module IntMap = Map.Make (Int)

let test_seq_bst_vs_map () =
  let t = B.Seq_bst.create () in
  let rng = Rng.create 7L in
  let map = ref IntMap.empty in
  for _ = 1 to 5_000 do
    let k = Rng.int rng 100 in
    match Rng.int rng 3 with
    | 0 ->
        let expected = not (IntMap.mem k !map) in
        assert (B.Seq_bst.insert t k (k * 2) = expected);
        map := IntMap.add k (IntMap.find_opt k !map |> Option.value ~default:(k * 2)) !map
    | 1 ->
        let expected = IntMap.mem k !map in
        assert (B.Seq_bst.delete t k = expected);
        map := IntMap.remove k !map
    | _ -> assert (B.Seq_bst.contains t k = IntMap.find_opt k !map)
  done;
  B.Seq_bst.check_invariants t;
  Alcotest.check
    Alcotest.(list (pair int int))
    "bindings" (IntMap.bindings !map) (B.Seq_bst.to_list t)

let test_seq_bst_successor_delete () =
  let t = B.Seq_bst.create () in
  List.iter (fun k -> ignore (B.Seq_bst.insert t k k)) [ 50; 25; 75; 60; 80; 65 ];
  checkb "delete internal with two children" true (B.Seq_bst.delete t 50);
  B.Seq_bst.check_invariants t;
  Alcotest.check
    Alcotest.(list int)
    "keys" [ 25; 60; 65; 75; 80 ]
    (List.map fst (B.Seq_bst.to_list t))

(* --- Bonsai: weight balance and snapshot isolation --- *)

let test_bonsai_balance_held () =
  let t = B.Bonsai.create () in
  (* Adversarial: fully ascending insertion would wreck an unbalanced BST. *)
  for k = 1 to 2_000 do
    ignore (B.Bonsai.insert t k k)
  done;
  B.Bonsai.check_invariants t;
  checkb "logarithmic height" true (B.Bonsai.height t <= 25);
  for k = 1 to 1_000 do
    ignore (B.Bonsai.delete t (2 * k))
  done;
  B.Bonsai.check_invariants t;
  checki "half left" 1_000 (B.Bonsai.size t)

let test_bonsai_readers_see_snapshots () =
  (* A reader traversing during updates sees some consistent prefix: since
     lookups are pure traversals of an immutable root snapshot, a value read
     can never be torn. Verify heavy churn keeps reads consistent. *)
  let t = B.Bonsai.create () in
  for k = 0 to 99 do
    ignore (B.Bonsai.insert t k (k * 11))
  done;
  let stop = Atomic.make false in
  let anomalies = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let rng = Rng.create 3L in
        while not (Atomic.get stop) do
          let k = Rng.int rng 100 in
          match B.Bonsai.contains t k with
          | Some v when v <> k * 11 -> Atomic.incr anomalies
          | Some _ | None -> ()
        done)
  in
  for _ = 1 to 5_000 do
    let k = Random.int 100 in
    if Random.bool () then ignore (B.Bonsai.delete t k)
    else ignore (B.Bonsai.insert t k (k * 11))
  done;
  Atomic.set stop true;
  Domain.join reader;
  checki "no torn reads" 0 (Atomic.get anomalies);
  B.Bonsai.check_invariants t

(* --- AVL: strict relaxed-balance convergence --- *)

let test_avl_balance_sequential () =
  let t = B.Avl.create () in
  for k = 1 to 2_000 do
    ignore (B.Avl.insert t k k)
  done;
  B.Avl.check_invariants t;
  checkb "logarithmic height" true (B.Avl.height t <= 25);
  for k = 2_000 downto 1 do
    if k mod 2 = 0 then ignore (B.Avl.delete t k)
  done;
  B.Avl.check_invariants t;
  checki "half left" 1_000 (B.Avl.size t)

let test_avl_routing_node_reuse () =
  let t = B.Avl.create () in
  List.iter (fun k -> ignore (B.Avl.insert t k k)) [ 50; 25; 75 ];
  (* Deleting the root (two children) demotes it to a routing node. *)
  checkb "delete internal" true (B.Avl.delete t 50);
  checkb "absent afterwards" false (B.Avl.mem t 50);
  checki "size" 2 (B.Avl.size t);
  (* Re-inserting repopulates the routing node. *)
  checkb "reinsert through routing node" true (B.Avl.insert t 50 99);
  Alcotest.check Alcotest.(option int) "value" (Some 99) (B.Avl.contains t 50);
  B.Avl.check_invariants t

let test_avl_concurrent_balance_converges () =
  let t = B.Avl.create () in
  let n_domains = 4 in
  let bar = Barrier.create n_domains in
  let worker i () =
    let rng = Rng.create (Int64.of_int (100 + i)) in
    Barrier.wait bar;
    for _ = 1 to 5_000 do
      let k = Rng.int rng 512 in
      if Rng.int rng 2 = 0 then ignore (B.Avl.insert t k k)
      else ignore (B.Avl.delete t k)
    done
  in
  let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  (* All updates and their rebalancing have completed: the tree must be a
     strict AVL again. *)
  B.Avl.check_invariants t

(* Rotation storm: ascending and descending inserters force constant
   rebalancing while readers verify a fixed working set is never missed —
   the OVL protocol's reason to exist. *)
let test_avl_rotation_storm () =
  let t = B.Avl.create () in
  let stable = List.init 64 (fun i -> 100_000 + i) in
  List.iter (fun k -> ignore (B.Avl.insert t k k)) stable;
  let stop = Atomic.make false in
  let missing = Atomic.make 0 in
  let readers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.create (Int64.of_int (77 + i)) in
            while not (Atomic.get stop) do
              let k = 100_000 + Rng.int rng 64 in
              if not (B.Avl.mem t k) then Atomic.incr missing
            done))
  in
  let ascending =
    Domain.spawn (fun () ->
        for k = 1 to 3_000 do
          ignore (B.Avl.insert t k k)
        done;
        for k = 1 to 3_000 do
          ignore (B.Avl.delete t k)
        done)
  in
  let descending =
    Domain.spawn (fun () ->
        for k = 300_000 downto 297_000 do
          ignore (B.Avl.insert t k k)
        done;
        for k = 300_000 downto 297_000 do
          ignore (B.Avl.delete t k)
        done)
  in
  Domain.join ascending;
  Domain.join descending;
  Atomic.set stop true;
  List.iter Domain.join readers;
  checki "stable keys never missed during rotations" 0 (Atomic.get missing);
  B.Avl.check_invariants t;
  checki "exactly the stable set remains" 64 (B.Avl.size t)

(* --- Natarajan-Mittal: external shape, helping --- *)

let test_nm_sentinels_preserved () =
  let t = B.Nm_bst.create () in
  B.Nm_bst.check_invariants t;
  for k = 0 to 100 do
    ignore (B.Nm_bst.insert t k k)
  done;
  for k = 0 to 100 do
    if k mod 2 = 0 then ignore (B.Nm_bst.delete t k)
  done;
  B.Nm_bst.check_invariants t;
  checki "odd keys remain" 50 (B.Nm_bst.size t)

let test_nm_key_bound () =
  let t = B.Nm_bst.create () in
  checkb "sentinel key rejected" true
    (match B.Nm_bst.insert t (max_int - 2) 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_nm_delete_then_reinsert_same_key () =
  let t = B.Nm_bst.create () in
  for round = 1 to 50 do
    checkb "insert" true (B.Nm_bst.insert t 7 round);
    Alcotest.check Alcotest.(option int) "value" (Some round)
      (B.Nm_bst.contains t 7);
    checkb "delete" true (B.Nm_bst.delete t 7)
  done;
  checki "empty" 0 (B.Nm_bst.size t);
  B.Nm_bst.check_invariants t

let test_nm_concurrent_same_key_deletes () =
  (* Exactly one of the concurrent deletes of a key must win. *)
  let t = B.Nm_bst.create () in
  let rounds = 500 in
  let wins = Atomic.make 0 in
  let bar = Barrier.create 3 in
  let deleter () =
    for _ = 1 to rounds do
      Barrier.wait bar;
      if B.Nm_bst.delete t 42 then Atomic.incr wins;
      Barrier.wait bar
    done
  in
  let inserter =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          ignore (B.Nm_bst.insert t 42 1);
          Barrier.wait bar;
          (* deleters race here *)
          Barrier.wait bar
        done)
  in
  let d1 = Domain.spawn deleter and d2 = Domain.spawn deleter in
  Domain.join inserter;
  Domain.join d1;
  Domain.join d2;
  checki "every round has exactly one winner" rounds (Atomic.get wins);
  B.Nm_bst.check_invariants t

(* --- Skiplist: towers and level structure --- *)

let test_skiplist_structure () =
  let t = B.Skiplist.create () in
  let h = B.Skiplist.register t in
  for k = 1 to 1_000 do
    ignore (B.Skiplist.insert h k k)
  done;
  B.Skiplist.check_invariants t;
  checki "size" 1_000 (B.Skiplist.size t);
  for k = 1 to 1_000 do
    if k mod 2 = 0 then ignore (B.Skiplist.delete h k)
  done;
  B.Skiplist.check_invariants t;
  checki "half" 500 (B.Skiplist.size t)

let test_skiplist_sentinel_guard () =
  let t = B.Skiplist.create () in
  let h = B.Skiplist.register t in
  checkb "min_int rejected" true
    (match B.Skiplist.insert h min_int 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_skiplist_custom_levels () =
  let t = B.Skiplist.create ~max_level:4 () in
  let h = B.Skiplist.register t in
  for k = 1 to 200 do
    ignore (B.Skiplist.insert h k k)
  done;
  B.Skiplist.check_invariants t;
  checki "all present despite few levels" 200 (B.Skiplist.size t)

(* --- Red-black: colour properties under churn --- *)

module Rb = B.Rb_rcu.Make (Repro_rcu.Epoch_rcu)

let test_rb_properties_sequential () =
  let t = Rb.create () in
  let h = Rb.register t in
  for k = 1 to 2_000 do
    ignore (Rb.insert h k k)
  done;
  Rb.check_invariants t;
  checkb "logarithmic height" true (Rb.height t <= 2 * 12);
  for k = 1 to 2_000 do
    if k mod 3 <> 0 then ignore (Rb.delete h k)
  done;
  Rb.check_invariants t;
  checki "third left" 666 (Rb.size t);
  Rb.unregister h

let test_rb_random_churn () =
  let t = Rb.create () in
  let h = Rb.register t in
  let rng = Rng.create 11L in
  let map = ref IntMap.empty in
  for _ = 1 to 20_000 do
    let k = Rng.int rng 200 in
    if Rng.bool rng then begin
      let expected = not (IntMap.mem k !map) in
      assert (Rb.insert h k k = expected);
      map := IntMap.add k k !map
    end
    else begin
      let expected = IntMap.mem k !map in
      assert (Rb.delete h k = expected);
      map := IntMap.remove k !map
    end;
    if Rng.int rng 100 = 0 then Rb.check_invariants t
  done;
  Rb.check_invariants t;
  Alcotest.check
    Alcotest.(list (pair int int))
    "bindings" (IntMap.bindings !map) (Rb.to_list t);
  Rb.unregister h

let test_rb_readers_during_restructure () =
  (* Readers must find every key of an immutable working set while a writer
     deletes and reinserts disjoint churn keys, forcing rotations and
     successor moves across the working set's paths. *)
  let t = Rb.create () in
  let setup = Rb.register t in
  let stable = List.init 50 (fun i -> (2 * i) + 1) in
  (* odd keys *)
  List.iter (fun k -> ignore (Rb.insert setup k k)) stable;
  let stop = Atomic.make false in
  let missing = Atomic.make 0 in
  let readers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = Rb.register t in
            let rng = Rng.create (Int64.of_int (900 + i)) in
            while not (Atomic.get stop) do
              let k = (2 * Rng.int rng 50) + 1 in
              if not (Rb.mem h k) then Atomic.incr missing
            done;
            Rb.unregister h))
  in
  let writer =
    Domain.spawn (fun () ->
        let h = Rb.register t in
        let rng = Rng.create 77L in
        for _ = 1 to 3_000 do
          let k = 2 * Rng.int rng 60 in
          (* even churn keys *)
          if Rng.bool rng then ignore (Rb.insert h k k)
          else ignore (Rb.delete h k)
        done;
        Rb.unregister h)
  in
  Domain.join writer;
  Atomic.set stop true;
  List.iter Domain.join readers;
  checki "stable keys never missed" 0 (Atomic.get missing);
  Rb.check_invariants t;
  Rb.unregister setup

(* --- Contention-friendly tree --- *)

let test_cf_logical_then_physical () =
  let t = B.Cf_tree.create () in
  for k = 1 to 100 do
    ignore (B.Cf_tree.insert t k k)
  done;
  for k = 1 to 100 do
    if k mod 2 = 0 then assert (B.Cf_tree.delete t k)
  done;
  checki "logical size" 50 (B.Cf_tree.size t);
  (* The deleted nodes are still physically present until the adapter
     runs. *)
  let h_before = B.Cf_tree.height t in
  let changes = B.Cf_tree.adapt t in
  checkb "structural work happened" true (changes > 0);
  checkb "height not worse" true (B.Cf_tree.height t <= h_before);
  checki "size unchanged by adaptation" 50 (B.Cf_tree.size t);
  B.Cf_tree.check_invariants t

let test_cf_revive () =
  let t = B.Cf_tree.create () in
  assert (B.Cf_tree.insert t 5 50);
  assert (B.Cf_tree.delete t 5);
  checkb "logically gone" false (B.Cf_tree.mem t 5);
  (* Reviving reuses the logically-deleted node with the new value. *)
  checkb "revive" true (B.Cf_tree.insert t 5 99);
  Alcotest.check Alcotest.(option int) "new value" (Some 99)
    (B.Cf_tree.contains t 5);
  checkb "delete again" true (B.Cf_tree.delete t 5);
  ignore (B.Cf_tree.adapt t);
  checkb "still gone after physical removal" false (B.Cf_tree.mem t 5);
  checkb "insert after physical removal" true (B.Cf_tree.insert t 5 1);
  B.Cf_tree.check_invariants t

let test_cf_balance_restored () =
  let t = B.Cf_tree.create () in
  let n = 2048 in
  for k = 1 to n do
    ignore (B.Cf_tree.insert t k k)
  done;
  checki "degenerate" n (B.Cf_tree.height t);
  ignore (B.Cf_tree.adapt ~max_passes:200 t);
  checkb "logarithmic height" true (B.Cf_tree.height t <= 25);
  checki "contents intact" n (B.Cf_tree.size t);
  B.Cf_tree.check_invariants t

let test_cf_concurrent_with_adapter () =
  let t = B.Cf_tree.create () in
  let stop = Atomic.make false in
  let adapter =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          if B.Cf_tree.structural_pass t = 0 then Domain.cpu_relax ()
        done)
  in
  let n_workers = 3 in
  let keys_per = 250 in
  let workers =
    List.init n_workers (fun i ->
        Domain.spawn (fun () ->
            let base = i * keys_per in
            for k = base to base + keys_per - 1 do
              assert (B.Cf_tree.insert t k k)
            done;
            for k = base to base + keys_per - 1 do
              if k mod 2 = 1 then assert (B.Cf_tree.delete t k)
            done;
            for k = base to base + keys_per - 1 do
              let expected = if k mod 2 = 0 then Some k else None in
              if B.Cf_tree.contains t k <> expected then
                Alcotest.failf "key %d wrong under adaptation" k
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join adapter;
  B.Cf_tree.check_invariants t;
  checki "survivors" (n_workers * keys_per / 2) (B.Cf_tree.size t)

(* --- Ellen et al. non-blocking BST --- *)

let test_ellen_descriptor_protocol_sequential () =
  let t = B.Ellen_bst.create () in
  B.Ellen_bst.check_invariants t;
  for k = 0 to 200 do
    checkb "insert" true (B.Ellen_bst.insert t k k)
  done;
  (* Every descriptor must be Clean again after each completed op. *)
  B.Ellen_bst.check_invariants t;
  for k = 0 to 200 do
    if k mod 3 = 0 then checkb "delete" true (B.Ellen_bst.delete t k)
  done;
  B.Ellen_bst.check_invariants t;
  checki "survivors" (201 - 67) (B.Ellen_bst.size t)

let test_ellen_sentinel_guard () =
  let t = B.Ellen_bst.create () in
  checkb "sentinel key rejected" true
    (match B.Ellen_bst.insert t (max_int - 1) 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_ellen_concurrent_same_key () =
  (* Duelling inserts and deletes of one key: the descriptor protocol must
     produce exactly one winner per phase. *)
  let t = B.Ellen_bst.create () in
  let rounds = 300 in
  let ins_wins = Atomic.make 0 in
  let del_wins = Atomic.make 0 in
  let bar = Barrier.create 4 in
  let inserter () =
    for _ = 1 to rounds do
      Barrier.wait bar;
      if B.Ellen_bst.insert t 7 7 then Atomic.incr ins_wins;
      Barrier.wait bar
    done
  in
  let deleter () =
    for _ = 1 to rounds do
      Barrier.wait bar;
      Barrier.wait bar;
      (* the key is now present exactly once *)
      if B.Ellen_bst.delete t 7 then Atomic.incr del_wins
    done
  in
  let coordinator =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          Barrier.wait bar;
          (* two inserters race here *)
          Barrier.wait bar;
          (* two deleters race after the second barrier *)
          ()
        done)
  in
  let i1 = Domain.spawn inserter and i2 = Domain.spawn inserter in
  let d1 = Domain.spawn deleter in
  Domain.join i1;
  Domain.join i2;
  Domain.join d1;
  Domain.join coordinator;
  checki "one insert winner per round" rounds (Atomic.get ins_wins);
  checki "every delete succeeds on the solo phase" rounds
    (Atomic.get del_wins);
  B.Ellen_bst.check_invariants t

(* --- Lazy list --- *)

let test_lazy_list_basics () =
  let t = B.Lazy_list.create () in
  checkb "insert" true (B.Lazy_list.insert t 5 50);
  checkb "dup" false (B.Lazy_list.insert t 5 99);
  Alcotest.check Alcotest.(option int) "value" (Some 50)
    (B.Lazy_list.contains t 5);
  checkb "insert smaller" true (B.Lazy_list.insert t 1 10);
  checkb "insert larger" true (B.Lazy_list.insert t 9 90);
  Alcotest.check
    Alcotest.(list (pair int int))
    "sorted" [ (1, 10); (5, 50); (9, 90) ]
    (B.Lazy_list.to_list t);
  checkb "delete middle" true (B.Lazy_list.delete t 5);
  checkb "delete absent" false (B.Lazy_list.delete t 5);
  B.Lazy_list.check_invariants t;
  checki "size" 2 (B.Lazy_list.size t)

let test_lazy_list_sentinel_guard () =
  let t = B.Lazy_list.create () in
  checkb "min_int rejected" true
    (match B.Lazy_list.insert t min_int 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_lazy_list_logical_then_physical () =
  (* Readers racing a delete must never see a marked node as present but
     may legitimately still see the key (the delete linearizes at the
     marking store). *)
  let t = B.Lazy_list.create () in
  for k = 1 to 32 do
    ignore (B.Lazy_list.insert t k k)
  done;
  let stop = Atomic.make false in
  let anomalies = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let rng = Rng.create 21L in
        while not (Atomic.get stop) do
          let k = 1 + Rng.int rng 32 in
          match B.Lazy_list.contains t k with
          | Some v when v <> k -> Atomic.incr anomalies
          | Some _ | None -> ()
        done)
  in
  let writer =
    Domain.spawn (fun () ->
        let rng = Rng.create 22L in
        for _ = 1 to 5_000 do
          let k = 1 + Rng.int rng 32 in
          if Rng.bool rng then ignore (B.Lazy_list.delete t k)
          else ignore (B.Lazy_list.insert t k k)
        done)
  in
  Domain.join writer;
  Atomic.set stop true;
  Domain.join reader;
  checki "values never torn" 0 (Atomic.get anomalies);
  B.Lazy_list.check_invariants t

(* --- RCU hash table --- *)

let test_rcu_hash_basics () =
  let t = B.Rcu_hash.create ~buckets:8 () in
  for k = 0 to 99 do
    checkb "insert" true (B.Rcu_hash.insert t k (k * 3))
  done;
  checkb "dup" false (B.Rcu_hash.insert t 7 0);
  Alcotest.check Alcotest.(option int) "value kept" (Some 21)
    (B.Rcu_hash.contains t 7);
  checki "size" 100 (B.Rcu_hash.size t);
  for k = 0 to 99 do
    if k mod 2 = 0 then checkb "delete" true (B.Rcu_hash.delete t k)
  done;
  checki "half left" 50 (B.Rcu_hash.size t);
  B.Rcu_hash.check_invariants t;
  Alcotest.check
    Alcotest.(list int)
    "sorted odd keys"
    (List.init 50 (fun i -> (2 * i) + 1))
    (List.map fst (B.Rcu_hash.to_list t))

let test_rcu_hash_bucket_rounding () =
  let t = B.Rcu_hash.create ~buckets:5 () in
  (* 5 rounds to 8; just verify keys distribute and invariants hold. *)
  for k = -50 to 50 do
    ignore (B.Rcu_hash.insert t k k)
  done;
  checki "all in" 101 (B.Rcu_hash.size t);
  B.Rcu_hash.check_invariants t

let test_rcu_hash_per_bucket_parallelism () =
  (* Updates to different buckets proceed independently; a torture mix
     must preserve exact per-key state with per-thread key partitions. *)
  let t = B.Rcu_hash.create ~buckets:64 () in
  let bar = Barrier.create 4 in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Barrier.wait bar;
            for k = 0 to 999 do
              if k mod 4 = i then begin
                assert (B.Rcu_hash.insert t k k);
                if k mod 8 = i then assert (B.Rcu_hash.delete t k)
              end
            done))
  in
  List.iter Domain.join domains;
  B.Rcu_hash.check_invariants t;
  for k = 0 to 999 do
    let expected = k mod 8 >= 4 in
    if B.Rcu_hash.mem t k <> expected then
      Alcotest.failf "key %d: wrong final presence" k
  done

(* --- Coarse BST --- *)

let test_coarse_concurrent_counts () =
  let t = B.Coarse_bst.create () in
  let bar = Barrier.create 4 in
  let worker i () =
    Barrier.wait bar;
    for k = 0 to 499 do
      if k mod 4 = i then ignore (B.Coarse_bst.insert t k k)
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  checki "all inserted exactly once" 500 (B.Coarse_bst.size t);
  B.Coarse_bst.check_invariants t

let () =
  Alcotest.run "baselines"
    [
      ( "seq_bst",
        [
          Alcotest.test_case "vs Map" `Quick test_seq_bst_vs_map;
          Alcotest.test_case "successor delete" `Quick
            test_seq_bst_successor_delete;
        ] );
      ( "bonsai",
        [
          Alcotest.test_case "balance held" `Quick test_bonsai_balance_held;
          Alcotest.test_case "snapshot reads" `Quick
            test_bonsai_readers_see_snapshots;
        ] );
      ( "avl",
        [
          Alcotest.test_case "balance sequential" `Quick
            test_avl_balance_sequential;
          Alcotest.test_case "routing node reuse" `Quick
            test_avl_routing_node_reuse;
          Alcotest.test_case "concurrent balance converges" `Quick
            test_avl_concurrent_balance_converges;
          Alcotest.test_case "rotation storm" `Quick test_avl_rotation_storm;
        ] );
      ( "nm_bst",
        [
          Alcotest.test_case "sentinels preserved" `Quick
            test_nm_sentinels_preserved;
          Alcotest.test_case "key bound" `Quick test_nm_key_bound;
          Alcotest.test_case "delete/reinsert same key" `Quick
            test_nm_delete_then_reinsert_same_key;
          Alcotest.test_case "concurrent same-key deletes" `Quick
            test_nm_concurrent_same_key_deletes;
        ] );
      ( "skiplist",
        [
          Alcotest.test_case "structure" `Quick test_skiplist_structure;
          Alcotest.test_case "sentinel guard" `Quick test_skiplist_sentinel_guard;
          Alcotest.test_case "custom levels" `Quick test_skiplist_custom_levels;
        ] );
      ( "rb_rcu",
        [
          Alcotest.test_case "properties sequential" `Quick
            test_rb_properties_sequential;
          Alcotest.test_case "random churn vs Map" `Quick test_rb_random_churn;
          Alcotest.test_case "readers during restructure" `Quick
            test_rb_readers_during_restructure;
        ] );
      ( "cf_tree",
        [
          Alcotest.test_case "logical then physical" `Quick
            test_cf_logical_then_physical;
          Alcotest.test_case "revive deleted node" `Quick test_cf_revive;
          Alcotest.test_case "balance restored" `Quick test_cf_balance_restored;
          Alcotest.test_case "concurrent with adapter" `Quick
            test_cf_concurrent_with_adapter;
        ] );
      ( "ellen_bst",
        [
          Alcotest.test_case "descriptor protocol sequential" `Quick
            test_ellen_descriptor_protocol_sequential;
          Alcotest.test_case "sentinel guard" `Quick test_ellen_sentinel_guard;
          Alcotest.test_case "concurrent same-key duel" `Quick
            test_ellen_concurrent_same_key;
        ] );
      ( "lazy_list",
        [
          Alcotest.test_case "basics" `Quick test_lazy_list_basics;
          Alcotest.test_case "sentinel guard" `Quick
            test_lazy_list_sentinel_guard;
          Alcotest.test_case "logical then physical delete" `Quick
            test_lazy_list_logical_then_physical;
        ] );
      ( "rcu_hash",
        [
          Alcotest.test_case "basics" `Quick test_rcu_hash_basics;
          Alcotest.test_case "bucket rounding" `Quick
            test_rcu_hash_bucket_rounding;
          Alcotest.test_case "per-bucket parallelism" `Quick
            test_rcu_hash_per_bucket_parallelism;
        ] );
      ( "coarse",
        [ Alcotest.test_case "concurrent counts" `Quick test_coarse_concurrent_counts ] );
    ]
