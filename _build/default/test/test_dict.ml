(* Generic conformance suite: every dictionary implementation behind the
   DICT interface gets the same battery — sequential semantics, randomized
   equivalence against stdlib Map, deterministic concurrent partitions, and
   full-contention stress followed by an invariant check. *)

module IntMap = Map.Make (Int)
module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Conformance (D : Repro_dict.Dict.DICT) = struct
  let with_dict f =
    let t = D.create () in
    let h = D.register t in
    let r = f t h in
    D.unregister h;
    r

  let test_empty () =
    with_dict @@ fun t h ->
    checki "size" 0 (D.size t);
    checkb "mem" false (D.mem h 5);
    checkb "delete absent" false (D.delete h 5);
    Alcotest.check Alcotest.(option int) "contains" None (D.contains h 5);
    D.check t

  let test_basic_lifecycle () =
    with_dict @@ fun t h ->
    checkb "insert" true (D.insert h 10 100);
    checkb "duplicate insert" false (D.insert h 10 999);
    Alcotest.check Alcotest.(option int) "value preserved" (Some 100)
      (D.contains h 10);
    checkb "insert second" true (D.insert h 5 50);
    checkb "insert third" true (D.insert h 15 150);
    checki "size" 3 (D.size t);
    Alcotest.check
      Alcotest.(list (pair int int))
      "sorted bindings"
      [ (5, 50); (10, 100); (15, 150) ]
      (D.to_list t);
    checkb "delete" true (D.delete h 10);
    checkb "delete again" false (D.delete h 10);
    checkb "others remain" true (D.mem h 5 && D.mem h 15);
    checkb "reinsert deleted key" true (D.insert h 10 1);
    Alcotest.check Alcotest.(option int) "new value" (Some 1) (D.contains h 10);
    D.check t

  let test_ascending_descending () =
    with_dict @@ fun t h ->
    for k = 1 to 200 do
      checkb "asc insert" true (D.insert h k k)
    done;
    D.check t;
    for k = 200 downto 1 do
      checkb "desc delete" true (D.delete h k)
    done;
    checki "empty again" 0 (D.size t);
    D.check t

  let test_boundary_keys () =
    with_dict @@ fun t h ->
    let lo = D.min_key and hi = D.max_key - 1 in
    checkb "lowest key" true (D.insert h lo 1);
    checkb "highest key" true (D.insert h hi 2);
    checkb "mem lo" true (D.mem h lo);
    checkb "mem hi" true (D.mem h hi);
    checkb "delete lo" true (D.delete h lo);
    checkb "delete hi" true (D.delete h hi);
    D.check t

  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (4, map2 (fun k v -> `Insert (k, v)) (int_bound 40) (int_bound 1000));
          (3, map (fun k -> `Delete k) (int_bound 40));
          (3, map (fun k -> `Contains k) (int_bound 40));
        ])

  let arb_ops =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | `Insert (k, v) -> Printf.sprintf "I(%d,%d)" k v
               | `Delete k -> Printf.sprintf "D(%d)" k
               | `Contains k -> Printf.sprintf "C(%d)" k)
             ops))
      QCheck.Gen.(list_size (int_range 0 300) gen_op)

  let prop_map_equivalence =
    QCheck.Test.make
      ~name:(D.name ^ " matches stdlib Map")
      ~count:150 arb_ops
      (fun ops ->
        with_dict @@ fun t h ->
        let step (map, ok) op =
          match op with
          | `Insert (k, v) ->
              let expected = not (IntMap.mem k map) in
              let got = D.insert h k v in
              ( (if expected then IntMap.add k v map else map),
                ok && expected = got )
          | `Delete k ->
              let expected = IntMap.mem k map in
              (IntMap.remove k map, ok && expected = D.delete h k)
          | `Contains k ->
              (map, ok && IntMap.find_opt k map = D.contains h k)
        in
        let map, ok = List.fold_left step (IntMap.empty, true) ops in
        D.check t;
        ok
        && D.to_list t = IntMap.bindings map
        && D.size t = IntMap.cardinal map)

  let test_concurrent_partitions () =
    let t = D.create () in
    let n_domains = 4 in
    let keys_per = 250 in
    let bar = Barrier.create n_domains in
    let worker i () =
      let h = D.register t in
      let base = i * keys_per in
      Barrier.wait bar;
      for k = base to base + keys_per - 1 do
        assert (D.insert h k (k * 7))
      done;
      for k = base to base + keys_per - 1 do
        if k mod 3 = 0 then assert (D.delete h k)
      done;
      for k = base to base + keys_per - 1 do
        let expected = if k mod 3 = 0 then None else Some (k * 7) in
        assert (D.contains h k = expected)
      done;
      D.unregister h
    in
    let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
    List.iter Domain.join domains;
    D.check t;
    let expected_total =
      n_domains * keys_per
      - List.length
          (List.filter
             (fun k -> k mod 3 = 0)
             (List.init (n_domains * keys_per) Fun.id))
    in
    checki "exact survivors" expected_total (D.size t)

  let test_concurrent_stress () =
    let t = D.create () in
    let n_domains = 4 in
    let ops = 4_000 in
    let key_range = 128 in
    let bar = Barrier.create n_domains in
    let worker i () =
      let h = D.register t in
      let rng = Rng.create (Int64.of_int (31 + (17 * i))) in
      Barrier.wait bar;
      for _ = 1 to ops do
        let k = Rng.int rng key_range in
        match Rng.int rng 10 with
        | 0 | 1 | 2 -> ignore (D.insert h k k)
        | 3 | 4 | 5 -> ignore (D.delete h k)
        | _ -> ignore (D.contains h k)
      done;
      D.unregister h
    in
    let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
    List.iter Domain.join domains;
    D.check t;
    checkb "size in range" true (D.size t <= key_range);
    (* The final contents must be self-consistent: to_list sorted and
       deduplicated, matching size. *)
    let l = D.to_list t in
    checki "to_list matches size" (D.size t) (List.length l);
    let keys = List.map fst l in
    checkb "keys strictly sorted (no duplicates)" true
      (List.sort_uniq compare keys = keys)

  (* Single-key conservation: with all traffic on one key, the successful
     inserts and deletes must interleave strictly (diff ∈ {0,1} and final
     presence = diff). This is the test that caught a descriptor-ABA bug
     in the Ellen BST port — keep it hot. *)
  let test_single_key_conservation () =
    for trial = 1 to 60 do
      let t = D.create () in
      let ins = Atomic.make 0 and del = Atomic.make 0 in
      let workers =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                let h = D.register t in
                let rng = Rng.create (Int64.of_int ((trial * 10) + i)) in
                for _ = 1 to 30 do
                  if Rng.bool rng then begin
                    if D.insert h 7 7 then Atomic.incr ins
                  end
                  else if D.delete h 7 then Atomic.incr del
                done;
                D.unregister h))
      in
      List.iter Domain.join workers;
      let diff = Atomic.get ins - Atomic.get del in
      let h = D.register t in
      let present = D.mem h 7 in
      D.unregister h;
      if diff < 0 || diff > 1 || present <> (diff = 1) then
        Alcotest.failf "trial %d: ins=%d del=%d present=%b" trial
          (Atomic.get ins) (Atomic.get del) present;
      D.check t
    done

  (* Handles are registered and released continuously while other domains
     operate: exercises RCU slot reuse under load. *)
  let test_handle_churn () =
    let t = D.create ~max_threads:16 () in
    let stop = Atomic.make false in
    let churners =
      List.init 2 (fun i ->
          Domain.spawn (fun () ->
              let rng = Rng.create (Int64.of_int (50 + i)) in
              while not (Atomic.get stop) do
                let h = D.register t in
                for _ = 1 to 20 do
                  let k = Rng.int rng 64 in
                  if Rng.bool rng then ignore (D.insert h k k)
                  else ignore (D.mem h k)
                done;
                D.unregister h
              done))
    in
    let worker =
      Domain.spawn (fun () ->
          let h = D.register t in
          let rng = Rng.create 99L in
          for _ = 1 to 10_000 do
            let k = Rng.int rng 64 in
            match Rng.int rng 3 with
            | 0 -> ignore (D.insert h k k)
            | 1 -> ignore (D.delete h k)
            | _ -> ignore (D.contains h k)
          done;
          D.unregister h)
    in
    Domain.join worker;
    Atomic.set stop true;
    List.iter Domain.join churners;
    D.check t

  (* Readers run concurrently with a writer churning the whole key space;
     they must always see self-consistent values (value = 13 * key). *)
  let test_readers_vs_writer () =
    let t = D.create () in
    let setup = D.register t in
    for k = 0 to 63 do
      ignore (D.insert setup k (k * 13))
    done;
    let stop = Atomic.make false in
    let anomalies = Atomic.make 0 in
    let readers =
      List.init 2 (fun i ->
          Domain.spawn (fun () ->
              let h = D.register t in
              let rng = Rng.create (Int64.of_int (400 + i)) in
              while not (Atomic.get stop) do
                let k = Rng.int rng 64 in
                match D.contains h k with
                | Some v when v <> k * 13 -> Atomic.incr anomalies
                | Some _ | None -> ()
              done;
              D.unregister h))
    in
    let writer =
      Domain.spawn (fun () ->
          let h = D.register t in
          let rng = Rng.create 4242L in
          for _ = 1 to 3_000 do
            let k = Rng.int rng 64 in
            if Rng.bool rng then ignore (D.delete h k)
            else ignore (D.insert h k (k * 13))
          done;
          D.unregister h)
    in
    Domain.join writer;
    Atomic.set stop true;
    List.iter Domain.join readers;
    checki "no torn values" 0 (Atomic.get anomalies);
    D.check t;
    D.unregister setup

  let suite =
    ( D.name,
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "basic lifecycle" `Quick test_basic_lifecycle;
        Alcotest.test_case "ascending/descending" `Quick
          test_ascending_descending;
        Alcotest.test_case "boundary keys" `Quick test_boundary_keys;
        QCheck_alcotest.to_alcotest prop_map_equivalence;
        Alcotest.test_case "concurrent partitions" `Quick
          test_concurrent_partitions;
        Alcotest.test_case "concurrent stress" `Quick test_concurrent_stress;
        Alcotest.test_case "single-key conservation" `Quick
          test_single_key_conservation;
        Alcotest.test_case "handle churn" `Quick test_handle_churn;
        Alcotest.test_case "readers vs writer" `Quick test_readers_vs_writer;
      ] )
end

let suites =
  List.map
    (fun (module D : Repro_dict.Dict.DICT) ->
      let module C = Conformance (D) in
      C.suite)
    Repro_dict.Dict.all

let test_find () =
  let module D = (val Repro_dict.Dict.find "citrus") in
  Alcotest.check Alcotest.string "lookup by name" "citrus" D.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Repro_dict.Dict.find "nope"))

let () =
  Alcotest.run "dict"
    (suites
    @ [
        ( "registry",
          [
            Alcotest.test_case "find by name" `Quick test_find;
            Alcotest.test_case "paper set has six" `Quick (fun () ->
                Alcotest.check Alcotest.int "six structures" 6
                  (List.length Repro_dict.Dict.paper_set));
          ] );
      ])
