(* Tests for the Citrus tree: sequential dictionary semantics (vs. stdlib
   Map), structural invariants, randomized equivalence, targeted
   interleavings via hooks (the Figure 4/5 scenarios), and multi-domain
   stress. Every behavioural test runs over both RCU flavours. *)

module IntMap = Map.Make (Int)
module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module Behaviour (R : Repro_rcu.Rcu.S) = struct
  module T = Repro_citrus.Citrus.Make (Repro_citrus.Citrus_int.Ord_int) (R)

  let with_tree f =
    let t = T.create () in
    let h = T.register t in
    let r = f t h in
    T.unregister h;
    r

  (* --- sequential semantics --- *)

  let test_empty () =
    with_tree @@ fun t h ->
    checki "size" 0 (T.size t);
    checkb "mem" false (T.mem h 5);
    Alcotest.check Alcotest.(option int) "contains" None (T.contains h 5);
    checkb "delete absent" false (T.delete h 5);
    T.check_invariants t

  let test_insert_contains_delete () =
    with_tree @@ fun t h ->
    checkb "insert new" true (T.insert h 10 100);
    checkb "insert duplicate" false (T.insert h 10 999);
    Alcotest.check Alcotest.(option int) "original value kept" (Some 100)
      (T.contains h 10);
    checki "size" 1 (T.size t);
    checkb "delete present" true (T.delete h 10);
    checkb "delete again" false (T.delete h 10);
    checki "size after delete" 0 (T.size t);
    T.check_invariants t

  let test_sorted_to_list () =
    with_tree @@ fun t h ->
    let keys = [ 42; 7; 99; 1; 55; 23; 88 ] in
    List.iter (fun k -> ignore (T.insert h k (k * 2))) keys;
    let expected = List.sort compare (List.map (fun k -> (k, k * 2)) keys) in
    Alcotest.check
      Alcotest.(list (pair int int))
      "in-order" expected (T.to_list t);
    T.check_invariants t

  (* Exercise every delete shape: leaf, one child (left / right), two
     children with adjacent successor (prevSucc = curr), two children with a
     deep successor. *)
  let test_delete_leaf () =
    with_tree @@ fun t h ->
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 75 ];
    checkb "delete leaf" true (T.delete h 25);
    Alcotest.check
      Alcotest.(list (pair int int))
      "rest intact"
      [ (50, 50); (75, 75) ]
      (T.to_list t);
    T.check_invariants t

  let test_delete_one_child_left () =
    with_tree @@ fun t h ->
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 10 ];
    checkb "delete node with only left child" true (T.delete h 25);
    checkb "grandchild still reachable" true (T.mem h 10);
    T.check_invariants t

  let test_delete_one_child_right () =
    with_tree @@ fun t h ->
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 30 ];
    checkb "delete node with only right child" true (T.delete h 25);
    checkb "grandchild still reachable" true (T.mem h 30);
    T.check_invariants t

  let test_delete_two_children_adjacent_successor () =
    with_tree @@ fun t h ->
    (* 50's successor is its right child 75 (prevSucc = curr case). *)
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 75; 80 ];
    checkb "delete" true (T.delete h 50);
    Alcotest.check
      Alcotest.(list (pair int int))
      "successor promoted"
      [ (25, 25); (75, 75); (80, 80) ]
      (T.to_list t);
    T.check_invariants t

  let test_delete_two_children_deep_successor () =
    with_tree @@ fun t h ->
    (* 50's successor is 60, deep in the left spine of the right subtree,
       and 60 has a right child that must be re-attached. *)
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 75; 60; 80; 65 ];
    checkb "delete" true (T.delete h 50);
    Alcotest.check
      Alcotest.(list (pair int int))
      "successor moved, its child re-attached"
      [ (25, 25); (60, 60); (65, 65); (75, 75); (80, 80) ]
      (T.to_list t);
    T.check_invariants t

  let test_delete_root_key_repeatedly () =
    with_tree @@ fun t h ->
    List.iter (fun k -> ignore (T.insert h k k)) [ 4; 2; 6; 1; 3; 5; 7 ];
    (* Repeatedly delete the current minimum and maximum. *)
    List.iter
      (fun k -> checkb "delete" true (T.delete h k))
      [ 1; 7; 2; 6; 3; 5; 4 ];
    checki "empty" 0 (T.size t);
    T.check_invariants t

  let test_negative_and_extreme_keys () =
    with_tree @@ fun t h ->
    List.iter
      (fun k -> checkb "insert" true (T.insert h k k))
      [ min_int; -1; 0; 1; max_int ];
    checkb "min_int present" true (T.mem h min_int);
    checkb "max_int present" true (T.mem h max_int);
    checkb "delete min_int" true (T.delete h min_int);
    checkb "delete max_int" true (T.delete h max_int);
    checki "size" 3 (T.size t);
    T.check_invariants t

  let test_height_and_stats () =
    with_tree @@ fun t h ->
    List.iter (fun k -> ignore (T.insert h k k)) [ 3; 2; 1 ];
    checki "left spine height" 3 (T.height t);
    ignore (T.delete h 2);
    let s = T.stats t in
    checki "inserts counted" 3 (List.assoc "inserts" s);
    checki "one-child delete counted" 1 (List.assoc "deletes_one_child" s)

  (* --- randomized sequential equivalence vs Map --- *)

  let apply_model (map, tree_results) h op =
    match op with
    | `Insert (k, v) ->
        let expected = not (IntMap.mem k map) in
        let got = T.insert h k v in
        ((if expected then IntMap.add k v map else map),
         (expected = got) && tree_results)
    | `Delete k ->
        let expected = IntMap.mem k map in
        let got = T.delete h k in
        (IntMap.remove k map, (expected = got) && tree_results)
    | `Contains k ->
        let expected = IntMap.find_opt k map in
        let got = T.contains h k in
        (map, (expected = got) && tree_results)

  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (4, map2 (fun k v -> `Insert (k, v)) (int_bound 30) (int_bound 1000));
          (3, map (fun k -> `Delete k) (int_bound 30));
          (3, map (fun k -> `Contains k) (int_bound 30));
        ])

  let arb_ops =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | `Insert (k, v) -> Printf.sprintf "I(%d,%d)" k v
               | `Delete k -> Printf.sprintf "D(%d)" k
               | `Contains k -> Printf.sprintf "C(%d)" k)
             ops))
      QCheck.Gen.(list_size (int_range 0 200) gen_op)

  let prop_sequential_equivalence =
    QCheck.Test.make ~name:"matches stdlib Map on random op sequences"
      ~count:200 arb_ops (fun ops ->
        with_tree @@ fun t h ->
        let map, ok =
          List.fold_left (fun acc op -> apply_model acc h op) (IntMap.empty, true) ops
        in
        T.check_invariants t;
        ok
        && T.to_list t = IntMap.bindings map
        && T.size t = IntMap.cardinal map)

  (* Maintenance rotations must be invisible to dictionary semantics:
     interleave balance passes with random operations and compare against
     the Map model throughout. *)
  let prop_balance_preserves_semantics =
    QCheck.Test.make ~name:"balance preserves dictionary semantics" ~count:60
      arb_ops (fun ops ->
        with_tree @@ fun t h ->
        let step (map, ok, i) op =
          if i mod 17 = 0 then ignore (T.balance h);
          let map, ok = apply_model (map, ok) h op in
          (map, ok, i + 1)
        in
        let map, ok, _ = List.fold_left step (IntMap.empty, true, 0) ops in
        ignore (T.balance h);
        T.check_invariants t;
        ok
        && T.to_list t = IntMap.bindings map
        && T.size t = IntMap.cardinal map)

  (* After balancing, the height must be within the relaxed-AVL bound
     (~1.44 log2 n) plus slack for unfinished local repairs. *)
  let prop_balance_height_bound =
    QCheck.Test.make ~name:"balance restores near-logarithmic height"
      ~count:30
      QCheck.(make Gen.(list_size (int_range 1 400) (int_bound 10_000)))
      (fun keys ->
        with_tree @@ fun t h ->
        List.iter (fun k -> ignore (T.insert h k k)) keys;
        ignore (T.balance ~max_passes:200 h);
        T.check_invariants t;
        let n = T.size t in
        n = 0
        ||
        let bound =
          (3 * int_of_float (ceil (log (float_of_int (n + 1)) /. log 2.0)) / 2)
          + 3
        in
        T.height t <= bound)

  (* --- targeted interleavings via hooks --- *)

  (* Figure 5 scenario: insert finds its parent, then a concurrent delete
     removes that parent before the insert locks it. Validation must fail
     (marked parent) and the insert must restart and still take effect. *)
  let test_insert_restart_on_deleted_parent () =
    let t = T.create () in
    let h = T.register t in
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25 ];
    let fired = ref false in
    T.Hooks.between_get_and_lock t (fun () ->
        if not !fired then begin
          fired := true;
          (* Delete the would-be parent (25 is a leaf under 50) from another
             domain while this insert is paused between get and lock. *)
          let d =
            Domain.spawn (fun () ->
                let h2 = T.register t in
                ignore (T.delete h2 25);
                T.unregister h2)
          in
          Domain.join d
        end);
    checkb "insert still succeeds" true (T.insert h 20 20);
    T.Hooks.between_get_and_lock t ignore;
    checkb "key present" true (T.mem h 20);
    checkb "deleted parent gone" false (T.mem h 25);
    checkb "restart was taken" true (List.assoc "restarts" (T.stats t) > 0);
    T.check_invariants t;
    T.unregister h

  (* Tag/ABA scenario: insert targets an empty child slot; while paused, a
     concurrent pair of updates fills and re-empties a *different* part of
     the tree is not enough — we need the same slot to be emptied again. A
     delete that bypasses a freshly inserted leaf reuses the slot and bumps
     the tag, so the paused insert must restart rather than resurrect a
     stale location. *)
  let test_insert_restart_on_tag_change () =
    let t = T.create () in
    let h = T.register t in
    ignore (T.insert h 50 50);
    let fired = ref false in
    T.Hooks.between_get_and_lock t (fun () ->
        if not !fired then begin
          fired := true;
          let d =
            Domain.spawn (fun () ->
                let h2 = T.register t in
                (* Fill 50's left slot, then empty it again: the slot looks
                   identical to the paused insert, but the tag differs. *)
                ignore (T.insert h2 25 25);
                ignore (T.delete h2 25);
                T.unregister h2)
          in
          Domain.join d
        end);
    checkb "insert succeeds after restart" true (T.insert h 20 20);
    T.Hooks.between_get_and_lock t ignore;
    checkb "restart was taken" true (List.assoc "restarts" (T.stats t) > 0);
    checkb "key present" true (T.mem h 20);
    T.check_invariants t;
    T.unregister h

  (* Figure 4 scenario: while a two-children delete has published the
     successor copy and is waiting in synchronize_rcu, a reader searching
     for the successor key must still find it (in either location). *)
  let test_reader_finds_successor_during_move () =
    let t = T.create () in
    let h = T.register t in
    (* 50 has two children; successor of 50 is 60. *)
    List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 75; 60; 80 ];
    let searched = Atomic.make false in
    T.Hooks.before_synchronize t (fun () ->
        (* The copy of 60 is published at 50's position; the original 60 is
           still reachable. A fresh reader must find 60. *)
        let d =
          Domain.spawn (fun () ->
              let h2 = T.register t in
              checkb "successor visible mid-move" true (T.mem h2 60);
              Atomic.set searched true;
              T.unregister h2)
        in
        Domain.join d);
    checkb "delete succeeds" true (T.delete h 50);
    T.Hooks.before_synchronize t ignore;
    checkb "mid-move search ran" true (Atomic.get searched);
    checkb "successor still present after move" true (T.mem h 60);
    checkb "deleted key gone" false (T.mem h 50);
    T.check_invariants t;
    T.unregister h

  (* --- concurrency --- *)

  (* Disjoint key partitions: each domain runs a deterministic op sequence
     on its own key space, so the final contents are exactly predictable. *)
  let test_concurrent_disjoint_partitions () =
    let t = T.create () in
    let n_domains = 4 in
    let keys_per = 200 in
    let bar = Barrier.create n_domains in
    let worker i () =
      let h = T.register t in
      let base = i * keys_per in
      Barrier.wait bar;
      for k = base to base + keys_per - 1 do
        assert (T.insert h k (k * 3))
      done;
      (* Delete the odd keys of our partition. *)
      for k = base to base + keys_per - 1 do
        if k mod 2 = 1 then assert (T.delete h k)
      done;
      T.unregister h
    in
    let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
    List.iter Domain.join domains;
    T.check_invariants t;
    checki "exactly the even keys survive" (n_domains * keys_per / 2) (T.size t);
    let h = T.register t in
    for i = 0 to n_domains - 1 do
      let base = i * keys_per in
      for k = base to base + keys_per - 1 do
        let expected = if k mod 2 = 0 then Some (k * 3) else None in
        if T.contains h k <> expected then
          Alcotest.failf "key %d: wrong final value" k
      done
    done;
    T.unregister h

  (* Full-contention stress on a small key range, then invariant check. *)
  let test_concurrent_stress_invariants () =
    let t = T.create () in
    let n_domains = 4 in
    let ops = 5_000 in
    let key_range = 64 in
    let bar = Barrier.create n_domains in
    let worker i () =
      let h = T.register t in
      let rng = Rng.create (Int64.of_int (1000 + i)) in
      Barrier.wait bar;
      for _ = 1 to ops do
        let k = Rng.int rng key_range in
        match Rng.int rng 3 with
        | 0 -> ignore (T.insert h k k)
        | 1 -> ignore (T.delete h k)
        | _ -> ignore (T.contains h k)
      done;
      T.unregister h
    in
    let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
    List.iter Domain.join domains;
    T.check_invariants t;
    checkb "size within key range" true (T.size t <= key_range)

  (* Readers running wait-free while writers chew through two-children
     deletes (forcing many synchronize_rcu calls): the readers must never
     see a key that was never inserted and must always terminate. *)
  let test_readers_during_successor_moves () =
    let t = T.create () in
    let setup = T.register t in
    (* A full binary shape so deletes of internal nodes hit the
       two-children path. *)
    List.iter
      (fun k -> ignore (T.insert setup k k))
      [ 32; 16; 48; 8; 24; 40; 56; 4; 12; 20; 28; 36; 44; 52; 60 ];
    let stop = Atomic.make false in
    let anomalies = Atomic.make 0 in
    let readers =
      List.init 2 (fun i ->
          Domain.spawn (fun () ->
              let h = T.register t in
              let rng = Rng.create (Int64.of_int (77 + i)) in
              while not (Atomic.get stop) do
                let k = Rng.int rng 64 in
                match T.contains h k with
                | None -> ()
                | Some v -> if v <> k then Atomic.incr anomalies
              done;
              T.unregister h))
    in
    let writer =
      Domain.spawn (fun () ->
          let h = T.register t in
          let rng = Rng.create 999L in
          for _ = 1 to 2_000 do
            let k = Rng.int rng 64 in
            if Rng.bool rng then ignore (T.delete h k)
            else ignore (T.insert h k k)
          done;
          T.unregister h)
    in
    Domain.join writer;
    Atomic.set stop true;
    List.iter Domain.join readers;
    checki "values never corrupted" 0 (Atomic.get anomalies);
    T.check_invariants t;
    let s = T.stats t in
    checkb "two-children deletes exercised" true
      (List.assoc "deletes_two_children" s > 0);
    T.unregister setup

  let test_max_threads_capacity () =
    let t = T.create ~max_threads:2 () in
    let a = T.register t in
    let b = T.register t in
    Alcotest.check_raises "capacity enforced" Repro_sync.Registry.Full
      (fun () -> ignore (T.register t));
    T.unregister a;
    let c = T.register t in
    (* The freed slot is reusable. *)
    ignore (T.insert c 1 1);
    T.unregister b;
    T.unregister c

  (* Chaos scheduling: the hooks inject pseudo-random busy-waits into
     every update's vulnerable windows, shaking out interleavings that the
     plain stress test would rarely hit on a single core. *)
  let test_chaos_schedule () =
    let t = T.create ~reclamation:true () in
    let chaos_ticket = Atomic.make 0 in
    let chaos () =
      let n = Atomic.fetch_and_add chaos_ticket 1 * 7 mod 192 in
      for _ = 1 to n do
        Domain.cpu_relax ()
      done
    in
    T.Hooks.between_get_and_lock t chaos;
    T.Hooks.after_find_successor t chaos;
    T.Hooks.before_synchronize t chaos;
    let n_domains = 4 in
    let bar = Barrier.create n_domains in
    let workers =
      List.init n_domains (fun i ->
          Domain.spawn (fun () ->
              let h = T.register t in
              let rng = Rng.create (Int64.of_int (8_800 + i)) in
              Barrier.wait bar;
              for _ = 1 to 3_000 do
                let k = Rng.int rng 32 in
                match Rng.int rng 3 with
                | 0 -> ignore (T.insert h k k)
                | 1 -> ignore (T.delete h k)
                | _ -> (
                    match T.contains h k with
                    | Some v when v <> k -> Alcotest.failf "torn value"
                    | Some _ | None -> ())
              done;
              T.unregister h))
    in
    List.iter Domain.join workers;
    T.Hooks.between_get_and_lock t ignore;
    T.Hooks.after_find_successor t ignore;
    T.Hooks.before_synchronize t ignore;
    T.check_invariants t;
    let s = T.stats t in
    checki "no use-after-reclaim under chaos" 0
      (List.assoc "use_after_reclaim" s);
    checkb "restarts exercised" true (List.assoc "restarts" s >= 0)

  (* --- maintenance rebalancing (future work #1) --- *)

  let test_balance_restores_log_height () =
    with_tree @@ fun t h ->
    let n = 1024 in
    (* Ascending insertion: a pure Citrus tree degenerates to a list. *)
    for k = 1 to n do
      ignore (T.insert h k k)
    done;
    checki "degenerate height" n (T.height t);
    let rotations = T.balance h in
    checkb "rotations happened" true (rotations > 0);
    checkb "height now logarithmic" true (T.height t <= 22);
    checki "no key lost" n (T.size t);
    for k = 1 to n do
      if T.contains h k <> Some k then Alcotest.failf "key %d lost" k
    done;
    T.check_invariants t

  let test_balance_empty_and_tiny () =
    with_tree @@ fun t h ->
    checki "empty tree needs nothing" 0 (T.balance h);
    ignore (T.insert h 1 1);
    ignore (T.insert h 2 2);
    checki "two nodes need nothing" 0 (T.balance h);
    T.check_invariants t;
    checki "still two" 2 (T.size t)

  let test_balance_concurrent_with_updates () =
    let t = T.create () in
    let n_workers = 3 in
    let keys_per = 300 in
    (* workers + the maintenance domain + this thread *)
    let bar = Barrier.create (n_workers + 2) in
    let stop_maintenance = Atomic.make false in
    let maintenance =
      Domain.spawn (fun () ->
          let h = T.register t in
          Barrier.wait bar;
          while not (Atomic.get stop_maintenance) do
            ignore (T.maintenance_pass h)
          done;
          T.unregister h)
    in
    (* Disjoint partitions with ascending insertion order: worst case for
       balance, deterministic final contents. *)
    let workers =
      List.init n_workers (fun i ->
          Domain.spawn (fun () ->
              let h = T.register t in
              let base = i * keys_per in
              Barrier.wait bar;
              for k = base to base + keys_per - 1 do
                assert (T.insert h k k)
              done;
              for k = base to base + keys_per - 1 do
                if k mod 2 = 1 then assert (T.delete h k)
              done;
              for k = base to base + keys_per - 1 do
                let expected = if k mod 2 = 0 then Some k else None in
                if T.contains h k <> expected then
                  Alcotest.failf "key %d wrong under maintenance" k
              done;
              T.unregister h))
    in
    Barrier.wait bar;
    List.iter Domain.join workers;
    Atomic.set stop_maintenance true;
    Domain.join maintenance;
    T.check_invariants t;
    checki "survivors" (n_workers * keys_per / 2) (T.size t);
    (* Settle and verify the balancing actually took effect. *)
    let h = T.register t in
    ignore (T.balance h);
    checkb "balanced at quiescence" true (T.height t <= 24);
    T.check_invariants t;
    T.unregister h

  let test_balance_with_reclamation () =
    let t = T.create ~reclamation:true () in
    let h = T.register t in
    for k = 1 to 512 do
      ignore (T.insert h k k)
    done;
    ignore (T.balance h);
    T.unregister h (* flush deferred retirements *);
    let s = T.stats t in
    checkb "rotations retired their nodes" true
      (List.assoc "reclaimed" s >= List.assoc "rotations" s);
    checki "no use-after-reclaim" 0 (List.assoc "use_after_reclaim" s);
    T.check_invariants t;
    checki "all keys intact" 512 (T.size t)

  (* --- deferred reclamation (the paper's future-work integration) --- *)

  let test_reclamation_counts () =
    let t = T.create ~reclamation:true () in
    let h = T.register t in
    for k = 1 to 100 do
      ignore (T.insert h k k)
    done;
    for k = 1 to 100 do
      ignore (T.delete h k)
    done;
    T.unregister h (* flushes the deferred queue *);
    let s = T.stats t in
    (* A one-child delete retires one node; a two-child delete retires the
       replaced node and the old successor. *)
    let expected =
      List.assoc "deletes_one_child" s
      + (2 * List.assoc "deletes_two_children" s)
    in
    checki "all unlinked nodes reclaimed" expected (List.assoc "reclaimed" s);
    checki "no use-after-reclaim" 0 (List.assoc "use_after_reclaim" s);
    T.check_invariants t

  (* The central safety property: under heavy concurrent churn with
     reclamation enabled, no reader ever touches a node after its grace
     period elapsed. A missing synchronize_rcu in the successor move would
     trip this immediately. *)
  let test_reclamation_no_use_after_free () =
    let t = T.create ~reclamation:true () in
    let n_domains = 4 in
    let bar = Barrier.create n_domains in
    let worker i () =
      let h = T.register t in
      let rng = Rng.create (Int64.of_int (555 + i)) in
      Barrier.wait bar;
      for _ = 1 to 8_000 do
        let k = Rng.int rng 48 in
        match Rng.int rng 3 with
        | 0 -> ignore (T.insert h k k)
        | 1 -> ignore (T.delete h k)
        | _ -> ignore (T.contains h k)
      done;
      T.unregister h
    in
    let domains = List.init n_domains (fun i -> Domain.spawn (worker i)) in
    List.iter Domain.join domains;
    let s = T.stats t in
    checki "no use-after-reclaim under churn" 0
      (List.assoc "use_after_reclaim" s);
    checkb "reclamation actually ran" true (List.assoc "reclaimed" s > 0);
    T.check_invariants t

  let test_reclamation_off_by_default () =
    let t = T.create () in
    let h = T.register t in
    ignore (T.insert h 1 1);
    ignore (T.delete h 1);
    T.unregister h;
    checki "nothing reclaimed" 0 (List.assoc "reclaimed" (T.stats t))

  let suite name =
    ( name,
      [
        Alcotest.test_case "empty tree" `Quick test_empty;
        Alcotest.test_case "insert/contains/delete" `Quick
          test_insert_contains_delete;
        Alcotest.test_case "sorted to_list" `Quick test_sorted_to_list;
        Alcotest.test_case "delete leaf" `Quick test_delete_leaf;
        Alcotest.test_case "delete one child (left)" `Quick
          test_delete_one_child_left;
        Alcotest.test_case "delete one child (right)" `Quick
          test_delete_one_child_right;
        Alcotest.test_case "delete two children, adjacent successor" `Quick
          test_delete_two_children_adjacent_successor;
        Alcotest.test_case "delete two children, deep successor" `Quick
          test_delete_two_children_deep_successor;
        Alcotest.test_case "drain by min/max deletes" `Quick
          test_delete_root_key_repeatedly;
        Alcotest.test_case "extreme keys" `Quick test_negative_and_extreme_keys;
        Alcotest.test_case "height and stats" `Quick test_height_and_stats;
        QCheck_alcotest.to_alcotest prop_sequential_equivalence;
        QCheck_alcotest.to_alcotest prop_balance_preserves_semantics;
        QCheck_alcotest.to_alcotest prop_balance_height_bound;
        Alcotest.test_case "Fig.5: restart on deleted parent" `Quick
          test_insert_restart_on_deleted_parent;
        Alcotest.test_case "ABA: restart on tag change" `Quick
          test_insert_restart_on_tag_change;
        Alcotest.test_case "Fig.4: reader finds moving successor" `Quick
          test_reader_finds_successor_during_move;
        Alcotest.test_case "concurrent disjoint partitions" `Quick
          test_concurrent_disjoint_partitions;
        Alcotest.test_case "concurrent stress + invariants" `Quick
          test_concurrent_stress_invariants;
        Alcotest.test_case "readers during successor moves" `Quick
          test_readers_during_successor_moves;
        Alcotest.test_case "max_threads capacity" `Quick
          test_max_threads_capacity;
        Alcotest.test_case "chaos schedule" `Quick test_chaos_schedule;
        Alcotest.test_case "balance restores log height" `Quick
          test_balance_restores_log_height;
        Alcotest.test_case "balance on empty/tiny trees" `Quick
          test_balance_empty_and_tiny;
        Alcotest.test_case "balance concurrent with updates" `Quick
          test_balance_concurrent_with_updates;
        Alcotest.test_case "balance with reclamation" `Quick
          test_balance_with_reclamation;
        Alcotest.test_case "reclamation counts" `Quick test_reclamation_counts;
        Alcotest.test_case "reclamation: no use-after-free" `Quick
          test_reclamation_no_use_after_free;
        Alcotest.test_case "reclamation off by default" `Quick
          test_reclamation_off_by_default;
      ] )
end

module Epoch_tests = Behaviour (Repro_rcu.Epoch_rcu)
module Urcu_tests = Behaviour (Repro_rcu.Urcu)
module Qsbr_tests = Behaviour (Repro_rcu.Qsbr)

(* Generic-key instantiation: string keys, to exercise the functor with a
   non-int order. *)
let test_string_keys () =
  let module S =
    Repro_citrus.Citrus.Make (String) (Repro_rcu.Epoch_rcu)
  in
  let t = S.create () in
  let h = S.register t in
  List.iter
    (fun k -> assert (S.insert h k (String.length k)))
    [ "pear"; "apple"; "fig"; "banana" ];
  Alcotest.check
    Alcotest.(list (pair string int))
    "sorted by string order"
    [ ("apple", 5); ("banana", 6); ("fig", 3); ("pear", 4) ]
    (S.to_list t);
  assert (S.delete h "apple");
  S.check_invariants t;
  S.unregister h

let () =
  Alcotest.run "citrus"
    [
      Epoch_tests.suite "citrus/epoch-rcu";
      Urcu_tests.suite "citrus/urcu";
      Qsbr_tests.suite "citrus/qsbr";
      ("generic keys", [ Alcotest.test_case "string keys" `Quick test_string_keys ]);
    ]
