(* Tests for the workload/throughput harness: mix arithmetic, config
   validation, deterministic op drawing, and short end-to-end runs over a
   couple of real dictionaries (which double as integration smoke tests of
   the benchmark path). *)

module W = Repro_workload.Workload
module Runner = Repro_workload.Runner
module Report = Repro_workload.Report
module Rng = Repro_sync.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let test_mix_validation () =
  checkb "valid" true
    (match W.mix ~contains:50 ~insert:25 ~delete:25 with
    | _ -> true);
  Alcotest.check_raises "sum must be 100"
    (Invalid_argument
       "Workload.mix: percentages must be >= 0 and sum to 100") (fun () ->
      ignore (W.mix ~contains:50 ~insert:25 ~delete:26));
  Alcotest.check_raises "no negatives"
    (Invalid_argument
       "Workload.mix: percentages must be >= 0 and sum to 100") (fun () ->
      ignore (W.mix ~contains:120 ~insert:(-10) ~delete:(-10)))

let test_presets () =
  checki "read_only" 100 W.read_only.contains_pct;
  checki "c98 updates" 1 W.contains_98.insert_pct;
  checki "c50" 25 W.contains_50.delete_pct;
  checki "update_only" 0 W.update_only.contains_pct

let test_pick_distribution () =
  let m = W.mix ~contains:80 ~insert:15 ~delete:5 in
  let rng = Rng.create 5L in
  let c = ref 0 and i = ref 0 and d = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    match W.pick rng m with
    | W.Contains -> incr c
    | W.Insert -> incr i
    | W.Delete -> incr d
  done;
  let near pct count =
    let expected = n * pct / 100 in
    abs (count - expected) < n / 100
  in
  checkb "contains near 80%" true (near 80 !c);
  checkb "insert near 15%" true (near 15 !i);
  checkb "delete near 5%" true (near 5 !d)

let test_zipf_bounds_and_skew () =
  let cfg = W.config ~key_range:1000 ~key_dist:(W.Zipf 0.9) () in
  let rng = Rng.create 17L in
  let gen = W.key_generator cfg rng in
  let counts = Array.make 1000 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let k = gen () in
    checkb "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 must be dramatically hotter than the uniform share (200). *)
  checkb "head is hot" true (counts.(0) > 20 * (n / 1000));
  (* The top 10 of 1000 ranks carries ~31% of the traffic at theta 0.9
     (zeta(10,.9)/zeta(1000,.9)); uniform would give 1%. *)
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  checkb "top-10 dominates" true (top10 > n / 4)

let test_uniform_generator_is_uniform () =
  let uni = W.config ~key_range:100 () in
  let rng = Rng.create 3L in
  let gen = W.key_generator uni rng in
  let counts = Array.make 100 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = gen () in
    counts.(k) <- counts.(k) + 1
  done;
  (* Every key within 50% of the mean (1000 expected per key). *)
  Array.iter
    (fun c -> checkb "roughly uniform" true (c > 500 && c < 1500))
    counts

let test_zipf_validation () =
  Alcotest.check_raises "theta >= 1 rejected"
    (Invalid_argument "Workload.config: Zipf theta must be in (0,1)")
    (fun () -> ignore (W.config ~key_dist:(W.Zipf 1.0) ()))

let test_config_validation () =
  Alcotest.check_raises "key_range"
    (Invalid_argument "Workload.config: key_range must be positive") (fun () ->
      ignore (W.config ~key_range:0 ()));
  Alcotest.check_raises "threads"
    (Invalid_argument "Workload.config: threads must be positive") (fun () ->
      ignore (W.config ~threads:0 ()));
  Alcotest.check_raises "prefill"
    (Invalid_argument "Workload.config: prefill_fraction must be in [0,1]")
    (fun () -> ignore (W.config ~prefill_fraction:1.5 ()))

let test_run_end_to_end () =
  let cfg =
    W.config ~key_range:256 ~threads:3 ~duration:0.2 ~seed:7L
      ~role:(W.Uniform W.contains_50) ()
  in
  let r = Runner.run (module Repro_dict.Dict.Citrus_epoch) cfg in
  checks "name" "citrus" r.name;
  checki "threads" 3 r.threads;
  checkb "did work" true (r.total_ops > 0);
  checki "op counts sum" r.total_ops
    (r.contains_ops + r.insert_ops + r.delete_ops);
  checkb "throughput positive" true (r.throughput > 0.0);
  checkb "final size sane" true (r.final_size >= 0 && r.final_size <= 256)

let test_run_single_writer () =
  let cfg =
    W.config ~key_range:256 ~threads:3 ~duration:0.2 ~seed:7L
      ~role:(W.Single_writer W.update_only) ()
  in
  let r = Runner.run (module Repro_dict.Dict.Rb) cfg in
  (* Two of the three threads are pure readers. *)
  checkb "reads dominate" true (r.contains_ops > 0);
  checkb "updates happened" true (r.insert_ops + r.delete_ops > 0)

let test_run_sampled_timeline () =
  let cfg =
    W.config ~key_range:128 ~threads:2 ~duration:0.25 ~seed:9L
      ~role:(W.Uniform W.contains_50) ()
  in
  let r =
    Runner.run ~sample_interval:0.05
      (module Repro_dict.Dict.Citrus_epoch)
      cfg
  in
  checkb "collected samples" true (List.length r.samples >= 3);
  List.iter
    (fun (at, rate) ->
      checkb "timestamps within run" true (at > 0.0 && at < 1.0);
      checkb "rates non-negative" true (rate >= 0.0))
    r.samples;
  (* Timestamps strictly increase. *)
  let rec increasing = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  checkb "timestamps ordered" true (increasing r.samples)

let test_run_avg () =
  let cfg =
    W.config ~key_range:128 ~threads:2 ~duration:0.1 ~seed:3L
      ~role:(W.Uniform W.read_only) ()
  in
  let r = Runner.run_avg ~repeats:2 (module Repro_dict.Dict.Bonsai) cfg in
  checkb "averaged throughput" true (r.throughput > 0.0);
  (* 100% contains on a prefilled structure: no updates at all. *)
  checki "no inserts" 0 r.insert_ops;
  checki "no deletes" 0 r.delete_ops

let test_run_every_dictionary_briefly () =
  (* The benchmark path must work for every structure in the registry. *)
  List.iter
    (fun (module D : Repro_dict.Dict.DICT) ->
      let cfg =
        W.config ~key_range:64 ~threads:2 ~duration:0.05 ~seed:11L ()
      in
      let r = Runner.run (module D) cfg in
      if r.total_ops = 0 then Alcotest.failf "%s did no work" D.name)
    Repro_dict.Dict.all

let test_report_rendering () =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  Report.print_table ~out ~title:"demo" ~threads:[ 1; 2 ]
    [
      { Report.label = "citrus"; points = [ (1, 1.0e6); (2, 2.0e6) ] };
      { Report.label = "bonsai"; points = [ (1, 5.0e5) ] };
    ];
  let s = Buffer.contents buf in
  let contains_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "title present" true (contains_sub s "demo");
  checkb "throughput rendered" true (contains_sub s "2.00M");
  checkb "missing point dash" true (contains_sub s "-")

let test_csv_rendering () =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  Report.print_csv ~out ~title:"exp1" ~threads:[ 1; 2 ]
    [ { Report.label = "citrus"; points = [ (1, 1000.0); (2, 2000.0) ] } ];
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.check
    Alcotest.(list string)
    "csv lines"
    [
      "experiment,structure,threads,ops_per_sec";
      "exp1,citrus,1,1000";
      "exp1,citrus,2,2000";
      "";
    ]
    lines

let test_si_formatting () =
  checks "millions" "2.50M" (Report.si 2.5e6);
  checks "thousands" "3.2k" (Report.si 3_200.0);
  checks "units" "12" (Report.si 12.0);
  checks "billions" "1.20G" (Report.si 1.2e9)

(* --- latency histograms --- *)

module Latency = Repro_workload.Latency

let test_latency_histogram_exact_small () =
  let h = Latency.histogram () in
  List.iter (Latency.record h) [ 3; 3; 3; 7 ];
  checki "count" 4 (Latency.count h);
  Alcotest.check (Alcotest.float 0.01) "p50 exact below 16" 3.0
    (Latency.percentile h 0.5);
  Alcotest.check (Alcotest.float 0.01) "p100 exact below 16" 7.0
    (Latency.percentile h 1.0)

let test_latency_histogram_relative_error () =
  let h = Latency.histogram () in
  (* A single large sample: the bucket midpoint must be within ~6.25%. *)
  Latency.record h 1_000_000;
  let p = Latency.percentile h 0.99 in
  checkb "within bucket error" true
    (Float.abs (p -. 1_000_000.0) /. 1_000_000.0 < 0.0625)

let test_latency_summary_and_merge () =
  let a = Latency.histogram () and b = Latency.histogram () in
  for i = 1 to 1000 do
    Latency.record a i
  done;
  for i = 1001 to 2000 do
    Latency.record b i
  done;
  let m = Latency.merge [ a; b ] in
  let s = Latency.summarize m in
  checki "merged count" 2000 s.Latency.count;
  checkb "p50 near 1000" true (Float.abs (s.Latency.p50 -. 1000.0) < 80.0);
  checkb "p99 near 1980" true (Float.abs (s.Latency.p99 -. 1980.0) < 140.0);
  checkb "mean near 1000.5" true (Float.abs (s.Latency.mean_ns -. 1000.5) < 1.0);
  checkb "max exact" true (s.Latency.max_ns = 2000.0)

let test_latency_empty () =
  let s = Latency.summarize (Latency.histogram ()) in
  checki "count" 0 s.Latency.count;
  checkb "percentile zero" true (s.Latency.p99 = 0.0)

let test_latency_negative_clamped () =
  let h = Latency.histogram () in
  Latency.record h (-5);
  checki "count" 1 (Latency.count h);
  checkb "clamped to zero" true (Latency.percentile h 1.0 = 0.0)

let arb_samples =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 500) (int_bound 5_000_000))

let prop_latency_percentiles_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    arb_samples (fun samples ->
      let h = Latency.histogram () in
      List.iter (Latency.record h) samples;
      let ps = [ 0.1; 0.5; 0.9; 0.99; 1.0 ] in
      let vals = List.map (Latency.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | [ _ ] | [] -> true
      in
      mono vals)

let prop_latency_bounded_error =
  QCheck.Test.make ~name:"p50 within bucket error of exact median" ~count:200
    arb_samples (fun samples ->
      let h = Latency.histogram () in
      List.iter (Latency.record h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let exact = float_of_int (List.nth sorted ((n - 1) / 2)) in
      let approx = Latency.percentile h 0.5 in
      (* log-linear buckets with 16 sub-buckets: <= 1/16 relative error,
         plus one for the integer buckets near zero. *)
      Float.abs (approx -. exact) <= (exact /. 16.0) +. 1.0)

let prop_latency_merge_is_concat =
  QCheck.Test.make ~name:"merge equals recording the concatenation"
    ~count:100
    QCheck.(pair arb_samples arb_samples)
    (fun (xs, ys) ->
      let a = Latency.histogram () and b = Latency.histogram () in
      List.iter (Latency.record a) xs;
      List.iter (Latency.record b) ys;
      let m = Latency.merge [ a; b ] in
      let c = Latency.histogram () in
      List.iter (Latency.record c) (xs @ ys);
      Latency.count m = Latency.count c
      && Latency.percentile m 0.5 = Latency.percentile c 0.5
      && Latency.percentile m 0.99 = Latency.percentile c 0.99
      && (Latency.summarize m).Latency.max_ns
         = (Latency.summarize c).Latency.max_ns)

let test_latency_measure_end_to_end () =
  let cfg =
    W.config ~key_range:128 ~threads:2 ~duration:0.15 ~seed:13L
      ~role:(W.Uniform W.contains_50) ()
  in
  let per_op = Latency.measure (module Repro_dict.Dict.Citrus_epoch) cfg in
  checkb "three op types measured" true (List.length per_op = 3);
  List.iter
    (fun (_, s) ->
      checkb "positive samples" true (s.Latency.count > 0);
      checkb "ordered percentiles" true
        (s.Latency.p50 <= s.Latency.p90
        && s.Latency.p90 <= s.Latency.p99
        && s.Latency.p99 <= s.Latency.p999))
    per_op

let () =
  Alcotest.run "workload"
    [
      ( "mix",
        [
          Alcotest.test_case "validation" `Quick test_mix_validation;
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "pick distribution" `Quick test_pick_distribution;
        ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] );
      ( "key distribution",
        [
          Alcotest.test_case "zipf bounds and skew" `Quick
            test_zipf_bounds_and_skew;
          Alcotest.test_case "uniform is uniform" `Quick
            test_uniform_generator_is_uniform;
          Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
        ] );
      ( "runner",
        [
          Alcotest.test_case "end to end" `Quick test_run_end_to_end;
          Alcotest.test_case "single writer" `Quick test_run_single_writer;
          Alcotest.test_case "averaging" `Quick test_run_avg;
          Alcotest.test_case "sampled timeline" `Quick
            test_run_sampled_timeline;
          Alcotest.test_case "every dictionary" `Quick
            test_run_every_dictionary_briefly;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
          Alcotest.test_case "si units" `Quick test_si_formatting;
        ] );
      ( "latency",
        [
          Alcotest.test_case "exact small buckets" `Quick
            test_latency_histogram_exact_small;
          Alcotest.test_case "bounded relative error" `Quick
            test_latency_histogram_relative_error;
          Alcotest.test_case "summary and merge" `Quick
            test_latency_summary_and_merge;
          Alcotest.test_case "empty histogram" `Quick test_latency_empty;
          Alcotest.test_case "negative clamped" `Quick
            test_latency_negative_clamped;
          Alcotest.test_case "measure end to end" `Quick
            test_latency_measure_end_to_end;
          QCheck_alcotest.to_alcotest prop_latency_percentiles_monotone;
          QCheck_alcotest.to_alcotest prop_latency_bounded_error;
          QCheck_alcotest.to_alcotest prop_latency_merge_is_concat;
        ] );
    ]
