test/test_baselines.ml: Alcotest Atomic Domain Int Int64 List Map Option Random Repro_baselines Repro_rcu Repro_sync
