test/test_rcutorture.mli:
