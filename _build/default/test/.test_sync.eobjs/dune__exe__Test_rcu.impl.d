test/test_rcu.ml: Alcotest Atomic Domain List Repro_rcu Repro_sync Unix
