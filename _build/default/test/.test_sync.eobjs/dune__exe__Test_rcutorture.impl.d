test/test_rcutorture.ml: Alcotest Array Atomic Domain Int64 List Printf Repro_rcu Repro_sync
