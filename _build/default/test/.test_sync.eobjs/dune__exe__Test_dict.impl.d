test/test_dict.ml: Alcotest Atomic Domain Fun Int Int64 List Map Printf QCheck QCheck_alcotest Repro_dict Repro_sync String
