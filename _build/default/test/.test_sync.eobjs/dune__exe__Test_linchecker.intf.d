test/test_linchecker.mli:
