test/test_linchecker.ml: Alcotest Domain Format Int Int64 List Map Printf QCheck QCheck_alcotest Repro_dict Repro_linchecker Repro_sync String
