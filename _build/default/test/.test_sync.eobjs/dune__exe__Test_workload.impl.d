test/test_workload.ml: Alcotest Array Buffer Float Format List QCheck QCheck_alcotest Repro_dict Repro_sync Repro_workload String
