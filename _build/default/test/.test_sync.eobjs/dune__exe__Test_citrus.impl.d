test/test_citrus.ml: Alcotest Atomic Domain Gen Int Int64 List Map Printf QCheck QCheck_alcotest Repro_citrus Repro_rcu Repro_sync String
