test/test_citrus.mli:
