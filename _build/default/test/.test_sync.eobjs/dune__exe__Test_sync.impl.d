test/test_sync.ml: Alcotest Array Domain List QCheck QCheck_alcotest Repro_sync Unix
