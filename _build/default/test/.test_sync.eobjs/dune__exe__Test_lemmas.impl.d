test/test_lemmas.ml: Alcotest Atomic Domain Int64 List Repro_citrus Repro_linchecker Repro_sync
