(* Proof-guided scenario tests: each test constructs, with hooks and
   barriers, the exact adversarial interleaving that a lemma of the paper's
   correctness proof (Section 4) rules out, and checks that the
   implementation behaves as the proof promises.

   These run on the default configuration (Citrus over the paper's new
   RCU); the generic behaviour suites in test_citrus.ml cover all RCU
   flavours. *)

module T = Repro_citrus.Citrus_int.Epoch
module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Lemma 4 / Figure 7: an insert whose search ended at the old
   successor of a concurrent two-children delete must fail validation
   (the delete's synchronize_rcu guarantees the insert's read-side
   critical section ended before the successor is marked, so the insert
   is already past get and will observe the mark). --- *)

let test_lemma4_insert_lands_on_moved_successor () =
  let t = T.create () in
  let h = T.register t in
  (* inf.left = 50 { 25, 75 { 60, _ } }: the successor of 50 is 60. *)
  List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 75; 60 ];
  let insert_paused = Barrier.create 2 in
  let delete_done = Barrier.create 2 in
  let fired = Atomic.make false in
  (* The hook fires in every update of every domain; restrict it to the
     first execution inside the inserting domain. *)
  let inserter_id = Atomic.make (-1) in
  T.Hooks.between_get_and_lock t (fun () ->
      if
        (Domain.self () :> int) = Atomic.get inserter_id
        && not (Atomic.exchange fired true)
      then begin
        Barrier.wait insert_paused;
        (* The delete of 50 runs to completion here: it publishes a copy
           of 60 at 50's position, waits for readers (our get already
           left its read-side critical section), and unlinks old 60. *)
        Barrier.wait delete_done
      end);
  let inserter =
    Domain.spawn (fun () ->
        Atomic.set inserter_id (Domain.self () :> int);
        let h2 = T.register t in
        (* 65 > 60: the search descends 50 -> 75 -> 60 and ends with
           prev = the original successor node 60. *)
        let r = T.insert h2 65 65 in
        T.unregister h2;
        r)
  in
  Barrier.wait insert_paused;
  (* Insert is parked with a stale prev = old 60. *)
  checkb "delete succeeds while insert is parked" true (T.delete h 50);
  Barrier.wait delete_done;
  checkb "insert succeeded after restart" true (Domain.join inserter);
  T.Hooks.between_get_and_lock t ignore;
  checkb "restart was forced" true (List.assoc "restarts" (T.stats t) > 0);
  checkb "65 present in the correct location" true (T.mem h 65);
  checkb "successor key still present (as the copy)" true (T.mem h 60);
  checkb "deleted key gone" false (T.mem h 50);
  T.check_invariants t;
  Alcotest.check
    Alcotest.(list int)
    "final keys" [ 25; 60; 65; 75 ]
    (List.map fst (T.to_list t));
  T.unregister h

(* --- The line 69 validation: a two-children delete whose successor gets
   removed between the successor walk and the lock acquisition must fail
   validation and restart with a fresh successor. --- *)

let test_successor_invalidated_between_walk_and_lock () =
  let t = T.create () in
  let h = T.register t in
  (* 50 { 25, 75 { 60, _ } }: successor of 50 is 60 on the first attempt,
     75 after 60 disappears. *)
  List.iter (fun k -> ignore (T.insert h k k)) [ 50; 25; 75; 60 ];
  let fired = Atomic.make false in
  let deleter_id = Atomic.make (-1) in
  T.Hooks.after_find_successor t (fun () ->
      if
        (Domain.self () :> int) = Atomic.get deleter_id
        && not (Atomic.exchange fired true)
      then begin
        (* The delete of 50 holds the locks on its prev and on 50 and has
           just chosen 60 as successor. Remove 60 from another domain: its
           prev is 75, which is unlocked, so this completes. *)
        let d =
          Domain.spawn (fun () ->
              let h2 = T.register t in
              assert (T.delete h2 60);
              T.unregister h2)
        in
        Domain.join d
      end);
  let deleter =
    Domain.spawn (fun () ->
        Atomic.set deleter_id (Domain.self () :> int);
        let h2 = T.register t in
        let r = T.delete h2 50 in
        T.unregister h2;
        r)
  in
  checkb "delete of 50 still succeeds" true (Domain.join deleter);
  T.Hooks.after_find_successor t ignore;
  checkb "restart was forced" true (List.assoc "restarts" (T.stats t) > 0);
  checkb "50 gone" false (T.mem h 50);
  checkb "60 gone" false (T.mem h 60);
  checkb "75 survived (promoted as the retry's successor)" true (T.mem h 75);
  checkb "25 survived" true (T.mem h 25);
  T.check_invariants t;
  T.unregister h

(* --- Lemma 3: the tag detects any number of fill/empty cycles of a child
   slot between an insert's get and its lock acquisition (the ABA the tag
   field exists for). --- *)

let test_lemma3_tag_survives_many_cycles () =
  let t = T.create () in
  let h = T.register t in
  ignore (T.insert h 50 50);
  let fired = Atomic.make false in
  let inserter_id = Atomic.make (-1) in
  T.Hooks.between_get_and_lock t (fun () ->
      if
        (Domain.self () :> int) = Atomic.get inserter_id
        && not (Atomic.exchange fired true)
      then begin
        (* While the insert of 20 is parked with (prev=50, left, tag=t0),
           cycle the slot through many identical-looking states. *)
        let d =
          Domain.spawn (fun () ->
              let h2 = T.register t in
              for _ = 1 to 25 do
                assert (T.insert h2 25 25);
                assert (T.delete h2 25)
              done;
              T.unregister h2)
        in
        Domain.join d
      end);
  let inserter =
    Domain.spawn (fun () ->
        Atomic.set inserter_id (Domain.self () :> int);
        let h2 = T.register t in
        let r = T.insert h2 20 20 in
        T.unregister h2;
        r)
  in
  checkb "insert eventually succeeds" true (Domain.join inserter);
  T.Hooks.between_get_and_lock t ignore;
  checkb "at least one restart" true (List.assoc "restarts" (T.stats t) > 0);
  Alcotest.check Alcotest.(option int) "inserted value intact" (Some 20)
    (T.contains h 20);
  T.check_invariants t;
  T.unregister h

(* --- Lemma 8: a key that stays in the tree for the whole duration of a
   search is always found, no matter how much concurrent restructuring
   happens around it. --- *)

let test_lemma8_stable_keys_always_found () =
  let t = T.create () in
  let setup = T.register t in
  (* Stable odd keys; churn on even keys forces successor moves across the
     stable keys' paths. *)
  let stable = List.init 64 (fun i -> (2 * i) + 1) in
  List.iter (fun k -> ignore (T.insert setup k k)) stable;
  let stop = Atomic.make false in
  let missing = Atomic.make 0 in
  let readers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = T.register t in
            let rng = Rng.create (Int64.of_int (600 + i)) in
            while not (Atomic.get stop) do
              let k = (2 * Rng.int rng 64) + 1 in
              if not (T.mem h k) then Atomic.incr missing
            done;
            T.unregister h))
  in
  let writers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = T.register t in
            let rng = Rng.create (Int64.of_int (700 + i)) in
            for _ = 1 to 3_000 do
              let k = 2 * Rng.int rng 80 in
              if Rng.bool rng then ignore (T.insert h k k)
              else ignore (T.delete h k)
            done;
            T.unregister h))
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  List.iter Domain.join readers;
  checki "stable keys never missed" 0 (Atomic.get missing);
  T.check_invariants t;
  T.unregister setup

(* --- WBST (Definition 1): while a two-children delete is parked between
   publishing the successor copy and unlinking the original, BOTH copies
   are reachable; a search may return either, and both carry the same
   value — the duplicate is harmless exactly as the WBST argument says. *)

let test_wbst_duplicate_during_move_is_consistent () =
  let t = T.create () in
  let h = T.register t in
  List.iter (fun k -> ignore (T.insert h k (k * 100))) [ 50; 25; 75; 60; 80 ];
  let checked = Atomic.make 0 in
  T.Hooks.before_synchronize t (fun () ->
      (* Tree state right now: copy-of-60 published at 50's position AND
         original 60 still reachable under 75. *)
      let d =
        Domain.spawn (fun () ->
            let h2 = T.register t in
            for _ = 1 to 50 do
              match T.contains h2 60 with
              | Some 6000 -> Atomic.incr checked
              | Some _ | None ->
                  Alcotest.failf "wrong or missing value for duplicated key"
            done;
            T.unregister h2)
      in
      Domain.join d);
  checkb "delete succeeds" true (T.delete h 50);
  T.Hooks.before_synchronize t ignore;
  checki "every concurrent lookup saw one consistent binding" 50
    (Atomic.get checked);
  T.check_invariants t;
  T.unregister h

(* --- Lemma 1 corollary: delete's validation protects against operating
   on a node that was already removed — two concurrent deletes of the same
   key yield exactly one winner even when both pass get. --- *)

let test_lemma1_one_winner_per_key () =
  let t = T.create () in
  let h = T.register t in
  let rounds = 200 in
  let wins = Atomic.make 0 in
  let bar = Barrier.create 3 in
  let deleter () =
    let h2 = T.register t in
    for _ = 1 to rounds do
      Barrier.wait bar;
      if T.delete h2 42 then Atomic.incr wins;
      Barrier.wait bar
    done;
    T.unregister h2
  in
  let feeder =
    Domain.spawn (fun () ->
        let h2 = T.register t in
        for _ = 1 to rounds do
          ignore (T.insert h2 42 42);
          Barrier.wait bar;
          (* the two deleters race here *)
          Barrier.wait bar
        done;
        T.unregister h2)
  in
  let d1 = Domain.spawn deleter and d2 = Domain.spawn deleter in
  Domain.join feeder;
  Domain.join d1;
  Domain.join d2;
  checki "exactly one winner every round" rounds (Atomic.get wins);
  T.check_invariants t;
  T.unregister h

(* --- The linearization-point argument for failed contains: a contains
   overlapping an insert of the same key may return either verdict, but a
   contains that starts after the insert's response must find it. The
   recorded-history checker validates this end to end. --- *)

let test_contains_linearization () =
  let module H = Repro_linchecker.History in
  let module C = Repro_linchecker.Checker in
  let t = T.create () in
  let hist = H.create ~threads:2 in
  let bar = Barrier.create 2 in
  let reader =
    Domain.spawn (fun () ->
        let h = T.register t in
        Barrier.wait bar;
        for _ = 1 to 100 do
          ignore
            (H.record hist ~thread:1 (H.Contains 5) (fun () ->
                 H.Value (T.contains h 5)))
        done;
        T.unregister h)
  in
  let writer =
    Domain.spawn (fun () ->
        let h = T.register t in
        Barrier.wait bar;
        for v = 1 to 50 do
          ignore
            (H.record hist ~thread:0 (H.Insert (5, v)) (fun () ->
                 H.Bool (T.insert h 5 v)));
          ignore
            (H.record hist ~thread:0 (H.Delete 5) (fun () ->
                 H.Bool (T.delete h 5)))
        done;
        T.unregister h)
  in
  Domain.join reader;
  Domain.join writer;
  C.check_exn (H.events hist)

(* Reclamation must not affect linearizability: record histories on a
   reclamation-enabled tree (tiny key space, maximal contention) and
   model-check them. *)
let test_reclamation_linearizable () =
  let module H = Repro_linchecker.History in
  let module C = Repro_linchecker.Checker in
  for seed = 1 to 5 do
    let t = T.create ~reclamation:true () in
    let threads = 3 in
    let hist = H.create ~threads in
    let bar = Barrier.create threads in
    let worker i =
      Domain.spawn (fun () ->
          let h = T.register t in
          let rng = Rng.create (Int64.of_int ((seed * 100) + i)) in
          Barrier.wait bar;
          for _ = 1 to 15 do
            let k = Rng.int rng 4 in
            match Rng.int rng 10 with
            | r when r < 4 ->
                ignore
                  (H.record hist ~thread:i (H.Contains k) (fun () ->
                       H.Value (T.contains h k)))
            | r when r < 7 ->
                ignore
                  (H.record hist ~thread:i (H.Insert (k, k)) (fun () ->
                       H.Bool (T.insert h k k)))
            | _ ->
                ignore
                  (H.record hist ~thread:i (H.Delete k) (fun () ->
                       H.Bool (T.delete h k)))
          done;
          T.unregister h)
    in
    let domains = List.init threads worker in
    List.iter Domain.join domains;
    C.check_exn (H.events hist);
    checki "no use-after-reclaim" 0
      (List.assoc "use_after_reclaim" (T.stats t))
  done

let () =
  Alcotest.run "lemmas"
    [
      ( "proof scenarios",
        [
          Alcotest.test_case "Lemma 4 / Fig 7: insert vs successor move"
            `Quick test_lemma4_insert_lands_on_moved_successor;
          Alcotest.test_case "line 69: successor invalidated mid-delete"
            `Quick test_successor_invalidated_between_walk_and_lock;
          Alcotest.test_case "Lemma 3: tag survives many ABA cycles" `Quick
            test_lemma3_tag_survives_many_cycles;
          Alcotest.test_case "Lemma 8: stable keys always found" `Quick
            test_lemma8_stable_keys_always_found;
          Alcotest.test_case "WBST: duplicate during move is consistent"
            `Quick test_wbst_duplicate_during_move_is_consistent;
          Alcotest.test_case "Lemma 1: one delete winner per key" `Quick
            test_lemma1_one_winner_per_key;
          Alcotest.test_case "contains linearization points" `Quick
            test_contains_linearization;
          Alcotest.test_case "reclamation preserves linearizability" `Quick
            test_reclamation_linearizable;
        ] );
    ]
