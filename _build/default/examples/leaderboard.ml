(* A game leaderboard over string player names: Citrus with a generic key
   type, Zipf-skewed access (stars get most traffic), and a maintenance
   domain keeping the tree balanced while the game runs.

     dune exec examples/leaderboard.exe

   Demonstrates three things the other examples don't:
   - the functor over an arbitrary ordered key (string, not int);
   - skewed real-world access patterns via the workload library's Zipfian
     generator;
   - maintenance rotations running concurrently with queries and updates. *)

module Citrus_str = Repro_citrus.Citrus.Make (String) (Repro_rcu.Epoch_rcu)
module W = Repro_workload.Workload
module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

let players = 2_000
let name_of i = Printf.sprintf "player-%05d" i

let () =
  let board : int Citrus_str.t = Citrus_str.create () in
  let setup = Citrus_str.register board in
  (* Register players in ascending name order — adversarial for an
     unbalanced BST; the maintenance domain will fix the shape. *)
  for i = 0 to players - 1 do
    ignore (Citrus_str.insert setup (name_of i) 0)
  done;
  Printf.printf "registered %d players; initial tree height %d\n%!" players
    (Citrus_str.height board);

  let stop = Atomic.make false in
  let queries = Atomic.make 0 in
  let score_updates = Atomic.make 0 in
  let churn = Atomic.make 0 in
  let start = Barrier.create 4 in

  let maintenance =
    Domain.spawn (fun () ->
        let h = Citrus_str.register board in
        Barrier.wait start;
        while not (Atomic.get stop) do
          if Citrus_str.maintenance_pass h = 0 then Unix.sleepf 0.002
        done;
        Citrus_str.unregister h)
  in
  (* Low ranks are the "stars": Zipf makes them absorb most lookups. *)
  let zipf_cfg = W.config ~key_range:players ~key_dist:(W.Zipf 0.9) () in
  let frontend seed =
    Domain.spawn (fun () ->
        let h = Citrus_str.register board in
        let rng = Rng.create seed in
        let next_rank = W.key_generator zipf_cfg rng in
        Barrier.wait start;
        while not (Atomic.get stop) do
          let player = name_of (next_rank ()) in
          match Rng.int rng 100 with
          | r when r < 85 ->
              (* Score lookup: wait-free. *)
              ignore (Citrus_str.contains h player);
              Atomic.incr queries
          | r when r < 97 ->
              (* Score change: delete + reinsert (values are immutable per
                 node, like the paper's dictionary). *)
              if Citrus_str.delete h player then begin
                ignore (Citrus_str.insert h player (Rng.int rng 1_000_000));
                Atomic.incr score_updates
              end
          | _ ->
              (* Account churn: remove, will re-register next round. *)
              if Citrus_str.delete h player then Atomic.incr churn
              else ignore (Citrus_str.insert h player 0)
        done;
        Citrus_str.unregister h)
  in
  let f1 = frontend 11L and f2 = frontend 22L in
  Barrier.wait start;
  Unix.sleepf 0.5;
  Atomic.set stop true;
  List.iter Domain.join [ f1; f2; maintenance ];

  Citrus_str.check_invariants board;
  let h = Citrus_str.register board in
  ignore (Citrus_str.balance h);
  Citrus_str.unregister h;
  Printf.printf "queries           : %d\n" (Atomic.get queries);
  Printf.printf "score updates     : %d\n" (Atomic.get score_updates);
  Printf.printf "account churn     : %d\n" (Atomic.get churn);
  Printf.printf "players remaining : %d\n" (Citrus_str.size board);
  Printf.printf "final tree height : %d (log2 %d ~ %d)\n"
    (Citrus_str.height board) players 11;
  List.iter
    (fun (name, v) -> Printf.printf "  %-22s = %d\n" name v)
    (Citrus_str.stats board);
  assert (Citrus_str.height board < 40);
  print_endline "leaderboard: OK"
