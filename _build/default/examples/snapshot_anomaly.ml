(* Figure 1 of the paper, reproduced as a runnable experiment: why Citrus
   supports single-key searches but not multi-key read-only traversals.

     dune exec examples/snapshot_anomaly.exe

   Two RCU readers collect the LEAVES of a small search tree by in-order
   traversal while two updaters delete leaves 9 and 12. Deletion under RCU
   unlinks with a single store; synchronize_rcu is only needed before
   reclaiming memory (here the GC plays that role), so updates proceed
   while the readers sit inside their read-side critical sections. The
   interleaving is forced with barriers:

     - reader r2 collects the left subtree (sees leaf 9), then pauses;
     - delete(9) unlinks it, making 7 a leaf;
     - reader r1 runs start-to-finish: leaves {7, 12};
     - delete(12) unlinks it, making 15 a leaf;
     - r2 resumes on the right subtree: total {9, 15}.

   r1 = {7, 12} says "9 was deleted first"; r2 = {9, 15} says "12 was
   deleted first". Both read-side critical sections were respected, yet no
   sequential order of the four operations explains both results — RCU
   alone does not give atomic multi-item reads. Citrus sidesteps the
   problem by only offering single-key operations, whose linearizability
   the paper proves. *)

module Rcu = Repro_rcu.Epoch_rcu
module Barrier = Repro_sync.Barrier

(* The tree of Figure 1:   10
                          /  \
                         7    15
                          \   /
                           9 12     (9 and 12 are the doomed leaves) *)
type node = {
  key : int;
  left : node option Atomic.t;
  right : node option Atomic.t;
}

let node key left right =
  { key; left = Atomic.make left; right = Atomic.make right }

let () =
  let n9 = node 9 None None in
  let n12 = node 12 None None in
  let n7 = node 7 None (Some n9) in
  let n15 = node 15 (Some n12) None in
  let root = node 10 (Some n7) (Some n15) in

  let rcu = Rcu.create () in

  (* In-order leaf collection with a pause point between the subtrees; the
     whole traversal is one read-side critical section. *)
  let collect th ~pause =
    Rcu.read_lock th;
    let acc = ref [] in
    let rec go n =
      match n with
      | None -> ()
      | Some n ->
          let l = Atomic.get n.left and r = Atomic.get n.right in
          (match (l, r) with
          | None, None -> acc := n.key :: !acc
          | _ -> ());
          go l;
          go r
    in
    go (Atomic.get root.left);
    pause ();
    go (Atomic.get root.right);
    Rcu.read_unlock th;
    List.rev !acc
  in

  let b1 = Barrier.create 2
  and b2 = Barrier.create 2
  and b3 = Barrier.create 2
  and b4 = Barrier.create 2 in

  let r2 =
    Domain.spawn (fun () ->
        let th = Rcu.register rcu in
        let result =
          collect th ~pause:(fun () ->
              Barrier.wait b1 (* left subtree done: r2 saw leaf 9 *);
              Barrier.wait b4 (* resume only after delete(12) *))
        in
        Rcu.unregister th;
        result)
  in
  let r1 =
    Domain.spawn (fun () ->
        let th = Rcu.register rcu in
        Barrier.wait b2 (* start only after delete(9) *);
        let result = collect th ~pause:(fun () -> ()) in
        Barrier.wait b3 (* r1 done; delete(12) may proceed *);
        Rcu.unregister th;
        result)
  in
  let updaters =
    Domain.spawn (fun () ->
        Barrier.wait b1 (* r2 has read the left subtree *);
        Atomic.set n7.right None (* unlink leaf 9 *);
        Barrier.wait b2;
        Barrier.wait b3 (* r1 finished its traversal *);
        Atomic.set n15.left None (* unlink leaf 12 *);
        Barrier.wait b4;
        (* Only reclamation needs the grace period; with both readers done
           this returns immediately (the OCaml GC frees the nodes). *)
        Rcu.synchronize rcu)
  in
  let r1_keys = Domain.join r1 in
  let r2_keys = Domain.join r2 in
  Domain.join updaters;
  let show l = "{" ^ String.concat ", " (List.map string_of_int l) ^ "}" in
  Printf.printf "r1 observed leaves %s\n" (show r1_keys);
  Printf.printf "r2 observed leaves %s\n" (show r2_keys);
  assert (r1_keys = [ 7; 12 ]);
  assert (r2_keys = [ 9; 15 ]);
  Printf.printf
    "r1 says delete(9) happened first; r2 says delete(12) happened first.\n\
     No sequential order of the four operations is consistent with both —\n\
     which is why Citrus offers wait-free single-key contains, not\n\
     multi-key snapshots.\n"
