(* Quickstart: the Citrus public API in thirty lines.

     dune exec examples/quickstart.exe

   A Citrus tree is shared between domains; each domain registers a handle
   (carrying its RCU thread state) and then uses the dictionary API.
   contains is wait-free; insert/delete lock only the nodes they change. *)

module Citrus = Repro_citrus.Citrus_int.Epoch

let () =
  let tree = Citrus.create () in
  let h = Citrus.register tree in

  (* Plain dictionary operations. *)
  assert (Citrus.insert h 1 "one");
  assert (Citrus.insert h 2 "two");
  assert (Citrus.insert h 3 "three");
  assert (not (Citrus.insert h 2 "TWO"));
  (* duplicate *)
  assert (Citrus.contains h 2 = Some "two");
  assert (Citrus.delete h 2);
  assert (Citrus.contains h 2 = None);

  (* Concurrent use: spawn domains, each with its own handle. *)
  let workers =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            let h = Citrus.register tree in
            for k = 100 * i to (100 * i) + 99 do
              ignore (Citrus.insert h k (string_of_int k))
            done;
            Citrus.unregister h))
  in
  List.iter Domain.join workers;

  (* 400 worker keys (0..399) already cover 1 and 3; 2 was re-inserted by
     worker 0 after the delete above. *)
  Printf.printf "size = %d (expected 400)\n" (Citrus.size tree);
  Citrus.check_invariants tree;
  List.iter
    (fun (name, v) -> Printf.printf "  %-22s = %d\n" name v)
    (Citrus.stats tree);
  Citrus.unregister h;
  print_endline "quickstart: OK"
