(* A read-mostly web session store — the workload class RCU structures are
   built for (the paper's 98-100% contains columns of Figure 10).

     dune exec examples/session_store.exe

   Four "frontend" domains answer requests: almost every request looks up a
   session token (wait-free contains); a few log in (insert) or log out
   (delete). One "reaper" domain sweeps expired sessions concurrently —
   deletes of internal nodes trigger the successor-move + synchronize_rcu
   machinery while the frontends keep reading, which is precisely the
   scenario Citrus makes safe.

   Sessions are keyed by token; the value packs the expiry round so the
   reaper can decide staleness from the dictionary alone. *)

module Citrus = Repro_citrus.Citrus_int.Epoch
module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

type session = { user : int; expires_at : int }

let token_space = 4096
let rounds = 40
let frontends = 4

let () =
  let store : session Citrus.t = Citrus.create () in
  let clock = Atomic.make 0 in
  let requests = Atomic.make 0 in
  let hits = Atomic.make 0 in
  let logins = Atomic.make 0 in
  let reaped = Atomic.make 0 in
  let stop = Atomic.make false in
  let start = Barrier.create (frontends + 2) in

  let frontend i =
    Domain.spawn (fun () ->
        let h = Citrus.register store in
        let rng = Rng.create (Int64.of_int (1000 + i)) in
        Barrier.wait start;
        while not (Atomic.get stop) do
          Atomic.incr requests;
          let token = Rng.int rng token_space in
          let now = Atomic.get clock in
          match Rng.int rng 100 with
          | r when r < 90 -> (
              (* Authenticated request: wait-free session lookup. *)
              match Citrus.contains h token with
              | Some s when s.expires_at > now -> Atomic.incr hits
              | Some _ | None -> ())
          | r when r < 96 ->
              (* Login: create a session lasting 5 rounds. *)
              if
                Citrus.insert h token
                  { user = token * 31; expires_at = now + 5 }
              then Atomic.incr logins
          | _ ->
              (* Logout. *)
              ignore (Citrus.delete h token)
        done;
        Citrus.unregister h)
  in

  let reaper =
    Domain.spawn (fun () ->
        let h = Citrus.register store in
        Barrier.wait start;
        while not (Atomic.get stop) do
          let now = Atomic.get clock in
          (* Sweep the token space for expired sessions. Each delete of a
             two-child node publishes a successor copy and waits for the
             frontends' in-flight lookups via synchronize_rcu. *)
          for token = 0 to token_space - 1 do
            match Citrus.contains h token with
            | Some s when s.expires_at <= now ->
                if Citrus.delete h token then Atomic.incr reaped
            | Some _ | None -> ()
          done
        done;
        Citrus.unregister h)
  in

  let ticker =
    Domain.spawn (fun () ->
        Barrier.wait start;
        for _ = 1 to rounds do
          Unix.sleepf 0.01;
          Atomic.incr clock
        done;
        Atomic.set stop true)
  in

  let fs = List.init frontends frontend in
  Domain.join ticker;
  List.iter Domain.join fs;
  Domain.join reaper;

  Citrus.check_invariants store;
  Printf.printf "requests handled     : %d\n" (Atomic.get requests);
  Printf.printf "session cache hits   : %d\n" (Atomic.get hits);
  Printf.printf "logins               : %d\n" (Atomic.get logins);
  Printf.printf "sessions reaped      : %d\n" (Atomic.get reaped);
  Printf.printf "live sessions at end : %d\n" (Citrus.size store);
  List.iter
    (fun (name, v) -> Printf.printf "  citrus.%-20s = %d\n" name v)
    (Citrus.stats store);
  print_endline "session_store: OK (invariants hold)"
