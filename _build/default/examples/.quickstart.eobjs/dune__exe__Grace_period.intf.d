examples/grace_period.mli:
