examples/quickstart.ml: Domain List Printf Repro_citrus
