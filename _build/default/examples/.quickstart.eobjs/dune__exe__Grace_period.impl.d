examples/grace_period.ml: Atomic Domain List Printf Repro_rcu Repro_sync
