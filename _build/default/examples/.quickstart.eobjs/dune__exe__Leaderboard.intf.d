examples/leaderboard.mli:
