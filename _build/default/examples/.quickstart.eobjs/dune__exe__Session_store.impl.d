examples/session_store.ml: Atomic Domain Int64 List Printf Repro_citrus Repro_sync Unix
