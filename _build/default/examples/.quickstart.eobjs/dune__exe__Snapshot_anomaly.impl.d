examples/snapshot_anomaly.ml: Atomic Domain List Printf Repro_rcu Repro_sync String
