examples/session_store.mli:
