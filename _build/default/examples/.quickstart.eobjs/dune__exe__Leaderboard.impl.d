examples/leaderboard.ml: Atomic Domain List Printf Repro_citrus Repro_rcu Repro_sync Repro_workload String Unix
