examples/snapshot_anomaly.mli:
