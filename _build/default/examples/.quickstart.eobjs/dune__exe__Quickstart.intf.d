examples/quickstart.mli:
