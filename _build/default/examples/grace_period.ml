(* The RCU API itself: publish/retire with grace periods and deferred
   reclamation — the paper's "future work" integration, runnable.

     dune exec examples/grace_period.exe

   A writer repeatedly swaps a shared configuration record and retires the
   old one through Defer (the call_rcu analogue built on synchronize_rcu).
   Readers dereference the configuration inside read-side critical
   sections. The invariant demonstrated: a retired configuration is never
   invalidated while any reader that might still hold it is inside its
   critical section — even though readers never take a lock.

   The same program runs against both RCU implementations and prints how
   many grace periods each needed. *)

module Barrier = Repro_sync.Barrier

type config = { version : int; mutable valid : bool }

module Demo (R : Repro_rcu.Rcu.S) = struct
  module Defer = Repro_rcu.Defer.Make (R)

  let run () =
    let rcu = R.create () in
    let current = Atomic.make { version = 0; valid = true } in
    let swaps = 500 in
    let readers = 3 in
    let stale_reads = Atomic.make 0 in
    let invalid_observed = Atomic.make 0 in
    let stop = Atomic.make false in
    let start = Barrier.create (readers + 1) in
    let reader_domains =
      List.init readers (fun _ ->
          Domain.spawn (fun () ->
              let th = R.register rcu in
              Barrier.wait start;
              while not (Atomic.get stop) do
                R.read_lock th;
                let c = Atomic.get current in
                (* Anything reachable inside the critical section must stay
                   valid until we leave it. *)
                if not c.valid then Atomic.incr invalid_observed;
                Domain.cpu_relax ();
                if not c.valid then Atomic.incr invalid_observed;
                if c.version < (Atomic.get current).version then
                  Atomic.incr stale_reads (* stale but safe: RCU's deal *);
                R.read_unlock th
              done;
              R.unregister th))
    in
    let defer = Defer.create ~batch:16 rcu in
    Barrier.wait start;
    for v = 1 to swaps do
      let fresh = { version = v; valid = true } in
      let old = Atomic.exchange current fresh in
      (* Retire [old]: invalidation runs only after a grace period. *)
      Defer.defer defer (fun () -> old.valid <- false)
    done;
    Defer.flush defer;
    Atomic.set stop true;
    List.iter Domain.join reader_domains;
    Printf.printf
      "%-10s swaps=%d retired=%d grace_periods=%d stale_reads=%d \
       use-after-retire=%d\n"
      R.name swaps (Defer.executed defer) (R.grace_periods rcu)
      (Atomic.get stale_reads)
      (Atomic.get invalid_observed);
    assert (Atomic.get invalid_observed = 0);
    assert (Defer.executed defer = swaps)
end

module Epoch_demo = Demo (Repro_rcu.Epoch_rcu)
module Urcu_demo = Demo (Repro_rcu.Urcu)

let () =
  Epoch_demo.run ();
  Urcu_demo.run ();
  print_endline
    "grace_period: OK (no retired configuration was ever observed\n\
     invalid inside a read-side critical section)"
