(** Lockdep: a Linux-lockdep-style locking correctness validator.

    Every instrumented lock carries a {e lock class} (allocation-site role
    plus a human-readable name); lockdep maintains a per-domain held-lock
    stack and a process-global class-dependency graph, and flags a
    potential ABBA deadlock the {e first} time an inverted acquisition
    order is ever observed — no deadlock needs to actually fire. Classes
    created with [~ordered:true] additionally enforce an explicit
    acquisition order {e within} the class: each acquisition carries an
    order token (Citrus's hand-over-hand root-to-leaf protocol becomes
    tokens 0, 1, 2, ...), and taking a lower token while a higher one is
    held is an order-inversion violation.

    The same per-domain context tracker enforces the RCU usage rules:
    {!check_sync} (called by [synchronize]/[cond_synchronize] and the
    grace-period coalescing wait queue) raises while the domain's
    read-side nesting is positive, and {!rcu_read_exit} raises on an
    unbalanced [read_unlock]. Releasing a lock the domain does not hold
    (double unlock, foreign unlock) and re-acquiring a held lock are also
    violations.

    Every violation raises {!Violation} with a structured {!report}:
    the class names involved, the acquisition backtraces of {e both} ends
    of an inverted dependency, the domain, the held-lock stack, and the
    reader slot for RCU-context violations.

    Cost discipline: off by default. Instrumented sites are gated on
    {!enabled} — the disarmed cost is one atomic load and a branch per
    acquisition, the Metrics/Fault/Sanitizer shape. Arm with {!arm}, or
    process-wide with [REPRO_LOCKDEP=1] (mirroring [REPRO_SANITIZE=1]).
    Arm and disarm only at quiescent points (no locks held, no read-side
    critical section open on any domain): lockdep only sees events that
    happen while it is armed, so arming inside a critical section makes
    the matching release look unbalanced.

    This module sits below [Repro_sync] in the dependency stack (the
    locks themselves call into it), so it depends only on the stdlib and
    exposes its counters for [Metrics] to read at snapshot time and a
    {!set_violation_hook} for [Trace] to record violations. *)

(** {1 Arming} *)

val enabled : unit -> bool
val arm : unit -> unit
val disarm : unit -> unit

(** {1 Lock classes} *)

(** Role of a lock class, the coarse half of a class identity (the fine
    half is the allocation-site name passed to {!new_class}). *)
type role =
  | Tree_node  (** per-node locks of a search structure *)
  | Gp  (** a grace-period / synchronize serialization lock *)
  | Registry  (** a debug-tool registry or table lock *)
  | Generic  (** unclassified (the default for bare [create ()]) *)

val role_to_string : role -> string

type cls
(** A lock class. At most one class per allocation site; locks created at
    the same site share the class, as in Linux lockdep. *)

val new_class : ?ordered:bool -> role -> string -> cls
(** [new_class role name] registers a class. [~ordered:true] makes
    within-class nesting subject to order tokens (see {!lock_acquired});
    unordered classes may nest within themselves freely (hand-over-hand
    baselines rely on this escape hatch). Class capacity is bounded;
    registrations past the bound all share one overflow class. *)

val generic : cls
(** The class of locks created without an explicit class. Unordered;
    class id 0. *)

val cls_id : cls -> int
(** Dense non-negative class identifier ([generic] is 0) — carried as
    the [Lock_acquire] trace argument. *)

val cls_name : cls -> string

val new_lock_id : unit -> int
(** Fresh per-lock identity (> 0), used to detect re-acquisition of the
    very same lock. *)

(** {1 Violations} *)

type kind =
  | Order_inversion
      (** an ordered-class lock was taken with an order token not above
          every held token of the same class *)
  | Dependency_cycle
      (** this acquisition would close a cycle in the class-dependency
          graph — the classic ABBA deadlock, flagged on first inversion *)
  | Recursive_lock  (** the very same lock is already held *)
  | Release_not_held
      (** released a lock the domain does not hold (double unlock or
          foreign unlock) *)
  | Sync_in_read_section
      (** [synchronize]/[cond_synchronize]/coalescing wait entered while
          the domain is inside an RCU read-side critical section *)
  | Unbalanced_read_unlock
      (** [read_unlock] with no matching [read_lock] on this domain *)

val kind_to_string : kind -> string

type report = {
  kind : kind;
  cls : string;  (** class of the acquisition/release at fault ("" if n/a) *)
  other_cls : string;
      (** the other end of an inverted dependency ("" if n/a) *)
  domain : int;  (** id of the domain that tripped the check *)
  reader_slot : int;
      (** RCU reader slot for context violations, [-1] otherwise *)
  reader_nesting : int;  (** read-side nesting depth at the violation *)
  held : string list;
      (** classes (with order tokens) held by the domain, most recent
          first *)
  backtrace : string;  (** where the violating call happened *)
  other_backtrace : string;
      (** first-observation backtrace of the conflicting dependency edge
          ("" if n/a) *)
}

exception Violation of report
(** Also registered with [Printexc] so uncaught violations print the
    full structured report. *)

val report_to_string : report -> string

val set_violation_hook : (int -> unit) -> unit
(** Called with the offending class id on every violation, before the
    raise — [Repro_sync.Trace] installs the [Lockdep_violation] trace
    recorder here. *)

(** {1 Lock hooks} (called by the instrumented locks, gated on
    {!enabled}) *)

val lock_acquired : cls -> id:int -> order:int -> unit
(** Record and validate a {e blocking} acquisition, called before the
    caller starts spinning (so an ABBA report fires instead of the
    deadlock). [order] is the within-class order token, [-1] for
    unordered acquisitions.
    @raise Violation on recursion, order inversion, or dependency
    cycle. *)

val trylock_acquired : cls -> id:int -> order:int -> unit
(** Record a successful non-blocking acquisition: pushes the held entry
    and records dependency edges but never reports inversions or cycles
    (a trylock cannot deadlock). *)

val lock_released : cls -> id:int -> unit
(** Pop the matching held entry.
    @raise Violation ([Release_not_held]) if this domain does not hold
    the lock; the caller must leave the lock state untouched in that
    case. *)

(** {1 RCU context hooks} *)

val rcu_read_enter : slot:int -> unit
(** Read-side critical-section entry on this domain (nestable); [slot]
    is the flavour's reader slot index, reported on violations. *)

val rcu_read_exit : unit -> unit
(** @raise Violation ([Unbalanced_read_unlock]) if nesting is zero. *)

val check_sync : unit -> unit
(** @raise Violation ([Sync_in_read_section]) if this domain is inside a
    read-side critical section. *)

val read_nesting : unit -> int
(** This domain's current lockdep-tracked read-side nesting. *)

(** {1 Counters and reset} *)

val checks : unit -> int
(** Total validation events processed while armed (acquisitions,
    releases, RCU context checks) — the [lockdep_checks] metric. *)

val violations : unit -> int
(** Total violations detected — the [lockdep_violations] metric. *)

val reset_counters : unit -> unit

val reset : unit -> unit
(** Zero the counters, clear the dependency graph, and clear the
    {e calling} domain's held-lock stack and read-side nesting (other
    domains' stacks cannot be reached; reset from a quiescent point).
    The mutation suite calls this between hunts so a caught violation's
    abandoned locks do not leak into the next round. *)
