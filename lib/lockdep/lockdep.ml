(* Lockdep: lock-order and RCU-context validator (see the .mli and
   CORRECTNESS.md for the protocol it enforces).

   Design, following Linux lockdep scaled to this repository:

   - Locks are grouped into *classes* (allocation site + role). All
     validation state is per class, so its size is bounded by the number
     of lock-creation sites, not the number of locks: a Citrus tree with
     a million nodes contributes one class.
   - Each domain keeps a held-lock stack in domain-local storage; no
     synchronization is needed to read or push it.
   - Cross-class nesting (acquire B while holding A) records a directed
     edge A -> B in a global class-dependency graph, remembering the
     backtrace of the first observation. An acquisition that would close
     a cycle is reported immediately — the ABBA deadlock is flagged the
     first time the inverted order is *observed*, long before any
     schedule actually deadlocks, and the report carries both ends'
     backtraces.
   - Within-class nesting is silently allowed for unordered classes
     (hand-over-hand coupling in the list/tree baselines would otherwise
     be all noise) and checked against explicit order tokens for ordered
     classes: Citrus's root-to-leaf locking protocol becomes "tokens must
     strictly increase down the held stack".
   - The same domain-local record tracks RCU read-side nesting, so
     waiting for a grace period from inside a read-side critical section
     (the self-deadlock RCU's rules exist to prevent) is caught at the
     synchronize call, not as a hang.

   This module sits *below* the locks in the dependency stack, so it can
   use nothing from Repro_sync: the dependency-graph lock is a private
   hand-rolled spin on an atomic (which also keeps lockdep from ever
   recursing into itself), and the counters are plain atomics — armed
   mode is a debug mode, contention on them is acceptable. *)

type role = Tree_node | Gp | Registry | Generic

let role_to_string = function
  | Tree_node -> "tree-node"
  | Gp -> "gp"
  | Registry -> "registry"
  | Generic -> "generic"

type cls = { c_id : int; c_name : string; c_role : role; c_ordered : bool }

let max_classes = 128

(* Class names indexed by id, for reports and the DFS. Slot 0 is the
   generic class; the last slot is the shared overflow class that soaks
   up registrations past the bound. *)
let class_names = Array.make max_classes "?"
let class_count = Atomic.make 0

let overflow =
  { c_id = max_classes - 1; c_name = "overflow"; c_role = Generic;
    c_ordered = false }

let () = class_names.(max_classes - 1) <- "overflow"

let new_class ?(ordered = false) role name =
  let id = Atomic.fetch_and_add class_count 1 in
  if id >= max_classes - 1 then overflow
  else begin
    let name = role_to_string role ^ ":" ^ name in
    class_names.(id) <- name;
    { c_id = id; c_name = name; c_role = role; c_ordered = ordered }
  end

let generic = new_class Generic "unclassified"

let cls_id c = c.c_id
let cls_name c = c.c_name

(* Per-lock identities start at 1 so a held-entry id can never collide
   with an uninitialized 0. *)
let lock_ids = Atomic.make 1

let new_lock_id () = Atomic.fetch_and_add lock_ids 1

(* -- arming and counters -- *)

let on = Atomic.make false

let enabled () = Atomic.get on
let arm () = Atomic.set on true
let disarm () = Atomic.set on false

let checks_total = Atomic.make 0
let violations_total = Atomic.make 0

let checks () = Atomic.get checks_total
let violations () = Atomic.get violations_total

let reset_counters () =
  Atomic.set checks_total 0;
  Atomic.set violations_total 0

let count_check () = Atomic.incr checks_total

(* -- violations -- *)

type kind =
  | Order_inversion
  | Dependency_cycle
  | Recursive_lock
  | Release_not_held
  | Sync_in_read_section
  | Unbalanced_read_unlock

let kind_to_string = function
  | Order_inversion -> "order-inversion"
  | Dependency_cycle -> "dependency-cycle"
  | Recursive_lock -> "recursive-lock"
  | Release_not_held -> "release-not-held"
  | Sync_in_read_section -> "synchronize-in-read-section"
  | Unbalanced_read_unlock -> "unbalanced-read-unlock"

type report = {
  kind : kind;
  cls : string;
  other_cls : string;
  domain : int;
  reader_slot : int;
  reader_nesting : int;
  held : string list;
  backtrace : string;
  other_backtrace : string;
}

exception Violation of report

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "lockdep: %s on domain %d" (kind_to_string r.kind)
       r.domain);
  if r.cls <> "" then Buffer.add_string b (Printf.sprintf " (class %s" r.cls);
  if r.other_cls <> "" then
    Buffer.add_string b (Printf.sprintf " vs %s" r.other_cls);
  if r.cls <> "" then Buffer.add_char b ')';
  if r.reader_slot >= 0 || r.reader_nesting > 0 then
    Buffer.add_string b
      (Printf.sprintf "; reader slot %d, read-side nesting %d" r.reader_slot
         r.reader_nesting);
  if r.held <> [] then
    Buffer.add_string b
      (Printf.sprintf "\n  held locks (most recent first): %s"
         (String.concat ", " r.held));
  if r.backtrace <> "" then
    Buffer.add_string b ("\n  at:\n" ^ r.backtrace);
  if r.other_backtrace <> "" then
    Buffer.add_string b
      ("\n  conflicting acquisition first observed at:\n" ^ r.other_backtrace);
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Violation r -> Some (report_to_string r)
    | _ -> None)

let violation_hook = Atomic.make (fun (_ : int) -> ())

let set_violation_hook f = Atomic.set violation_hook f

(* -- per-domain context -- *)

type entry = {
  e_cls : cls;
  e_order : int; (* -1 = unordered acquisition *)
  e_lock : int; (* per-lock identity *)
  e_bt : Printexc.raw_backtrace;
}

type dstate = {
  mutable held : entry list; (* most recent first *)
  mutable rcu_nesting : int;
  mutable rcu_slot : int;
}

let dls =
  Domain.DLS.new_key (fun () ->
      { held = []; rcu_nesting = 0; rcu_slot = -1 })

let state () = Domain.DLS.get dls

let entry_to_string e =
  if e.e_order >= 0 then Printf.sprintf "%s@%d" e.e_cls.c_name e.e_order
  else e.e_cls.c_name

let capture () = Printexc.get_callstack 24
let bt_string bt = Printexc.raw_backtrace_to_string bt

let violate ?(cls_id = 0) ~kind ~cls ~other_cls ~other_bt d =
  let rep =
    {
      kind;
      cls;
      other_cls;
      domain = (Domain.self () :> int);
      reader_slot = (if d.rcu_nesting > 0 then d.rcu_slot else -1);
      reader_nesting = d.rcu_nesting;
      held = List.map entry_to_string d.held;
      backtrace = bt_string (capture ());
      other_backtrace = other_bt;
    }
  in
  Atomic.incr violations_total;
  (Atomic.get violation_hook) cls_id;
  raise (Violation rep)

(* -- class-dependency graph --

   Adjacency matrix plus the backtrace of each edge's first observation.
   Guarded by a private spin on an atomic: this module cannot use the
   instrumented Spinlock (it sits below it), and holding the guard spans
   only bounded matrix/DFS work. Reads of [edges] outside the guard are
   benign races used to skip the common already-recorded case. *)

let edges = Array.make (max_classes * max_classes) false
let edge_bt = Array.make (max_classes * max_classes) ""
let eidx a b = (a * max_classes) + b

let graph_guard = Atomic.make false

let graph_lock () =
  while not (Atomic.compare_and_set graph_guard false true) do
    Domain.cpu_relax ()
  done

let graph_unlock () = Atomic.set graph_guard false

(* Is [target] reachable from [src] along recorded edges? Returns the id
   of [src]'s first step on a witnessing path (for the report's "first
   observed at" backtrace), or None. Called with the graph guard held;
   the matrix is small and acyclic by construction, so a straight DFS is
   plenty. *)
let find_path src target =
  let visited = Array.make max_classes false in
  let rec dfs n =
    n = target
    || (not visited.(n))
       && begin
            visited.(n) <- true;
            let rec scan m =
              m < max_classes && ((edges.(eidx n m) && dfs m) || scan (m + 1))
            in
            scan 0
          end
  in
  let rec first m =
    if m >= max_classes then None
    else if edges.(eidx src m) && (m = target || dfs m) then Some m
    else first (m + 1)
  in
  first 0

(* Record held-class -> acquired-class, checking that the reverse
   direction is not already reachable (which would mean some schedule
   can hold the locks in the opposite order: the ABBA deadlock). *)
let add_edge ~(held : entry) ~(acquiring : cls) ~bt d =
  let a = held.e_cls.c_id and b = acquiring.c_id in
  if not edges.(eidx a b) then begin
    graph_lock ();
    if edges.(eidx a b) then graph_unlock ()
    else begin
      match find_path b a with
      | Some step ->
          let other_bt = edge_bt.(eidx b step) in
          graph_unlock ();
          violate ~cls_id:b ~kind:Dependency_cycle ~cls:acquiring.c_name
            ~other_cls:held.e_cls.c_name ~other_bt d
      | None ->
          edges.(eidx a b) <- true;
          edge_bt.(eidx a b) <- bt_string bt;
          graph_unlock ()
    end
  end

(* -- lock hooks -- *)

let push_checks cls ~id ~order ~blocking d =
  if id > 0 && List.exists (fun e -> e.e_lock = id) d.held then
    violate ~cls_id:cls.c_id ~kind:Recursive_lock ~cls:cls.c_name
      ~other_cls:cls.c_name ~other_bt:"" d;
  if blocking then begin
    if cls.c_ordered && order >= 0 then
      List.iter
        (fun e ->
          if e.e_cls.c_id = cls.c_id && e.e_order >= 0 && e.e_order >= order
          then
            violate ~cls_id:cls.c_id ~kind:Order_inversion ~cls:cls.c_name
              ~other_cls:(entry_to_string e) ~other_bt:(bt_string e.e_bt) d)
        d.held;
    let bt = capture () in
    List.iter
      (fun e -> if e.e_cls.c_id <> cls.c_id then add_edge ~held:e ~acquiring:cls ~bt d)
      d.held
  end

let record_acquire cls ~id ~order ~blocking =
  count_check ();
  let d = state () in
  push_checks cls ~id ~order ~blocking d;
  d.held <- { e_cls = cls; e_order = order; e_lock = id; e_bt = capture () }
            :: d.held

let lock_acquired cls ~id ~order = record_acquire cls ~id ~order ~blocking:true

let trylock_acquired cls ~id ~order =
  record_acquire cls ~id ~order ~blocking:false

let lock_released cls ~id =
  count_check ();
  let d = state () in
  let rec remove = function
    | [] -> None
    | e :: rest when e.e_lock = id && e.e_cls.c_id = cls.c_id -> Some rest
    | e :: rest -> (
        match remove rest with None -> None | Some r -> Some (e :: r))
  in
  match remove d.held with
  | Some held -> d.held <- held
  | None ->
      violate ~cls_id:cls.c_id ~kind:Release_not_held ~cls:cls.c_name
        ~other_cls:"" ~other_bt:"" d

(* -- RCU context hooks -- *)

let rcu_read_enter ~slot =
  count_check ();
  let d = state () in
  d.rcu_nesting <- d.rcu_nesting + 1;
  d.rcu_slot <- slot

let rcu_read_exit () =
  count_check ();
  let d = state () in
  if d.rcu_nesting <= 0 then
    violate ~kind:Unbalanced_read_unlock ~cls:"" ~other_cls:"" ~other_bt:"" d;
  d.rcu_nesting <- d.rcu_nesting - 1

let check_sync () =
  count_check ();
  let d = state () in
  if d.rcu_nesting > 0 then
    violate ~kind:Sync_in_read_section ~cls:"" ~other_cls:"" ~other_bt:"" d

let read_nesting () = (state ()).rcu_nesting

(* -- reset -- *)

let reset () =
  reset_counters ();
  graph_lock ();
  Array.fill edges 0 (Array.length edges) false;
  Array.fill edge_bt 0 (Array.length edge_bt) "";
  graph_unlock ();
  let d = state () in
  d.held <- [];
  d.rcu_nesting <- 0;
  d.rcu_slot <- -1

(* Environment arming, mirroring REPRO_SANITIZE / REPRO_FAULTS: any
   binary can run lockdep-armed without code changes. *)
let () =
  match Sys.getenv_opt "REPRO_LOCKDEP" with
  | Some ("1" | "true" | "yes" | "on") -> arm ()
  | Some _ | None -> ()
