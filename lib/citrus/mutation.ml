(* Mutation suite for the reclamation sanitizer.

   A sanitizer that never fires on correct code proves only half its
   contract; this module proves the other half by running three seeded
   grace-period bugs under the armed sanitizer and demanding a
   [Sanitizer.Violation] within a bounded number of attempts:

   (a) {!skip_sync}        — Citrus over {!Citrus_buggy.Broken_sync}:
       every [synchronize] is a no-op, so two-child deletes (and all
       deferred reclamation) free nodes readers can still reach;
   (b) {!urcu_single_flip} — [Urcu.Buggy.single_flip]: the writer flips
       the phase once instead of twice, so a reader whose phase snapshot
       went stale inside its enter window is missed by every other
       grace period;
   (c) {!qsbr_quiescence}  — [Qsbr.Buggy.quiescent_in_section]: nested
       read-side entries report a fresh quiescent state, releasing any
       scan that was (correctly) waiting for the enclosing section.

   The interleavings that expose (b) and (c) need a reader parked inside
   the vulnerable window while a writer completes a grace period; fault
   points ([urcu.read.enter], [torture.reader.hold], [citrus.read.step])
   with multi-millisecond delays make those windows wide enough for the
   single-core scheduler to hit within a few attempts. Each attempt uses
   a derived seed ([seed + attempt]) so the whole hunt is reproducible.

   {!controls} runs the same configurations with the mutants disabled:
   they must report zero violations, proving the catches above are the
   sanitizer detecting the bug and not noise from the harness. *)

module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Lockdep = Repro_lockdep.Lockdep
module Torture = Repro_rcu.Torture
module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng

type result = {
  mutant : string;
  attempts : int;
  violations : int;
  caught : bool;
}

let pp_result r =
  Printf.sprintf "%-22s %s (attempts=%d violations=%d)" r.mutant
    (if r.caught then "CAUGHT" else "missed")
    r.attempts r.violations

(* The slice of the Citrus interface the hunt needs — every
   Citrus-over-int instantiation matches it, so the driver below runs
   the mutant and its control through the same code. *)
module type TREE = sig
  type 'v t
  type 'v handle

  val create :
    ?max_threads:int -> ?reclamation:bool -> ?call_rcu:bool -> unit -> 'v t

  val register : 'v t -> 'v handle
  val unregister : 'v handle -> unit
  val mem : 'v handle -> int -> bool
  val insert : 'v handle -> int -> 'v -> bool
  val delete : 'v handle -> int -> bool
  val shutdown : 'v t -> unit
end

module Buggy_epoch = Citrus_buggy.Make (Citrus_int.Ord_int) (Repro_rcu.Epoch_rcu)

(* Arm the sanitizer and the fault framework around [f], restoring both:
   the suite runs inside test processes that may not want either left on. *)
let with_armed ~seed f =
  let was = San.enabled () in
  San.arm ();
  Fault.configure ~seed:(Int64.of_int seed) [];
  Fun.protect
    ~finally:(fun () ->
      Fault.disable_all ();
      if not was then San.disarm ())
    f

(* One round of the Citrus hunt: [readers] domains sweep lookups over a
   small key range while the main domain churns delete/insert on every
   key — with reclamation on, each delete retires nodes, and with broken
   grace periods those nodes are reclaimed under the readers' feet. The
   [citrus.read.step] fault parks readers mid-traversal so the reclaim
   lands while the parked reader still holds the node. Returns the
   number of sanitizer violations observed. *)
let citrus_round ?(call_rcu = false) (module T : TREE) ~seed ~keys ~rounds
    ~readers =
  let before = San.violations () in
  let t = T.create ~reclamation:true ~call_rcu () in
  let stop = Atomic.make false in
  let h0 = T.register t in
  for k = 0 to keys - 1 do
    ignore (T.insert h0 k k)
  done;
  let start = Barrier.create (readers + 1) in
  let rdrs =
    List.init readers (fun i ->
        Domain.spawn (fun () ->
            let h = T.register t in
            let rng = Rng.create (Int64.of_int (seed + 31 + i)) in
            Barrier.wait start;
            (try
               while not (Atomic.get stop) do
                 ignore (T.mem h (Rng.int rng keys))
               done
             with San.Violation _ -> Atomic.set stop true);
            T.unregister h))
  in
  Barrier.wait start;
  (try
     for _round = 1 to rounds do
       for k = 0 to keys - 1 do
         if not (Atomic.get stop) then begin
           ignore (T.delete h0 k);
           ignore (T.insert h0 k k)
         end
       done
     done
   with San.Violation _ -> Atomic.set stop true);
  Atomic.set stop true;
  List.iter Domain.join rdrs;
  T.unregister h0;
  (* Join the reclaimer (no-op without call_rcu) before counting: a
     drain-time early free is a catch too. *)
  T.shutdown t;
  San.violations () - before

(* Retry [f attempt] with derived seeds until it reports a violation or
   the attempt budget runs out. *)
let hunt ~mutant ~attempts f =
  let rec go i total =
    if i > attempts then { mutant; attempts; violations = total; caught = false }
    else
      let v = f i in
      if v > 0 then
        { mutant; attempts = i; violations = total + v; caught = true }
      else go (i + 1) total
  in
  go 1 0

let skip_sync_name = "citrus-skip-synchronize"

let citrus_hunt (module T : TREE) ~mutant ~seed ~attempts ~rounds =
  hunt ~mutant ~attempts (fun i ->
      with_armed ~seed:(seed + i) (fun () ->
          Fault.set "citrus.read.step" ~rate:0.005
            ~action:(Fault.Delay_ns 2_000_000);
          citrus_round (module T) ~seed:(seed + i) ~keys:64 ~rounds ~readers:2))

let skip_sync ?(seed = 42) ?(attempts = 6) () =
  citrus_hunt (module Buggy_epoch) ~mutant:skip_sync_name ~seed ~attempts
    ~rounds:40

let early_free_name = "reclaimer-early-free"

(* (d) {!early_free} — [Reclaimer.Buggy.early_free]: the background
   reclaimer frees retired pointers without waiting on their grace-period
   cookies, the exact bug the epoch tags exist to prevent. Same hunt
   shape as skip_sync but over a correct tree with call_rcu on: the only
   broken component is the reclaimer's cookie discipline. *)
let early_free ?(seed = 42) ?(attempts = 6) () =
  hunt ~mutant:early_free_name ~attempts (fun i ->
      Repro_rcu.Reclaimer.Buggy.early_free true;
      Fun.protect
        ~finally:(fun () -> Repro_rcu.Reclaimer.Buggy.early_free false)
        (fun () ->
          with_armed ~seed:(seed + i) (fun () ->
              Fault.set "citrus.read.step" ~rate:0.005
                ~action:(Fault.Delay_ns 2_000_000);
              citrus_round ~call_rcu:true (module Citrus_int.Epoch)
                ~seed:(seed + i) ~keys:64 ~rounds:40 ~readers:2)))

(* Torture configuration shared by the urcu and qsbr hunts: few slots so
   writers keep retiring what readers hold, delays on, sanitizer on, and
   millisecond parks at the flavour's vulnerable window. *)
let torture_cfg ~nest ~updates ~faults =
  {
    Torture.default with
    readers = 2;
    writers = 2;
    slots = 2;
    updates_per_writer = updates;
    nest;
    reader_delay = true;
    sanitize = true;
    faults;
  }

let hold_fault = ("torture.reader.hold", 0.25, Some (Fault.Delay_ns 3_000_000))

let urcu_single_flip_name = "urcu-single-flip"

(* The single-flip bug only fires when a grace period completes inside a
   reader's load-phase-to-publish-slot window, which on one core needs
   the scheduler to preempt the parked reader and run a writer. Busy
   waits shorter than a scheduler slice are rarely preempted, so these
   parks are long (well past typical CFS granularity) and rare. *)
let urcu_single_flip ?(seed = 42) ?(attempts = 8) () =
  let cfg =
    torture_cfg ~nest:false ~updates:400
      ~faults:
        [
          ("urcu.read.enter", 0.15, Some (Fault.Delay_ns 20_000_000));
          ("torture.reader.hold", 0.15, Some (Fault.Delay_ns 20_000_000));
        ]
  in
  hunt ~mutant:urcu_single_flip_name ~attempts (fun i ->
      Repro_rcu.Urcu.Buggy.single_flip true;
      let out =
        Fun.protect
          ~finally:(fun () -> Repro_rcu.Urcu.Buggy.single_flip false)
          (fun () -> Torture.run_flavour ~seed:(seed + i) "urcu" cfg)
      in
      out.Torture.violations)

let qsbr_quiescence_name = "qsbr-quiescent-in-section"

let qsbr_quiescence ?(seed = 42) ?(attempts = 8) () =
  let cfg = torture_cfg ~nest:true ~updates:120 ~faults:[ hold_fault ] in
  hunt ~mutant:qsbr_quiescence_name ~attempts (fun i ->
      Repro_rcu.Qsbr.Buggy.quiescent_in_section true;
      let out =
        Fun.protect
          ~finally:(fun () -> Repro_rcu.Qsbr.Buggy.quiescent_in_section false)
          (fun () -> Torture.run_flavour ~seed:(seed + i) "qsbr" cfg)
      in
      out.Torture.violations)

let all ?seed ?attempts () =
  [
    skip_sync ?seed ?attempts ();
    early_free ?seed ?attempts ();
    urcu_single_flip ?seed ?attempts ();
    qsbr_quiescence ?seed ?attempts ();
  ]

(* --- Lockdep mutation suite ---

   The sanitizer hunts above chase scheduling races; the lockdep bugs are
   control-flow, so one single-domain round is deterministic: the seeded
   bug either trips the validator on its first execution or the validator
   is broken. No retries, no fault injection, attempts = 1 by
   construction. *)

(* One round of tree operations covering every locking-protocol site a
   seeded bug corrupts: inserts (prev lock + release), a two-child delete
   (the full prev/curr/succ/copy lock ladder and the grace-period wait),
   then the remaining deletes and a lookup's read-side section. The round
   stops at the first [Lockdep.Violation]: a caught violation leaves the
   involved node locks (deliberately) wedged, so continuing would only
   report echoes of the same bug. The tree is discarded; the caller
   resets lockdep's held-stack state afterwards. *)
let lockdep_round (module T : TREE) ~reclamation =
  let t = T.create ~reclamation () in
  let h = T.register t in
  (try
     ignore (T.insert h 2 2);
     ignore (T.insert h 1 1);
     ignore (T.insert h 3 3);
     ignore (T.mem h 1);
     (* Key 2 has two children: the successor path and the synchronize. *)
     ignore (T.delete h 2);
     ignore (T.delete h 1);
     ignore (T.delete h 3)
   with Lockdep.Violation _ -> ());
  (* Read-side nesting is always unwound by the time a violation
     propagates here (Fun.protect in the update paths), so unregistering
     is safe even after a catch. *)
  T.unregister h

(* Arm lockdep around one clean-slate round with [set_bug] switched on,
   restoring both; the count is a delta off a freshly reset validator. *)
let lockdep_hunt ~mutant ~set_bug =
  Lockdep.reset ();
  let was = Lockdep.enabled () in
  Lockdep.arm ();
  let v =
    Fun.protect
      ~finally:(fun () ->
        set_bug false;
        if not was then Lockdep.disarm ();
        Lockdep.reset ())
      (fun () ->
        set_bug true;
        lockdep_round (module Citrus_int.Epoch) ~reclamation:false;
        Lockdep.violations ())
  in
  { mutant; attempts = 1; violations = v; caught = v > 0 }

let lockdep_abba_name = "lockdep-abba-delete"
let lockdep_sync_in_read_name = "lockdep-sync-in-read"
let lockdep_unbalanced_name = "lockdep-unbalanced-unlock"

let lockdep_abba () =
  lockdep_hunt ~mutant:lockdep_abba_name ~set_bug:Citrus.Buggy.abba_delete

let lockdep_sync_in_read () =
  lockdep_hunt ~mutant:lockdep_sync_in_read_name
    ~set_bug:Citrus.Buggy.sync_in_read

let lockdep_unbalanced_unlock () =
  lockdep_hunt ~mutant:lockdep_unbalanced_name
    ~set_bug:Citrus.Buggy.unbalanced_unlock

let lockdep_all () =
  [ lockdep_abba (); lockdep_sync_in_read (); lockdep_unbalanced_unlock () ]

(* Clean lockdep-armed rounds over all three flavours, with reclamation
   on so the successor walk's read section, the deferred queues and the
   drain-time grace periods are all validated too: the full locking
   protocol must be silent. *)
let lockdep_controls () =
  let flavoured name (module T : TREE) =
    Lockdep.reset ();
    let was = Lockdep.enabled () in
    Lockdep.arm ();
    let v =
      Fun.protect
        ~finally:(fun () ->
          if not was then Lockdep.disarm ();
          Lockdep.reset ())
        (fun () ->
          lockdep_round (module T) ~reclamation:true;
          Lockdep.violations ())
    in
    {
      mutant = "control:lockdep-" ^ name;
      attempts = 1;
      violations = v;
      caught = v > 0;
    }
  in
  [
    flavoured "epoch" (module Citrus_int.Epoch);
    flavoured "urcu" (module Citrus_int.Urcu);
    flavoured "qsbr" (module Citrus_int.Qsbr);
  ]

(* The same three configurations with every mutant disabled. Shorter
   runs: a control only has to show the harness is quiet on correct
   code, not hunt for a rare interleaving. *)
let controls ?(seed = 42) () =
  let control name violations =
    { mutant = "control:" ^ name; attempts = 1; violations;
      caught = violations > 0 }
  in
  let citrus =
    with_armed ~seed (fun () ->
        Fault.set "citrus.read.step" ~rate:0.005
          ~action:(Fault.Delay_ns 2_000_000);
        citrus_round (module Citrus_int.Epoch) ~seed ~keys:64 ~rounds:4
          ~readers:2)
  in
  let call_rcu =
    (* The early-free control: identical hunt configuration, correct
       reclaimer — the cookie wait must keep the sanitizer silent. *)
    with_armed ~seed (fun () ->
        Fault.set "citrus.read.step" ~rate:0.005
          ~action:(Fault.Delay_ns 2_000_000);
        citrus_round ~call_rcu:true (module Citrus_int.Epoch) ~seed ~keys:64
          ~rounds:4 ~readers:2)
  in
  let urcu =
    Torture.run_flavour ~seed "urcu"
      (torture_cfg ~nest:false ~updates:60
         ~faults:
           [
             ("urcu.read.enter", 0.1, Some (Fault.Delay_ns 20_000_000));
             ("torture.reader.hold", 0.1, Some (Fault.Delay_ns 20_000_000));
           ])
  in
  let qsbr =
    Torture.run_flavour ~seed "qsbr"
      (torture_cfg ~nest:true ~updates:60 ~faults:[ hold_fault ])
  in
  [
    control skip_sync_name citrus;
    control early_free_name call_rcu;
    control urcu_single_flip_name urcu.Torture.violations;
    control qsbr_quiescence_name qsbr.Torture.violations;
  ]
