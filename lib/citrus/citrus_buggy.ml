(* Test-only seeded mutant: Citrus over an RCU flavour whose grace
   periods are no-ops. Exists solely so the mutation suite
   ([Mutation], [citrus_tool mutants]) can prove the reclamation
   sanitizer detects the resulting premature reclamation. Never use in
   production code or benchmarks. *)

(* The wrapped flavour answers every grace-period question with "already
   elapsed": [synchronize] returns immediately and [poll] is always true,
   so [Defer] elides every wait and retired nodes are reclaimed while
   pre-existing readers can still reach them — the exact bug class the
   two-child delete's [synchronize] (paper, Section 4) exists to prevent.
   Read-side tracking is inherited unchanged, which matters: the readers
   are innocent, and the sanitizer report must blame the reclaimer. *)
module Broken_sync (R : Repro_rcu.Rcu.S) : Repro_rcu.Rcu.S = struct
  include R

  let name = R.name ^ "+broken-sync"
  let synchronize _ = ()
  let poll _ _ = true
  let cond_synchronize _ _ = ()
end

module Make (K : Citrus.ORDERED) (R : Repro_rcu.Rcu.S) =
  Citrus.Make (K) (Broken_sync (R))
