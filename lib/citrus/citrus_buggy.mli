(** Test-only seeded mutant — {b never use outside the mutation suite}.

    {!Make} builds a Citrus tree whose RCU flavour has a broken grace
    period: [synchronize] returns immediately and [poll] always claims
    the grace period elapsed, so deferred reclamation frees nodes while
    pre-existing readers can still reach them. This is mutant (a) of the
    mutation suite ([Mutation]): a run of it under the armed reclamation
    sanitizer must raise [Sanitizer.Violation], proving the sanitizer
    actually detects the bug class the two-child delete's [synchronize]
    prevents. *)

module Broken_sync (R : Repro_rcu.Rcu.S) : Repro_rcu.Rcu.S
(** [R] with no-op grace periods ([synchronize] = nothing, [poll] =
    always true); read-side tracking inherited unchanged. *)

module Make (K : Citrus.ORDERED) (R : Repro_rcu.Rcu.S) : sig
  include module type of Citrus.Make (K) (Broken_sync (R))
end
