(** Citrus: an internal binary search tree with RCU-protected wait-free
    [contains] and fine-grained-locked concurrent updates (Arbel & Attiya,
    PODC 2014).

    The implementation is a direct transcription of the paper's pseudocode
    (functions [get], [contains], [insert], [delete], [validate],
    [incrementTag]); see the .ml for the line-number correspondence.

    Concurrency contract:
    - [contains] is wait-free (assuming finitely many keys) and runs inside
      an RCU read-side critical section;
    - [insert]/[delete] lock only the O(1) nodes they modify, validate them,
      and restart on validation failure;
    - a [delete] of a node with two children first publishes a {e copy} of
      the successor in the deleted node's position, waits for pre-existing
      readers with [synchronize_rcu], and only then unlinks the original
      successor — so a search in flight never misses the successor.

    Each participating domain must {!Make.register} to obtain a handle; all
    dictionary operations go through handles. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

(** Mutation-testing hooks for the lockdep validator (see ROBUSTNESS.md
    and {!Mutation}): each switch seeds one locking-protocol bug into the
    real update paths of {e every} [Make] instantiation. A lockdep-armed
    run must report each as a structured [Repro_lockdep.Lockdep.Violation];
    disarmed, [abba_delete] and [sync_in_read] genuinely deadlock, so
    these are only ever set by the single-domain, lockdep-armed mutation
    hunts. Never set outside the mutation suite. *)
module Buggy : sig
  val abba_delete : bool -> unit
  (** [delete] takes curr's lock before prev's — the inverted-order half
      of an ABBA deadlock ([Order_inversion]). *)

  val sync_in_read : bool -> unit
  (** The two-child delete issues its grace-period wait from inside a
      read-side critical section ([Sync_in_read_section]). *)

  val unbalanced_unlock : bool -> unit
  (** [insert]'s success path unlocks the root's lock — never taken by
      the caller — instead of prev's ([Release_not_held]). *)
end

module Make (K : ORDERED) (R : Repro_rcu.Rcu.S) : sig
  type 'v t
  (** A Citrus tree mapping keys [K.t] to values ['v]. *)

  type 'v handle
  (** Per-domain access handle (carries the RCU thread state). *)

  val create :
    ?max_threads:int -> ?reclamation:bool -> ?call_rcu:bool -> unit -> 'v t
  (** An empty tree whose RCU domain admits up to [max_threads] registered
      domains (default 128).

      [reclamation] (default false) enables the paper's "future work"
      integration of RCU-based memory reclamation: every node removed by a
      delete is {e retired} through a per-handle deferred queue and
      poisoned one grace period after it becomes unreachable — the moment a
      C implementation would [free] it. Searches check the poison flag, so
      the ["use_after_reclaim"] statistic counts would-be use-after-free
      accesses (it must stay 0; the test-suite asserts this under stress).
      With reclamation on, the successor walk of a two-child delete runs
      inside a read-side critical section — the paper omits this because it
      never frees memory during runs.

      When the reclamation sanitizer ([Repro_sanitizer.Sanitizer]) is
      armed, retired nodes additionally carry shadow records and every
      traversal step checks them: a search that touches a node after its
      grace-period-protected reclamation raises [Sanitizer.Violation] out
      of [contains]/[mem] (read sections unwind cleanly; node-lock-holding
      paths record the violation without raising). See ROBUSTNESS.md.

      [call_rcu] (default {!Repro_rcu.Reclaimer.call_rcu_enabled}) spawns
      a background reclaimer domain for this tree and takes the
      grace-period wait off the updater hot path: a two-child [delete]
      returns as soon as the successor copy is published, handing the
      wait-then-unlink continuation (with the node locks still held, so
      the protocol other threads observe is unchanged) to the reclaimer;
      [retire]d nodes likewise go to an epoch-tagged bag instead of a
      blocking deferred queue. A tree created with [call_rcu:true] owns a
      domain and must be {!shutdown}. *)

  val register : 'v t -> 'v handle
  (** Register the calling domain. One handle per domain per tree. *)

  val unregister : 'v handle -> unit

  val contains : 'v handle -> K.t -> 'v option
  (** Wait-free lookup: [Some v] if the key is present. *)

  val mem : 'v handle -> K.t -> bool

  val insert : 'v handle -> K.t -> 'v -> bool
  (** Add the binding; [false] (and no change) if the key is present. *)

  val delete : 'v handle -> K.t -> bool
  (** Remove the binding; [false] if the key is absent. *)

  val shutdown : 'v t -> unit
  (** Stop and join the tree's background reclaimer domain (no-op without
      one): every pending call_rcu continuation — unlinks and frees —
      runs before this returns. Call it once all operations are done,
      and {e before} any quiescent-state helper below: while an async
      delete is in flight the tree legitimately holds a locked reachable
      copy and a duplicate key, which {!check_invariants} would report.
      Idempotent. *)

  (** {2 Quiescent-state helpers}

      The following must only be called while no other operation is in
      flight and, on a [call_rcu] tree, after {!shutdown} (tests,
      reporting). *)

  val size : 'v t -> int
  val to_list : 'v t -> (K.t * 'v) list
  (** In-order (hence sorted) bindings. *)

  val height : 'v t -> int
  (** Height of the tree counted in real (non-sentinel) nodes. *)

  exception Invariant_violation of string

  val check_invariants : 'v t -> unit
  (** Verify in a quiescent state: strict BST order with sentinel bounds, no
      reachable marked node, no duplicate keys, all node locks free.
      @raise Invariant_violation otherwise. *)

  val stats : 'v t -> (string * int) list
  (** Operation counters: restarts, two-child deletes, one-child deletes,
      inserts, reclaimed nodes, use-after-reclaim detections (must be 0),
      maintenance rotations, and grace periods. A [call_rcu] tree adds
      its reclaimer's counters (reclaim_batches, reclaimer_crashes,
      reclaim_backpressure, reclaim_pending). *)

  val reclaim_pressure : 'v t -> float
  (** Backlog pressure of the tree's call_rcu reclaimer
      ([Repro_rcu.Reclaimer.Make.pressure]): 0.0 without a reclaimer or
      when idle, 1.0 when the fullest retired bag reaches its watermark.
      Racy snapshot, safe to poll concurrently — the serving layer's
      admission control reads it per drain batch (SERVING.md). *)

  val with_reader : 'v handle -> (unit -> 'a) -> 'a
  (** Run [f] inside one read-side critical section on [h]'s slot —
      every grace period started while [f] runs waits for it to return.
      The chaos harness's stall-injection seam ([citrus_tool chaos
      --stall-reader]); [f] must not call operations on the same handle
      that wait for a grace period. The section is exited even when [f]
      raises. *)

  (** {2 Maintenance rebalancing}

      The paper's first future-work item ("extend Citrus to a balanced
      search tree"), implemented as {e relativistic maintenance}: a
      rotation marks the sinking node, installs an unmarked copy of it
      below the rising child, and swings one parent pointer — so searches
      in flight keep a consistent obsolete view without any grace period,
      and concurrent updates restart through the ordinary marked-bit
      validation. Rotations may run concurrently with any mix of
      operations, from a dedicated maintenance domain or opportunistically.

      The maintenance walk reads the tree without locks; with reclamation
      enabled it may traverse already-retired nodes, which is safe under
      the GC (a C port would protect the walk with hazard pointers). *)

  val maintenance_pass : 'v handle -> int
  (** One post-order pass: estimate subtree heights and rotate every node
      whose local imbalance exceeds one. Returns the number of rotations
      performed. Safe concurrently with all other operations. *)

  val balance : ?max_passes:int -> 'v handle -> int
  (** Run {!maintenance_pass} until a pass performs no rotation (or
      [max_passes], default 64, is reached); returns total rotations. On a
      quiescent tree this restores logarithmic height. *)

  (** {2 Test hooks}

      Interleaving-forcing callbacks for the concurrency test-suite; all
      default to no-ops and must be set before concurrent use. *)

  module Hooks : sig
    val on_restart : 'v t -> (unit -> unit) -> unit
    (** Runs every time an update fails validation and restarts. *)

    val between_get_and_lock : 'v t -> (unit -> unit) -> unit
    (** Runs in updates after the read-side critical section ends and before
        locks are taken — the window in which a conflicting update can slip
        in (Figure 5). *)

    val after_find_successor : 'v t -> (unit -> unit) -> unit
    (** Runs in two-child deletes after the successor walk (lines 58-64)
        and before the successor is locked — the window in which a
        conflicting update can invalidate the successor (the validation of
        line 69). The caller holds the locks on prev and curr here. *)

    val before_synchronize : 'v t -> (unit -> unit) -> unit
    (** Runs in two-child deletes after the successor copy is published and
        before [synchronize_rcu] (between Figures 3(d) and 3(e)). *)
  end
end
