(* Pure fragments of the Citrus algorithm, shared between the real tree
   (citrus.ml) and the model checker's 2-reader/1-updater model
   (lib/modelcheck/models.ml) — the same reason Protocol exists for the
   RCU flavours: the model must traverse and validate with the *same*
   direction and validation logic as the code it checks. *)

let left = 0
let right = 1

(* Search direction from a three-way comparison of node key vs search
   key (paper line 7): node key greater -> left, else right. *)
let dir_of_cmp cmp = if cmp > 0 then left else right

(* validate (paper lines 33-38), on pre-extracted observations:
   [prev_marked] and [child_same] kill the validation outright; with a
   present [curr] only its mark matters; with an absent one the ABA tag
   must not have moved ([tag_now] is a thunk so the tag is only read on
   the path that needs it, as in the original). *)
let validate ~prev_marked ~child_same ~curr_marked ~tag ~tag_now =
  if prev_marked || not child_same then false
  else
    match curr_marked with
    | Some marked -> not marked
    | None -> tag_now () = tag
