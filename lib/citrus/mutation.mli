(** Mutation suite: prove the reclamation sanitizer detects real bugs.

    Each hunt runs a seeded grace-period bug under the armed sanitizer
    ([Repro_sanitizer.Sanitizer]) with fault-injection delays widening
    the vulnerable windows, retrying with derived seeds until a
    [Sanitizer.Violation] is observed or the attempt budget runs out.
    {!controls} replays the same configurations without the mutants and
    must report zero violations. [citrus_tool mutants] and the test
    suite drive both and fail if any mutant escapes or any control
    trips. *)

type result = {
  mutant : string;  (** which seeded bug (or ["control:..."]) *)
  attempts : int;  (** attempts used (the catching one, or the budget) *)
  violations : int;  (** total sanitizer violations observed *)
  caught : bool;  (** true iff at least one violation was raised *)
}

val pp_result : result -> string
(** One-line human-readable summary. *)

val skip_sync : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (a): Citrus over {!Citrus_buggy.Broken_sync} — [synchronize]
    is a no-op, so the two-child delete's grace period (and all deferred
    reclamation) is skipped and retired nodes are freed while parked
    readers still hold them. *)

val early_free : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (d): [Repro_rcu.Reclaimer.Buggy.early_free] — the background
    call_rcu reclaimer frees retired pointers without waiting on their
    epoch cookies, over an otherwise-correct tree with [call_rcu] on.
    The exact bug the epoch-tagged bags exist to prevent. *)

val urcu_single_flip : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (b): [Repro_rcu.Urcu.Buggy.single_flip] — the grace period
    flips the reader phase once instead of twice, missing readers whose
    phase snapshot went stale between loading the phase and publishing
    their slot (forced by the [urcu.read.enter] fault point). *)

val qsbr_quiescence : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (c): [Repro_rcu.Qsbr.Buggy.quiescent_in_section] — a nested
    read-side entry reports a fresh quiescent state, releasing a
    grace-period scan that was correctly waiting out the enclosing
    section. *)

val all : ?seed:int -> ?attempts:int -> unit -> result list
(** The four mutants, in order (a), (d), (b), (c). Every [caught] must
    be true. *)

val controls : ?seed:int -> unit -> result list
(** The same configurations with the mutants disabled; every
    [violations] must be 0. *)

(** {2 Lockdep mutants}

    Same contract for the lockdep validator ([Repro_lockdep.Lockdep]):
    three locking-protocol bugs seeded into the real Citrus update paths
    ({!Citrus.Buggy}) must each raise a structured [Lockdep.Violation].
    Unlike the sanitizer hunts, these are control-flow bugs — one
    single-domain round is deterministic, so every hunt uses exactly one
    attempt and needs no fault injection. *)

val lockdep_abba : unit -> result
(** [delete] takes curr's lock before prev's: [Order_inversion] on the
    ordered tree-node class, flagged at the second acquisition. *)

val lockdep_sync_in_read : unit -> result
(** The two-child delete waits for a grace period from inside a
    read-side critical section: [Sync_in_read_section]. *)

val lockdep_unbalanced_unlock : unit -> result
(** [insert] unlocks a lock the caller never took: [Release_not_held]. *)

val lockdep_all : unit -> result list
(** The three lockdep mutants, in the order above. Every [caught] must
    be true. *)

val lockdep_controls : unit -> result list
(** Clean lockdep-armed rounds (reclamation on) over all three RCU
    flavours; every [violations] must be 0. *)
