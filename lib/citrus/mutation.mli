(** Mutation suite: prove the reclamation sanitizer detects real bugs.

    Each hunt runs a seeded grace-period bug under the armed sanitizer
    ([Repro_sanitizer.Sanitizer]) with fault-injection delays widening
    the vulnerable windows, retrying with derived seeds until a
    [Sanitizer.Violation] is observed or the attempt budget runs out.
    {!controls} replays the same configurations without the mutants and
    must report zero violations. [citrus_tool mutants] and the test
    suite drive both and fail if any mutant escapes or any control
    trips. *)

type result = {
  mutant : string;  (** which seeded bug (or ["control:..."]) *)
  attempts : int;  (** attempts used (the catching one, or the budget) *)
  violations : int;  (** total sanitizer violations observed *)
  caught : bool;  (** true iff at least one violation was raised *)
}

val pp_result : result -> string
(** One-line human-readable summary. *)

val skip_sync : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (a): Citrus over {!Citrus_buggy.Broken_sync} — [synchronize]
    is a no-op, so the two-child delete's grace period (and all deferred
    reclamation) is skipped and retired nodes are freed while parked
    readers still hold them. *)

val urcu_single_flip : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (b): [Repro_rcu.Urcu.Buggy.single_flip] — the grace period
    flips the reader phase once instead of twice, missing readers whose
    phase snapshot went stale between loading the phase and publishing
    their slot (forced by the [urcu.read.enter] fault point). *)

val qsbr_quiescence : ?seed:int -> ?attempts:int -> unit -> result
(** Mutant (c): [Repro_rcu.Qsbr.Buggy.quiescent_in_section] — a nested
    read-side entry reports a fresh quiescent state, releasing a
    grace-period scan that was correctly waiting out the enclosing
    section. *)

val all : ?seed:int -> ?attempts:int -> unit -> result list
(** The three mutants, in order (a), (b), (c). Every [caught] must be
    true. *)

val controls : ?seed:int -> unit -> result list
(** The same configurations with the mutants disabled; every
    [violations] must be 0. *)
