(** Pure fragments of the Citrus algorithm shared with the model checker
    (lib/modelcheck): child indices, search direction, and the validate
    predicate, as total functions on plain values. *)

val left : int
val right : int

val dir_of_cmp : int -> int
(** Direction from a three-way comparison of node key vs search key:
    positive (node key greater) -> {!left}, otherwise {!right}. *)

val validate :
  prev_marked:bool ->
  child_same:bool ->
  curr_marked:bool option ->
  tag:int ->
  tag_now:(unit -> int) ->
  bool
(** validate (paper lines 33-38). [curr_marked] is [None] when [curr]
    is absent, in which case the ABA [tag] is compared against
    [tag_now ()] (a thunk: only read on that path). *)
