module Spinlock = Repro_sync.Spinlock
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Lockdep = Repro_lockdep.Lockdep

(* The delete-with-two-children window (paper, Section 4): between
   publishing the successor copy and unlinking the original, readers can
   see the key twice. Stretching this window is how fault runs shake out
   ordering bugs, so it gets its own injection point. Registered outside
   the functor: one point shared by every instantiation. *)
let fault_delete_window = Fault.register "citrus.delete.window"

(* Fires at every node visit of the wait-free search, while the traversal
   holds only the read lock (never node locks, so a [raise] action unwinds
   cleanly through the Fun.protect). Parking a reader mid-traversal with a
   delay action is how the mutation suite makes a broken grace period
   reclaim the very node the reader stands on. *)
let fault_read_step = Fault.register "citrus.read.step"

(* Mutation-testing hooks for the lockdep validator (see ROBUSTNESS.md and
   lib/citrus/mutation.ml): each seeds one locking-protocol bug into the
   real update paths — an inverted lock order in delete, a grace-period
   wait from inside a read-side critical section, and an unlock of a lock
   the caller never took. A lockdep-armed run must turn each into a
   structured [Lockdep.Violation]; a disarmed ABBA delete would deadlock
   and a disarmed sync-in-read would self-deadlock, so these are only ever
   set by the single-domain, lockdep-armed mutation hunts. Registered
   outside the functor, like the fault points: one switch per bug shared
   by every instantiation. *)
let abba_delete_bug = Atomic.make false
let sync_in_read_bug = Atomic.make false
let unbalanced_unlock_bug = Atomic.make false

module Buggy = struct
  let abba_delete b = Atomic.set abba_delete_bug b
  let sync_in_read b = Atomic.set sync_in_read_bug b
  let unbalanced_unlock b = Atomic.set unbalanced_unlock_bug b
end

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

(* Directions double as indices into the [children]/[tags] arrays, mirroring
   the paper's child[direction]. *)
(* Child indices and the pure traversal/validation fragments live in
   Citrus_proto, shared with the model checker (lib/modelcheck). *)
let left = Citrus_proto.left
let right = Citrus_proto.right

module Make (K : ORDERED) (R : Repro_rcu.Rcu.S) = struct
  module Defer = Repro_rcu.Defer.Make (R)
  module Rec = Repro_rcu.Reclaimer.Make (R)

  (* One *ordered* lockdep class for every node lock of every tree built
     from this instantiation. The locking protocol (paper, Section 3) only
     ever takes node locks top-down along one search path, so each
     acquisition carries its depth-rank as the order token:
     prev=0, curr=1, prev_succ=2, succ=3, freshly published copy=4 (and
     p=0, n=1, c=2 in rotations). Armed, lockdep flags any acquisition
     whose rank does not exceed every held rank in this class — the ABBA
     schedule — on its *first* occurrence, before the schedule has to
     actually deadlock against a second domain. *)
  let node_cls =
    Lockdep.new_class ~ordered:true Lockdep.Tree_node ("citrus/" ^ R.name)

  (* Sentinel keys: the paper's -1 / infinity dummies (Section 2). The root
     holds Neg_inf; its right child holds Pos_inf; every real node lives in
     the left subtree of the Pos_inf node. *)
  type skey = Neg_inf | Key of K.t | Pos_inf

  let compare_skey a b =
    match (a, b) with
    | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
    | Neg_inf, _ | _, Pos_inf -> -1
    | _, Neg_inf | Pos_inf, _ -> 1
    | Key x, Key y -> K.compare x y

  type 'v node = {
    key : skey; (* never changes (Section 2) *)
    value : 'v option; (* None only in sentinels; never changes *)
    children : 'v node option Atomic.t array; (* length 2: left, right *)
    tags : 'v tag_array; (* per-child ABA tags, length 2 *)
    mutable marked : bool; (* accessed only under [lock] *)
    lock : Spinlock.t;
    mutable reclaimed : bool;
        (* Set by deferred reclamation one grace period after the node is
           unlinked; a reader observing it has found a use-after-free. *)
    mutable shadow : San.record option;
        (* Reclamation-sanitizer record, attached by [retire] while the
           sanitizer is armed; None otherwise. *)
  }

  and 'v tag_array = int Atomic.t array
  (* Tags are atomics because get reads prev.tag[dir] inside the read-side
     critical section while updates increment it under the node lock. *)

  type hooks = {
    mutable on_restart : unit -> unit;
    mutable between_get_and_lock : unit -> unit;
    mutable after_find_successor : unit -> unit;
    mutable before_synchronize : unit -> unit;
  }

  type 'v t = {
    root : 'v node;
    rcu : R.t;
    reclamation : bool;
    reclaimer : Rec.t option;
        (* Some iff the tree was created under the call_rcu discipline:
           two-child deletes hand their grace-period-then-unlink
           continuation to this background domain instead of blocking
           inline, and [retire] (with [reclamation]) routes through its
           bags instead of [Defer]. *)
    self_bag : Rec.producer option;
        (* Retired bag owned by the reclaimer domain itself: unlink
           continuations running there retire the unlinked successor
           into it (a fresh post-unlink cookie) instead of blocking the
           reclaimer on a second grace period. *)
    san : San.domain;
    hooks : hooks;
    group : Stats.group;
    restarts : Stats.t;
    inserts : Stats.t;
    deletes_one_child : Stats.t;
    deletes_two_children : Stats.t;
    reclaimed_nodes : Stats.t;
    use_after_reclaim : Stats.t;
    rotations : Stats.t;
    handle_ids : int Atomic.t;
  }

  type 'v handle = {
    tree : 'v t;
    rt : R.thread;
    id : int;
    defer : Defer.t option;
        (* Some iff the tree has reclamation on and no reclaimer (the
           inline-synchronize configuration) *)
    bag : Rec.producer option; (* Some iff the tree has a reclaimer *)
  }

  let new_node key value =
    {
      key;
      value;
      children = [| Atomic.make None; Atomic.make None |];
      tags = [| Atomic.make 0; Atomic.make 0 |];
      marked = false;
      lock = Spinlock.create ~cls:node_cls ();
      reclaimed = false;
      shadow = None;
    }

  let create ?max_threads ?(reclamation = false)
      ?(call_rcu = Repro_rcu.Reclaimer.call_rcu_enabled ()) () =
    let infinity_node = new_node Pos_inf None in
    let root = new_node Neg_inf None in
    Atomic.set root.children.(right) (Some infinity_node);
    let rcu = R.create ?max_threads () in
    (* The reclaimer is per tree instance (one background domain per
       [R.t]); [shutdown] stops and joins it. *)
    let reclaimer = if call_rcu then Some (Rec.create rcu) else None in
    let self_bag = Option.map Rec.new_producer reclaimer in
    let group = Stats.group () in
    (* Bind counters outside the record literal: field evaluation order is
       unspecified, and the group dumps in creation order. *)
    let restarts = Stats.counter group "restarts" in
    let inserts = Stats.counter group "inserts" in
    let deletes_one_child = Stats.counter group "deletes_one_child" in
    let deletes_two_children = Stats.counter group "deletes_two_children" in
    let reclaimed_nodes = Stats.counter group "reclaimed" in
    let use_after_reclaim = Stats.counter group "use_after_reclaim" in
    let rotations = Stats.counter group "rotations" in
    {
      root;
      rcu;
      reclamation;
      reclaimer;
      self_bag;
      san = San.create ("citrus/" ^ R.name);
      hooks =
        {
          on_restart = ignore;
          between_get_and_lock = ignore;
          after_find_successor = ignore;
          before_synchronize = ignore;
        };
      group;
      restarts;
      inserts;
      deletes_one_child;
      deletes_two_children;
      reclaimed_nodes;
      use_after_reclaim;
      rotations;
      handle_ids = Atomic.make 0;
    }

  let register tree =
    {
      tree;
      rt = R.register tree.rcu;
      id = Atomic.fetch_and_add tree.handle_ids 1;
      defer =
        (if tree.reclamation && Option.is_none tree.reclaimer then
           Some (Defer.create tree.rcu)
         else None);
      bag = Option.map Rec.new_producer tree.reclaimer;
    }

  let unregister h =
    (* [drain], not [flush]: reclamation callbacks may retire further
       nodes, and a queue shorter than the batch must not leak when the
       thread leaves. *)
    (match h.defer with Some d -> Defer.drain d | None -> ());
    R.unregister h.rt

  (* Armed sanitizer: give the node a shadow record now, so every
     traversal that touches it from here on is checked. The deferral
     machinery carries it through Deferred (at enqueue) and Reclaimed
     (when the callback runs after its grace period). *)
  let new_shadow t node =
    if San.enabled () then begin
      let s = San.register t.san in
      node.shadow <- Some s;
      Some s
    end
    else None

  (* Retire an unlinked node: one grace period later no reader can hold it,
     so it is safe to poison (standing in for free()). A reader that later
     observes the poison has found a use-after-free — the detection scheme
     behind the reclamation tests. With a reclaimer the poison is handed to
     [call_rcu] (background free); otherwise to the handle's [Defer] queue
     (the retiring thread pays the grace period at flush). *)
  let retire h node =
    let t = h.tree in
    let id = h.id in
    let poison () =
      node.reclaimed <- true;
      Stats.incr t.reclaimed_nodes id
    in
    match (t.reclaimer, h.bag) with
    | Some rc, Some bag when t.reclamation ->
        let shadow = new_shadow t node in
        Rec.call_rcu rc bag ?shadow poison
    | _ -> (
        match h.defer with
        | None -> ()
        | Some d ->
            let shadow = new_shadow t node in
            Defer.defer d ?shadow poison)

  (* Restarts are double-booked: in the tree's own stats group (per-tree
     diagnostics) and in the process-global metrics/trace (workload-level
     JSON reports). *)
  let note_restart t h =
    Stats.incr t.restarts h.id;
    if Metrics.enabled () then Stats.incr Metrics.restarts h.id;
    Trace.record Restart h.id;
    t.hooks.on_restart ()

  let child node dir = Atomic.get node.children.(dir)

  (* Physical equality on optional nodes: the paper's prev.child[direction]
     = curr comparison is on node identity. *)
  let same_node a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | None, Some _ | Some _, None -> false

  (* Sanitizer probes, one per lock discipline at the probing site:
     [san_check] raises (traversals holding only the read lock, released
     by Fun.protect on the way out), [san_note] records without raising
     (the successor walk runs while delete holds node locks a raise would
     leak), [san_observe] counts the touch only (post-lock validation,
     where reaching a retired node is legal — validate is specified to
     return false on it). All are no-ops unless the sanitizer is armed. *)
  let san_check h n =
    match n.shadow with
    | None -> ()
    | Some s ->
        San.check ~slot:(R.reader_slot h.rt) ~cookie:(R.reader_cookie h.rt) s

  let san_note h n =
    match n.shadow with
    | None -> ()
    | Some s ->
        San.note ~slot:(R.reader_slot h.rt) ~cookie:(R.reader_cookie h.rt) s

  let san_observe n =
    match n.shadow with None -> () | Some s -> San.observe s

  (* get (paper lines 1-15): wait-free search from the root inside an RCU
     read-side critical section. Returns (prev, tag, curr, direction) where
     curr is the node holding [key] (or None), prev its parent, and tag the
     snapshot of prev.tag[direction] taken inside the critical section.

     The read lock is taken before the body so the handler can assume it
     is held; everything that can raise — client comparisons, sanitizer
     checks, raise-action faults — runs inside the match, so the section
     is exited on every path. Spelled as match-with-exception rather than
     [Fun.protect]: this is the hot path of every operation, and the two
     closures Fun.protect would allocate per call cost measurable
     read-side throughput. *)
  let get h key =
    let t = h.tree in
    let skey = Key key in
    R.read_lock h.rt;
    match
      (* Arming state is snapshot once per critical section: the calls
         are not inlined across modules, and per-visited-node calls
         measurably tax the wait-free search this tree exists for. A
         traversal that began before arming is allowed to finish
         unprobed — arming is a debug-time operation. *)
      let fault_on = Fault.enabled () in
      let san_on = San.enabled () in
      let prev = ref t.root in
      let curr = ref (child t.root right) in
      (* root's right child is never None *)
      let direction = ref right in
      let continue = ref true in
      while !continue do
        match !curr with
        | None -> continue := false
        | Some c ->
            if fault_on then Fault.inject fault_read_step;
            (* Use-after-free detector: a reclaimed node must never be
               seen inside a read-side critical section (see [retire]). *)
            if c.reclaimed then Stats.incr t.use_after_reclaim h.id;
            if san_on then san_check h c;
            let cmp = compare_skey c.key skey in
            if cmp = 0 then continue := false
            else begin
              prev := c;
              direction := Citrus_proto.dir_of_cmp cmp;
              curr := child c !direction
            end
      done;
      (* Save the tag inside the read-side critical section (line 13);
         [prev] was vetted when traversed, but the tag dereference must
         not outlive its grace period either. *)
      if san_on then san_check h !prev;
      let tag = Atomic.get (!prev).tags.(!direction) in
      (!prev, tag, !curr, !direction)
    with
    | result ->
        R.read_unlock h.rt;
        result
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        R.read_unlock h.rt;
        Printexc.raise_with_backtrace e bt

  (* contains (lines 16-20). *)
  let contains h key =
    let _, _, curr, _ = get h key in
    match curr with None -> None | Some c -> c.value

  let mem h key = Option.is_some (contains h key)

  (* validate (lines 33-38): purely local checks under the caller-held
     locks. *)
  let validate prev tag curr direction =
    Citrus_proto.validate ~prev_marked:prev.marked
      ~child_same:(same_node (child prev direction) curr)
      ~curr_marked:(match curr with Some c -> Some c.marked | None -> None)
      ~tag
      ~tag_now:(fun () -> Atomic.get prev.tags.(direction))

  (* incrementTag (lines 39-41): bump the ABA tag when a child slot becomes
     empty. *)
  let increment_tag node direction =
    if child node direction = None then
      ignore (Atomic.fetch_and_add node.tags.(direction) 1)

  (* insert (lines 21-32). *)
  let rec insert h key value =
    let t = h.tree in
    let prev, tag, curr, direction = get h key in
    match curr with
    | Some _ -> false (* the key was found (line 25) *)
    | None ->
        t.hooks.between_get_and_lock ();
        Spinlock.acquire_ordered prev.lock 0;
        if San.enabled () then san_observe prev;
        if validate prev tag None direction then begin
          let node = new_node (Key key) (Some value) in
          Atomic.set prev.children.(direction) (Some node);
          (* Seeded bug (lockdep mutant): unlock the root's lock — which
             this domain never took — instead of prev's. Armed lockdep
             turns it into [Release_not_held] before the lock word is
             touched; prev.lock is left held, wedging the tree, so the
             hunt discards it. *)
          Spinlock.release
            (if Atomic.get unbalanced_unlock_bug then t.root.lock
             else prev.lock);
          Stats.incr t.inserts h.id;
          true
        end
        else begin
          Spinlock.release prev.lock;
          note_restart t h;
          insert h key value
        end

  (* Successor search for the two-children case (lines 58-64): leftmost node
     of the right subtree of curr. The paper performs it outside any
     read-side critical section — the keys of traversed nodes never
     influence the direction, and validation catches staleness. That is
     only memory-safe without reclamation; when deferred reclamation is on
     we wrap the walk in a read-side critical section so a concurrent
     grace period cannot retire nodes under our feet. *)
  let find_successor h curr =
    let rec down prev_succ succ =
      (* The caller (delete) holds node locks across this walk, so the
         sanitizer probe must not raise: [san_note] records the violation
         and lets the locks be released normally. *)
      if San.enabled () then san_note h succ;
      match child succ left with
      | None -> (prev_succ, succ)
      | Some next -> down succ next
    in
    let walk () =
      match child curr right with
      | None -> assert false (* caller checked curr has two children *)
      | Some first -> down curr first
    in
    if not h.tree.reclamation then walk ()
    else begin
      R.read_lock h.rt;
      Fun.protect ~finally:(fun () -> R.read_unlock h.rt) walk
    end

  (* delete (lines 42-84). *)
  let rec delete h key =
    let t = h.tree in
    let prev, _, curr, direction = get h key in
    match curr with
    | None -> false (* the key was not found (line 46) *)
    | Some curr ->
        t.hooks.between_get_and_lock ();
        if Atomic.get abba_delete_bug then begin
          (* Seeded bug (lockdep mutant): child before parent — against a
             concurrent top-down update this is the classic ABBA deadlock.
             Armed lockdep raises [Order_inversion] at the second
             acquisition (held rank 1, acquiring rank 0), single-domain,
             before any deadlock has to materialize. *)
          Spinlock.acquire_ordered curr.lock 1;
          Spinlock.acquire_ordered prev.lock 0
        end
        else begin
          Spinlock.acquire_ordered prev.lock 0;
          Spinlock.acquire_ordered curr.lock 1
        end;
        if San.enabled () then begin
          san_observe prev;
          san_observe curr
        end;
        if not (validate prev 0 (Some curr) direction) then begin
          Spinlock.release curr.lock;
          Spinlock.release prev.lock;
          note_restart t h;
          delete h key
        end
        else if child curr left = None || child curr right = None then begin
          (* curr has at most one child: bypass it (lines 50-56,
             Figure 3(a)-(b)). *)
          curr.marked <- true;
          let not_none_child =
            if child curr left <> None then left else right
          in
          Atomic.set prev.children.(direction) (child curr not_none_child);
          increment_tag prev direction;
          Spinlock.release curr.lock;
          Spinlock.release prev.lock;
          retire h curr;
          Stats.incr t.deletes_one_child h.id;
          true
        end
        else begin
          (* curr has two children: replace it with a copy of its successor
             (lines 57-83, Figure 3(c)-(e)). *)
          let prev_succ, succ = find_successor h curr in
          t.hooks.after_find_successor ();
          let succ_direction = if curr == prev_succ then right else left in
          if curr != prev_succ then Spinlock.acquire_ordered prev_succ.lock 2;
          Spinlock.acquire_ordered succ.lock 3;
          if San.enabled () then begin
            san_observe prev_succ;
            san_observe succ
          end;
          let succ_left_tag = Atomic.get succ.tags.(left) in
          if
            validate prev_succ 0 (Some succ) succ_direction
            && validate succ succ_left_tag None left
          then begin
            (* A fresh node with succ's key/value and curr's children
               (line 70), locked before it becomes reachable (line 71). *)
            let node =
              {
                key = succ.key;
                value = succ.value;
                children =
                  [|
                    Atomic.make (child curr left);
                    Atomic.make (child curr right);
                  |];
                tags = [| Atomic.make 0; Atomic.make 0 |];
                marked = false;
                lock = Spinlock.create ~cls:node_cls ();
                reclaimed = false;
                shadow = None;
              }
            in
            Spinlock.acquire_ordered node.lock 4;
            curr.marked <- true;
            Atomic.set prev.children.(direction) (Some node);
            t.hooks.before_synchronize ();
            if Fault.enabled () then Fault.inject fault_delete_window;
            (* The unlink below must wait for pre-existing readers: any
               search that could still find the successor only in its old
               position completes first (line 74). Two ways to pay for
               that wait: *)
            (match (t.reclaimer, h.bag, t.self_bag) with
            | Some rc, Some bag, Some self_bag
              when not (Atomic.get sync_in_read_bug) ->
                (* call_rcu: hand the grace-period-then-unlink
                   continuation to the background reclaimer and return
                   now — the updater never blocks. The window state is
                   exactly the inline version's: all five locks stay
                   held (ceded to the continuation, which adopts and
                   releases them after the grace period), so every
                   schedule here is a schedule of the paper's protocol
                   in which the deleting thread is merely descheduled
                   inside synchronize while other operations run — the
                   safety argument is unchanged. Updaters that resolve
                   to the held nodes spin as they would against a
                   blocked inline deleter; readers never take node
                   locks, so the grace period always elapses. *)
                Spinlock.transfer node.lock;
                Spinlock.transfer succ.lock;
                if curr != prev_succ then Spinlock.transfer prev_succ.lock;
                Spinlock.transfer curr.lock;
                Spinlock.transfer prev.lock;
                Rec.call_rcu rc bag (fun () ->
                    succ.marked <- true;
                    if prev_succ == curr then begin
                      (* succ is the right child of curr, which [node]
                         replaced. *)
                      Atomic.set node.children.(right) (child succ right);
                      increment_tag node right
                    end
                    else begin
                      Atomic.set prev_succ.children.(left) (child succ right);
                      increment_tag prev_succ left
                    end;
                    Spinlock.adopt node.lock ~order:4;
                    Spinlock.release node.lock;
                    Spinlock.adopt succ.lock ~order:3;
                    Spinlock.release succ.lock;
                    if curr != prev_succ then begin
                      Spinlock.adopt prev_succ.lock ~order:2;
                      Spinlock.release prev_succ.lock
                    end;
                    Spinlock.adopt curr.lock ~order:1;
                    Spinlock.release curr.lock;
                    Spinlock.adopt prev.lock ~order:0;
                    Spinlock.release prev.lock;
                    (* succ only became unreachable at the unlink above,
                       so its retirement cookie must postdate it. On the
                       reclaimer domain, re-enqueue into the
                       reclaimer-owned bag (single-producer discipline);
                       on a fallback path (bag full, reclaimer dead or
                       stopping — this closure then ran on the retiring
                       updater or the stopping thread), free inline
                       after the fresh grace period. *)
                    if t.reclamation then begin
                      let shadow = new_shadow t succ in
                      let poison () =
                        succ.reclaimed <- true;
                        Stats.incr t.reclaimed_nodes h.id
                      in
                      if Rec.on_reclaimer_domain rc then
                        Rec.call_rcu rc self_bag ?shadow poison
                      else begin
                        (match shadow with
                        | Some s -> San.on_defer s ~gp:(R.gp_cookie t.rcu)
                        | None -> ());
                        R.cond_synchronize t.rcu (R.read_gp_seq t.rcu);
                        (match shadow with
                        | Some s -> San.on_reclaim ~gp:(R.gp_cookie t.rcu) s
                        | None -> ());
                        poison ()
                      end
                    end);
                (* curr became unreachable at the copy's publication, so
                   its cookie (taken inside [retire], i.e. now) already
                   covers every reader that could hold it. *)
                retire h curr
            | _ ->
                (* Inline: the paper's synchronous form. With many
                   updaters deleting concurrently these calls coalesce
                   inside [synchronize] (piggybacking on a grace period
                   already in flight) rather than each driving its own
                   scan. *)
                if Atomic.get sync_in_read_bug then begin
                  (* Seeded bug (lockdep mutant): the grace-period wait
                     issued from *inside* a read-side critical section —
                     the waiter is its own blocking reader, so disarmed
                     this self-deadlocks. Armed, [check_sync] raises
                     [Sync_in_read_section] before the wait begins; the
                     Fun.protect unwinds the read section so only the
                     node locks are left wedged. *)
                  R.read_lock h.rt;
                  Fun.protect
                    ~finally:(fun () -> R.read_unlock h.rt)
                    (fun () -> R.synchronize t.rcu)
                end
                else R.synchronize t.rcu;
                succ.marked <- true;
                if prev_succ == curr then begin
                  (* succ is the right child of curr, which [node]
                     replaced. *)
                  Atomic.set node.children.(right) (child succ right);
                  increment_tag node right
                end
                else begin
                  Atomic.set prev_succ.children.(left) (child succ right);
                  increment_tag prev_succ left
                end;
                Spinlock.release node.lock;
                Spinlock.release succ.lock;
                if curr != prev_succ then Spinlock.release prev_succ.lock;
                Spinlock.release curr.lock;
                Spinlock.release prev.lock;
                retire h curr;
                retire h succ);
            Stats.incr t.deletes_two_children h.id;
            true
          end
          else begin
            Spinlock.release succ.lock;
            if curr != prev_succ then Spinlock.release prev_succ.lock;
            Spinlock.release curr.lock;
            Spinlock.release prev.lock;
            note_restart t h;
            delete h key
          end
        end

  (* Note on [validate prev 0 (Some curr) direction]: when curr <> None the
     tag branch of validate is unreachable, matching the paper's
     validate(prev,-,curr,direction) "don't care" tag argument. *)

  (* --- Quiescent-state helpers --- *)

  exception Invariant_violation of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Invariant_violation s)) fmt

  let real_root t =
    (* The Pos_inf sentinel; real keys live in its left subtree. *)
    match child t.root right with
    | None -> fail "root has no right sentinel child"
    | Some inf -> inf

  let fold_inorder f acc t =
    let rec go acc = function
      | None -> acc
      | Some n ->
          let acc = go acc (child n left) in
          let acc =
            match (n.key, n.value) with
            | Key k, Some v -> f acc k v
            | Key _, None -> fail "real node without value"
            | (Neg_inf | Pos_inf), _ -> acc
          in
          go acc (child n right)
    in
    go acc (Some t.root)

  let size t = fold_inorder (fun n _ _ -> n + 1) 0 t

  let to_list t =
    List.rev (fold_inorder (fun acc k v -> (k, v) :: acc) [] t)

  let height t =
    let rec go = function
      | None -> 0
      | Some n -> 1 + max (go (child n left)) (go (child n right))
    in
    go (child (real_root t) left)

  let check_invariants t =
    let rec check lo hi = function
      | None -> ()
      | Some n ->
          if n.marked then fail "reachable node is marked";
          if n.reclaimed then fail "reachable node was reclaimed";
          if Spinlock.is_locked n.lock then fail "reachable node is locked";
          (match lo with
          | Some lo when compare_skey n.key lo <= 0 ->
              fail "BST order violated (lower bound)"
          | _ -> ());
          (match hi with
          | Some hi when compare_skey n.key hi >= 0 ->
              fail "BST order violated (upper bound)"
          | _ -> ());
          if Atomic.get n.tags.(left) < 0 || Atomic.get n.tags.(right) < 0
          then fail "negative tag";
          check lo (Some n.key) (child n left);
          check (Some n.key) hi (child n right)
    in
    let root = t.root in
    if root.key <> Neg_inf then fail "root key is not Neg_inf";
    if child root left <> None then fail "root has a left child";
    let inf = real_root t in
    if inf.key <> Pos_inf then fail "sentinel key is not Pos_inf";
    if child inf right <> None then fail "Pos_inf sentinel has a right child";
    check (Some Neg_inf) (Some Pos_inf) (child inf left)

  let stats t =
    Stats.dump t.group
    @ [ ("grace_periods", R.grace_periods t.rcu) ]
    @
    match t.reclaimer with
    | None -> []
    | Some rc ->
        [
          ("reclaim_batches", Rec.batches rc);
          ("reclaimer_crashes", Rec.crashes rc);
          ("reclaim_backpressure", Rec.backpressure_waits rc);
          ("reclaim_pending", Rec.pending rc);
        ]

  let shutdown t =
    match t.reclaimer with Some rc -> Rec.stop rc | None -> ()

  let reclaim_pressure t =
    match t.reclaimer with None -> 0.0 | Some rc -> Rec.pressure rc

  (* Hold one read-side critical section open around [f] — the
     stall-injection seam the chaos harness uses to park a reader
     mid-section and watch the retired backlog respond. Not a hot path,
     so Fun.protect's closures are fine here. *)
  let with_reader h f =
    R.read_lock h.rt;
    Fun.protect ~finally:(fun () -> R.read_unlock h.rt) f

  (* --- Maintenance rebalancing (the paper's first future-work item) ---

     Citrus is unbalanced; these relativistic rotations restore balance
     without ever blocking searches or waiting for a grace period. A right
     rotation at node [n] with parent [p] and left child [l]:

       1. lock p, n, l (the usual descending order) and validate the edges
          and marks, exactly like an update;
       2. mark n and build an unmarked copy [n'] of n whose left child is
          l's right subtree and whose right child is n's right subtree;
       3. publish n' as l's right child, then swing p's pointer to l.

     Readers inside the old n keep a consistent (obsolete) view: old n
     still points to l and to the shared right subtree, and l now leads to
     n', so every key reachable before is reachable throughout — no
     synchronize_rcu is needed because no key ever exists only in a
     location a pre-existing reader cannot find. Updaters that resolved to
     n restart through the ordinary marked-bit validation. This is the
     copy-on-rotate discipline of relativistic red-black trees grafted
     onto Citrus's fine-grained locking. *)

  (* One rotation attempt at [n], the [pdir]-child of [p]. [sink_dir] is
     the direction n moves: [right] performs a right rotation (n's left
     child rises), [left] the mirror. Fails harmlessly (returns false) if
     validation loses a race. *)
  let try_rotate h p pdir n sink_dir =
    let t = h.tree in
    let rise_dir = 1 - sink_dir in
    Spinlock.acquire_ordered p.lock 0;
    Spinlock.acquire_ordered n.lock 1;
    let rising =
      if (not p.marked) && (not n.marked) && same_node (child p pdir) (Some n)
      then child n rise_dir
      else None
    in
    match rising with
    | None ->
        Spinlock.release n.lock;
        Spinlock.release p.lock;
        false
    | Some c ->
        Spinlock.acquire_ordered c.lock 2;
        if c.marked then begin
          Spinlock.release c.lock;
          Spinlock.release n.lock;
          Spinlock.release p.lock;
          false
        end
        else begin
          (* The copy that takes n's place below the rising child: it
             adopts c's sink-side subtree and n's own sink-side subtree. *)
          let fresh = new_node n.key n.value in
          Atomic.set fresh.children.(rise_dir) (child c sink_dir);
          Atomic.set fresh.children.(sink_dir) (child n sink_dir);
          n.marked <- true;
          Atomic.set c.children.(sink_dir) (Some fresh);
          Atomic.set p.children.(pdir) (Some c);
          Spinlock.release c.lock;
          Spinlock.release n.lock;
          Spinlock.release p.lock;
          retire h n;
          Stats.incr t.rotations h.id;
          true
        end

  let maintenance_pass h =
    let t = h.tree in
    let rotations = ref 0 in
    (* Post-order walk of the live tree computing height estimates and
       rotating where the local imbalance exceeds one. Heights are racy
       snapshots — a stale reading only wastes or skips a rotation; the
       next pass corrects it. The walk holds no locks and no read-side
       critical section (it may traverse retired nodes, which is safe
       under the GC; see the .mli). *)
    (* Post-order walk performing at most ONE rotation per position, so a
       pass costs O(n) and convergence comes from repeated passes (each
       pass reduces spine heights; a fully degenerate tree settles in
       O(log n) passes). The walk returns (height, left child height,
       right child height): the parent needs the grandchild heights for
       the standard AVL single-vs-double decision — a single rotation on
       an inner-heavy child would only mirror the imbalance and ping-pong
       forever, so the child is straightened first. Heights after a
       rotation are updated arithmetically where exact and left as
       (conservative) pre-rotation estimates otherwise; the next pass
       refines them. *)
    let rec walk p pdir =
      match child p pdir with
      | None -> (0, 0, 0)
      | Some n ->
          let hl, hll, hlr = walk n left in
          let hr, hrl, hrr = walk n right in
          let stale = (1 + max hl hr, hl, hr) in
          if hl > hr + 1 then begin
            if hlr > hll then begin
              (* Zig-zag: raise the left child's right child first. *)
              (match child n left with
              | Some l when try_rotate h n left l left -> incr rotations
              | Some _ | None -> ());
              stale
            end
            else if try_rotate h p pdir n right then begin
              incr rotations;
              let hr' = 1 + max hlr hr in
              (1 + max hll hr', hll, hr')
            end
            else stale
          end
          else if hr > hl + 1 then begin
            if hrl > hrr then begin
              (match child n right with
              | Some r when try_rotate h n right r right -> incr rotations
              | Some _ | None -> ());
              stale
            end
            else if try_rotate h p pdir n left then begin
              incr rotations;
              let hl' = 1 + max hl hrl in
              (1 + max hl' hrr, hl', hrr)
            end
            else stale
          end
          else stale
    in
    let inf = real_root t in
    ignore (walk inf left);
    !rotations

  let balance ?(max_passes = 64) h =
    let rec go passes total =
      if passes >= max_passes then total
      else
        let r = maintenance_pass h in
        if r = 0 then total else go (passes + 1) (total + r)
    in
    go 0 0

  module Hooks = struct
    let on_restart t f = t.hooks.on_restart <- f
    let between_get_and_lock t f = t.hooks.between_get_and_lock <- f
    let after_find_successor t f = t.hooks.after_find_successor <- f
    let before_synchronize t f = t.hooks.before_synchronize <- f
  end
end
