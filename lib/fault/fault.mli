(** Named, seeded, deterministic fault-injection points.

    The repository's robustness methodology (ROBUSTNESS.md) needs a way to
    {e provoke} the schedules that break RCU-based algorithms — readers
    stuck across a grace-period flip, writers delayed inside the Citrus
    delete window, deferred frees bunching up — without perturbing runs
    that don't ask for them. Each critical window in the stack declares a
    {e point}; arming a point by name makes a deterministic fraction of the
    arrivals at that window execute a fault action (a [Domain.cpu_relax]
    yield storm or a busy-wait delay).

    Cost when nothing is armed: one atomic load and a branch per call
    site, the same shape as [Metrics.enabled]. Whether a given arrival
    fires is a pure function of (seed, point, domain, arrival number), so
    failing schedules replay from their seed.

    Configure from code ({!configure}), the CLI
    ([citrus_tool torture --fault POINT=RATE]) or the environment
    ([REPRO_FAULTS=POINT=RATE,... ] and [REPRO_FAULT_SEED=N]).

    The point catalogue (who injects where) is documented in
    ROBUSTNESS.md. *)

type action =
  | Yield of int  (** a storm of [n] [Domain.cpu_relax] calls *)
  | Delay_ns of int  (** busy-wait for [n] nanoseconds *)
  | Raise
      (** raise {!Injected} out of the window, to exercise exception paths
          through locks, [synchronize] and read-side sections *)

type t
(** A registered injection point. *)

exception Injected of string
(** Raised by the [Raise] action, carrying the firing point's name.
    Deliberately {e not} caught anywhere in the stack: the test arming a
    [raise] fault asserts that the subsystem under it unwinds cleanly
    (locks released, read sections exited). *)

exception Unknown_point of string
(** Raised by {!set} (and hence {!configure}) for a name no subsystem
    registered. *)

val register : string -> t
(** Get-or-create the point called [name]. New points start disarmed with
    a default [Yield 256] action. Subsystems call this at module
    initialization; tests may register ad-hoc points. *)

val find : string -> t option
val name : t -> string

val points : unit -> t list
(** All registered points, registration order. *)

val enabled : unit -> bool
(** [true] iff at least one point is armed. Call sites gate on this so the
    disarmed cost is one atomic load and a branch. *)

val inject : t -> unit
(** Hot-path entry: draw the point's deterministic coin and, on fire,
    perform its action. Call as [if Fault.enabled () then Fault.inject p]. *)

val fires : t -> bool
(** The coin alone, for call sites that implement the fault themselves
    (e.g. [Defer.flush]'s extra grace period). Counts a hit, and a fire
    when true. *)

val set : ?action:action -> string -> rate:float -> unit
(** Arm point [name] to fire on [rate] of arrivals ([0] disarms; [1] fires
    always), optionally replacing its action.
    @raise Unknown_point if no such point is registered.
    @raise Invalid_argument if [rate] is outside [0, 1]. *)

val configure : ?seed:int64 -> (string * float) list -> unit
(** Disarm everything, optionally reseed, then arm each named point at its
    rate. @raise Unknown_point on the first unknown name. *)

val disable_all : unit -> unit

val set_seed : int64 -> unit
(** Reset the global seed and every point's per-domain RNG streams. *)

val seed : unit -> int64

val rate : t -> float
(** Currently configured fire probability. *)

val stats : unit -> (string * int * int) list
(** [(name, hits, fired)] per point: arrivals seen while armed, and how
    many actually fired. *)

val reset_counters : unit -> unit

val parse_spec : string -> (string * float * action option, string) result
(** Parse a CLI/env spec ["POINT=RATE"], optionally suffixed with
    [":yield=N"], [":delay_ns=N"] or [":raise"]. Returns a descriptive
    error message for malformed specs; does not check the point exists. *)
