(* Named, seeded fault-injection points (the rcutorture / failpoint idea).

   The design constraints, in order:

   1. The unobserved hot path must be unchanged: every call site is
      [if Fault.enabled () then Fault.inject point] — one atomic load and a
      branch when no point is armed, exactly the [Metrics.enabled] shape.
   2. Deterministic: whether a given arrival fires is a pure function of
      (global seed, point, domain, arrival number), so a failing schedule
      can be replayed from its seed.
   3. Global and name-addressed: points are registered by the subsystem
      that owns the window (grace-period flips, lock acquisition, the
      Citrus delete window) and armed by name from the CLI
      (--fault POINT=RATE) or the environment (REPRO_FAULTS).

   The RNG is SplitMix64 (same generator as Repro_sync.Rng; duplicated
   here because this library sits *below* repro_sync so the locks can
   inject). States are striped by domain id: each domain draws from its
   own stream, so concurrent arrivals stay deterministic per domain. *)

type action =
  | Yield of int (* storm of [n] Domain.cpu_relax calls *)
  | Delay_ns of int (* busy-wait for [n] nanoseconds *)
  | Raise (* raise [Injected point_name] out of the window *)

exception Injected of string

type t = {
  id : int;
  name : string;
  threshold : int Atomic.t;
      (* fire when a 30-bit draw is < threshold; 0 = disarmed,
         [rate_scale] = always *)
  mutable action : action;
  hits : int Atomic.t; (* arrivals while armed *)
  fired : int Atomic.t; (* arrivals that triggered the fault *)
  states : int64 array; (* per-domain-stripe RNG state *)
}

exception Unknown_point of string

let rate_scale = 1 lsl 30
let stripes = 64
let stripe_mask = stripes - 1

let default_action = Yield 256

(* Any point armed? The only cost on a disabled hot path. *)
let on = Atomic.make false

let enabled () = Atomic.get on

let registered : t list ref = ref [] (* newest first *)
let global_seed = ref 0x5EEDL

(* SplitMix64, as in Repro_sync.Rng. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let stripe_seed seed id stripe =
  mix64
    (Int64.add seed
       (Int64.of_int (((id + 1) * 8_191) + (stripe * 131_071))))

let reseed_point seed p =
  for s = 0 to stripes - 1 do
    p.states.(s) <- stripe_seed seed p.id s
  done

let find name = List.find_opt (fun p -> p.name = name) !registered

let register name =
  match find name with
  | Some p -> p
  | None ->
      let p =
        {
          id = List.length !registered;
          name;
          threshold = Atomic.make 0;
          action = default_action;
          hits = Atomic.make 0;
          fired = Atomic.make 0;
          states = Array.make stripes 0L;
        }
      in
      reseed_point !global_seed p;
      registered := p :: !registered;
      p

let name p = p.name
let points () = List.rev !registered

let rate p = float_of_int (Atomic.get p.threshold) /. float_of_int rate_scale

let refresh_on () =
  Atomic.set on (List.exists (fun p -> Atomic.get p.threshold > 0) !registered)

let arm_point p ~rate ?action () =
  if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault.set: rate must be within [0, 1]";
  (match action with Some a -> p.action <- a | None -> ());
  Atomic.set p.threshold
    (int_of_float (Float.round (rate *. float_of_int rate_scale)));
  refresh_on ()

let set ?action pname ~rate =
  match find pname with
  | Some p -> arm_point p ~rate ?action ()
  | None -> raise (Unknown_point pname)

let set_seed seed =
  global_seed := seed;
  List.iter (reseed_point seed) !registered

let seed () = !global_seed

let disable_all () =
  List.iter (fun p -> Atomic.set p.threshold 0) !registered;
  Atomic.set on false

let configure ?seed specs =
  disable_all ();
  (match seed with Some s -> set_seed s | None -> ());
  List.iter (fun (pname, rate) -> set pname ~rate) specs

let reset_counters () =
  List.iter
    (fun p ->
      Atomic.set p.hits 0;
      Atomic.set p.fired 0)
    !registered

let stats () =
  List.rev_map
    (fun p -> (p.name, Atomic.get p.hits, Atomic.get p.fired))
    !registered

(* The deterministic coin. Only called from the slow side of the
   [enabled ()] branch, so per-arrival cost is off the disabled path. *)
let fires p =
  let thr = Atomic.get p.threshold in
  if thr <= 0 then false
  else begin
    Atomic.incr p.hits;
    let s = (Domain.self () :> int) land stripe_mask in
    (* Benign race: stripes are effectively domain-private; a collision
       only interleaves two deterministic streams. *)
    let z = Int64.add p.states.(s) golden_gamma in
    p.states.(s) <- z;
    let draw = Int64.to_int (Int64.shift_right_logical (mix64 z) 34) in
    let fired = draw < thr in
    if fired then Atomic.incr p.fired;
    fired
  end

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let perform p =
  match p.action with
  | Yield n ->
      for _ = 1 to n do
        Domain.cpu_relax ()
      done
  | Delay_ns n ->
      let deadline = now_ns () + n in
      while now_ns () < deadline do
        Domain.cpu_relax ()
      done
  | Raise -> raise (Injected p.name)

let inject p = if fires p then perform p

(* --- specs: "POINT=RATE", with optional ":yield=N" / ":delay_ns=N" /
   ":raise" --- *)

let parse_action s =
  let err () =
    Error
      (Printf.sprintf
         "bad fault action %S (want yield=N, delay_ns=N, or raise)" s)
  in
  match s with
  | "raise" -> Ok Raise
  | _ -> (
      match String.index_opt s '=' with
      | None -> err ()
      | Some i -> (
          let kind = String.sub s 0 i in
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match (kind, int_of_string_opt arg) with
          | "yield", Some n when n > 0 -> Ok (Yield n)
          | "delay_ns", Some n when n > 0 -> Ok (Delay_ns n)
          | _ -> err ()))

let parse_spec spec =
  match String.index_opt spec '=' with
  | None | Some 0 ->
      Error (Printf.sprintf "bad fault spec %S (want POINT=RATE)" spec)
  | Some i -> (
      let pname = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let rate_s, action_s =
        match String.index_opt rest ':' with
        | None -> (rest, None)
        | Some j ->
            ( String.sub rest 0 j,
              Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      match float_of_string_opt rate_s with
      | Some rate when Float.is_finite rate && rate >= 0.0 && rate <= 1.0 -> (
          match action_s with
          | None -> Ok (pname, rate, None)
          | Some s -> (
              match parse_action s with
              | Ok a -> Ok (pname, rate, Some a)
              | Error e -> Error e))
      | Some _ | None ->
          Error
            (Printf.sprintf "bad fault rate %S in %S (want a float in [0,1])"
               rate_s spec))

(* --- the well-known catalogue ---

   Pre-registered here (rather than only at each subsystem's module
   initialization) so `Fault.points ()` and strict [set] see the full
   catalogue regardless of which subsystems the linker kept. The owning
   subsystems call [register] with the same names and get these points
   back. Catalogue documentation: ROBUSTNESS.md. *)

let catalogue =
  [
    "urcu.sync.pre_flip";
    "urcu.read.enter";
    "qsbr.wait";
    "epoch.advance";
    "defer.flush";
    "lock.spin.acquire";
    "lock.ticket.acquire";
    "citrus.delete.window";
    "citrus.read.step";
    "torture.reader.hold";
    "server.updater.crash";
    "server.drain.stall";
  ]

let () = List.iter (fun n -> ignore (register n)) catalogue

(* --- environment configuration ---

   REPRO_FAULT_SEED=<int64> and REPRO_FAULTS=POINT=RATE[,POINT=RATE...]
   arm points at process start; unknown env-named points are registered on
   the fly so ordering against subsystem initialization never matters. *)

let () =
  (match Sys.getenv_opt "REPRO_FAULT_SEED" with
  | Some s -> (
      match Int64.of_string_opt s with
      | Some seed -> set_seed seed
      | None -> Printf.eprintf "repro_fault: ignoring bad REPRO_FAULT_SEED %S\n%!" s)
  | None -> ());
  match Sys.getenv_opt "REPRO_FAULTS" with
  | None -> ()
  | Some specs ->
      List.iter
        (fun spec ->
          if spec <> "" then
            match parse_spec spec with
            | Ok (pname, rate, action) ->
                arm_point (register pname) ~rate ?action ()
            | Error msg -> Printf.eprintf "repro_fault: %s\n%!" msg)
        (String.split_on_char ',' specs)
