(** FIFO ticket lock — the fair alternative to {!Spinlock}'s
    test-and-test-and-set.

    Under heavy contention a TAS lock lets one thread re-acquire
    repeatedly (unfair but cache-friendly); a ticket lock serves strictly
    in arrival order. The micro-benchmarks compare both so the choice of
    per-node lock in the trees is a measured decision, not folklore.

    Like {!Spinlock}, every lock belongs to a [Repro_lockdep.Lockdep]
    class and armed-mode acquisitions/releases are validated against the
    locking protocol (disarmed cost: one atomic load and a branch). *)

type t

val create : ?cls:Repro_lockdep.Lockdep.cls -> unit -> t
(** A free lock in lockdep class [cls] (default
    [Repro_lockdep.Lockdep.generic]). *)

val acquire : t -> unit
(** Take a ticket and spin (with backoff) until served. Not reentrant. *)

val acquire_ordered : t -> int -> unit
(** {!acquire} carrying a lockdep within-class order token; [-1] means
    unordered (see {!Spinlock.acquire_ordered}). *)

val try_acquire : t -> bool
(** Acquire only if the lock is free and no one is waiting. *)

val release : t -> unit
(** Serve the next ticket. Raises [Invalid_argument] if the lock is not
    held; with lockdep armed, a double/foreign unlock raises
    [Lockdep.Violation] first, leaving the FIFO untouched. *)

val is_locked : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
