module Lockdep = Repro_lockdep.Lockdep

type t = {
  next : int Atomic.t; (* next ticket to hand out *)
  serving : int Atomic.t; (* ticket currently allowed in *)
  cls : Lockdep.cls; (* lockdep class, [Lockdep.generic] by default *)
  id : int; (* per-lock lockdep identity *)
}

let create ?(cls = Lockdep.generic) () =
  {
    next = Atomic.make 0;
    serving = Atomic.make 0;
    cls;
    id = Lockdep.new_lock_id ();
  }

let fault_acquire = Repro_fault.Fault.register "lock.ticket.acquire"

let acquire_ordered t order =
  (* Fault injection before the ticket is drawn: a delayed arrival holds no
     place in the FIFO yet, so the fault widens contention without blocking
     later tickets. *)
  if Repro_fault.Fault.enabled () then Repro_fault.Fault.inject fault_acquire;
  (* Validated before the ticket is drawn: an inverted acquisition order
     is a [Lockdep.Violation] report, not an eventual deadlock — and no
     FIFO slot is wasted on the refused acquisition. *)
  if Lockdep.enabled () then Lockdep.lock_acquired t.cls ~id:t.id ~order;
  let ticket = Atomic.fetch_and_add t.next 1 in
  if Atomic.get t.serving <> ticket then begin
    let measure = Metrics.enabled () || Trace.enabled () in
    let t0 = if measure then Metrics.now_ns () else 0 in
    let b = Backoff.create () in
    while Atomic.get t.serving <> ticket do
      Backoff.once b
    done;
    if measure then begin
      let dt = Metrics.now_ns () - t0 in
      if Metrics.enabled () then begin
        let s = Metrics.slot () in
        Stats.incr Metrics.lock_contended s;
        Stats.Timer.record Metrics.lock_wait_ns s dt
      end;
      Trace.record Lock_contended dt
    end
  end;
  if Metrics.enabled () then Stats.incr Metrics.lock_acquires (Metrics.slot ());
  Trace.record Lock_acquire (Lockdep.cls_id t.cls)

let acquire t = acquire_ordered t (-1)

let try_acquire t =
  let serving = Atomic.get t.serving in
  (* Only attempt when the queue is empty: the CAS takes the ticket that
     is immediately served. *)
  let ok =
    Atomic.get t.next = serving
    && Atomic.compare_and_set t.next serving (serving + 1)
  in
  if ok && Lockdep.enabled () then
    Lockdep.trylock_acquired t.cls ~id:t.id ~order:(-1);
  ok

let release t =
  (* Held-stack check first (see Spinlock.release): a double or foreign
     unlock raises without serving the next ticket, so the FIFO is not
     corrupted under the real holder. *)
  if Lockdep.enabled () then Lockdep.lock_released t.cls ~id:t.id;
  let serving = Atomic.get t.serving in
  if Atomic.get t.next = serving then
    invalid_arg "Ticket_lock.release: lock was not held";
  Atomic.set t.serving (serving + 1)

let is_locked t = Atomic.get t.next <> Atomic.get t.serving

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
