type t = {
  next : int Atomic.t; (* next ticket to hand out *)
  serving : int Atomic.t; (* ticket currently allowed in *)
}

let create () = { next = Atomic.make 0; serving = Atomic.make 0 }

let fault_acquire = Repro_fault.Fault.register "lock.ticket.acquire"

let acquire t =
  (* Fault injection before the ticket is drawn: a delayed arrival holds no
     place in the FIFO yet, so the fault widens contention without blocking
     later tickets. *)
  if Repro_fault.Fault.enabled () then Repro_fault.Fault.inject fault_acquire;
  let ticket = Atomic.fetch_and_add t.next 1 in
  if Atomic.get t.serving <> ticket then begin
    let measure = Metrics.enabled () || Trace.enabled () in
    let t0 = if measure then Metrics.now_ns () else 0 in
    let b = Backoff.create () in
    while Atomic.get t.serving <> ticket do
      Backoff.once b
    done;
    if measure then begin
      let dt = Metrics.now_ns () - t0 in
      if Metrics.enabled () then begin
        let s = Metrics.slot () in
        Stats.incr Metrics.lock_contended s;
        Stats.Timer.record Metrics.lock_wait_ns s dt
      end;
      Trace.record Lock_contended dt
    end
  end;
  if Metrics.enabled () then Stats.incr Metrics.lock_acquires (Metrics.slot ());
  Trace.record Lock_acquire 0

let try_acquire t =
  let serving = Atomic.get t.serving in
  (* Only attempt when the queue is empty: the CAS takes the ticket that
     is immediately served. *)
  Atomic.get t.next = serving && Atomic.compare_and_set t.next serving (serving + 1)

let release t =
  let serving = Atomic.get t.serving in
  if Atomic.get t.next = serving then
    invalid_arg "Ticket_lock.release: lock was not held";
  Atomic.set t.serving (serving + 1)

let is_locked t = Atomic.get t.next <> Atomic.get t.serving

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
