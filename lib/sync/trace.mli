(** Low-overhead ring-buffer event trace for the synchronization layer.

    One global ring shared by every domain records the serialization events
    that explain throughput: RCU read-section boundaries, grace-period
    start/end, lock contention, traversal restarts, deferred-free flushes.
    Recording claims a slot with a single [fetch_and_add] — it never blocks,
    never loops, and allocates only a bounded amount per event — so it is
    safe to call from the hottest read paths. When the ring is full the
    oldest events are overwritten; memory use is fixed at configuration
    time.

    Tracing is {e off} by default (the disabled cost is one atomic load and
    a branch); call {!start} to begin recording. [dump] is intended to run
    after the traced workload has quiesced — concurrent dumping is safe but
    may observe torn events (see the design notes in OBSERVABILITY.md). *)

type kind =
  | Read_enter  (** outermost RCU [read_lock]; arg = reader slot index *)
  | Read_exit  (** outermost RCU [read_unlock]; arg = reader slot index *)
  | Sync_start  (** [synchronize] invoked; arg = calling domain's id, so
                    traces from concurrent synchronizers are
                    distinguishable *)
  | Sync_end  (** [synchronize] returned; arg = grace-period duration (ns) *)
  | Lock_acquire
      (** uncontended lock acquisition; arg = the lock's
          [Repro_lockdep.Lockdep] class id (0 = unclassified), so traces
          distinguish tree-node locks from the GP lock *)
  | Lock_contended  (** lock acquired after spinning; arg = wait (ns) *)
  | Restart  (** optimistic traversal restarted after failed validation *)
  | Defer_flush  (** deferred-free batch executed; arg = callbacks run *)
  | Stall
      (** grace-period stall report emitted (see [Repro_rcu.Stall]);
          arg = blocking reader slot index *)
  | Sync_coalesced
      (** [synchronize] returned by piggybacking on a concurrent
          synchronizer's grace period instead of driving its own;
          arg = calling domain's id. Always followed by the matching
          [Sync_end]. *)
  | Sanitize_violation
      (** reclamation-sanitizer violation detected (logical
          use-after-free or double-free, see [Repro_sanitizer.Sanitizer]);
          arg = offending shadow-record id *)
  | Lockdep_violation
      (** locking-protocol violation detected by the lockdep validator
          (order inversion, dependency cycle, release-not-held, RCU
          context rule; see [Repro_lockdep.Lockdep]); arg = offending
          lockdep class id *)
  | Mod_enqueue
      (** operation accepted into a per-shard modification queue of the
          serving layer ([Repro_server.Mod_queue]); arg = queue (shard)
          id. Drops (queue full) are counted in the [mod_drops] metric
          but not traced — a saturated queue would flood the ring. *)
  | Mod_drain
      (** one drain batch spliced out of a modification queue by its
          updater domain; arg = batch size (operations). See
          SERVING.md. *)
  | Mod_stall
      (** a modification queue's staleness watchdog fired: the oldest
          queued write has waited past the configured threshold with no
          drain in between (the updater is wedged or grace-period-bound);
          arg = queue (shard) id. One event per threshold window, like
          [Stall]. *)
  | Updater_crash
      (** a shard's updater domain died with an exception and was caught
          by its supervisor ([Repro_server.Supervisor]); arg = shard id *)
  | Updater_restart
      (** the supervisor spawned a replacement updater domain that
          adopted the crashed one's backlog; arg = shard id *)
  | Shard_state
      (** a shard's health state changed ([Repro_server.Health]);
          arg = [shard_id * 4 + state] with state 0 = healthy,
          1 = degraded, 2 = failed *)
  | Reclaim
      (** the background reclaimer domain freed one batch of retired
          pointers after their grace periods elapsed
          ([Repro_rcu.Reclaimer]); arg = batch size (callbacks run) *)
  | Breaker_state
      (** a shard's circuit breaker changed state
          ([Repro_server.Breaker]); arg = [shard_id * 4 + state] with
          state 0 = closed, 1 = open, 2 = half-open — same packing as
          [Shard_state] *)

val kind_to_string : kind -> string

type event = {
  t_ns : int;  (** monotonic timestamp, nanoseconds *)
  domain : int;  (** recording domain's id *)
  kind : kind;
  arg : int;  (** kind-specific payload, see {!kind} *)
}

val enabled : unit -> bool
val start : unit -> unit
val stop : unit -> unit

val configure : capacity:int -> unit
(** Replace the ring with a fresh one of at least [capacity] slots (rounded
    up to a power of two; default 65 536). Not safe concurrently with
    recorders — configure before starting the workload. *)

val clear : unit -> unit
(** Drop all retained events (capacity unchanged). *)

val record : kind -> int -> unit
(** [record kind arg] appends one event if tracing is enabled; otherwise a
    single flag check. Wait-free. *)

val capacity : unit -> int

val recorded : unit -> int
(** Total events ever recorded since the last [clear]/[configure] —
    exceeds [length] once the ring has wrapped (the difference is the
    number of overwritten events). *)

val length : unit -> int
(** Number of events currently retained (≤ capacity). *)

val dump : unit -> event list
(** Retained events, oldest first. Run after the workload quiesces. *)

val now_ns : unit -> int
(** The monotonic clock used for event timestamps. *)
