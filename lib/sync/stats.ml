type t = {
  name : string;
  cells : int Atomic.t array;
}

let create ?(stripes = 64) name =
  if stripes <= 0 then invalid_arg "Stats.create: stripes must be positive";
  { name; cells = Array.init stripes (fun _ -> Atomic.make 0) }

let name t = t.name

let add t stripe n =
  let cell = t.cells.(stripe mod Array.length t.cells) in
  ignore (Atomic.fetch_and_add cell n)

let incr t stripe = add t stripe 1

let read t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells

let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells

type group = t list ref

let group () = ref []

let counter g ?stripes name =
  let c = create ?stripes name in
  g := c :: !g;
  c

let dump g = List.rev_map (fun c -> (c.name, read c)) !g

module Timer = struct
  type cell = {
    count : int Atomic.t;
    sum_ns : int Atomic.t;
    max_ns : int Atomic.t;
  }

  type nonrec t = {
    name : string;
    cells : cell array;
  }

  let create ?(stripes = 64) name =
    if stripes <= 0 then
      invalid_arg "Stats.Timer.create: stripes must be positive";
    {
      name;
      cells =
        Array.init stripes (fun _ ->
            {
              count = Atomic.make 0;
              sum_ns = Atomic.make 0;
              max_ns = Atomic.make 0;
            });
    }

  let name t = t.name

  (* Lock-free max: losing the CAS means another thread published a value;
     re-check against it and retry only while ours is still larger. *)
  let rec bump_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v

  let record t stripe ns =
    let ns = max 0 ns in
    let cell = t.cells.(stripe mod Array.length t.cells) in
    ignore (Atomic.fetch_and_add cell.count 1);
    ignore (Atomic.fetch_and_add cell.sum_ns ns);
    bump_max cell.max_ns ns

  let fold f t =
    Array.fold_left (fun acc c -> f acc c) 0 t.cells

  let count t = fold (fun acc c -> acc + Atomic.get c.count) t
  let total_ns t = fold (fun acc c -> acc + Atomic.get c.sum_ns) t

  let max_ns t =
    Array.fold_left (fun acc c -> max acc (Atomic.get c.max_ns)) 0 t.cells

  let mean_ns t =
    let n = count t in
    if n = 0 then 0.0 else float_of_int (total_ns t) /. float_of_int n

  let reset t =
    Array.iter
      (fun c ->
        Atomic.set c.count 0;
        Atomic.set c.sum_ns 0;
        Atomic.set c.max_ns 0)
      t.cells
end
