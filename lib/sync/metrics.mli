(** Process-global serialization metrics.

    One registry of striped counters and duration timers, shared by every
    subsystem that serializes work: the RCU flavours record read sections
    and grace-period durations, the locks record acquisitions / contention /
    wait times, Citrus records traversal restarts, deferred reclamation
    records flushes. Living at the bottom of the dependency stack, the
    registry needs no plumbing and one {!snapshot} captures every
    subsystem at once — the substrate of the benchmark JSON reports.

    Recording is gated on a global {!enabled} flag (default on; the
    disabled cost is one atomic load and a branch) and striped by domain
    id, so the enabled cost is one uncontended [fetch_and_add] per event.
    Counter reads are racy but monotone. See OBSERVABILITY.md for the
    metric catalogue and measured overhead. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turn all metric recording on or off (default on). *)

val slot : unit -> int
(** Stripe index for the calling domain (its domain id). *)

val now_ns : unit -> int
(** Monotonic nanosecond clock (shared with {!Trace}). *)

(** {2 Well-known metrics}

    Exposed so instrumented subsystems can record and tests can read
    individual metrics; most consumers want {!snapshot}. *)

val rcu_read_sections : Stats.t
(** Outermost RCU read-side critical sections entered. *)

val rcu_stalls : Stats.t
(** Grace-period stall reports emitted by the watchdog
    ([Repro_rcu.Stall]); 0 unless a reader blocked a grace period past the
    configured threshold. *)

val grace_period_ns : Stats.Timer.t
(** One sample per completed [synchronize] call, valued at its duration —
    the count is the number of grace periods paid, the mean their cost. *)

val sync_coalesced : Stats.t
(** [synchronize] calls that returned by piggybacking on a grace period
    driven by a concurrent synchronizer instead of driving their own
    (all RCU flavours). [sync_coalesced / grace_periods] is the fraction
    of grace-period waits the coalescing machinery elided. *)

val defer_gp_elided : Stats.t
(** Deferred-reclamation flushes that skipped their grace-period wait
    entirely because the sequence recorded at enqueue time had already
    been overtaken ([Defer.flush] via [poll]/[cond_synchronize]). *)

val lock_acquires : Stats.t
(** Successful lock acquisitions (spinlock + ticket lock). *)

val lock_contended : Stats.t
(** Acquisitions that found the lock held and had to spin. *)

val lock_wait_ns : Stats.Timer.t
(** One sample per contended acquisition, valued at the spin time. *)

val restarts : Stats.t
(** Optimistic traversals restarted after failed validation (Citrus). *)

val defer_flushes : Stats.t
(** Deferred-free batches executed (each pays one grace period). *)

val defer_callbacks : Stats.t
(** Individual deferred callbacks run. *)

val call_rcu_enqueued : Stats.t
(** Retired pointers handed to a background reclaimer domain
    ([Repro_rcu.Reclaimer]) instead of being freed inline after a
    blocking [synchronize]. *)

val reclaim_batches : Stats.t
(** Batches of retired pointers freed by a reclaimer domain after their
    grace-period cookies elapsed. *)

val reclaim_backlog : Stats.Timer.t
(** One sample per reclaim batch, valued at the backlog depth (retired
    pointers still awaiting a grace period) observed at batch start —
    a depth sampler, not a timer, so snapshots report mean and peak
    backlog. *)

val sanitizer_checks : Stats.t
(** Shadow-record lookups performed by the reclamation sanitizer
    ([Repro_sanitizer.Sanitizer]); 0 unless the sanitizer is armed. *)

val sanitizer_violations : Stats.t
(** Reclamation-sanitizer violations detected (logical use-after-free,
    double-free); 0 on a correct implementation even when armed. *)

val mod_enqueues : Stats.t
(** Write operations accepted into a per-shard modification queue of the
    serving layer ([Repro_server.Mod_queue]; see SERVING.md). *)

val mod_drops : Stats.t
(** Enqueue attempts rejected because the modification queue was full —
    the serving layer's backpressure signal. *)

val mod_drained : Stats.t
(** Queued write operations applied to a shard by its updater domain. *)

val mod_queue_wait_ns : Stats.Timer.t
(** One sample per drained operation, valued at its enqueue-to-drain
    queueing delay — the asynchrony cost a reader may observe as staleness
    (see SERVING.md, "Consistency"). *)

val mod_queue_stalls : Stats.t
(** Modification-queue staleness-watchdog reports: the oldest queued
    write sat past the configured threshold with no drain in between —
    the updater is wedged, crashed past its restart budget, or
    grace-period-bound. 0 unless the watchdog is armed
    ([Repro_server.Mod_queue.set_stall_threshold_ns]). *)

val updater_crashes : Stats.t
(** Updater-domain deaths caught by a shard supervisor
    ([Repro_server.Supervisor]). *)

val updater_restarts : Stats.t
(** Replacement updater domains spawned after a crash (=< crashes; the
    difference is crashes that exhausted the restart budget). *)

val updater_restart_ns : Stats.Timer.t
(** One sample per restart, valued at crash-to-replacement-running time —
    the recovery latency the chaos harness bounds at p99. *)

val shards_failed : Stats.t
(** Shards marked [Failed] after exhausting their restart budget; their
    reads keep working, their writes are rejected. *)

val writes_shed : Stats.t
(** Fire-and-forget writes rejected by overload control while the owning
    shard was [Degraded] (completion-waited writes are still admitted). *)

val writes_lost : Stats.t
(** Accepted writes discarded because their shard failed past its restart
    budget or shutdown was forced past the drain deadline — the only two
    paths that may drop an accepted write, both loudly accounted. *)

val writes_expired : Stats.t
(** Queued writes whose end-to-end deadline elapsed before the updater
    applied them; the drain completes them with [Expired] instead of
    burning updater time on abandoned work (see SERVING.md,
    "Deadline propagation"). Expiry is not loss: the client was told. *)

val breaker_open : Stats.t
(** Per-shard circuit-breaker trips (Closed/Half_open → Open transitions,
    [Repro_server.Breaker]). Each trip starts a jittered open interval
    during which the shard's writes are rejected without touching the
    queue. *)

val breaker_rejects : Stats.t
(** Write admissions refused by an open circuit breaker — cheap typed
    rejects that never reach the modification queue. *)

val reclaim_pressure : Stats.Timer.t
(** One sample per admission-path pressure poll, valued at the observed
    reclamation backlog pressure in parts per thousand of the watermark
    (1000 = retired backlog at the bag watermark) — a gauge through the
    Timer machinery like {!reclaim_backlog}, so snapshots report mean
    and peak pressure. *)

(** The [lockdep_checks] / [lockdep_violations] rows of {!snapshot} are
    read directly from [Repro_lockdep.Lockdep.checks]/[violations]
    (lockdep sits below this module and keeps its own counters); both
    are 0 unless lockdep is armed, and [lockdep_violations] stays 0 on
    code that follows the locking protocol. *)

(** {2 Snapshot} *)

val snapshot : unit -> (string * float) list
(** Current value of every metric under its catalogue name (see
    OBSERVABILITY.md): raw counts plus derived [\_mean_ns] / [\_total_ns] /
    [\_max_ns] values for the timers. *)

val reset : unit -> unit
(** Zero every metric (typically at the start of a measured interval). *)
