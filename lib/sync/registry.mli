(** Fixed-capacity thread-slot registry.

    Both RCU implementations, and any structure that keeps per-thread state,
    need a way for a domain to claim a stable slot and for writers to iterate
    over all slots. The registry pre-allocates [capacity] payloads (so
    iteration never races with allocation) and hands out slot indices with a
    lock-free scan. *)

type 'a t

val create : capacity:int -> make:(int -> 'a) -> 'a t
(** [create ~capacity ~make] eagerly builds [capacity] payloads with
    [make i]. Raises [Invalid_argument] if [capacity <= 0]. *)

exception Full
(** Raised by {!acquire} when all slots are taken. *)

val acquire : 'a t -> int
(** Claim a free slot and return its index. @raise Full if none is free. *)

val release : 'a t -> int -> unit
(** Return slot [i] to the free pool. Raises [Invalid_argument] if the slot
    was not held. *)

val get : 'a t -> int -> 'a
(** Payload of slot [i] (valid for any [i < capacity], held or not). *)

val capacity : 'a t -> int

val active : 'a t -> int
(** Number of currently-held slots (racy snapshot; for stats/tests). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate over all payloads, held or not. RCU grace-period detection
    iterates over every slot; idle slots must encode a quiescent state. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** [iter] with the slot index — the stall watchdog names the blocking
    slot in its reports. *)
