type 'a t = {
  payloads : 'a array;
  in_use : bool Atomic.t array;
}

exception Full

let create ~capacity ~make =
  if capacity <= 0 then invalid_arg "Registry.create: capacity must be positive";
  {
    payloads = Array.init capacity make;
    (* Spaced allocation: the RCU flavours already pad their slot
       *payloads*, but these flags sit in one dense array right next to
       each other — [acquire]/[release] CASes on one slot would
       otherwise invalidate the line under every reader's flag on
       registration churn (the false-sharing audit, ROADMAP item 5). *)
    in_use = Padding.spaced_atomics capacity false;
  }

let acquire t =
  let n = Array.length t.in_use in
  let rec scan i =
    if i >= n then raise Full
    else if
      (not (Atomic.get t.in_use.(i)))
      && Atomic.compare_and_set t.in_use.(i) false true
    then i
    else scan (i + 1)
  in
  scan 0

let release t i =
  if not (Atomic.exchange t.in_use.(i) false) then
    invalid_arg "Registry.release: slot was not held"

let get t i = t.payloads.(i)
let capacity t = Array.length t.payloads

let active t =
  Array.fold_left (fun acc a -> if Atomic.get a then acc + 1 else acc) 0 t.in_use

let iter f t = Array.iter f t.payloads
let iteri f t = Array.iteri f t.payloads
