(** Test-and-test-and-set spin lock with backoff.

    Used as the per-node lock of Citrus and the lock-based baselines: a heap
    word per lock (much lighter than [Mutex.t]) and fast in the uncontended
    case. Acquisition loops use {!Backoff} so spinning never starves the
    holder on a single core.

    Every lock belongs to a [Repro_lockdep.Lockdep] class (default:
    {!Repro_lockdep.Lockdep.generic}); while lockdep is armed, every
    acquisition and release is validated against the locking protocol
    (held-lock stack, class-dependency graph, within-class order tokens)
    and raises [Lockdep.Violation] on recursion, order inversion,
    potential ABBA deadlock, or double/foreign unlock. Disarmed cost:
    one atomic load and a branch per acquisition. *)

type t

val create : ?cls:Repro_lockdep.Lockdep.cls -> unit -> t
(** A free lock in lockdep class [cls] (default
    [Repro_lockdep.Lockdep.generic]). *)

val acquire : t -> unit
(** Block (spin) until the lock is held by the caller. Not reentrant. *)

val acquire_ordered : t -> int -> unit
(** [acquire_ordered t order] is {!acquire} carrying a within-class
    order token for lockdep's ordered classes: while armed, taking a
    token not strictly above every held token of the same class raises
    [Lockdep.Violation] (Citrus's hand-over-hand protocol). [-1] means
    unordered ({!acquire} is [acquire_ordered t (-1)]). *)

val try_acquire : t -> bool
(** Attempt to take the lock without spinning; [true] on success. *)

val release : t -> unit
(** Release a held lock. Releasing a free lock is a programming error and
    raises [Invalid_argument]; with lockdep armed, releasing a lock this
    domain does not hold (double unlock, foreign unlock) raises
    [Lockdep.Violation] first, with the lock state untouched. *)

val transfer : t -> unit
(** Cede ownership of a held lock to another domain without releasing
    it: with lockdep armed, pops the caller's held-stack entry (raising
    [Lockdep.Violation] if the caller does not hold the lock) while the
    lock word stays taken. The receiving domain must {!adopt} before it
    may {!release}. Raises [Invalid_argument] if the lock is free. *)

val adopt : t -> order:int -> unit
(** Take lockdep ownership of a lock previously ceded with {!transfer}:
    pushes a held-stack entry through the trylock path (recorded, never
    reported as an inversion — adoption cannot deadlock, the lock is
    already held). [order] is the within-class order token, [-1] for
    unordered. Raises [Invalid_argument] if the lock is free. *)

val is_locked : t -> bool
(** Snapshot of the lock state, for assertions and statistics only. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] under the lock, releasing on exception. *)
