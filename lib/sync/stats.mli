(** Striped event counters for contention statistics.

    A counter is an array of per-stripe cells; each thread increments its own
    stripe, so counting never becomes the bottleneck it is measuring. Reads
    sum all stripes (racy but monotone — adequate for throughput and restart
    statistics). *)

type t

val create : ?stripes:int -> string -> t
(** [create name] makes a named counter with [stripes] cells (default 64). *)

val name : t -> string

val incr : t -> int -> unit
(** [incr t stripe] adds one to the given stripe ([stripe] is typically the
    caller's thread slot; it is reduced modulo the stripe count). *)

val add : t -> int -> int -> unit
(** [add t stripe n] adds [n]. *)

val read : t -> int
(** Sum of all stripes. *)

val reset : t -> unit

type group

val group : unit -> group
(** A registry of counters, so a subsystem can expose all its statistics. *)

val counter : group -> ?stripes:int -> string -> t
(** Create a counter registered in [group]. *)

val dump : group -> (string * int) list
(** All counters of the group with their current values, in creation order. *)

(** Striped duration accumulators, the timing companion to the counters:
    each stripe keeps a (count, sum, max) triple of nanosecond samples so
    recording a duration never contends across threads. Used for
    grace-period lengths and lock wait times (see {!Metrics}). *)
module Timer : sig
  type t

  val create : ?stripes:int -> string -> t
  (** [create name] makes a named timer with [stripes] cells (default 64). *)

  val name : t -> string

  val record : t -> int -> int -> unit
  (** [record t stripe ns] adds one duration sample of [ns] nanoseconds
      ([stripe] is reduced modulo the stripe count; negative samples count
      as 0). Lock-free and wait-free apart from a bounded max-update CAS
      retry. *)

  val count : t -> int
  (** Total number of samples across all stripes (racy but monotone). *)

  val total_ns : t -> int
  (** Sum of all samples in nanoseconds. *)

  val mean_ns : t -> float
  (** [total_ns / count]; 0 when empty. *)

  val max_ns : t -> int
  (** Largest single sample seen since the last [reset]. *)

  val reset : t -> unit
end
