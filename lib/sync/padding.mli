(** Best-effort cache-line spacing for hot atomics.

    The paper notes that field alignment inside cache lines "often influences
    the results much more than the algorithmic aspects". OCaml gives no layout
    control, but consecutive small allocations land adjacently on the minor
    heap, so two per-thread atomics allocated back-to-back share a line. This
    module inserts dead allocations between hot ones so that, after promotion,
    per-thread slots tend to live on distinct lines. On the 1-core container
    this is moot for performance but kept for fidelity and for multi-core
    runs of this code. *)

val line_words : int
(** Assumed cache line size in OCaml words (64 bytes / 8). *)

val spaced_atomic : 'a -> 'a Atomic.t
(** Allocate an ['a Atomic.t] followed by a line of padding allocations. *)

val spaced_atomics : int -> 'a -> 'a Atomic.t array
(** [spaced_atomics n init] allocates [n] spaced atomics initialised to
    [init]. *)
