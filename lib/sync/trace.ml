(* A global, fixed-capacity event trace. Recording must be safe on the
   hottest paths in the repository (RCU read sections, spinlock slow paths),
   so the design is:

   - one power-of-two ring shared by all domains, claimed by a single
     [fetch_and_add] on the cursor — never blocks, never retries;
   - event fields live in parallel int arrays (no per-event record
     allocation; the only allocation per event is the boxed int64 returned
     by the monotonic clock, which is bounded and minor);
   - the ring silently overwrites the oldest events once full — total
     memory is fixed at configuration time;
   - an off-by-default enabled flag checked first, so the disabled cost is
     one atomic load and a branch.

   Field reads in [dump] race with writers: a slot can hold fields from two
   different events while a writer is mid-store. This is accepted (the
   trace is diagnostic, not a correctness log) and disappears when dumping
   after the traced workload quiesces, which is how every caller in the
   repo uses it. *)

type kind =
  | Read_enter
  | Read_exit
  | Sync_start
  | Sync_end
  | Lock_acquire
  | Lock_contended
  | Restart
  | Defer_flush
  | Stall
  | Sync_coalesced
  | Sanitize_violation
  | Lockdep_violation
  | Mod_enqueue
  | Mod_drain
  | Mod_stall
  | Updater_crash
  | Updater_restart
  | Shard_state
  | Reclaim
  | Breaker_state

let kind_to_string = function
  | Read_enter -> "read_enter"
  | Read_exit -> "read_exit"
  | Sync_start -> "sync_start"
  | Sync_end -> "sync_end"
  | Lock_acquire -> "lock_acquire"
  | Lock_contended -> "lock_contended"
  | Restart -> "restart"
  | Defer_flush -> "defer_flush"
  | Stall -> "stall"
  | Sync_coalesced -> "sync_coalesced"
  | Sanitize_violation -> "sanitize_violation"
  | Lockdep_violation -> "lockdep_violation"
  | Mod_enqueue -> "mod_enqueue"
  | Mod_drain -> "mod_drain"
  | Mod_stall -> "mod_stall"
  | Updater_crash -> "updater_crash"
  | Updater_restart -> "updater_restart"
  | Shard_state -> "shard_state"
  | Reclaim -> "reclaim"
  | Breaker_state -> "breaker_state"

let kind_index = function
  | Read_enter -> 0
  | Read_exit -> 1
  | Sync_start -> 2
  | Sync_end -> 3
  | Lock_acquire -> 4
  | Lock_contended -> 5
  | Restart -> 6
  | Defer_flush -> 7
  | Stall -> 8
  | Sync_coalesced -> 9
  | Sanitize_violation -> 10
  | Lockdep_violation -> 11
  | Mod_enqueue -> 12
  | Mod_drain -> 13
  | Mod_stall -> 14
  | Updater_crash -> 15
  | Updater_restart -> 16
  | Shard_state -> 17
  | Reclaim -> 18
  | Breaker_state -> 19

let kind_of_index = function
  | 0 -> Read_enter
  | 1 -> Read_exit
  | 2 -> Sync_start
  | 3 -> Sync_end
  | 4 -> Lock_acquire
  | 5 -> Lock_contended
  | 6 -> Restart
  | 7 -> Defer_flush
  | 9 -> Sync_coalesced
  | 10 -> Sanitize_violation
  | 11 -> Lockdep_violation
  | 12 -> Mod_enqueue
  | 13 -> Mod_drain
  | 14 -> Mod_stall
  | 15 -> Updater_crash
  | 16 -> Updater_restart
  | 17 -> Shard_state
  | 18 -> Reclaim
  | 19 -> Breaker_state
  | _ -> Stall

type event = {
  t_ns : int;  (* monotonic timestamp *)
  domain : int;
  kind : kind;
  arg : int;
}

type ring = {
  mask : int;
  cursor : int Atomic.t; (* total events ever claimed; slot = cursor land mask *)
  times : int array;
  domains : int array;
  kinds : int array;
  args : int array;
}

let make_ring capacity =
  (* Round up to a power of two so the slot index is a mask, not a mod. *)
  let cap =
    let rec up c = if c >= capacity then c else up (c * 2) in
    up 1
  in
  {
    mask = cap - 1;
    cursor = Atomic.make 0;
    times = Array.make cap 0;
    domains = Array.make cap 0;
    kinds = Array.make cap 0;
    args = Array.make cap 0;
  }

let default_capacity = 1 lsl 16

let ring = ref (make_ring default_capacity)
let on = Atomic.make false

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let enabled () = Atomic.get on

let start () = Atomic.set on true
let stop () = Atomic.set on false

let configure ~capacity =
  if capacity <= 0 then invalid_arg "Trace.configure: capacity must be positive";
  ring := make_ring capacity

let clear () = Atomic.set !ring.cursor 0

let capacity () = !ring.mask + 1

let recorded () = Atomic.get !ring.cursor

let record kind arg =
  if Atomic.get on then begin
    let r = !ring in
    let i = Atomic.fetch_and_add r.cursor 1 land r.mask in
    r.times.(i) <- now_ns ();
    r.domains.(i) <- (Domain.self () :> int);
    r.kinds.(i) <- kind_index kind;
    r.args.(i) <- arg
  end

let length () =
  let r = !ring in
  min (Atomic.get r.cursor) (r.mask + 1)

(* Lockdep sits below this module in the dependency stack, so it cannot
   record its own violations; instead it exposes a hook, installed here
   at module initialization (top-level effects of linked modules run at
   program start, before any workload). The hook argument is the
   offending lockdep class id, matching the [Lock_acquire] argument. *)
let () =
  Repro_lockdep.Lockdep.set_violation_hook (fun cls_id ->
      record Lockdep_violation cls_id)

let dump () =
  let r = !ring in
  let total = Atomic.get r.cursor in
  let n = min total (r.mask + 1) in
  (* Oldest retained event first: when the ring has wrapped, that is the
     slot the cursor will claim next. *)
  let first = if total <= r.mask + 1 then 0 else total - (r.mask + 1) in
  List.init n (fun j ->
      let i = (first + j) land r.mask in
      {
        t_ns = r.times.(i);
        domain = r.domains.(i);
        kind = kind_of_index r.kinds.(i);
        arg = r.args.(i);
      })
