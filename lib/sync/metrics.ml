(* Process-global observability registry. The counters live here, at the
   bottom of the dependency stack, so the instrumented subsystems
   (spinlocks, RCU flavours, Citrus, deferred reclamation) can record into
   them without any plumbing — and so one snapshot sees every subsystem at
   once, which is what the benchmark JSON report needs.

   Everything is striped per domain (the stripe index is the recording
   domain's id), so enabled-mode recording is one uncontended
   fetch_and_add. The [enabled] flag is consulted before every record; the
   disabled cost is an atomic load and a branch. *)

let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let slot () = (Domain.self () :> int)

let now_ns = Trace.now_ns

(* -- well-known metrics, one per serialization mechanism -- *)

let rcu_read_sections = Stats.create "rcu_read_sections"
let rcu_stalls = Stats.create "rcu_stalls"
let grace_period_ns = Stats.Timer.create "grace_period_ns"
let sync_coalesced = Stats.create "sync_coalesced"
let defer_gp_elided = Stats.create "defer_gp_elided"
let lock_acquires = Stats.create "lock_acquires"
let lock_contended = Stats.create "lock_contended"
let lock_wait_ns = Stats.Timer.create "lock_wait_ns"
let restarts = Stats.create "restarts"
let defer_flushes = Stats.create "defer_flushes"
let defer_callbacks = Stats.create "defer_callbacks"
let call_rcu_enqueued = Stats.create "call_rcu_enqueued"
let reclaim_batches = Stats.create "reclaim_batches"

(* Sampled, not timed: the reclaimer records its backlog depth (retired
   pointers still waiting on a grace period) through the Timer machinery
   at each batch, so snapshots expose mean and peak backlog without a
   dedicated histogram. *)
let reclaim_backlog = Stats.Timer.create "reclaim_backlog"
let sanitizer_checks = Stats.create "sanitizer_checks"
let sanitizer_violations = Stats.create "sanitizer_violations"
let mod_enqueues = Stats.create "mod_enqueues"
let mod_drops = Stats.create "mod_drops"
let mod_drained = Stats.create "mod_drained"
let mod_queue_wait_ns = Stats.Timer.create "mod_queue_wait_ns"
let mod_queue_stalls = Stats.create "mod_queue_stalls"
let updater_crashes = Stats.create "updater_crashes"
let updater_restarts = Stats.create "updater_restarts"
let updater_restart_ns = Stats.Timer.create "updater_restart_ns"
let shards_failed = Stats.create "shards_failed"
let writes_shed = Stats.create "writes_shed"
let writes_lost = Stats.create "writes_lost"
let writes_expired = Stats.create "writes_expired"
let breaker_open = Stats.create "breaker_open"
let breaker_rejects = Stats.create "breaker_rejects"

(* Sampled like [reclaim_backlog]: admission-path polls record the
   observed reclamation pressure (pending retired pointers as parts per
   thousand of the watermark) so snapshots expose mean and peak pressure
   without a dedicated gauge type. *)
let reclaim_pressure = Stats.Timer.create "reclaim_pressure"

let reset () =
  Stats.reset rcu_read_sections;
  Stats.reset rcu_stalls;
  Stats.Timer.reset grace_period_ns;
  Stats.reset sync_coalesced;
  Stats.reset defer_gp_elided;
  Stats.reset lock_acquires;
  Stats.reset lock_contended;
  Stats.Timer.reset lock_wait_ns;
  Stats.reset restarts;
  Stats.reset defer_flushes;
  Stats.reset defer_callbacks;
  Stats.reset call_rcu_enqueued;
  Stats.reset reclaim_batches;
  Stats.Timer.reset reclaim_backlog;
  Stats.reset sanitizer_checks;
  Stats.reset sanitizer_violations;
  Stats.reset mod_enqueues;
  Stats.reset mod_drops;
  Stats.reset mod_drained;
  Stats.Timer.reset mod_queue_wait_ns;
  Stats.reset mod_queue_stalls;
  Stats.reset updater_crashes;
  Stats.reset updater_restarts;
  Stats.Timer.reset updater_restart_ns;
  Stats.reset shards_failed;
  Stats.reset writes_shed;
  Stats.reset writes_lost;
  Stats.reset writes_expired;
  Stats.reset breaker_open;
  Stats.reset breaker_rejects;
  Stats.Timer.reset reclaim_pressure;
  Repro_lockdep.Lockdep.reset_counters ()

let snapshot () =
  [
    ("rcu_read_sections", float_of_int (Stats.read rcu_read_sections));
    ("rcu_stalls", float_of_int (Stats.read rcu_stalls));
    ("grace_periods", float_of_int (Stats.Timer.count grace_period_ns));
    ("grace_period_mean_ns", Stats.Timer.mean_ns grace_period_ns);
    ( "grace_period_total_ns",
      float_of_int (Stats.Timer.total_ns grace_period_ns) );
    ("grace_period_max_ns", float_of_int (Stats.Timer.max_ns grace_period_ns));
    ("sync_coalesced", float_of_int (Stats.read sync_coalesced));
    ("defer_gp_elided", float_of_int (Stats.read defer_gp_elided));
    ("lock_acquires", float_of_int (Stats.read lock_acquires));
    ("lock_contended", float_of_int (Stats.read lock_contended));
    ("lock_wait_mean_ns", Stats.Timer.mean_ns lock_wait_ns);
    ("lock_wait_total_ns", float_of_int (Stats.Timer.total_ns lock_wait_ns));
    ("lock_wait_max_ns", float_of_int (Stats.Timer.max_ns lock_wait_ns));
    ("restarts", float_of_int (Stats.read restarts));
    ("defer_flushes", float_of_int (Stats.read defer_flushes));
    ("defer_callbacks", float_of_int (Stats.read defer_callbacks));
    ("call_rcu_enqueued", float_of_int (Stats.read call_rcu_enqueued));
    ("reclaim_batches", float_of_int (Stats.read reclaim_batches));
    ("reclaim_backlog_mean", Stats.Timer.mean_ns reclaim_backlog);
    ("reclaim_backlog_max", float_of_int (Stats.Timer.max_ns reclaim_backlog));
    ("sanitizer_checks", float_of_int (Stats.read sanitizer_checks));
    ("sanitizer_violations", float_of_int (Stats.read sanitizer_violations));
    ("mod_enqueues", float_of_int (Stats.read mod_enqueues));
    ("mod_drops", float_of_int (Stats.read mod_drops));
    ("mod_drained", float_of_int (Stats.read mod_drained));
    ("mod_queue_wait_mean_ns", Stats.Timer.mean_ns mod_queue_wait_ns);
    ( "mod_queue_wait_max_ns",
      float_of_int (Stats.Timer.max_ns mod_queue_wait_ns) );
    ("mod_queue_stalls", float_of_int (Stats.read mod_queue_stalls));
    ("updater_crashes", float_of_int (Stats.read updater_crashes));
    ("updater_restarts", float_of_int (Stats.read updater_restarts));
    ("updater_restart_mean_ns", Stats.Timer.mean_ns updater_restart_ns);
    ( "updater_restart_max_ns",
      float_of_int (Stats.Timer.max_ns updater_restart_ns) );
    ("shards_failed", float_of_int (Stats.read shards_failed));
    ("writes_shed", float_of_int (Stats.read writes_shed));
    ("writes_lost", float_of_int (Stats.read writes_lost));
    ("writes_expired", float_of_int (Stats.read writes_expired));
    ("breaker_open", float_of_int (Stats.read breaker_open));
    ("breaker_rejects", float_of_int (Stats.read breaker_rejects));
    ("reclaim_pressure_mean", Stats.Timer.mean_ns reclaim_pressure);
    ( "reclaim_pressure_max",
      float_of_int (Stats.Timer.max_ns reclaim_pressure) );
    (* Lockdep keeps its own process-global counters (it sits below this
       module in the dependency stack); snapshotting reads them directly
       so the JSON reports cover the validator like every other debug
       tool. Both are 0 unless lockdep is armed. *)
    ("lockdep_checks", float_of_int (Repro_lockdep.Lockdep.checks ()));
    ( "lockdep_violations",
      float_of_int (Repro_lockdep.Lockdep.violations ()) );
  ]
