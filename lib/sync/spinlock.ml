type t = bool Atomic.t

let create () = Atomic.make false

let fault_acquire = Repro_fault.Fault.register "lock.spin.acquire"

let try_acquire t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let acquire t =
  (* Fault injection: delay some arrivals before they attempt the lock,
     widening the contention window (ROBUSTNESS.md). Disabled cost: one
     atomic load and a branch. *)
  if Repro_fault.Fault.enabled () then Repro_fault.Fault.inject fault_acquire;
  if try_acquire t then begin
    if Metrics.enabled () then
      Stats.incr Metrics.lock_acquires (Metrics.slot ());
    Trace.record Lock_acquire 0
  end
  else begin
    (* Contended path: time the spin so lock_wait_ns captures exactly the
       serialization the paper attributes to coarse locking. The clock
       reads stay out of the uncontended path. *)
    let measure = Metrics.enabled () || Trace.enabled () in
    let t0 = if measure then Metrics.now_ns () else 0 in
    let b = Backoff.create () in
    while not (try_acquire t) do
      Backoff.once b
    done;
    if measure then begin
      let dt = Metrics.now_ns () - t0 in
      if Metrics.enabled () then begin
        let s = Metrics.slot () in
        Stats.incr Metrics.lock_acquires s;
        Stats.incr Metrics.lock_contended s;
        Stats.Timer.record Metrics.lock_wait_ns s dt
      end;
      Trace.record Lock_contended dt
    end
  end

let release t =
  if not (Atomic.exchange t false) then
    invalid_arg "Spinlock.release: lock was not held"

let is_locked t = Atomic.get t

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
