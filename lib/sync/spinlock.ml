module Lockdep = Repro_lockdep.Lockdep

type t = {
  state : bool Atomic.t;
  cls : Lockdep.cls; (* lockdep class, [Lockdep.generic] by default *)
  id : int; (* per-lock lockdep identity *)
}

let create ?(cls = Lockdep.generic) () =
  { state = Atomic.make false; cls; id = Lockdep.new_lock_id () }

let fault_acquire = Repro_fault.Fault.register "lock.spin.acquire"

let try_acquire_raw t =
  (not (Atomic.get t.state)) && Atomic.compare_and_set t.state false true

let try_acquire t =
  let ok = try_acquire_raw t in
  if ok && Lockdep.enabled () then
    Lockdep.trylock_acquired t.cls ~id:t.id ~order:(-1);
  ok

let acquire_ordered t order =
  (* Fault injection: delay some arrivals before they attempt the lock,
     widening the contention window (ROBUSTNESS.md). Disabled cost: one
     atomic load and a branch — and the same again for lockdep. *)
  if Repro_fault.Fault.enabled () then Repro_fault.Fault.inject fault_acquire;
  (* Validated before the first spin: an inverted acquisition order is
     reported as a [Lockdep.Violation] instead of (sometimes) deadlocking
     right here. *)
  if Lockdep.enabled () then Lockdep.lock_acquired t.cls ~id:t.id ~order;
  if try_acquire_raw t then begin
    if Metrics.enabled () then
      Stats.incr Metrics.lock_acquires (Metrics.slot ());
    Trace.record Lock_acquire (Lockdep.cls_id t.cls)
  end
  else begin
    (* Contended path: time the spin so lock_wait_ns captures exactly the
       serialization the paper attributes to coarse locking. The clock
       reads stay out of the uncontended path. *)
    let measure = Metrics.enabled () || Trace.enabled () in
    let t0 = if measure then Metrics.now_ns () else 0 in
    let b = Backoff.create () in
    while not (try_acquire_raw t) do
      Backoff.once b
    done;
    if measure then begin
      let dt = Metrics.now_ns () - t0 in
      if Metrics.enabled () then begin
        let s = Metrics.slot () in
        Stats.incr Metrics.lock_acquires s;
        Stats.incr Metrics.lock_contended s;
        Stats.Timer.record Metrics.lock_wait_ns s dt
      end;
      Trace.record Lock_contended dt
    end
  end

let acquire t = acquire_ordered t (-1)

let release t =
  (* The held-stack check runs before the lock word changes: a double or
     foreign unlock raises with the lock state intact, so the actual
     holder is not silently robbed. *)
  if Lockdep.enabled () then Lockdep.lock_released t.cls ~id:t.id;
  if not (Atomic.exchange t.state false) then
    invalid_arg "Spinlock.release: lock was not held"

(* Cross-domain lock handoff (the call_rcu delete path in Citrus): the
   holder cedes lockdep ownership without opening the lock, and the
   adopting domain registers itself before the eventual [release]. The
   lock word never changes hands un-held, so no third party can sneak
   in between [transfer] and [adopt]. *)

let transfer t =
  if not (Atomic.get t.state) then
    invalid_arg "Spinlock.transfer: lock was not held";
  if Lockdep.enabled () then Lockdep.lock_released t.cls ~id:t.id

let adopt t ~order =
  if not (Atomic.get t.state) then
    invalid_arg "Spinlock.adopt: lock was not held";
  if Lockdep.enabled () then Lockdep.trylock_acquired t.cls ~id:t.id ~order

let is_locked t = Atomic.get t.state

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
