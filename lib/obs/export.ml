module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace

let metrics_json snapshot =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snapshot)

let live_metrics_json () = metrics_json (Metrics.snapshot ())

let event_json (e : Trace.event) =
  Json.Obj
    [
      ("t_ns", Json.Int e.t_ns);
      ("domain", Json.Int e.domain);
      ("kind", Json.String (Trace.kind_to_string e.kind));
      ("arg", Json.Int e.arg);
    ]

let trace_json ?(limit = max_int) () =
  let events = Trace.dump () in
  let n = List.length events in
  (* Keep the newest [limit] events: the tail of the dump. *)
  let events =
    if n <= limit then events
    else List.filteri (fun i _ -> i >= n - limit) events
  in
  Json.Obj
    [
      ("capacity", Json.Int (Trace.capacity ()));
      ("recorded", Json.Int (Trace.recorded ()));
      ("retained", Json.Int n);
      ("events", Json.List (List.map event_json events));
    ]

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc json)
