(* A dependency-free JSON tree with a printer and a recursive-descent
   parser. The repository's benchmark reports are small (kilobytes), so
   simplicity beats speed; the parser exists mainly so tests can round-trip
   reports and tools can re-read BENCH_*.json trajectories. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- printing -- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no NaN/Infinity; map them to null rather than emit an
     unparseable document. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    (* "%.17g" prints integral floats without a decimal point; keep the
       value a JSON number but mark it floating so round-trips preserve
       the constructor. *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let to_buffer ?(minify = false) buf t =
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) item)
          items;
        nl indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            escape buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            go (indent + 2) v)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 t

let to_string ?minify t =
  let buf = Buffer.create 1024 in
  to_buffer ?minify buf t;
  Buffer.contents buf

let to_channel oc t =
  let buf = Buffer.create 1024 in
  to_buffer buf t;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* -- parsing -- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "invalid \\u escape"
              in
              (* Encode the scalar as UTF-8 (surrogate pairs are not
                 produced by our printer; lone surrogates map as-is). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "invalid escape");
          go ()
        end
      | c -> begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer literal too wide for an OCaml int: keep the value. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- accessors -- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
