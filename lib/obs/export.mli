(** JSON rendering of the live observability state.

    Bridges the in-process registries ({!Repro_sync.Metrics},
    {!Repro_sync.Trace}) to the {!Json} tree, for the [citrus_tool stats]
    subcommand and the benchmark report writer. *)

val metrics_json : (string * float) list -> Json.t
(** Render a metrics snapshot (as returned by {!Repro_sync.Metrics.snapshot}
    or carried in a runner result) as one flat JSON object. *)

val live_metrics_json : unit -> Json.t
(** [metrics_json (Metrics.snapshot ())]. *)

val trace_json : ?limit:int -> unit -> Json.t
(** The retained trace ring as JSON: capacity, total recorded, and the
    newest [limit] events (default: all retained), oldest first. Call after
    the traced workload has quiesced. *)

val write_file : string -> Json.t -> unit
(** Pretty-print the document to [path] (truncating), newline-terminated. *)
