(** Minimal JSON values, printing, and parsing.

    The repository cannot assume a JSON package is installed, and its
    reports are small, so this module implements exactly what the
    observability layer needs: a value tree, a printer whose output is
    always valid JSON (NaN/infinite floats become [null]), and a strict
    recursive-descent parser used by the round-trip tests and trajectory
    tooling. Integers outside the exactly-representable range and non-UTF-8
    strings are the caller's responsibility. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order is preserved *)

exception Parse_error of string
(** Raised by {!of_string} with a message and byte offset. *)

val to_string : ?minify:bool -> t -> string
(** Render as JSON text; pretty-printed with 2-space indentation unless
    [minify] is set. *)

val to_channel : out_channel -> t -> unit
(** Pretty-print followed by a newline. *)

val of_string : string -> t
(** Strict parse of a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

(** {2 Accessors} — shallow, [None] on type mismatch. *)

val member : string -> t -> t option
(** First field with the given name of an [Obj]. *)

val to_list_opt : t -> t list option

val to_float_opt : t -> float option
(** Accepts both [Float] and [Int] (as JSON readers must). *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
