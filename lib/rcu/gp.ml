(* Process-global grace-period coalescing switch. Lives in its own module
   (like Stall) so all three flavours consult one flag and the benchmark
   harness can A/B the exact same binary: `bench/main.exe -- gp` measures
   every flavour with coalescing off (the pre-coalescing independent-scan
   behaviour) and on, and reports the ratio. *)

let coalesce = Atomic.make true

let set_coalescing b = Atomic.set coalesce b
let coalescing () = Atomic.get coalesce
