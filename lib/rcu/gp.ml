(* Process-global grace-period coalescing switch. Lives in its own module
   (like Stall) so all three flavours consult one flag and the benchmark
   harness can A/B the exact same binary: `bench/main.exe -- gp` measures
   every flavour with coalescing off (the pre-coalescing independent-scan
   behaviour) and on, and reports the ratio. *)

let coalesce = Atomic.make true

let set_coalescing b = Atomic.set coalesce b
let coalescing () = Atomic.get coalesce

(* The wait queue piggybacking synchronizers block on (epoch-rcu and
   qsbr; urcu queues on its gp_lock instead). Extracted here so the one
   legitimate Mutex/Condition use in the library lives in this file —
   `dune build @lint` forbids Stdlib.Mutex/Condition everywhere else —
   and so the condvar wait shares the lockdep RCU-context check with
   [synchronize]: blocking on a grace period from inside a read-side
   critical section is the same self-deadlock whichever wait path takes
   it. *)
module Waitq = struct
  module Lockdep = Repro_lockdep.Lockdep

  type t = {
    mu : Mutex.t;
    cond : Condition.t;
    (* Number of synchronizers blocked on [cond] (or about to be): lets
       scanners skip their pre-scan yield when nobody is waiting. *)
    waiters : int Atomic.t;
  }

  let create () =
    { mu = Mutex.create (); cond = Condition.create (); waiters = Atomic.make 0 }

  let waiters t = Atomic.get t.waiters

  let broadcast t =
    Mutex.lock t.mu;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu

  (* Block until broadcast, unless [block_if] says the wait is already
     satisfied. The predicate is re-checked under the mutex so a
     completion between the caller's gate check and the wait cannot be
     missed (scanners broadcast under the same mutex). *)
  let wait t ~block_if =
    if Lockdep.enabled () then Lockdep.check_sync ();
    Atomic.incr t.waiters;
    Mutex.lock t.mu;
    if block_if () then Condition.wait t.cond t.mu;
    Mutex.unlock t.mu;
    Atomic.decr t.waiters
end
