(** Pure word-level encodings of the RCU flavour protocols, shared
    between the real implementations and the model-checker models
    (lib/modelcheck). Total functions on ints — no state. *)

module Epoch : sig
  val slot_in_section : int -> bool
  val slot_count : int -> int

  val slot_enter : int -> int
  (** New slot word for an outermost read_lock, given the old word:
      count bumped, in-section flag set, in one store. *)

  val slot_exit : int -> int
  (** New slot word for an outermost read_unlock: flag cleared. *)

  val snap : gp_started:int -> int
  (** The scan number whose completion satisfies a synchronize that
      starts now. *)

  val covered : gp_completed:int -> snap:int -> bool
end

module Urcu : sig
  val nest_mask : int
  val phase_bit : int
  val nesting : int -> int

  val enter_word : phase:int -> int
  (** Outermost read_lock slot word: current phase, nesting 1. *)

  val ongoing : gp_phase:int -> int -> bool
  (** Does slot word [v] block a grace period at phase [gp_phase]? *)

  val seq_in_progress : completed:int -> int
  val seq_idle : completed:int -> int
  val seq_completed : int -> int

  val snap : gp_seq:int -> int
  (** Completed-count target for a synchronize starting now, with the
      "one extra if a grace period is in progress" rule. *)

  val covered : gp_seq:int -> snap:int -> bool
end

module Qsbr : sig
  val offline : int

  val snap : gp:int -> int
  (** Scan target whose completion satisfies a synchronize starting
      now. *)

  val blocks : target:int -> int -> bool
  (** Does slot value [v] (0 = offline, else a counter snapshot) block
      a scan with target [target]? *)

  val covered : gp_completed:int -> snap:int -> bool
end
