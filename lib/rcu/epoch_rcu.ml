module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault

type slot = int Atomic.t
(* Encoding: [count lsl 1) lor flag]. Only the owning thread writes its
   slot; [synchronize] only reads. *)

type t = {
  slots : slot Registry.t;
  gps : int Atomic.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : slot;
  mutable nesting : int;
}

let name = "epoch-rcu"

(* Fault point: fires at the start of the slot scan — delaying one
   synchronizer here lets later read sections begin and finish under it,
   exercising the ABA-safety of the count-and-flag encoding. *)
let fault_advance = Fault.register "epoch.advance"

let create ?(max_threads = 128) () =
  {
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gps = Atomic.make 0;
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot (Atomic.get slot land lnot 1);
  { rcu; index; slot; nesting = 0 }

let unregister th =
  if th.nesting <> 0 then
    invalid_arg "Epoch_rcu.unregister: inside a read-side critical section";
  Registry.release th.rcu.slots th.index

let read_lock th =
  if th.nesting = 0 then begin
    let count = Atomic.get th.slot lsr 1 in
    (* One SC store publishes both the new count and the flag. *)
    Atomic.set th.slot (((count + 1) lsl 1) lor 1);
    if Metrics.enabled () then
      Stats.incr Metrics.rcu_read_sections th.index;
    Trace.record Read_enter th.index
  end;
  th.nesting <- th.nesting + 1

let read_unlock th =
  if th.nesting <= 0 then
    invalid_arg "Epoch_rcu.read_unlock: not inside a read-side critical section";
  th.nesting <- th.nesting - 1;
  if th.nesting = 0 then begin
    Atomic.set th.slot (Atomic.get th.slot land lnot 1);
    Trace.record Read_exit th.index
  end

let read_depth th = th.nesting

let synchronize rcu =
  let t0 = Metrics.now_ns () in
  Trace.record Sync_start 0;
  if Fault.enabled () then Fault.inject fault_advance;
  (* No lock, no handshake between concurrent synchronizers: each scans the
     slots independently. *)
  (if not (Stall.armed ()) then
     (* Watchdog off (the default): the exact pre-watchdog wait loop. *)
     Registry.iter
       (fun slot ->
         let snapshot = Atomic.get slot in
         if snapshot land 1 = 1 then begin
           let b = Backoff.create () in
           while Atomic.get slot = snapshot do
             Backoff.once b
           done
         end)
       rcu.slots
   else begin
     let thr = Stall.threshold_ns () in
     Registry.iteri
       (fun i slot ->
         let snapshot = Atomic.get slot in
         if snapshot land 1 = 1 then begin
           let b = Backoff.create () in
           let deadline = ref (t0 + thr) in
           while Atomic.get slot = snapshot do
             Backoff.once b;
             let now = Metrics.now_ns () in
             if now > !deadline then begin
               if Atomic.get slot = snapshot then
                 (* nesting: the in-section flag; phase: the section count
                    the reader has been stuck inside. *)
                 Stall.note
                   (Stall.report ~flavour:name ~slot:i
                      ~nesting:(snapshot land 1) ~phase:(snapshot lsr 1)
                      ~elapsed_ns:(now - t0)
                      ~grace_periods:(Atomic.get rcu.gps));
               deadline := now + thr
             end
           done
         end)
       rcu.slots
   end);
  ignore (Atomic.fetch_and_add rcu.gps 1);
  let dt = Metrics.now_ns () - t0 in
  if Metrics.enabled () then
    Stats.Timer.record Metrics.grace_period_ns (Metrics.slot ()) dt;
  Trace.record Sync_end dt

let grace_periods rcu = Atomic.get rcu.gps
