module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Lockdep = Repro_lockdep.Lockdep

type slot = int Atomic.t
(* Encoding: [count lsl 1) lor flag]. Only the owning thread writes its
   slot; [synchronize] only reads. *)

type t = {
  slots : slot Registry.t;
  gps : int Atomic.t;
  (* Grace-period sequence (Linux gp_seq, split into two counters because
     scans here are lock-free and concurrent): [gp_started] numbers scans
     as they begin, [gp_completed] is the highest scan number whose full
     slot scan has finished. A scan numbered [n] took every slot snapshot
     after the [n]th increment of [gp_started], so [gp_completed >= s]
     proves a full grace period elapsed after any moment at which
     [gp_started] was still [< s]. *)
  gp_started : int Atomic.t;
  gp_completed : int Atomic.t;
  (* Number of scans currently in flight: the coalescing gate. A
     synchronizer that finds a scan in flight waits for [gp_completed] to
     pass its snapshot instead of scanning redundantly. *)
  scanning : int Atomic.t;
  (* Wait queue for piggybacking synchronizers: scanners broadcast after
     every scan (and on the way out of an aborted one), waiters block
     until woken instead of polling — the analogue of the kernel's RCU
     wait queues. Polling here is not just wasteful: on few cores the
     polls steal the CPU from the very scan being waited for. *)
  waitq : Gp.Waitq.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : slot;
  mutable nesting : int;
  (* gp_cookie at the last outermost read_lock; written only while the
     reclamation sanitizer is armed. *)
  mutable entry_cookie : int;
}

type gp_state = int
(* The scan number that must complete: [read_gp_seq] snapshot s satisfied
   once [gp_completed >= s]. *)

let name = "epoch-rcu"

(* Fault point: fires at the start of the slot scan — delaying one
   synchronizer here lets later read sections begin and finish under it,
   exercising the ABA-safety of the count-and-flag encoding. *)
let fault_advance = Fault.register "epoch.advance"

let create ?(max_threads = 128) () =
  {
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gps = Atomic.make 0;
    gp_started = Atomic.make 0;
    gp_completed = Atomic.make 0;
    scanning = Atomic.make 0;
    waitq = Gp.Waitq.create ();
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot (Protocol.Epoch.slot_exit (Atomic.get slot));
  { rcu; index; slot; nesting = 0; entry_cookie = 0 }

let unregister th =
  if th.nesting <> 0 then
    invalid_arg "Epoch_rcu.unregister: inside a read-side critical section";
  Registry.release th.rcu.slots th.index

let read_lock th =
  if Lockdep.enabled () then Lockdep.rcu_read_enter ~slot:th.index;
  if th.nesting = 0 then begin
    (* One SC store publishes both the new count and the flag
       (Protocol.Epoch.slot_enter). *)
    Atomic.set th.slot (Protocol.Epoch.slot_enter (Atomic.get th.slot));
    if San.enabled () then
      th.entry_cookie <-
        Protocol.Epoch.snap ~gp_started:(Atomic.get th.rcu.gp_started);
    if Metrics.enabled () then
      Stats.incr Metrics.rcu_read_sections th.index;
    Trace.record Read_enter th.index
  end;
  th.nesting <- th.nesting + 1

let read_unlock th =
  (* The lockdep check runs first: armed, an unbalanced unlock is a
     structured [Lockdep.Violation]; disarmed, the historical
     [Invalid_argument] below still fires. *)
  if Lockdep.enabled () then Lockdep.rcu_read_exit ();
  if th.nesting <= 0 then
    invalid_arg "Epoch_rcu.read_unlock: not inside a read-side critical section";
  th.nesting <- th.nesting - 1;
  if th.nesting = 0 then begin
    Atomic.set th.slot (Protocol.Epoch.slot_exit (Atomic.get th.slot));
    Trace.record Read_exit th.index
  end

let read_depth th = th.nesting

let read_gp_seq rcu =
  Protocol.Epoch.snap ~gp_started:(Atomic.get rcu.gp_started)

let poll rcu snap =
  Protocol.Epoch.covered ~gp_completed:(Atomic.get rcu.gp_completed) ~snap

(* Monotonic-max post: concurrent scans finish out of order, and an older
   scan must never regress the completed number a newer one published. *)
let rec post_completed completed n =
  let cur = Atomic.get completed in
  if cur < n && not (Atomic.compare_and_set completed cur n) then
    post_completed completed n

(* One full grace-period scan, numbered [my]: snapshot every slot and, for
   each slot whose in-section flag was set, wait until the word changes —
   the reader either finished (flag cleared) or started a later section
   (count increased; the count only grows, so "the word changed" is
   ABA-safe). With coalescing on, the wait loops abort as soon as
   [gp_completed] reaches [my]: a scan that started after ours already
   finished, so every reader we could still be waiting for is known to
   have left. Aborting posts nothing — the overtaking scan already did. *)
let scan rcu t0 my =
  let overtaken () =
    Gp.coalescing ()
    && Protocol.Epoch.covered
         ~gp_completed:(Atomic.get rcu.gp_completed)
         ~snap:my
  in
  let armed = Stall.armed () in
  let thr = if armed then Stall.threshold_ns () else 0 in
  let n = Registry.capacity rcu.slots in
  let i = ref 0 in
  let aborted = ref false in
  while (not !aborted) && !i < n do
    let slot = Registry.get rcu.slots !i in
    let snapshot = Atomic.get slot in
    if Protocol.Epoch.slot_in_section snapshot then begin
      let b = Backoff.create () in
      let deadline = ref (t0 + thr) in
      while (not !aborted) && Atomic.get slot = snapshot do
        if overtaken () then aborted := true
        else begin
          Backoff.once b;
          if armed then begin
            let now = Metrics.now_ns () in
            if now > !deadline then begin
              if Atomic.get slot = snapshot then
                (* nesting: the in-section flag; phase: the section count
                   the reader has been stuck inside. *)
                Stall.note
                  (Stall.report ~flavour:name ~slot:!i
                     ~nesting:(snapshot land 1) ~phase:(snapshot lsr 1)
                     ~elapsed_ns:(now - t0)
                     ~grace_periods:(Atomic.get rcu.gps));
              deadline := now + thr
            end
          end
        end
      done
    end;
    incr i
  done;
  if not !aborted then post_completed rcu.gp_completed my

let synchronize rcu =
  (* RCU rule 1 (lockdep-enforced): a grace-period wait inside a
     read-side critical section can never return — the waiter is the
     reader it waits for. *)
  if Lockdep.enabled () then Lockdep.check_sync ();
  let t0 = Metrics.now_ns () in
  Trace.record Sync_start (Metrics.slot ());
  if Fault.enabled () then Fault.inject fault_advance;
  (* Snapshot before anything else: this call is satisfied exactly when a
     scan numbered >= [snap] completes, because such a scan took all its
     slot snapshots after this point and therefore waited out every reader
     already in a critical section here. *)
  let snap = Protocol.Epoch.snap ~gp_started:(Atomic.get rcu.gp_started) in
  let coalesced = ref false in
  let finished = ref false in
  while not !finished do
    if Gp.coalescing () && poll rcu snap then begin
      (* A scan numbered >= [snap] already finished: someone else's grace
         period covers this call entirely. *)
      coalesced := true;
      finished := true
    end
    else if (not (Gp.coalescing ())) || Atomic.get rcu.scanning = 0 then begin
      (* No scan in flight that could cover us: drive one. Its number is
         claimed after [snap], so one scan always suffices. *)
      coalesced := false;
      Atomic.incr rcu.scanning;
      Fun.protect
        ~finally:(fun () ->
          (* Wake the piggybackers whether the scan completed, aborted as
             overtaken, or raised ([Stall.Stalled] in fail mode) — they
             re-check the completed number and the gate and either return
             or take over the scanning themselves. *)
          Atomic.decr rcu.scanning;
          Gp.Waitq.broadcast rcu.waitq)
        (fun () ->
          (* Cede the CPU before claiming the scan number: synchronizers
             just woken by the previous broadcast get to run, take their
             snapshots while [gp_started] still reads one below this
             scan's number, and enqueue — so the scan about to start
             covers all of them. Without this, on oversubscribed cores
             the first woken waiter grabs the scanner role and bumps
             [gp_started] before the others run, pushing their snapshots
             out by a whole extra grace period (the kernel's
             cond_resched() before starting a new GP). A real sleep, not
             sleepf 0.: only an actual deschedule lets them in. Skipped
             when nobody is waiting. *)
          if Gp.coalescing () && Gp.Waitq.waiters rcu.waitq > 0 then
            Unix.sleepf 1e-9;
          let my = Atomic.fetch_and_add rcu.gp_started 1 + 1 in
          scan rcu t0 my);
      finished := true
    end
    else begin
      (* A concurrent synchronizer is scanning: piggyback on its scan
         instead of re-walking the slots. The wait is adaptive, because
         scan cost spans three orders of magnitude with registry size:
         spin briefly (a small-registry scan is microseconds from
         finishing), nap twice (a real deschedule hands the core to the
         scanner), and only then block on the wait queue — a condvar
         wakeup costs a scheduler latency, which dwarfs short scans but
         is the only thing that doesn't steal CPU from long ones. If the
         awaited scan turns out to be too old (numbered below [snap]) and
         no other scan is in flight, the branch above takes over — the
         fallback keeps this loop deadlock-free without any handshake
         between synchronizers. [Gp.Waitq.wait] re-checks the block
         predicate under its mutex so a completion between the gate
         check and the wait cannot be missed (the scanner broadcasts
         under the same mutex). *)
      coalesced := true;
      let covered () = poll rcu snap in
      let spins = ref 0 in
      while (not (covered ())) && Atomic.get rcu.scanning > 0 && !spins < 64 do
        Domain.cpu_relax ();
        incr spins
      done;
      let naps = ref 0 in
      while (not (covered ())) && Atomic.get rcu.scanning > 0 && !naps < 2 do
        Unix.sleepf 1e-9;
        incr naps
      done;
      if (not (covered ())) && Atomic.get rcu.scanning > 0 && Gp.coalescing ()
      then
        Gp.Waitq.wait rcu.waitq ~block_if:(fun () ->
            (not (covered ()))
            && Atomic.get rcu.scanning > 0
            && Gp.coalescing ())
    end
  done;
  ignore (Atomic.fetch_and_add rcu.gps 1);
  let dt = Metrics.now_ns () - t0 in
  if Metrics.enabled () then begin
    Stats.Timer.record Metrics.grace_period_ns (Metrics.slot ()) dt;
    if !coalesced then Stats.incr Metrics.sync_coalesced (Metrics.slot ())
  end;
  if !coalesced then Trace.record Sync_coalesced (Metrics.slot ());
  Trace.record Sync_end dt

let cond_synchronize rcu snap =
  (* Checked even on the elided path: the call is *allowed* to wait, so
     making it legal only when the grace period happens to have elapsed
     would hide the bug until the unlucky schedule. *)
  if Lockdep.enabled () then Lockdep.check_sync ();
  if not (poll rcu snap) then synchronize rcu

let grace_periods rcu = Atomic.get rcu.gps
let gp_cookie rcu = read_gp_seq rcu
let reader_slot th = th.index
let reader_cookie th = th.entry_cookie
