(** The subset of the RCU API used by Citrus (paper, Section 2), as a module
    signature so the tree is a functor over the RCU flavour.

    The RCU property: if a step of a read-side critical section precedes the
    invocation of [synchronize], then {e all} steps of that critical section
    precede the return from [synchronize]. [read_lock]/[read_unlock] must be
    wait-free. *)

module type S = sig
  type t
  (** A shared RCU domain: the set of threads that synchronize together. *)

  type thread
  (** Per-thread state; one per registered domain. Not shareable between
      domains. *)

  val name : string
  (** Implementation name, used in benchmark output. *)

  val create : ?max_threads:int -> unit -> t
  (** Create an RCU domain supporting up to [max_threads] concurrently
      registered threads (default 128). *)

  val register : t -> thread
  (** Claim per-thread state. Every domain that will call [read_lock] or
      [synchronize] must register first.
      @raise Repro_sync.Registry.Full if [max_threads] are registered. *)

  val unregister : thread -> unit
  (** Release the slot. The thread must not be inside a read-side critical
      section. *)

  val read_lock : thread -> unit
  (** Enter a read-side critical section. Wait-free. Nestable. *)

  val read_unlock : thread -> unit
  (** Leave the (innermost) read-side critical section. Wait-free. *)

  val synchronize : t -> unit
  (** Grace period: block until every read-side critical section that was in
      progress when [synchronize] was invoked has completed. Must be called
      outside any read-side critical section.

      Concurrent [synchronize] calls {e coalesce}: a call that observes a
      full grace period elapsing after its own invocation — driven by a
      concurrent synchronizer — returns without driving one itself (see
      {!Repro_rcu.Gp} for the process-global switch benchmarks use to
      disable coalescing). The guarantee above is unchanged. *)

  (** {2 Sequence-numbered grace periods}

      The polling API of Linux RCU ([get_state_synchronize_rcu] /
      [poll_state_synchronize_rcu] / [cond_synchronize_rcu]): each flavour
      maintains a monotonically increasing grace-period sequence, and a
      caller can snapshot it, later ask cheaply whether a full grace period
      has elapsed past the snapshot, and pay for a grace period only when
      one has not. *)

  type gp_state
  (** An opaque grace-period sequence snapshot ("cookie"). Encodes the
      sequence number a future grace period must complete for the snapshot
      to be satisfied (snapshot-before / completed-after). *)

  val read_gp_seq : t -> gp_state
  (** Snapshot the grace-period sequence. [poll] on the returned state
      becomes true only once every read-side critical section in progress
      at this call has completed. May be called anywhere, including inside
      a read-side critical section. *)

  val poll : t -> gp_state -> bool
  (** [poll t st] is true iff a full grace period has elapsed since
      [read_gp_seq] returned [st]: every reader that was inside a critical
      section at the snapshot has left it. Never blocks; O(1). Once true,
      stays true. Note that nothing advances the sequence by itself — if no
      thread drives grace periods, [poll] can remain false forever. *)

  val cond_synchronize : t -> gp_state -> unit
  (** [cond_synchronize t st]: a no-op if [poll t st] already holds,
      otherwise a full [synchronize]. Either way, on return every read-side
      critical section that was in progress at the [read_gp_seq] that
      produced [st] has completed. Must be called outside any read-side
      critical section. *)

  val grace_periods : t -> int
  (** Number of completed [synchronize] calls (statistics). Coalesced calls
      count: they return with the same guarantee as any other. *)

  (** {2 Reclamation-sanitizer diagnostics}

      Cheap identity hooks the reclamation sanitizer
      ([Repro_sanitizer.Sanitizer]) uses to name the guilty parties in a
      violation report. They carry no synchronization weight of their
      own. *)

  val gp_cookie : t -> int
  (** The current {!read_gp_seq} snapshot as a plain integer, for stamping
      shadow records ("deferred at gp N" / "reclaimed at gp N"). Values
      are monotone and comparable within one [t]; the unit is
      flavour-specific. *)

  val reader_slot : thread -> int
  (** The thread's registry slot index — the same index the stall
      watchdog reports, so sanitizer and stall output name readers
      consistently. *)

  val reader_cookie : thread -> int
  (** The [gp_cookie] captured when this thread last entered an outermost
      read-side critical section — but only while the sanitizer is armed
      (otherwise 0, so the hot path stays store-free). A violation report
      with [reader_cookie <= reclaimed_gp] proves the reclaim happened
      inside the reader's section. *)
end
