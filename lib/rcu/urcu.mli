(** Re-implementation of the general-purpose user-space RCU of Desnoyers et
    al. (IEEE TPDS 2012) — the "standard RCU" baseline of Figure 8 (left).

    Per-thread state is a word holding a snapshot of the global grace-period
    counter plus a read-side nesting count; [synchronize] acquires a
    {e global lock}, flips the grace-period phase bit twice, and after each
    flip waits for every reader still in the previous phase.

    The global lock is deliberate: it is what makes this implementation
    collapse when many updaters synchronize concurrently, which the paper
    demonstrates and then fixes with {!Epoch_rcu}.

    Grace periods are numbered with a single [gp_seq] word in the Linux
    encoding ([(completed lsl 1) lor in_progress], written only under the
    lock) to support {!Rcu_intf.S.poll}; a [synchronize] that queued on the
    lock re-checks the sequence after acquiring it and, if a grace period
    completed past its snapshot while it waited, returns without flipping —
    N queued synchronizers coalesce into O(1) grace periods. See DESIGN.md
    ("Grace-period sequence numbers and coalescing"). *)

include Rcu_intf.S

val read_depth : thread -> int
(** Current read-side nesting depth (from the thread's own word); for tests. *)

(** {2 Mutation-testing hook — never use outside the mutation suite} *)

module Buggy : sig
  val single_flip : bool -> unit
  (** When on, [synchronize] performs only {e one} phase flip + reader
      wait instead of two — the classic broken-urcu bug a single flip
      cannot distinguish: a reader that loaded the old phase just before
      the flip but published it just after is invisibly missed. Exists
      solely so the mutation suite ([Repro_citrus.Mutation]) can prove
      the reclamation sanitizer detects the resulting premature
      reclamation. Turn off again immediately after the run. *)
end
