(** Quiescent-state-based RCU (QSBR) — the third classic user-space RCU
    flavour (Desnoyers et al., IEEE TPDS 2012), provided for completeness
    and for the read-side-cost ablation.

    QSBR inverts the reporting duty: read-side critical sections are free
    (no stores at all); instead each thread periodically announces a
    {e quiescent state} — a point at which it holds no RCU-protected
    references. [synchronize] waits until every online thread has either
    announced quiescence or gone offline.

    The price is the documented QSBR weakness: a registered online thread
    that stops announcing stalls every grace period. The {!Rcu_intf.S}
    adapter below therefore maps [read_lock]/[read_unlock] to
    online/offline transitions, which preserves correctness while keeping
    the free read side for nested sections.

    Native API ([online]/[offline]/[quiescent_state]) is exposed for
    workloads that batch many read-side sections between announcements.

    Grace periods are sequence-numbered by the global counter itself (scan
    targets are unique, and a [gp_completed] high-water mark records the
    highest target fully waited for) to support {!Rcu_intf.S.poll} and to
    coalesce concurrent synchronizers exactly as in {!Epoch_rcu}: a
    synchronizer that finds a scan in flight waits for the completed number
    to pass its snapshot instead of re-walking the slots. See DESIGN.md
    ("Grace-period sequence numbers and coalescing"). *)

include Rcu_intf.S

val online : thread -> unit
(** Mark the thread as potentially holding references (noop if online). *)

val offline : thread -> unit
(** Announce an extended quiescent period (e.g. before blocking). The
    thread must not hold RCU-protected references. *)

val quiescent_state : thread -> unit
(** Announce a quiescent point without going offline. Call between — never
    inside — read-side critical sections. *)

(** {2 Mutation-testing hook — never use outside the mutation suite} *)

module Buggy : sig
  val quiescent_in_section : bool -> unit
  (** When on, every {e nested} [read_lock] announces a quiescent state —
      refreshing the slot to the current grace-period counter while the
      thread is still inside its critical section, QSBR's cardinal sin
      (a scan waiting on this reader is released early). Exists solely so
      the mutation suite ([Repro_citrus.Mutation]) can prove the
      reclamation sanitizer detects the resulting premature reclamation.
      Turn off again immediately after the run. *)
end
