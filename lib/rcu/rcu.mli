(** Entry point of the RCU library: re-exports and the implementation
    registry used by benchmarks to sweep over RCU flavours. *)

module type S = Rcu_intf.S

module Epoch : S
(** The paper's new RCU (Section 5): per-thread counter+flag, lock-free
    [synchronize]. See {!Epoch_rcu}. *)

module Urcu : S
(** The stock general-purpose user-space RCU baseline with a global
    grace-period lock. See {!Urcu}. *)

module Qsbr : S
(** Quiescent-state-based RCU: free read side, coarser reporting. See
    {!Qsbr} for the native online/offline/quiescent API. *)

val implementations : (string * (module S)) list
(** All flavours, keyed by [name], for benchmark sweeps. *)

module Stall : module type of Stall
(** The grace-period stall watchdog shared by all flavours (arm/disarm,
    report shape, handler). See {!Stall}. *)

module Gp : module type of Gp
(** The process-global grace-period coalescing switch shared by all
    flavours (on by default; benchmarks flip it to measure the
    uncoalesced baseline). See {!Gp}. *)

module Reclaimer : module type of Reclaimer
(** call_rcu: per-producer epoch-tagged retired bags drained by a
    supervised background reclaimer domain, plus the process-global
    switch that routes Citrus deletes through it. See {!Reclaimer}. *)

exception Stalled of Stall.report
(** Raised by [synchronize] when the watchdog is armed in [Fail] mode and
    a reader blocks the grace period past the threshold. The aborted
    [synchronize] provides no grace-period guarantee. *)
