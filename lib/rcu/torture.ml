(* rcutorture: the Linux kernel's RCU torture methodology over the three
   user-space RCU implementations in this repository, packaged as a
   library so the alcotest suite and [citrus_tool torture] share one
   harness.

   A writer publishes fresh elements into shared slots; after replacing an
   element it waits one grace period and only then marks the old element
   freed. Readers continuously dereference the slots inside read-side
   critical sections (sometimes nested, sometimes with artificial delays)
   and flag an error if they ever observe an element after it was freed —
   which can only happen if synchronize returned while a pre-existing
   reader still held the element.

   On top of the classic configuration axes this harness drives the
   robustness machinery: fault points armed per run ([faults]), a reader
   that parks inside its critical section ([reader_park_ms]) to provoke
   the stall watchdog, and the watchdog itself ([stall_ms]/[stall_fail]).
   Fault and watchdog state are process-global, so [run] restores both on
   the way out. *)

module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng
module Fault = Repro_fault.Fault

type config = {
  readers : int;
  writers : int;
  slots : int;
  updates_per_writer : int;
  nest : bool;
  reader_delay : bool;
  use_defer : bool;
  use_poll : bool;
  reader_park_ms : int;
  faults : (string * float * Fault.action option) list;
  stall_ms : int;
  stall_fail : bool;
  verbose : bool;
}

let default =
  {
    readers = 2;
    writers = 1;
    slots = 4;
    updates_per_writer = 300;
    nest = false;
    reader_delay = false;
    use_defer = false;
    use_poll = false;
    reader_park_ms = 0;
    faults = [];
    stall_ms = 0;
    stall_fail = false;
    verbose = false;
  }

type outcome = {
  errors : int;
  grace_periods : int;
  stalls : int;
  stalled_writers : int;
}

type elem = { id : int; mutable freed : bool }

module Make (R : Rcu_intf.S) = struct
  module Defer = Defer.Make (R)

  let body cfg ~seed ~stall_count =
    let r = R.create ~max_threads:(cfg.readers + cfg.writers + 1) () in
    let slots =
      Array.init cfg.slots (fun i -> Atomic.make { id = i; freed = false })
    in
    let errors = Atomic.make 0 in
    let stalled_writers = Atomic.make 0 in
    let stop = Atomic.make false in
    let start = Barrier.create (cfg.readers + cfg.writers) in
    (* With [reader_park_ms], writers hold their updates until reader 0 is
       actually inside its critical section — otherwise whether the park
       stalls any grace period is a scheduling race and the stall tests
       would be flaky. *)
    let parked = Atomic.make (cfg.reader_park_ms <= 0 || cfg.readers = 0) in
    let reader i =
      Domain.spawn (fun () ->
          let th = R.register r in
          let rng = Rng.create (Int64.of_int (seed + 7_000 + i)) in
          Barrier.wait start;
          (* Reader 0 optionally parks inside a critical section: the
             canonical stalled-grace-period schedule. Every updater that
             calls synchronize meanwhile is blocked on this slot, which is
             exactly what the watchdog must name. *)
          if i = 0 && cfg.reader_park_ms > 0 then begin
            R.read_lock th;
            Atomic.set parked true;
            Unix.sleepf (float_of_int cfg.reader_park_ms /. 1e3);
            R.read_unlock th
          end;
          while not (Atomic.get stop) do
            R.read_lock th;
            if cfg.nest then R.read_lock th;
            let slot = slots.(Rng.int rng cfg.slots) in
            let p = Atomic.get slot in
            if p.freed then Atomic.incr errors;
            if cfg.reader_delay then
              for _ = 1 to Rng.int rng 50 do
                Domain.cpu_relax ()
              done;
            (* The element must remain valid for the whole critical
               section, no matter how long we dawdled. *)
            if p.freed then Atomic.incr errors;
            if cfg.nest then R.read_unlock th;
            R.read_unlock th
          done;
          R.unregister th)
    in
    let writer i =
      Domain.spawn (fun () ->
          let th = R.register r in
          let defer = if cfg.use_defer then Some (Defer.create r) else None in
          let rng = Rng.create (Int64.of_int (seed + 9_000 + i)) in
          Barrier.wait start;
          while not (Atomic.get parked) do
            Domain.cpu_relax ()
          done;
          (try
             for u = 1 to cfg.updates_per_writer do
               let slot = slots.(Rng.int rng cfg.slots) in
               let fresh = { id = (i * 1_000_000) + u; freed = false } in
               let old = Atomic.exchange slot fresh in
               match defer with
               | Some d -> Defer.defer d (fun () -> old.freed <- true)
               | None when cfg.use_poll ->
                   (* Cookie taken after unpublishing, then a dawdle: with
                      several writers, another writer's grace period often
                      elapses past the cookie meanwhile, so this hammers
                      the poll/cond_synchronize elision path while the
                      readers verify it never frees early. *)
                   let gp = R.read_gp_seq r in
                   for _ = 1 to Rng.int rng 100 do
                     Domain.cpu_relax ()
                   done;
                   R.cond_synchronize r gp;
                   old.freed <- true
               | None ->
                   R.synchronize r;
                   old.freed <- true
             done;
             match defer with Some d -> Defer.drain d | None -> ()
           with Stall.Stalled _ ->
             (* Fail-mode watchdog: the aborted synchronize gives no
                grace-period guarantee, so bail out without freeing and
                stop the run — exactly what a production workload should
                do instead of hanging. *)
             Atomic.incr stalled_writers;
             Atomic.set stop true);
          ignore th;
          R.unregister th)
    in
    let readers = List.init cfg.readers reader in
    let writers = List.init cfg.writers writer in
    List.iter Domain.join writers;
    Atomic.set stop true;
    List.iter Domain.join readers;
    {
      errors = Atomic.get errors;
      grace_periods = R.grace_periods r;
      stalls = Atomic.get stall_count;
      stalled_writers = Atomic.get stalled_writers;
    }

  let run ?(seed = 42) cfg =
    let stall_count = Atomic.make 0 in
    Fault.configure ~seed:(Int64.of_int seed) [];
    List.iter (fun (nm, rate, action) -> Fault.set ?action nm ~rate) cfg.faults;
    if cfg.stall_ms > 0 then
      Stall.arm
        ~mode:(if cfg.stall_fail then Stall.Fail else Stall.Warn)
        ~threshold_ns:(cfg.stall_ms * 1_000_000) ();
    Stall.set_handler (fun rep ->
        Atomic.incr stall_count;
        if cfg.verbose then Stall.default_handler rep);
    Fun.protect
      ~finally:(fun () ->
        Fault.disable_all ();
        Stall.disarm ();
        Stall.reset_handler ())
      (fun () ->
        let out = body cfg ~seed ~stall_count in
        if cfg.verbose then
          Printf.eprintf
            "torture %s: errors=%d grace_periods=%d stalls=%d \
             stalled_writers=%d\n\
             %!"
            R.name out.errors out.grace_periods out.stalls
            out.stalled_writers;
        out)
end

let flavours = List.map fst Rcu.implementations

let run_flavour ?seed flavour cfg =
  match List.assoc_opt flavour Rcu.implementations with
  | None -> invalid_arg ("Torture.run_flavour: unknown RCU flavour " ^ flavour)
  | Some (module R : Rcu_intf.S) ->
      let module T = Make (R) in
      T.run ?seed cfg
