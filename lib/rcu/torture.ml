(* rcutorture: the Linux kernel's RCU torture methodology over the three
   user-space RCU implementations in this repository, packaged as a
   library so the alcotest suite and [citrus_tool torture] share one
   harness.

   A writer publishes fresh elements into shared slots; after replacing an
   element it waits one grace period and only then marks the old element
   freed. Readers continuously dereference the slots inside read-side
   critical sections (sometimes nested, sometimes with artificial delays)
   and flag an error if they ever observe an element after it was freed —
   which can only happen if synchronize returned while a pre-existing
   reader still held the element.

   On top of the classic configuration axes this harness drives the
   robustness machinery: fault points armed per run ([faults]), a reader
   that parks inside its critical section ([reader_park_ms]) to provoke
   the stall watchdog, the watchdog itself ([stall_ms]/[stall_fail]), and
   the reclamation sanitizer ([sanitize]): every element carries a shadow
   record through the Deferred/Reclaimed lifecycle and readers check it on
   each touch, so a grace period that ends too early surfaces as a
   [Sanitizer.Violation] naming the reader — even on an interleaving where
   the plain [freed]-flag check happens to miss. Fault, watchdog and
   sanitizer state are process-global, so [run] restores all three on the
   way out. *)

module Barrier = Repro_sync.Barrier
module Rng = Repro_sync.Rng
module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Lockdep = Repro_lockdep.Lockdep

type config = {
  readers : int;
  writers : int;
  slots : int;
  updates_per_writer : int;
  nest : bool;
  reader_delay : bool;
  use_defer : bool;
  use_poll : bool;
  use_call_rcu : bool;
  reader_park_ms : int;
  faults : (string * float * Fault.action option) list;
  stall_ms : int;
  stall_fail : bool;
  sanitize : bool;
  lockdep : bool;
  verbose : bool;
}

let default =
  {
    readers = 2;
    writers = 1;
    slots = 4;
    updates_per_writer = 300;
    nest = false;
    reader_delay = false;
    use_defer = false;
    use_poll = false;
    use_call_rcu = false;
    reader_park_ms = 0;
    faults = [];
    stall_ms = 0;
    stall_fail = false;
    sanitize = false;
    lockdep = false;
    verbose = false;
  }

type outcome = {
  errors : int;
  grace_periods : int;
  stalls : int;
  stalled_writers : int;
  violations : int;
  leaks : int;
  lockdep_violations : int;
}

type elem = { id : int; mutable freed : bool; shadow : San.record option }

(* Fault point: fires while a reader holds an element inside its critical
   section, before the end-of-section re-check — stretching exactly the
   window a premature reclamation must not overlap. The mutation suite
   arms it with multi-millisecond delays to force the overlap on the
   seeded-buggy flavours. *)
let fault_reader_hold = Fault.register "torture.reader.hold"

module Make (R : Rcu_intf.S) = struct
  module Defer = Defer.Make (R)
  module Rec = Reclaimer.Make (R)

  let body cfg ~seed ~stall_count ~san =
    let r = R.create ~max_threads:(cfg.readers + cfg.writers + 1) () in
    let reclaimer = if cfg.use_call_rcu then Some (Rec.create r) else None in
    let new_shadow () =
      match san with Some d -> Some (San.register d) | None -> None
    in
    let mark_deferred e =
      match e.shadow with
      | Some s -> San.on_defer s ~gp:(R.gp_cookie r)
      | None -> ()
    in
    let mark_reclaimed e =
      match e.shadow with
      | Some s -> San.on_reclaim ~gp:(R.gp_cookie r) s
      | None -> ()
    in
    let slots =
      Array.init cfg.slots (fun i ->
          Atomic.make { id = i; freed = false; shadow = new_shadow () })
    in
    let errors = Atomic.make 0 in
    let stalled_writers = Atomic.make 0 in
    let violations = Atomic.make 0 in
    (* Completed reader critical sections; writers pace themselves
       against it (see the writer loop). *)
    let reader_iters = Atomic.make 0 in
    let stop = Atomic.make false in
    let start = Barrier.create (cfg.readers + cfg.writers) in
    (* With [reader_park_ms], writers hold their updates until reader 0 is
       actually inside its critical section — otherwise whether the park
       stalls any grace period is a scheduling race and the stall tests
       would be flaky. *)
    let parked = Atomic.make (cfg.reader_park_ms <= 0 || cfg.readers = 0) in
    let reader i =
      Domain.spawn (fun () ->
          let th = R.register r in
          let rng = Rng.create (Int64.of_int (seed + 7_000 + i)) in
          Barrier.wait start;
          (* Reader 0 optionally parks inside a critical section: the
             canonical stalled-grace-period schedule. Every updater that
             calls synchronize meanwhile is blocked on this slot, which is
             exactly what the watchdog must name. *)
          if i = 0 && cfg.reader_park_ms > 0 then begin
            R.read_lock th;
            Atomic.set parked true;
            Unix.sleepf (float_of_int cfg.reader_park_ms /. 1e3);
            R.read_unlock th
          end;
          while not (Atomic.get stop) do
            Atomic.incr reader_iters;
            (* The lock is taken before [Fun.protect] so the finally can
               assume it is held; everything that can raise — sanitizer
               checks, raise-action faults — runs inside, so the section
               is always exited. *)
            R.read_lock th;
            try
              Fun.protect
                ~finally:(fun () -> R.read_unlock th)
                (fun () ->
                  let slot = slots.(Rng.int rng cfg.slots) in
                  let p = Atomic.get slot in
                  let check () =
                    (match p.shadow with
                    | Some s ->
                        San.check ~slot:(R.reader_slot th)
                          ~cookie:(R.reader_cookie th) s
                    | None -> ());
                    if p.freed then Atomic.incr errors
                  in
                  check ();
                  let dawdle () =
                    if Fault.enabled () then Fault.inject fault_reader_hold;
                    if cfg.reader_delay then
                      for _ = 1 to Rng.int rng 50 do
                        Domain.cpu_relax ()
                      done
                  in
                  (* One hold before any nested section and one inside it:
                     the window a premature reclamation must overlap, and
                     (with [nest]) time for a writer to reach the wait the
                     seeded qsbr bug then releases at the nested entry. *)
                  dawdle ();
                  if cfg.nest then begin
                    R.read_lock th;
                    Fun.protect ~finally:(fun () -> R.read_unlock th) dawdle
                  end;
                  (* The element must remain valid for the whole critical
                     section, no matter how long we dawdled. *)
                  check ())
            with San.Violation _ ->
              (* The sanitizer caught a reclamation inside this section
                 (already counted and traced by the sanitizer itself, with
                 the report printed by uncaught-exception printers when
                 tests want it). Stop the run: one caught mutant is
                 proof enough, and a broken flavour would only pile up
                 thousands more. *)
              Atomic.incr violations;
              Atomic.set stop true
          done;
          R.unregister th)
    in
    let writer i =
      Domain.spawn (fun () ->
          let th = R.register r in
          let defer = if cfg.use_defer then Some (Defer.create r) else None in
          let bag = Option.map Rec.new_producer reclaimer in
          let rng = Rng.create (Int64.of_int (seed + 9_000 + i)) in
          Barrier.wait start;
          while not (Atomic.get parked) do
            Domain.cpu_relax ()
          done;
          (try
             let u = ref 1 in
             while !u <= cfg.updates_per_writer && not (Atomic.get stop) do
               (* Rate-match updates to reader progress (with headroom so
                  grace periods still complete while a reader is parked
                  in a fault-injected delay). Without this, on few cores
                  the writers finish all their updates before the readers
                  are ever scheduled inside a critical section, and the
                  reader/reclaimer races this harness exists to provoke
                  never actually overlap. *)
               if cfg.readers > 0 then
                 while
                   !u > Atomic.get reader_iters + 16 && not (Atomic.get stop)
                 do
                   Domain.cpu_relax ()
                 done;
               let slot = slots.(Rng.int rng cfg.slots) in
               let fresh =
                 { id = (i * 1_000_000) + !u; freed = false;
                   shadow = new_shadow () }
               in
               let old = Atomic.exchange slot fresh in
               (match (reclaimer, bag) with
               | Some rc, Some b ->
                   (* call_rcu: the cookie is snapshotted at enqueue and
                      the background reclaimer frees after it elapses —
                      the writer never waits. The readers' freed-flag and
                      shadow checks verify the cookie discipline exactly
                      as they do the inline grace periods. *)
                   Rec.call_rcu rc b ?shadow:old.shadow (fun () ->
                       old.freed <- true)
               | _ -> (
               match defer with
               | Some d ->
                   (* Defer owns the shadow lifecycle: Deferred at enqueue
                      (rejecting double-enqueues), Reclaimed when the
                      callback runs after its grace period. *)
                   Defer.defer d ?shadow:old.shadow (fun () ->
                       old.freed <- true)
               | None when cfg.use_poll ->
                   (* Cookie taken after unpublishing, then a dawdle: with
                      several writers, another writer's grace period often
                      elapses past the cookie meanwhile, so this hammers
                      the poll/cond_synchronize elision path while the
                      readers verify it never frees early. *)
                   mark_deferred old;
                   let gp = R.read_gp_seq r in
                   for _ = 1 to Rng.int rng 100 do
                     Domain.cpu_relax ()
                   done;
                   R.cond_synchronize r gp;
                   old.freed <- true;
                   mark_reclaimed old
               | None ->
                   mark_deferred old;
                   R.synchronize r;
                   old.freed <- true;
                   mark_reclaimed old));
               incr u
             done;
             match defer with Some d -> Defer.drain d | None -> ()
           with
          | Stall.Stalled _ ->
              (* Fail-mode watchdog: the aborted synchronize gives no
                 grace-period guarantee, so bail out without freeing and
                 stop the run — exactly what a production workload should
                 do instead of hanging. *)
              Atomic.incr stalled_writers;
              Atomic.set stop true
          | San.Violation _ ->
              (* Double_free from the shadow table (can only happen with a
                 harness bug or a seeded mutant): count and stop like a
                 reader-side catch. *)
              Atomic.incr violations;
              Atomic.set stop true);
          ignore th;
          R.unregister th)
    in
    let readers = List.init cfg.readers reader in
    let writers = List.init cfg.writers writer in
    List.iter Domain.join writers;
    Atomic.set stop true;
    List.iter Domain.join readers;
    (* Join the reclaimer before the leak audit: every promised free must
       have run by then. *)
    Option.iter Rec.stop reclaimer;
    {
      errors = Atomic.get errors;
      grace_periods = R.grace_periods r;
      stalls = Atomic.get stall_count;
      stalled_writers = Atomic.get stalled_writers;
      violations = Atomic.get violations;
      (* Shadow records still Deferred after every writer drained its
         queue are frees that were promised and never ran. With a
         violation the run stopped early and pending deferrals are
         expected, so only a clean run is audited. *)
      leaks =
        (match san with
        | Some d when Atomic.get violations = 0 -> List.length (San.audit d)
        | _ -> 0);
      (* Filled in by [run], which owns the lockdep arming window. *)
      lockdep_violations = 0;
    }

  let run ?(seed = 42) cfg =
    let stall_count = Atomic.make 0 in
    Fault.configure ~seed:(Int64.of_int seed) [];
    List.iter (fun (nm, rate, action) -> Fault.set ?action nm ~rate) cfg.faults;
    if cfg.stall_ms > 0 then
      Stall.arm
        ~mode:(if cfg.stall_fail then Stall.Fail else Stall.Warn)
        ~threshold_ns:(cfg.stall_ms * 1_000_000) ();
    Stall.set_handler (fun rep ->
        Atomic.incr stall_count;
        if cfg.verbose then Stall.default_handler rep);
    let san_was_armed = San.enabled () in
    let san =
      if cfg.sanitize then begin
        San.arm ();
        Some (San.create ("torture/" ^ R.name))
      end
      else None
    in
    (* Lockdep mirrors the sanitizer: armed here (a quiescent point — no
       domain holds a lock or a read-side section yet), restored on the
       way out, and reported as a violation *delta* so an already-armed
       process keeps its running totals. *)
    let ld_was_armed = Lockdep.enabled () in
    if cfg.lockdep then Lockdep.arm ();
    let ld_before = Lockdep.violations () in
    Fun.protect
      ~finally:(fun () ->
        Fault.disable_all ();
        Stall.disarm ();
        Stall.reset_handler ();
        if cfg.sanitize && not san_was_armed then San.disarm ();
        if cfg.lockdep && not ld_was_armed then Lockdep.disarm ())
      (fun () ->
        let out = body cfg ~seed ~stall_count ~san in
        let out =
          { out with lockdep_violations = Lockdep.violations () - ld_before }
        in
        if cfg.verbose then
          Printf.eprintf
            "torture %s: errors=%d grace_periods=%d stalls=%d \
             stalled_writers=%d violations=%d leaks=%d lockdep=%d\n\
             %!"
            R.name out.errors out.grace_periods out.stalls out.stalled_writers
            out.violations out.leaks out.lockdep_violations;
        out)
end

let flavours = List.map fst Rcu.implementations

let run_flavour ?seed flavour cfg =
  match List.assoc_opt flavour Rcu.implementations with
  | None -> invalid_arg ("Torture.run_flavour: unknown RCU flavour " ^ flavour)
  | Some (module R : Rcu_intf.S) ->
      let module T = Make (R) in
      T.run ?seed cfg
