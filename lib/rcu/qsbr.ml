module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault

(* Slot encoding: 0 = offline; otherwise a snapshot of the global
   grace-period counter (always odd, so 0 is unambiguous). A thread is
   quiescent with respect to grace period [gp] if it is offline or its
   snapshot is >= gp. *)

type t = {
  gp : int Atomic.t; (* odd, monotonically increasing *)
  slots : int Atomic.t Registry.t;
  gps : int Atomic.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : int Atomic.t;
  mutable nesting : int;
}

let name = "qsbr"

(* Fault point: fires after the grace-period counter advances and before
   the slot scan — the window where QSBR's documented weakness (a thread
   that stops announcing quiescence) bites hardest. *)
let fault_wait = Fault.register "qsbr.wait"

let create ?(max_threads = 128) () =
  {
    gp = Atomic.make 1;
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gps = Atomic.make 0;
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot 0;
  { rcu; index; slot; nesting = 0 }

let unregister th =
  if th.nesting <> 0 then
    invalid_arg "Qsbr.unregister: inside a read-side critical section";
  Atomic.set th.slot 0;
  Registry.release th.rcu.slots th.index

let online th =
  if Atomic.get th.slot = 0 then Atomic.set th.slot (Atomic.get th.rcu.gp)

let offline th =
  if th.nesting <> 0 then
    invalid_arg "Qsbr.offline: inside a read-side critical section";
  Atomic.set th.slot 0

let quiescent_state th =
  if th.nesting <> 0 then
    invalid_arg "Qsbr.quiescent_state: inside a read-side critical section";
  Atomic.set th.slot (Atomic.get th.rcu.gp)

(* The S adapter: the outermost read_lock goes online; the outermost
   read_unlock announces quiescence and goes offline, so idle registered
   threads never stall writers. Nested sections cost nothing. *)
let read_lock th =
  if th.nesting = 0 then begin
    online th;
    if Metrics.enabled () then
      Stats.incr Metrics.rcu_read_sections th.index;
    Trace.record Read_enter th.index
  end;
  th.nesting <- th.nesting + 1

let read_unlock th =
  if th.nesting <= 0 then
    invalid_arg "Qsbr.read_unlock: not inside a read-side critical section";
  th.nesting <- th.nesting - 1;
  if th.nesting = 0 then begin
    Atomic.set th.slot 0;
    Trace.record Read_exit th.index
  end

let synchronize rcu =
  let t0 = Metrics.now_ns () in
  Trace.record Sync_start 0;
  (* Advance the grace period, then wait for each online thread to catch
     up or go offline. Lock-free: concurrent synchronizers just wait for
     (at least) their own period. *)
  let target = Atomic.fetch_and_add rcu.gp 2 + 2 in
  if Fault.enabled () then Fault.inject fault_wait;
  (if not (Stall.armed ()) then
     (* Watchdog off (the default): the exact pre-watchdog wait loop. *)
     Registry.iter
       (fun slot ->
         let b = Backoff.create () in
         let rec wait () =
           let v = Atomic.get slot in
           if v <> 0 && v < target then begin
             Backoff.once b;
             wait ()
           end
         in
         wait ())
       rcu.slots
   else begin
     let thr = Stall.threshold_ns () in
     Registry.iteri
       (fun i slot ->
         let b = Backoff.create () in
         let deadline = ref (t0 + thr) in
         let rec wait () =
           let v = Atomic.get slot in
           if v <> 0 && v < target then begin
             Backoff.once b;
             let now = Metrics.now_ns () in
             if now > !deadline then begin
               let v = Atomic.get slot in
               if v <> 0 && v < target then
                 (* nesting: 1 = online behind the target; phase: the
                    grace-period snapshot the reader is stuck at. *)
                 Stall.note
                   (Stall.report ~flavour:name ~slot:i ~nesting:1 ~phase:v
                      ~elapsed_ns:(now - t0)
                      ~grace_periods:(Atomic.get rcu.gps));
               deadline := now + thr
             end;
             wait ()
           end
         in
         wait ())
       rcu.slots
   end);
  ignore (Atomic.fetch_and_add rcu.gps 1);
  let dt = Metrics.now_ns () - t0 in
  if Metrics.enabled () then
    Stats.Timer.record Metrics.grace_period_ns (Metrics.slot ()) dt;
  Trace.record Sync_end dt

let grace_periods rcu = Atomic.get rcu.gps
