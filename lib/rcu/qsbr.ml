module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Lockdep = Repro_lockdep.Lockdep

(* Slot encoding: 0 = offline; otherwise a snapshot of the global
   grace-period counter (always odd, so 0 is unambiguous). A thread is
   quiescent with respect to grace period [gp] if it is offline or its
   snapshot is >= gp. *)

type t = {
  gp : int Atomic.t; (* odd, monotonically increasing; advances per scan *)
  slots : int Atomic.t Registry.t;
  gps : int Atomic.t;
  (* [gp_completed] is the highest scan target fully waited for: some scan
     with target [>= t] observed every online slot at or past its target.
     Scan targets are unique (each scan advances [gp] by 2 and targets the
     result), so [gp_completed >= gp_at_snapshot + 2] proves a scan whose
     counter advance — and therefore whose slot checks — happened entirely
     after the snapshot, i.e. a full grace period elapsed past it. *)
  gp_completed : int Atomic.t;
  (* Scans in flight: the coalescing gate (see Epoch_rcu for the shared
     waiter/fallback structure). *)
  scanning : int Atomic.t;
  (* Wait queue for piggybacking synchronizers (see Epoch_rcu): scanners
     broadcast after every scan, waiters block instead of polling. *)
  waitq : Gp.Waitq.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : int Atomic.t;
  mutable nesting : int;
  (* gp_cookie at the last outermost read_lock; written only while the
     reclamation sanitizer is armed. *)
  mutable entry_cookie : int;
}

type gp_state = int
(* The scan target that must complete: snapshot s satisfied once
   [gp_completed >= s]. *)

let name = "qsbr"

(* Fault point: fires after the grace-period counter advances and before
   the slot scan — the window where QSBR's documented weakness (a thread
   that stops announcing quiescence) bites hardest. *)
let fault_wait = Fault.register "qsbr.wait"

(* Mutation-testing hook (see ROBUSTNESS.md and lib/citrus/mutation.ml):
   when set, every *nested* read_lock refreshes the slot to the current
   grace-period counter — announcing a quiescent state while still inside
   the critical section, QSBR's cardinal sin. Never set outside the
   mutation suite. *)
let quiesce_in_section_bug = Atomic.make false

module Buggy = struct
  let quiescent_in_section b = Atomic.set quiesce_in_section_bug b
end

let create ?(max_threads = 128) () =
  {
    gp = Atomic.make 1;
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gps = Atomic.make 0;
    gp_completed = Atomic.make 0;
    scanning = Atomic.make 0;
    waitq = Gp.Waitq.create ();
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot 0;
  { rcu; index; slot; nesting = 0; entry_cookie = 0 }

let unregister th =
  if th.nesting <> 0 then
    invalid_arg "Qsbr.unregister: inside a read-side critical section";
  Atomic.set th.slot 0;
  Registry.release th.rcu.slots th.index

let online th =
  if Atomic.get th.slot = 0 then Atomic.set th.slot (Atomic.get th.rcu.gp)

let offline th =
  if th.nesting <> 0 then
    invalid_arg "Qsbr.offline: inside a read-side critical section";
  Atomic.set th.slot 0

let quiescent_state th =
  if th.nesting <> 0 then
    invalid_arg "Qsbr.quiescent_state: inside a read-side critical section";
  Atomic.set th.slot (Atomic.get th.rcu.gp)

(* The S adapter: the outermost read_lock goes online; the outermost
   read_unlock announces quiescence and goes offline, so idle registered
   threads never stall writers. Nested sections cost nothing. *)
let read_lock th =
  if Lockdep.enabled () then Lockdep.rcu_read_enter ~slot:th.index;
  if th.nesting = 0 then begin
    online th;
    if San.enabled () then
      th.entry_cookie <- Protocol.Qsbr.snap ~gp:(Atomic.get th.rcu.gp);
    if Metrics.enabled () then
      Stats.incr Metrics.rcu_read_sections th.index;
    Trace.record Read_enter th.index
  end
  else if Atomic.get quiesce_in_section_bug then
    (* Seeded bug (c): a nested entry treated as a quiescent state — the
       slot jumps to the current counter, releasing any scan that was
       waiting for this (still running) section. *)
    Atomic.set th.slot (Atomic.get th.rcu.gp);
  th.nesting <- th.nesting + 1

let read_unlock th =
  (* Lockdep first (see Epoch_rcu.read_unlock). *)
  if Lockdep.enabled () then Lockdep.rcu_read_exit ();
  if th.nesting <= 0 then
    invalid_arg "Qsbr.read_unlock: not inside a read-side critical section";
  th.nesting <- th.nesting - 1;
  if th.nesting = 0 then begin
    Atomic.set th.slot 0;
    Trace.record Read_exit th.index
  end

let read_gp_seq rcu = Protocol.Qsbr.snap ~gp:(Atomic.get rcu.gp)

let poll rcu snap =
  Protocol.Qsbr.covered ~gp_completed:(Atomic.get rcu.gp_completed) ~snap

let rec post_completed completed n =
  let cur = Atomic.get completed in
  if cur < n && not (Atomic.compare_and_set completed cur n) then
    post_completed completed n

(* One scan: advance the grace period, then wait for each online thread to
   catch up or go offline. Lock-free: concurrent scans wait for (at least)
   their own target. With coalescing on, a scan overtaken by a later one
   (a scan with a higher target posted [gp_completed] past ours, and its
   counter advance followed ours) aborts its remaining slot waits. *)
let scan rcu t0 =
  let target = Atomic.fetch_and_add rcu.gp 2 + 2 in
  if Fault.enabled () then Fault.inject fault_wait;
  let overtaken () =
    Gp.coalescing ()
    && Protocol.Qsbr.covered
         ~gp_completed:(Atomic.get rcu.gp_completed)
         ~snap:target
  in
  let armed = Stall.armed () in
  let thr = if armed then Stall.threshold_ns () else 0 in
  let n = Registry.capacity rcu.slots in
  let i = ref 0 in
  let aborted = ref false in
  while (not !aborted) && !i < n do
    let slot = Registry.get rcu.slots !i in
    let b = Backoff.create () in
    let deadline = ref (t0 + thr) in
    let waiting = ref true in
    while !waiting do
      let v = Atomic.get slot in
      if not (Protocol.Qsbr.blocks ~target v) then waiting := false
      else if overtaken () then begin
        aborted := true;
        waiting := false
      end
      else begin
        Backoff.once b;
        if armed then begin
          let now = Metrics.now_ns () in
          if now > !deadline then begin
            let v = Atomic.get slot in
            if Protocol.Qsbr.blocks ~target v then
              (* nesting: 1 = online behind the target; phase: the
                 grace-period snapshot the reader is stuck at. *)
              Stall.note
                (Stall.report ~flavour:name ~slot:!i ~nesting:1 ~phase:v
                   ~elapsed_ns:(now - t0)
                   ~grace_periods:(Atomic.get rcu.gps));
            deadline := now + thr
          end
        end
      end
    done;
    incr i
  done;
  if not !aborted then post_completed rcu.gp_completed target

let synchronize rcu =
  (* RCU rule 1 (lockdep-enforced, see Epoch_rcu.synchronize). *)
  if Lockdep.enabled () then Lockdep.check_sync ();
  let t0 = Metrics.now_ns () in
  Trace.record Sync_start (Metrics.slot ());
  (* Snapshot before anything else: satisfied once a scan targeting at
     least [gp + 2] completes — such a scan advanced the counter, and then
     checked every slot, after this point. *)
  let snap = Protocol.Qsbr.snap ~gp:(Atomic.get rcu.gp) in
  let coalesced = ref false in
  let finished = ref false in
  while not !finished do
    if Gp.coalescing () && poll rcu snap then begin
      (* A scan targeting >= [snap] already finished: someone else's grace
         period covers this call entirely. *)
      coalesced := true;
      finished := true
    end
    else if (not (Gp.coalescing ())) || Atomic.get rcu.scanning = 0 then begin
      (* Drive a scan ourselves; its target is taken after [snap], so one
         scan always suffices. *)
      coalesced := false;
      Atomic.incr rcu.scanning;
      Fun.protect
        ~finally:(fun () ->
          (* Wake the piggybackers whether the scan completed, aborted as
             overtaken, or raised — they re-check and either return or
             take over the scanning themselves. *)
          Atomic.decr rcu.scanning;
          Gp.Waitq.broadcast rcu.waitq)
        (fun () ->
          (* Cede the CPU before the scan claims its target, so newly
             woken synchronizers snapshot below it and the scan covers
             them (see Epoch_rcu). *)
          if Gp.coalescing () && Gp.Waitq.waiters rcu.waitq > 0 then
            Unix.sleepf 1e-9;
          scan rcu t0);
      finished := true
    end
    else begin
      (* Piggyback on the scan in flight, with the adaptive
         spin/nap/block wait (see Epoch_rcu). If the finished scan proves
         too old and nothing else is scanning, the branch above takes
         over. [Gp.Waitq.wait] re-checks the block predicate under its
         mutex so a completion between the gate check and the wait
         cannot be missed. *)
      coalesced := true;
      let covered () = poll rcu snap in
      let spins = ref 0 in
      while (not (covered ())) && Atomic.get rcu.scanning > 0 && !spins < 64 do
        Domain.cpu_relax ();
        incr spins
      done;
      let naps = ref 0 in
      while (not (covered ())) && Atomic.get rcu.scanning > 0 && !naps < 2 do
        Unix.sleepf 1e-9;
        incr naps
      done;
      if (not (covered ())) && Atomic.get rcu.scanning > 0 && Gp.coalescing ()
      then
        Gp.Waitq.wait rcu.waitq ~block_if:(fun () ->
            (not (covered ()))
            && Atomic.get rcu.scanning > 0
            && Gp.coalescing ())
    end
  done;
  ignore (Atomic.fetch_and_add rcu.gps 1);
  let dt = Metrics.now_ns () - t0 in
  if Metrics.enabled () then begin
    Stats.Timer.record Metrics.grace_period_ns (Metrics.slot ()) dt;
    if !coalesced then Stats.incr Metrics.sync_coalesced (Metrics.slot ())
  end;
  if !coalesced then Trace.record Sync_coalesced (Metrics.slot ());
  Trace.record Sync_end dt

let cond_synchronize rcu snap =
  (* Checked even on the elided path (see Epoch_rcu.cond_synchronize). *)
  if Lockdep.enabled () then Lockdep.check_sync ();
  if not (poll rcu snap) then synchronize rcu

let grace_periods rcu = Atomic.get rcu.gps
let gp_cookie rcu = read_gp_seq rcu
let reader_slot th = th.index
let reader_cookie th = th.entry_cookie
