(* call_rcu for the user-space flavours: per-producer, epoch-tagged
   retired bags drained by one background reclaimer domain per RCU
   instance.

   [Defer] (PR 3) batches retirements but still charges a grace period to
   the *retiring* thread at every flush — the Citrus two-child delete,
   and therefore every serving-layer updater behind it, blocks inline.
   This module moves the wait off the hot path entirely, the
   rcu_free/call_rcu discipline of the kernel and of oscarlab/versioning
   (SNIPPETS.md §3): [call_rcu] appends the callback plus its
   [read_gp_seq] cookie into the calling domain's bag — two atomic
   stores, no synchronization — and the reclaimer domain polls
   [poll]/[cond_synchronize] against each cookie and frees in batches.

   Bounded memory: each bag holds at most [watermark] entries; a producer
   that finds its bag full spins briefly (counted — the backpressure
   signal) and then frees inline, so unbounded retirement degrades to the
   old synchronous behaviour instead of OOMing.

   Crash tolerance, shard-updater style (lib/server/shard_router.ml): the
   reclaimer runs under an internal supervisor loop; a crash (injected
   via the "rcu.reclaim.crash" fault point, or real) leaves the
   gathered-but-unfreed remainder in [pending]/[pending_at], and the next
   incarnation resumes from the cursor — a retired pointer is never
   lost. Past [max_restarts] the reclaimer is declared dead, producers
   fall back inline, and [stop] frees whatever remains. *)

module Fault = Repro_fault.Fault
module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats
module Trace = Repro_sync.Trace
module Backoff = Repro_sync.Backoff
module San = Repro_sanitizer.Sanitizer

(* Process-global mode switch and tuning defaults, the [Gp.set_coalescing]
   idiom: one flag consulted at structure-creation time lets the same
   binary A/B inline-synchronize against call_rcu deletes (bench `reclaim`,
   `citrus_tool --call-rcu`) without threading a parameter through every
   DICT constructor. *)

let call_rcu_flag = Atomic.make false

let set_call_rcu b = Atomic.set call_rcu_flag b
let call_rcu_enabled () = Atomic.get call_rcu_flag

(* Environment arming, mirroring REPRO_SANITIZE / REPRO_LOCKDEP: any
   binary can route reclamation through call_rcu without code changes. *)
let () =
  match Sys.getenv_opt "REPRO_CALL_RCU" with
  | Some ("1" | "true" | "yes" | "on") -> set_call_rcu true
  | Some _ | None -> ()

let default_batch = Atomic.make 64
let default_watermark = Atomic.make 1024

let set_batch n =
  if n <= 0 then invalid_arg "Reclaimer.set_batch: batch must be positive";
  Atomic.set default_batch n

let batch () = Atomic.get default_batch

let set_watermark n =
  if n <= 0 then
    invalid_arg "Reclaimer.set_watermark: watermark must be positive";
  Atomic.set default_watermark n

let watermark () = Atomic.get default_watermark

(* How long one grace-period wait may run before [pressure] reports the
   instance saturated. Bag depth alone cannot see a stalled reader: the
   first blocked unlink continuation holds its node locks, updaters
   convoy on those locks and stop retiring, and the bags sit nearly
   empty while reclamation is wedged — the chaos stall-reader scenario.
   A healthy grace period is microseconds to low milliseconds, so 10 ms
   of blocking means readers have stopped completing, not that the
   reclaimer is merely busy. *)
let default_gp_stall_ns = Atomic.make 10_000_000

let set_gp_stall_ns n =
  if n <= 0 then
    invalid_arg "Reclaimer.set_gp_stall_ns: threshold must be positive";
  Atomic.set default_gp_stall_ns n

let gp_stall_ns () = Atomic.get default_gp_stall_ns

(* Test-only seeded mutant: a reclaimer that frees without waiting for the
   retired pointer's grace period — the early-free bug class the whole
   cookie discipline exists to prevent. Set only by the mutation suite
   ([Repro_citrus.Mutation], [citrus_tool mutants]); the sanitizer must
   turn it into a [San.Violation] deterministically. *)
let early_free_bug = Atomic.make false

module Buggy = struct
  let early_free b = Atomic.set early_free_bug b
end

(* Fault point: fires at the top of every reclaim pass, before anything is
   gathered out of the bags — a raise action kills the incarnation at the
   one boundary where no retired pointer is in flight, which is what makes
   the crash-recovery test deterministic about not losing any. *)
let fault_crash = Fault.register "rcu.reclaim.crash"

(* How long a producer spins on a full bag before falling back to an
   inline free. Exponential backoff, so this bounds the wait at roughly a
   millisecond — long enough for a live reclaimer to make room, short
   enough that a wedged one (or a self-enqueue from the reclaimer's own
   callbacks) degrades to the synchronous path instead of deadlocking. *)
let backpressure_spins = 64

module Make (R : Rcu_intf.S) = struct
  type item = { run : unit -> unit; cookie : R.gp_state }

  (* A single-producer bag: the owning domain appends (slot store, then
     head bump), the reclaimer domain consumes (slot clear, then tail
     bump). Slot count = [watermark]; [head]/[tail] are totals, the slot
     index is the total mod capacity. The store orders guarantee a
     consumer that observes the head bump also observes the slot, and a
     producer that observes head - tail < capacity finds its slot
     cleared. *)
  type producer = {
    ring : item option Atomic.t array;
    head : int Atomic.t; (* total enqueued *)
    tail : int Atomic.t; (* total consumed *)
  }

  type t = {
    rcu : R.t;
    batch : int;
    capacity : int; (* per-bag watermark *)
    max_restarts : int;
    producers : producer list Atomic.t;
    stop : bool Atomic.t;
    dead : bool Atomic.t; (* restart budget exhausted *)
    batches : int Atomic.t;
    crashes : int Atomic.t;
    backpressure : int Atomic.t; (* full-bag producer waits *)
    (* Timestamp (ns) of the oldest in-flight grace-period wait, 0 when
       none is blocked. Set by whichever domain (reclaimer or an
       inline-freeing producer) first blocks in [cond_synchronize];
       [pressure] reads it to detect a stalled grace period that bag
       depth cannot show. *)
    blocked_since : int Atomic.t;
    (* The batch gathered out of the bags and how far freeing progressed —
       the crash-holdover protocol of the shard updater: an incarnation
       that dies mid-batch leaves exactly the unfreed remainder here for
       its successor. Only the reclaimer's (single) domain writes these
       while it lives; [stop] reads them after the join. *)
    pending : item array Atomic.t;
    pending_at : int Atomic.t;
    domain_id : int Atomic.t; (* reclaimer domain's id, -1 until spawned *)
    mutable domain : unit Domain.t option;
  }

  let new_producer t =
    let p =
      {
        ring = Array.init t.capacity (fun _ -> Atomic.make None);
        head = Atomic.make 0;
        tail = Atomic.make 0;
      }
    in
    let rec add () =
      let ps = Atomic.get t.producers in
      if not (Atomic.compare_and_set t.producers ps (p :: ps)) then add ()
    in
    add ();
    p

  let bag_depth p = Atomic.get p.head - Atomic.get p.tail

  let pending t =
    List.fold_left
      (fun acc p -> acc + bag_depth p)
      (Array.length (Atomic.get t.pending) - Atomic.get t.pending_at)
      (Atomic.get t.producers)

  let capacity t = t.capacity

  (* Backlog pressure for admission control: the fullest bag's fill
     fraction (the bag about to engage producer backpressure), plus the
     held-over batch — not the bag-count-diluted total, which would hide
     one wedged producer behind many idle ones — plus 1.0 whenever a
     grace-period wait has been blocked past [gp_stall_ns]. The stall
     term is what makes a parked reader visible: its first blocked
     unlink continuation holds node locks, updaters convoy on them and
     stop retiring, so the bags stay nearly empty exactly when
     reclamation is most wedged. Racy snapshot; > 1.0 means saturated
     (a stalled grace period, or a held-over batch on a full bag). *)
  let pressure t =
    let hot =
      List.fold_left (fun acc p -> max acc (bag_depth p)) 0
        (Atomic.get t.producers)
    in
    let held =
      Array.length (Atomic.get t.pending) - Atomic.get t.pending_at
    in
    let base =
      float_of_int (max 0 hot + max 0 held) /. float_of_int t.capacity
    in
    let since = Atomic.get t.blocked_since in
    if since > 0 && Metrics.now_ns () - since > gp_stall_ns () then
      base +. 1.0
    else base

  (* Grace-period wait with stall bookkeeping: the first domain to block
     claims [blocked_since] (CAS from 0) and clears it when the wait
     returns — including by exception ([Stall.Stalled] in fail mode, a
     lockdep violation). Concurrent waiters past the first don't extend
     the window; good enough for a monitoring signal. *)
  let timed_synchronize t cookie =
    if not (R.poll t.rcu cookie) then begin
      let claimed =
        Atomic.compare_and_set t.blocked_since 0 (Metrics.now_ns ())
      in
      Fun.protect
        ~finally:(fun () ->
          if claimed then Atomic.set t.blocked_since 0)
        (fun () -> R.cond_synchronize t.rcu cookie)
    end

  (* Consumer side; single-threaded (the reclaimer domain, or [stop] after
     the join). *)
  let take p =
    let tl = Atomic.get p.tail in
    if tl >= Atomic.get p.head then None
    else begin
      let i = tl mod Array.length p.ring in
      match Atomic.get p.ring.(i) with
      | None -> None (* head bumped, slot store not yet visible: skip *)
      | Some it ->
          Atomic.set p.ring.(i) None;
          Atomic.set p.tail (tl + 1);
          Some it
    end

  let free_item t it =
    (* The elision path: most items in a batch share (or trail) the first
       item's grace period, so after one real wait the rest are satisfied
       [poll]s. The seeded early-free mutant skips the wait — that free
       races pre-existing readers, which is what the sanitizer catches. *)
    if not (Atomic.get early_free_bug) then timed_synchronize t it.cookie;
    it.run ()

  (* Free the held-over batch, advancing the cursor only after each item
     so a crash resumes exactly where this incarnation stopped. *)
  let run_pending t =
    let arr = Atomic.get t.pending in
    while Atomic.get t.pending_at < Array.length arr do
      let i = Atomic.get t.pending_at in
      free_item t arr.(i);
      Atomic.set t.pending_at (i + 1)
    done;
    Atomic.set t.pending [||];
    Atomic.set t.pending_at 0

  (* One reclaim pass: finish any held-over batch, then gather up to
     [batch] items across the bags and free them. Returns false when the
     bags were empty. *)
  let reclaim_once t =
    if Fault.enabled () then Fault.inject fault_crash;
    run_pending t;
    let ps = Atomic.get t.producers in
    let depth = List.fold_left (fun acc p -> acc + bag_depth p) 0 ps in
    if depth = 0 then false
    else begin
      let buf = ref [] in
      let n = ref 0 in
      let rec gather p =
        if !n < t.batch then
          match take p with
          | Some it ->
              buf := it :: !buf;
              incr n;
              gather p
          | None -> ()
      in
      List.iter gather ps;
      Atomic.set t.pending (Array.of_list (List.rev !buf));
      Atomic.set t.pending_at 0;
      if Metrics.enabled () then begin
        let s = Metrics.slot () in
        Stats.incr Metrics.reclaim_batches s;
        (* Depth sample, not a duration: mean/max backlog in snapshots. *)
        Stats.Timer.record Metrics.reclaim_backlog s depth
      end;
      run_pending t;
      Atomic.incr t.batches;
      Trace.record Reclaim !n;
      true
    end

  let rec loop t =
    if reclaim_once t then loop t
    else if not (Atomic.get t.stop) then begin
      (* Idle: sleep rather than spin — an idle tree's reclaimer must not
         burn a core. 200us bounds the added reclamation latency, which
         nothing waits on. *)
      Unix.sleepf 0.0002;
      loop t
    end
  (* else: stopping and every bag is empty — exit, [stop] joins us. *)

  let supervise t () =
    Atomic.set t.domain_id (Domain.self () :> int);
    let rec go () =
      match loop t with
      | () -> ()
      | exception e ->
          Atomic.incr t.crashes;
          if Atomic.get t.crashes > t.max_restarts then begin
            Atomic.set t.dead true;
            Printf.eprintf
              "repro_rcu: reclaimer (%s) past restart budget (%d): %s — \
               falling back to inline frees\n\
               %!"
              R.name t.max_restarts (Printexc.to_string e)
          end
          else go ()
    in
    go ()

  let create ?batch:b ?watermark:w ?(max_restarts = 8) rcu =
    let batch = match b with Some b -> b | None -> batch () in
    let capacity = match w with Some w -> w | None -> watermark () in
    if batch <= 0 then invalid_arg "Reclaimer.create: batch must be positive";
    if capacity <= 0 then
      invalid_arg "Reclaimer.create: watermark must be positive";
    let t =
      {
        rcu;
        batch;
        capacity;
        max_restarts;
        producers = Atomic.make [];
        stop = Atomic.make false;
        dead = Atomic.make false;
        batches = Atomic.make 0;
        crashes = Atomic.make 0;
        backpressure = Atomic.make 0;
        blocked_since = Atomic.make 0;
        pending = Atomic.make [||];
        pending_at = Atomic.make 0;
        domain_id = Atomic.make (-1);
        domain = None;
      }
    in
    t.domain <- Some (Domain.spawn (supervise t));
    t

  let inline_free t it =
    timed_synchronize t it.cookie;
    it.run ()

  (* [shadow] threading mirrors [Defer.defer]: Deferred at enqueue (so a
     double-retire is rejected with the bag untouched), Reclaimed when the
     callback finally runs after its grace period — on whichever domain
     frees it. *)
  let call_rcu t p ?shadow f =
    let f =
      match shadow with
      | None -> f
      | Some s ->
          San.on_defer s ~gp:(R.gp_cookie t.rcu);
          fun () ->
            San.on_reclaim ~gp:(R.gp_cookie t.rcu) s;
            f ()
    in
    let it = { run = f; cookie = R.read_gp_seq t.rcu } in
    if Atomic.get t.dead || Atomic.get t.stop then inline_free t it
    else begin
      let b = Backoff.create () in
      let rec admit spins engaged =
        if Atomic.get t.dead then begin
          if engaged then Atomic.incr t.backpressure;
          inline_free t it
        end
        else if bag_depth p >= t.capacity then
          if spins >= backpressure_spins then begin
            (* Watermark held past the bounded wait: free inline rather
               than grow without bound (or deadlock a reclaimer callback
               retiring into its own full bag). *)
            Atomic.incr t.backpressure;
            inline_free t it
          end
          else begin
            Backoff.once b;
            admit (spins + 1) true
          end
        else begin
          let i = Atomic.get p.head mod Array.length p.ring in
          Atomic.set p.ring.(i) (Some it);
          Atomic.incr p.head;
          if engaged then Atomic.incr t.backpressure;
          if Metrics.enabled () then
            Stats.incr Metrics.call_rcu_enqueued (Metrics.slot ())
        end
      in
      admit 0 false
    end

  (* Teardown: close the gate (late retirers go inline), join the
     reclaimer — it exits once stopping and empty — then sweep whatever a
     dead reclaimer left behind. After [stop] returns every retired
     pointer has been freed, which is what the sanitizer's [audit] checks
     in the lifecycle tests. Callers must have quiesced their producers
     first (Citrus does this by stopping at tree-shutdown time, after all
     handles unregistered). *)
  let stop t =
    if not (Atomic.get t.stop) then begin
      Atomic.set t.stop true;
      (match t.domain with Some d -> Domain.join d | None -> ());
      t.domain <- None;
      run_pending t;
      let rec sweep p =
        match take p with
        | Some it ->
            inline_free t it;
            sweep p
        | None -> ()
      in
      List.iter sweep (Atomic.get t.producers)
    end

  let on_reclaimer_domain t =
    (Domain.self () :> int) = Atomic.get t.domain_id

  let stopped t = Atomic.get t.stop
  let batches t = Atomic.get t.batches
  let crashes t = Atomic.get t.crashes
  let backpressure_waits t = Atomic.get t.backpressure
  let alive t = (not (Atomic.get t.dead)) && not (Atomic.get t.stop)
end
