(** The rcutorture harness as a library, shared by the alcotest suite and
    [citrus_tool torture].

    Writers replace elements in shared slots and mark the old element
    freed only after a grace period; readers flag an error if they ever
    observe a freed element inside a read-side critical section. Zero
    errors is the correctness criterion for every configuration and every
    RCU flavour.

    Beyond the classic rcutorture axes, a run can arm fault-injection
    points ({!config.faults}), park a reader inside its critical section
    to provoke a grace-period stall ({!config.reader_park_ms}), arm
    the stall watchdog ({!config.stall_ms}, {!config.stall_fail}), and
    arm the reclamation sanitizer ({!config.sanitize}): every element
    then carries a shadow record ([Repro_sanitizer.Sanitizer]) through
    its Deferred/Reclaimed lifecycle, readers check it on every touch,
    and the outcome reports violations and leaked deferrals. [run] owns
    the process-global fault, watchdog and sanitizer state for its
    duration and restores them before returning, even on exceptions. *)

type config = {
  readers : int;
  writers : int;
  slots : int;  (** shared element slots under contention *)
  updates_per_writer : int;
  nest : bool;  (** readers use nested read-side sections *)
  reader_delay : bool;  (** readers dawdle inside the critical section *)
  use_defer : bool;  (** writers free through [Defer] instead of inline *)
  use_poll : bool;
      (** writers take a grace-period cookie ([read_gp_seq]) after
          unpublishing, dawdle, then free through [cond_synchronize] —
          exercising the polled/elided grace-period path instead of an
          unconditional [synchronize] *)
  use_call_rcu : bool;
      (** writers hand frees to a background {!Reclaimer} domain
          (epoch-tagged bags, one per writer) instead of waiting for any
          grace period themselves; takes precedence over [use_defer] and
          [use_poll]. The reclaimer is stopped (all frees forced) before
          the leak audit. *)
  reader_park_ms : int;
      (** if > 0, reader 0 parks this long inside one critical section at
          start — the canonical stalled-grace-period schedule *)
  faults : (string * float * Repro_fault.Fault.action option) list;
      (** fault points to arm for this run: (name, rate, action
          override) *)
  stall_ms : int;  (** if > 0, arm the stall watchdog at this threshold *)
  stall_fail : bool;  (** watchdog mode: [true] = fail, [false] = warn *)
  sanitize : bool;
      (** arm the reclamation sanitizer for this run: elements carry
          shadow records, readers check them on every dereference, and
          the outcome counts {!outcome.violations} and {!outcome.leaks} *)
  lockdep : bool;
      (** arm the lockdep validator ([Repro_lockdep.Lockdep]) for this
          run: every lock acquisition/release and every read-side
          entry/exit is validated against the locking protocol, and the
          outcome counts {!outcome.lockdep_violations} (must be 0 — the
          harness and the flavours follow the protocol) *)
  verbose : bool;  (** print stall reports and a per-run summary *)
}

val default : config
(** The baseline: 2 readers / 1 writer / 4 slots / 300 updates, no
    faults, watchdog off. Override fields as needed. *)

type outcome = {
  errors : int;  (** freed-element observations; must be 0 *)
  grace_periods : int;
  stalls : int;  (** stall reports emitted by the watchdog *)
  stalled_writers : int;
      (** writers that aborted on {!Rcu.Stalled} (fail mode only) *)
  violations : int;
      (** reclamation-sanitizer violations caught ([sanitize] runs only;
          the run stops at the first one). Must be 0 on a correct
          flavour; the mutation suite requires > 0 on the seeded-buggy
          ones. *)
  leaks : int;
      (** shadow records still [Deferred] after every writer drained —
          frees promised but never executed. Audited only on violation-free
          [sanitize] runs; must be 0. *)
  lockdep_violations : int;
      (** lockdep violations observed during the run ([lockdep] runs
          only); must be 0 on the clean harness *)
}

module Make (R : Rcu_intf.S) : sig
  val run : ?seed:int -> config -> outcome
  (** Run one torture configuration to completion. [seed] (default 42)
      drives both the harness RNGs and the fault-injection streams, so a
      failing schedule replays from its seed.
      @raise Repro_fault.Fault.Unknown_point before spawning anything if
        [cfg.faults] names an unregistered point. *)
end

val flavours : string list
(** Names accepted by {!run_flavour} (the [Rcu.implementations] keys). *)

val run_flavour : ?seed:int -> string -> config -> outcome
(** [run_flavour name cfg] dispatches over {!Rcu.implementations}.
    @raise Invalid_argument on an unknown flavour name. *)
