module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff
module Spinlock = Repro_sync.Spinlock
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault
module San = Repro_sanitizer.Sanitizer
module Lockdep = Repro_lockdep.Lockdep

(* Per-thread word layout (as in liburcu): low 16 bits = nesting count,
   bit 16 = phase. A thread is a quiescent reader when its nesting bits are
   zero; it blocks a grace period when it is nested *and* its phase bit
   differs from the current global phase. The encodings themselves live
   in Protocol.Urcu, shared with the model checker (lib/modelcheck). *)
let nest_mask = Protocol.Urcu.nest_mask
let phase_bit = Protocol.Urcu.phase_bit

type t = {
  gp_ctr : int Atomic.t; (* phase bit only; low bits unused globally *)
  slots : int Atomic.t Registry.t;
  gp_lock : Spinlock.t;
  gps : int Atomic.t;
  (* Grace-period sequence, Linux gp_seq encoding in one word:
     [(completed lsl 1) lor in_progress]. Only the gp_lock holder writes
     it; transitions are idle(k) -> in-progress(k) -> idle(k+1), so the
     word is monotonic and [gp_seq lsr 1] is the completed count. *)
  gp_seq : int Atomic.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : int Atomic.t;
  (* gp_cookie at the last outermost read_lock; written only while the
     reclamation sanitizer is armed. *)
  mutable entry_cookie : int;
}

type gp_state = int
(* A completed-count target: satisfied once [gp_seq lsr 1 >= snap]. *)

let name = "urcu"

(* Fault point: fires after the global grace-period lock is taken and
   before the first phase flip — a delay here extends every queued
   updater's wait, the exact serialization Figure 8 measures. *)
let fault_pre_flip = Fault.register "urcu.sync.pre_flip"

(* Fault point: fires in the outermost read_lock between loading the
   global phase and publishing it in the slot — the stale-phase window
   the two-flip handshake exists for. Stretching it (and crippling the
   handshake with [Buggy.single_flip]) is how the mutation suite proves
   the reclamation sanitizer catches a single-flip urcu. *)
let fault_read_enter = Fault.register "urcu.read.enter"

(* Mutation-testing hook (see ROBUSTNESS.md and lib/citrus/mutation.ml):
   when set, [synchronize] performs only ONE phase flip + reader wait
   instead of liburcu's two — the classic broken-urcu bug. Never set
   outside the mutation suite. *)
let single_flip_bug = Atomic.make false

module Buggy = struct
  let single_flip b = Atomic.set single_flip_bug b
end

(* One lockdep class for every urcu instance's grace-period lock: its
   role in the dependency graph (GP waits serialize behind it, tree-node
   locks are routinely held across it) is the same whichever tree owns
   the instance. *)
let gp_lock_cls = Lockdep.new_class Lockdep.Gp "urcu/gp_lock"

let create ?(max_threads = 128) () =
  {
    gp_ctr = Atomic.make 0;
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gp_lock = Spinlock.create ~cls:gp_lock_cls ();
    gps = Atomic.make 0;
    gp_seq = Atomic.make 0;
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot 0;
  { rcu; index; slot; entry_cookie = 0 }

let read_depth th = Atomic.get th.slot land nest_mask

let unregister th =
  if read_depth th <> 0 then
    invalid_arg "Urcu.unregister: inside a read-side critical section";
  Registry.release th.rcu.slots th.index

(* Defined before [read_lock] so the sanitizer entry cookie can reuse it.
   A snapshot is satisfied once the completed count reaches it. If a grace
   period is in progress at snapshot time ([in_progress] set), it may have
   flipped the phase before our updates were published, so the snapshot
   must demand the *next* full grace period: completed + 2 in-progress vs
   completed + 1 idle — the same "one extra if started" rule as Linux's
   get_state_synchronize_rcu. *)
let read_gp_seq rcu = Protocol.Urcu.snap ~gp_seq:(Atomic.get rcu.gp_seq)
let poll rcu snap = Protocol.Urcu.covered ~gp_seq:(Atomic.get rcu.gp_seq) ~snap

let read_lock th =
  if Lockdep.enabled () then Lockdep.rcu_read_enter ~slot:th.index;
  let v = Atomic.get th.slot in
  if v land nest_mask = 0 then begin
    (* Outermost: adopt the current global phase with nesting 1. *)
    let phase = Atomic.get th.rcu.gp_ctr in
    if Fault.enabled () then Fault.inject fault_read_enter;
    Atomic.set th.slot (Protocol.Urcu.enter_word ~phase);
    if San.enabled () then th.entry_cookie <- read_gp_seq th.rcu;
    if Metrics.enabled () then
      Stats.incr Metrics.rcu_read_sections th.index;
    Trace.record Read_enter th.index
  end
  else Atomic.set th.slot (v + 1)

let read_unlock th =
  (* Lockdep first (see Epoch_rcu.read_unlock). *)
  if Lockdep.enabled () then Lockdep.rcu_read_exit ();
  let v = Atomic.get th.slot in
  if v land nest_mask = 0 then
    invalid_arg "Urcu.read_unlock: not inside a read-side critical section";
  Atomic.set th.slot (v - 1);
  if (v - 1) land nest_mask = 0 then Trace.record Read_exit th.index

(* A reader blocks the current phase if it is inside a critical section it
   entered before the latest phase flip. *)
let ongoing gp_phase v = Protocol.Urcu.ongoing ~gp_phase v

let wait_for_readers rcu t0 =
  let gp_phase = Atomic.get rcu.gp_ctr in
  if not (Stall.armed ()) then
    (* Watchdog off (the default): the exact pre-watchdog wait loop. *)
    Registry.iter
      (fun slot ->
        let b = Backoff.create () in
        while ongoing gp_phase (Atomic.get slot) do
          Backoff.once b
        done)
      rcu.slots
  else begin
    let thr = Stall.threshold_ns () in
    Registry.iteri
      (fun i slot ->
        let b = Backoff.create () in
        let deadline = ref (t0 + thr) in
        while ongoing gp_phase (Atomic.get slot) do
          Backoff.once b;
          let now = Metrics.now_ns () in
          if now > !deadline then begin
            let v = Atomic.get slot in
            if ongoing gp_phase v then
              Stall.note
                (Stall.report ~flavour:name ~slot:i ~nesting:(v land nest_mask)
                   ~phase:((v land phase_bit) lsr 16)
                   ~elapsed_ns:(now - t0)
                   ~grace_periods:(Atomic.get rcu.gps));
            (* One report per threshold window (warn mode keeps waiting). *)
            deadline := now + thr
          end
        done)
      rcu.slots
  end

let synchronize rcu =
  (* The grace-period timer starts before the gp_lock acquisition: queueing
     on that global lock is precisely the updater serialization Figure 8
     measures, so it counts as grace-period time. The lock's own wait also
     lands in lock_wait_ns via the instrumented spinlock. *)
  (* RCU rule 1 (lockdep-enforced, see Epoch_rcu.synchronize) — checked
     before queueing on the gp_lock, which a reader could block forever. *)
  if Lockdep.enabled () then Lockdep.check_sync ();
  let t0 = Metrics.now_ns () in
  Trace.record Sync_start (Metrics.slot ());
  let snap = read_gp_seq rcu in
  Spinlock.acquire rcu.gp_lock;
  (* Re-check after the lock queue: every grace period that completed while
     we waited was driven under this lock, after our snapshot — if one of
     them covers us we piggyback on it instead of flipping again. This is
     what turns N queued synchronizers into O(1) grace periods instead of
     N back-to-back ones. *)
  let coalesced = Gp.coalescing () && poll rcu snap in
  if not coalesced then begin
    if Fault.enabled () then Fault.inject fault_pre_flip;
    let completed = Protocol.Urcu.seq_completed (Atomic.get rcu.gp_seq) in
    Atomic.set rcu.gp_seq (Protocol.Urcu.seq_in_progress ~completed);
    (* Two phase flips, as in liburcu: a single flip cannot distinguish a
       reader that started just before the flip from one that started just
       after, so the grace period performs the handshake twice. *)
    (try
       Atomic.set rcu.gp_ctr (Atomic.get rcu.gp_ctr lxor phase_bit);
       wait_for_readers rcu t0;
       if not (Atomic.get single_flip_bug) then begin
         Atomic.set rcu.gp_ctr (Atomic.get rcu.gp_ctr lxor phase_bit);
         wait_for_readers rcu t0
       end
     with e ->
       (* Stall.Stalled in fail mode: clear the in-progress bit (the grace
          period did not complete; leaving the bit set would make every
          later snapshot demand one extra grace period forever) and release
          the global lock so other updaters are not wedged behind an
          abandoned grace period. The phase flips already performed are
          harmless — the next synchronize flips again and waits properly. *)
       Atomic.set rcu.gp_seq (Protocol.Urcu.seq_idle ~completed);
       Spinlock.release rcu.gp_lock;
       raise e);
    Atomic.set rcu.gp_seq (Protocol.Urcu.seq_idle ~completed:(completed + 1))
  end;
  ignore (Atomic.fetch_and_add rcu.gps 1);
  Spinlock.release rcu.gp_lock;
  let dt = Metrics.now_ns () - t0 in
  if Metrics.enabled () then begin
    Stats.Timer.record Metrics.grace_period_ns (Metrics.slot ()) dt;
    if coalesced then Stats.incr Metrics.sync_coalesced (Metrics.slot ())
  end;
  if coalesced then Trace.record Sync_coalesced (Metrics.slot ());
  Trace.record Sync_end dt

let cond_synchronize rcu snap =
  (* Checked even on the elided path (see Epoch_rcu.cond_synchronize). *)
  if Lockdep.enabled () then Lockdep.check_sync ();
  if not (poll rcu snap) then synchronize rcu

let grace_periods rcu = Atomic.get rcu.gps
let gp_cookie rcu = read_gp_seq rcu
let reader_slot th = th.index
let reader_cookie th = th.entry_cookie
