module Registry = Repro_sync.Registry
module Backoff = Repro_sync.Backoff
module Spinlock = Repro_sync.Spinlock
module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Fault = Repro_fault.Fault

(* Per-thread word layout (as in liburcu): low 16 bits = nesting count,
   bit 16 = phase. A thread is a quiescent reader when its nesting bits are
   zero; it blocks a grace period when it is nested *and* its phase bit
   differs from the current global phase. *)
let nest_mask = 0xFFFF
let phase_bit = 1 lsl 16

type t = {
  gp_ctr : int Atomic.t; (* phase bit only; low bits unused globally *)
  slots : int Atomic.t Registry.t;
  gp_lock : Spinlock.t;
  gps : int Atomic.t;
}

type thread = {
  rcu : t;
  index : int;
  slot : int Atomic.t;
}

let name = "urcu"

(* Fault point: fires after the global grace-period lock is taken and
   before the first phase flip — a delay here extends every queued
   updater's wait, the exact serialization Figure 8 measures. *)
let fault_pre_flip = Fault.register "urcu.sync.pre_flip"

let create ?(max_threads = 128) () =
  {
    gp_ctr = Atomic.make 0;
    slots =
      Registry.create ~capacity:max_threads ~make:(fun _ ->
          Repro_sync.Padding.spaced_atomic 0);
    gp_lock = Spinlock.create ();
    gps = Atomic.make 0;
  }

let register rcu =
  let index = Registry.acquire rcu.slots in
  let slot = Registry.get rcu.slots index in
  Atomic.set slot 0;
  { rcu; index; slot }

let read_depth th = Atomic.get th.slot land nest_mask

let unregister th =
  if read_depth th <> 0 then
    invalid_arg "Urcu.unregister: inside a read-side critical section";
  Registry.release th.rcu.slots th.index

let read_lock th =
  let v = Atomic.get th.slot in
  if v land nest_mask = 0 then begin
    (* Outermost: adopt the current global phase with nesting 1. *)
    Atomic.set th.slot (Atomic.get th.rcu.gp_ctr lor 1);
    if Metrics.enabled () then
      Stats.incr Metrics.rcu_read_sections th.index;
    Trace.record Read_enter th.index
  end
  else Atomic.set th.slot (v + 1)

let read_unlock th =
  let v = Atomic.get th.slot in
  if v land nest_mask = 0 then
    invalid_arg "Urcu.read_unlock: not inside a read-side critical section";
  Atomic.set th.slot (v - 1);
  if (v - 1) land nest_mask = 0 then Trace.record Read_exit th.index

(* A reader blocks the current phase if it is inside a critical section it
   entered before the latest phase flip. *)
let ongoing gp_phase v = v land nest_mask <> 0 && v land phase_bit <> gp_phase

let wait_for_readers rcu t0 =
  let gp_phase = Atomic.get rcu.gp_ctr in
  if not (Stall.armed ()) then
    (* Watchdog off (the default): the exact pre-watchdog wait loop. *)
    Registry.iter
      (fun slot ->
        let b = Backoff.create () in
        while ongoing gp_phase (Atomic.get slot) do
          Backoff.once b
        done)
      rcu.slots
  else begin
    let thr = Stall.threshold_ns () in
    Registry.iteri
      (fun i slot ->
        let b = Backoff.create () in
        let deadline = ref (t0 + thr) in
        while ongoing gp_phase (Atomic.get slot) do
          Backoff.once b;
          let now = Metrics.now_ns () in
          if now > !deadline then begin
            let v = Atomic.get slot in
            if ongoing gp_phase v then
              Stall.note
                (Stall.report ~flavour:name ~slot:i ~nesting:(v land nest_mask)
                   ~phase:((v land phase_bit) lsr 16)
                   ~elapsed_ns:(now - t0)
                   ~grace_periods:(Atomic.get rcu.gps));
            (* One report per threshold window (warn mode keeps waiting). *)
            deadline := now + thr
          end
        done)
      rcu.slots
  end

let synchronize rcu =
  (* The grace-period timer starts before the gp_lock acquisition: queueing
     on that global lock is precisely the updater serialization Figure 8
     measures, so it counts as grace-period time. The lock's own wait also
     lands in lock_wait_ns via the instrumented spinlock. *)
  let t0 = Metrics.now_ns () in
  Trace.record Sync_start 0;
  Spinlock.acquire rcu.gp_lock;
  if Fault.enabled () then Fault.inject fault_pre_flip;
  (* Two phase flips, as in liburcu: a single flip cannot distinguish a
     reader that started just before the flip from one that started just
     after, so the grace period performs the handshake twice. *)
  (try
     Atomic.set rcu.gp_ctr (Atomic.get rcu.gp_ctr lxor phase_bit);
     wait_for_readers rcu t0;
     Atomic.set rcu.gp_ctr (Atomic.get rcu.gp_ctr lxor phase_bit);
     wait_for_readers rcu t0
   with e ->
     (* Stall.Stalled in fail mode: release the global lock so other
        updaters are not wedged behind an abandoned grace period. The
        phase flips already performed are harmless — the next synchronize
        flips again and waits properly. *)
     Spinlock.release rcu.gp_lock;
     raise e);
  ignore (Atomic.fetch_and_add rcu.gps 1);
  Spinlock.release rcu.gp_lock;
  let dt = Metrics.now_ns () - t0 in
  if Metrics.enabled () then
    Stats.Timer.record Metrics.grace_period_ns (Metrics.slot ()) dt;
  Trace.record Sync_end dt

let grace_periods rcu = Atomic.get rcu.gps
