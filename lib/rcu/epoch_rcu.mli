(** The paper's new RCU implementation (Section 5, "New RCU").

    Each thread owns one padded atomic word packing
    [(critical-section count) * 2 + (inside-critical-section flag)]:

    - [read_lock] increments the count and sets the flag, in one store;
    - [read_unlock] clears the flag;
    - [synchronize] snapshots every slot and, for each slot whose flag was
      set, waits until the word changes — i.e. the reader either finished
      ([flag] cleared) or started a later section ([count] increased).

    Concurrent [synchronize] calls take no lock, which is exactly what lets
    Citrus scale with many updaters (Figure 8, right). The count only
    grows, so "the word changed" is ABA-safe.

    On top of the paper's design this implementation numbers its slot
    scans ([gp_started]/[gp_completed], the lock-free analogue of Linux's
    [gp_seq]) to support the {!Rcu_intf.S.poll} API and to {e coalesce}
    concurrent synchronizers: a [synchronize] that finds a scan already in
    flight waits for the completed number to pass its own snapshot instead
    of re-walking the slots, and a scan overtaken by a later one aborts
    early. See DESIGN.md ("Grace-period sequence numbers and coalescing")
    for the encoding and the proof sketch. *)

include Rcu_intf.S

val read_depth : thread -> int
(** Current read-side nesting depth of this thread (0 = quiescent); for
    assertions in tests. *)
