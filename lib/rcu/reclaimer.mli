(** call_rcu: background reclamation over epoch-tagged retired bags.

    Generalizes {!Defer} from "batch, then the retiring thread pays the
    grace period" to the kernel's [call_rcu] discipline: {!call_rcu}
    appends a callback plus its [read_gp_seq] cookie into the calling
    domain's bag — no synchronization on the hot path beyond two atomic
    stores — and a dedicated background reclaimer domain (one per RCU
    instance, created by {!Make.create}) drains the bags by polling
    [poll]/[cond_synchronize] against each cookie and freeing in batches.
    Updaters therefore never wait for a grace period; see DESIGN.md,
    "call_rcu and retired bags".

    Memory is bounded by a per-bag high watermark: a producer that finds
    its bag full spins briefly (counted in {!Make.backpressure_waits})
    and then frees inline, degrading to the synchronous path rather than
    growing without bound.

    The reclaimer is supervised like a serving-layer updater: a crash —
    injectable at the "rcu.reclaim.crash" fault point — is caught,
    counted, and the restarted incarnation resumes from the
    gathered-but-unfreed remainder, so no retired pointer is ever lost.
    Past the restart budget the reclaimer falls back to inline frees and
    {!Make.stop} sweeps the leftovers. *)

(** {1 Process-global configuration}

    The [Gp.set_coalescing] idiom: one switch consulted at
    structure-creation time ([Repro_citrus.Citrus.create],
    [Repro_dict]), so the same binary can A/B inline-synchronize deletes
    against call_rcu deletes. Off by default. *)

val set_call_rcu : bool -> unit
(** Globally select the call_rcu delete/retire path for structures
    created after the call. Flip only between runs, never while trees
    built under the other setting are still live. Also armed by the
    environment ([REPRO_CALL_RCU=1]), mirroring [REPRO_SANITIZE] /
    [REPRO_LOCKDEP]: any binary can route reclamation through a
    reclaimer domain without code changes. *)

val call_rcu_enabled : unit -> bool

val set_batch : int -> unit
(** Default reclaim batch size (callbacks freed per pass) for reclaimers
    created without an explicit [?batch]. Raises [Invalid_argument] if
    not positive. *)

val batch : unit -> int

val set_watermark : int -> unit
(** Default per-bag capacity (retired pointers a producer may have in
    flight before backpressure engages) for reclaimers created without
    an explicit [?watermark]. Raises [Invalid_argument] if not
    positive. *)

val watermark : unit -> int

val set_gp_stall_ns : int -> unit
(** How long one grace-period wait may block before {!Make.pressure}
    reports the instance saturated (default 10 ms). A healthy grace
    period completes in microseconds to low milliseconds; a wait past
    this threshold means readers have stopped completing — a parked or
    wedged reader — which bag depth alone cannot show (the blocked
    unlink continuation holds node locks, updaters convoy on them, and
    retirement stops while the bags sit nearly empty). Raises
    [Invalid_argument] if not positive. *)

val gp_stall_ns : unit -> int

(** Test-only seeded mutant (mutation suite, [citrus_tool mutants]): a
    reclaimer that frees retired pointers without waiting for their
    grace-period cookies — the early-free bug the cookie discipline
    prevents. The reclamation sanitizer must catch it deterministically;
    never set outside the mutation hunts. *)
module Buggy : sig
  val early_free : bool -> unit
end

module Make (R : Rcu_intf.S) : sig
  type t
  (** One reclaimer: a background domain plus the retired bags it
      drains, bound to one [R.t] RCU instance. *)

  type producer
  (** A single-producer retired bag. One per registered thread
      (Citrus allocates one per handle); never share one across
      domains. *)

  val create : ?batch:int -> ?watermark:int -> ?max_restarts:int -> R.t -> t
  (** Spawn the reclaimer domain. [batch] and [watermark] default to the
      process-global {!val-batch}/{!val-watermark}; [max_restarts]
      (default 8) bounds crash-restarts before the reclaimer declares
      itself dead and producers fall back to inline frees. The caller
      owns the domain and must {!stop} it. *)

  val new_producer : t -> producer
  (** Register a retired bag with the reclaimer. Bags are never removed;
      an abandoned bag simply stays empty. *)

  val call_rcu : t -> producer -> ?shadow:Repro_sanitizer.Sanitizer.record
    -> (unit -> unit) -> unit
  (** [call_rcu t p f] schedules [f] to run after a grace period covering
      every read-side critical section in progress now ([read_gp_seq] is
      snapshotted here). Returns immediately; [f] runs on the reclaimer
      domain — or on the calling domain when the bag is full past the
      bounded backpressure wait, the reclaimer is dead, or [t] is
      stopping (in each case after the grace period, never before).
      [shadow] is carried through the sanitizer lifecycle exactly as in
      [Defer.defer]: Deferred here, Reclaimed when [f] runs. Must be
      called outside any read-side critical section (the inline fallback
      may synchronize). *)

  val stop : t -> unit
  (** Drain every bag (freeing after each item's grace period), join the
      reclaimer domain, and sweep anything a dead reclaimer left behind.
      After [stop] returns, every callback ever passed to {!call_rcu}
      has run — the sanitizer [audit] of a stopped reclaimer's shadows
      reports zero leaked deferrals. Idempotent. Producers must be
      quiescent (no concurrent {!call_rcu}) by the time [stop] is
      called. *)

  val pending : t -> int
  (** Retired pointers not yet freed (racy snapshot). *)

  val capacity : t -> int
  (** The per-bag watermark this reclaimer was created with. *)

  val pressure : t -> float
  (** Backlog pressure: the fullest retired bag's fill fraction against
      the watermark, plus any held-over batch — 0.0 idle, 1.0 at the
      watermark (producer backpressure about to engage) — plus 1.0
      whenever a grace-period wait has been blocked longer than
      {!gp_stall_ns} (a stalled reader: the saturation case bag depth
      cannot see). Values above 1.0 mean saturated. Racy snapshot; the
      serving layer polls it for reclamation-aware admission
      (SERVING.md). *)

  val batches : t -> int
  (** Reclaim passes that freed at least one pointer. *)

  val crashes : t -> int
  (** Reclaimer incarnations that died and were restarted (or, past the
      budget, declared the reclaimer dead). *)

  val backpressure_waits : t -> int
  (** Producer enqueues that found their bag at the watermark and had to
      wait or free inline. *)

  val alive : t -> bool
  (** The background domain is accepting work (not dead, not stopped). *)

  val on_reclaimer_domain : t -> bool
  (** True when called from [t]'s own reclaimer domain — lets a callback
      distinguish running in the background (where it may enqueue
      follow-up work into a reclaimer-owned bag) from running inline on
      a producer via a fallback path (where it must not touch that
      bag: single-producer discipline). *)

  val stopped : t -> bool
end
