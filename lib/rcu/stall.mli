(** Grace-period stall detection (the RCU CPU stall warning, in user
    space).

    [synchronize] only terminates if every pre-existing reader leaves its
    read-side critical section — one stuck reader stalls every updater,
    and without a watchdog that is an undiagnosable hang. When armed, the
    wait loops of all three RCU flavours check elapsed time against a
    threshold and, on exceeding it, emit a structured {!report} naming the
    blocking reader slot: through the configured {!set_handler} callback
    (default: stderr), a [Stall] event in [Repro_sync.Trace], and the
    [rcu_stalls] metric in [Repro_sync.Metrics].

    Two modes: [Warn] keeps waiting and re-emits one report per threshold
    window; [Fail] raises {!Stalled} from [synchronize] so a workload can
    abort cleanly instead of hanging CI. In [Fail] mode the aborted
    [synchronize] provides {e no} grace-period guarantee — callers must
    treat the update as incomplete (rcutorture's writers stop the run).

    Disarmed (the default, and the benchmark configuration), the only cost
    is one atomic load and a branch per [synchronize]: the wait loops are
    the exact pre-watchdog code. Arm from code ({!arm}), the CLI
    ([citrus_tool torture --stall-ms N]) or the environment
    ([REPRO_STALL_MS=N], [REPRO_STALL_MODE=warn|fail]).

    Report format and reproduction recipes: ROBUSTNESS.md. *)

type mode = Warn | Fail

type report = {
  flavour : string;  (** RCU implementation name *)
  slot : int;  (** registry index of the blocking reader slot *)
  nesting : int;
      (** reader nesting as encoded by the flavour: urcu's nesting count,
          qsbr/epoch's in-critical-section flag (0/1) *)
  phase : int;
      (** the phase the reader is stuck in: urcu's phase bit, qsbr's
          grace-period snapshot, epoch's section count *)
  elapsed_ns : int;  (** time since this [synchronize] began *)
  grace_periods : int;  (** grace periods completed before the stall *)
  trace_tail : Repro_sync.Trace.event list;
      (** newest trace events when tracing is on (else []) *)
}

exception Stalled of report
(** Raised by [synchronize] in [Fail] mode. Re-exported as
    [Rcu.Stalled]. *)

val arm : ?mode:mode -> threshold_ns:int -> unit -> unit
(** Arm the watchdog (default mode [Warn]).
    @raise Invalid_argument if [threshold_ns <= 0]. *)

val disarm : unit -> unit

val armed : unit -> bool
val threshold_ns : unit -> int
val current_mode : unit -> mode

val set_handler : (report -> unit) -> unit
(** Replace the report sink (tests count reports; the default prints to
    stderr). The handler runs on the stalled updater's domain, inside
    [synchronize]. *)

val reset_handler : unit -> unit
val default_handler : report -> unit
val to_string : report -> string

(** {2 For the RCU implementations} *)

val report :
  flavour:string ->
  slot:int ->
  nesting:int ->
  phase:int ->
  elapsed_ns:int ->
  grace_periods:int ->
  report
(** Build a report, capturing the trace tail if tracing is enabled. *)

val note : report -> unit
(** Emit: bump [rcu_stalls], record the [Stall] trace event, invoke the
    handler, and raise {!Stalled} in [Fail] mode. Also stamps the
    process-global stall-recency clock read by {!recently_stalled}. *)

(** {2 Stall recency}

    Process-global, watchdog-wide signals for admission control: the
    serving layer treats a recent grace-period stall as rising
    reclamation pressure even before the retired bags fill
    (SERVING.md, "Reclamation-aware admission"). *)

val last_stall_ns : unit -> int
(** Monotonic timestamp of the most recent {!note} (0 if none ever). *)

val stall_count : unit -> int
(** Total stall reports noted since process start (unlike the
    [rcu_stalls] metric, never reset). *)

val recently_stalled : within_ns:int -> bool
(** True when a stall was noted within the last [within_ns]
    nanoseconds. *)
