(** Process-global grace-period coalescing switch.

    All three RCU flavours coalesce concurrent [synchronize] calls by
    default: a synchronizer that observes a full grace period elapsing
    past its own snapshot (driven by a concurrent synchronizer) returns
    without driving one itself. This module holds the single flag that
    disables the optimization, so `bench/main.exe -- gp` can measure the
    uncoalesced baseline in the same binary. Correctness does not depend
    on the flag in either position — coalescing only elides redundant
    waits, never required ones.

    The flag is consulted on the [synchronize] slow path only (one atomic
    load); the sequence counters behind {!Rcu_intf.S.poll} are maintained
    regardless, so polling works even with coalescing off. *)

val set_coalescing : bool -> unit
(** Enable (default) or disable coalescing, process-wide. Benchmarks
    must restore the default when done. *)

val coalescing : unit -> bool

(** Condvar wait queue for piggybacking synchronizers (epoch-rcu and
    qsbr block here instead of polling for the in-flight scan). This is
    the {e only} module in the library allowed to touch
    [Stdlib.Mutex]/[Condition] — `dune build @lint` enforces it — and
    {!Waitq.wait} runs the lockdep RCU-context check, so blocking on a
    grace period from inside a read-side critical section raises
    [Repro_lockdep.Lockdep.Violation] on this path exactly as on the
    direct [synchronize] path. *)
module Waitq : sig
  type t

  val create : unit -> t

  val waiters : t -> int
  (** Synchronizers currently blocked (or about to block): scanners
      consult this to skip their pre-scan yield when nobody waits. *)

  val broadcast : t -> unit
  (** Wake every waiter (taken and released under the internal mutex, so
      a waiter's predicate re-check cannot miss the wakeup). *)

  val wait : t -> block_if:(unit -> bool) -> unit
  (** Register as a waiter and block until {!broadcast}, unless
      [block_if ()] — re-evaluated under the internal mutex — is already
      false. With lockdep armed, raises [Lockdep.Violation] if called
      inside a read-side critical section. *)
end
