(** Process-global grace-period coalescing switch.

    All three RCU flavours coalesce concurrent [synchronize] calls by
    default: a synchronizer that observes a full grace period elapsing
    past its own snapshot (driven by a concurrent synchronizer) returns
    without driving one itself. This module holds the single flag that
    disables the optimization, so `bench/main.exe -- gp` can measure the
    uncoalesced baseline in the same binary. Correctness does not depend
    on the flag in either position — coalescing only elides redundant
    waits, never required ones.

    The flag is consulted on the [synchronize] slow path only (one atomic
    load); the sequence counters behind {!Rcu_intf.S.poll} are maintained
    regardless, so polling works even with coalescing off. *)

val set_coalescing : bool -> unit
(** Enable (default) or disable coalescing, process-wide. Benchmarks
    must restore the default when done. *)

val coalescing : unit -> bool
