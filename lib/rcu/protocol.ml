(* Pure word-level encodings of the three RCU flavour protocols, shared
   between the real implementations (epoch_rcu.ml, urcu.ml, qsbr.ml) and
   their model-checker models (lib/modelcheck/models.ml). The models
   exist to exhaustively explore the racy windows of exactly these
   encodings, so the bit layouts and covered/blocking predicates live
   here once: a change to an encoding that forgot to update the model
   would not type-check or would be caught the moment the model checker
   runs against the shared function.

   Everything here is a total function on ints — no atomics, no state:
   the real code applies them to Atomic cells, the models to traced
   cells. *)

module Epoch = struct
  (* Slot word: [(count lsl 1) lor flag] — see epoch_rcu.ml. *)

  let slot_in_section v = v land 1 = 1
  let slot_count v = v lsr 1

  (* One SC store publishes both the bumped count and the flag. *)
  let slot_enter v = ((slot_count v + 1) lsl 1) lor 1
  let slot_exit v = v land lnot 1

  (* A synchronize snapshot: satisfied exactly when a scan numbered
     >= [gp_started + 1] completes (such a scan took all its slot
     snapshots after this point). *)
  let snap ~gp_started = gp_started + 1
  let covered ~gp_completed ~snap = gp_completed >= snap
end

module Urcu = struct
  (* Per-thread word (liburcu layout): low 16 bits nesting, bit 16
     phase. gp_seq: [(completed lsl 1) lor in_progress]. *)

  let nest_mask = 0xFFFF
  let phase_bit = 1 lsl 16
  let nesting v = v land nest_mask

  (* Outermost read_lock word: adopt [phase] with nesting 1. *)
  let enter_word ~phase = phase lor 1

  (* A reader blocks the current phase if it is inside a critical
     section it entered before the latest phase flip. *)
  let ongoing ~gp_phase v =
    v land nest_mask <> 0 && v land phase_bit <> gp_phase

  let seq_in_progress ~completed = (completed lsl 1) lor 1
  let seq_idle ~completed = completed lsl 1
  let seq_completed s = s lsr 1

  (* The "one extra if started" rule (Linux get_state_synchronize_rcu):
     an in-progress grace period may have flipped before our updates
     were published, so the snapshot demands the next full one. *)
  let snap ~gp_seq = (gp_seq lsr 1) + 1 + (gp_seq land 1)
  let covered ~gp_seq ~snap = gp_seq lsr 1 >= snap
end

module Qsbr = struct
  (* Slot: 0 = offline, otherwise an (odd) snapshot of the global
     grace-period counter. *)

  let offline = 0

  (* A synchronize snapshot: satisfied once a scan targeting at least
     [gp + 2] completes — such a scan advanced the counter, and then
     checked every slot, after this point. *)
  let snap ~gp = gp + 2

  (* Does slot value [v] block a scan with target [target]? Offline
     threads and threads already caught up never do. *)
  let blocks ~target v = v <> 0 && v < target
  let covered ~gp_completed ~snap = gp_completed >= snap
end
