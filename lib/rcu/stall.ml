module Trace = Repro_sync.Trace
module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats

type mode = Warn | Fail

type report = {
  flavour : string;
  slot : int;
  nesting : int;
  phase : int;
  elapsed_ns : int;
  grace_periods : int;
  trace_tail : Trace.event list;
}

exception Stalled of report

(* Watchdog configuration. [armed] is the only state read on an un-stalled
   grace period: each synchronize checks it once and takes the exact
   pre-watchdog wait loop when false, so benches with the watchdog off run
   the unchanged hot path. *)
let armed_flag = Atomic.make false
let threshold = Atomic.make 0 (* ns; meaningful only while armed *)
let fail_mode = Atomic.make false

let armed () = Atomic.get armed_flag
let threshold_ns () = Atomic.get threshold
let current_mode () = if Atomic.get fail_mode then Fail else Warn

let arm ?(mode = Warn) ~threshold_ns () =
  if threshold_ns <= 0 then
    invalid_arg "Stall.arm: threshold_ns must be positive";
  Atomic.set threshold threshold_ns;
  Atomic.set fail_mode (mode = Fail);
  Atomic.set armed_flag true

let disarm () =
  Atomic.set armed_flag false;
  Atomic.set threshold 0;
  Atomic.set fail_mode false

let trace_tail_limit = 8

let to_string r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "RCU grace-period stall (%s): slot %d has blocked the grace period for \
     %.1f ms (nesting=%d, phase=%d, grace_periods=%d, mode=%s)"
    r.flavour r.slot
    (float_of_int r.elapsed_ns /. 1e6)
    r.nesting r.phase r.grace_periods
    (match current_mode () with Warn -> "warn" | Fail -> "fail");
  if r.trace_tail <> [] then begin
    Buffer.add_string b "\n  trace tail (newest last):";
    List.iter
      (fun (e : Trace.event) ->
        Printf.bprintf b "\n    t=%dns d%d %s %d" e.t_ns e.domain
          (Trace.kind_to_string e.kind)
          e.arg)
      r.trace_tail
  end;
  Buffer.contents b

let default_handler r = Printf.eprintf "%s\n%!" (to_string r)

let handler = Atomic.make default_handler
let set_handler f = Atomic.set handler f
let reset_handler () = Atomic.set handler default_handler

(* Last [trace_tail_limit] ring events, oldest first. Dump materializes the
   whole ring, which is fine here: building a report is already the
   diagnosed-failure path, never the hot one. *)
let tail_of_trace () =
  if not (Trace.enabled ()) then []
  else begin
    let events = Trace.dump () in
    let n = List.length events in
    if n <= trace_tail_limit then events
    else List.filteri (fun i _ -> i >= n - trace_tail_limit) events
  end

let report ~flavour ~slot ~nesting ~phase ~elapsed_ns ~grace_periods =
  {
    flavour;
    slot;
    nesting;
    phase;
    elapsed_ns;
    grace_periods;
    trace_tail = tail_of_trace ();
  }

(* Stall recency, consumed by the serving layer's admission control
   (Health): a grace period that recently stalled means reclamation is
   (or was moments ago) wedged behind a parked reader, so backlog
   pressure should be treated as rising even before the retired bags
   fill. Monotonic-clock timestamps, process-global like the watchdog
   itself. *)
let last_stall = Atomic.make 0
let stall_total = Atomic.make 0

let last_stall_ns () = Atomic.get last_stall
let stall_count () = Atomic.get stall_total

let recently_stalled ~within_ns =
  let t = Atomic.get last_stall in
  t > 0 && Trace.now_ns () - t <= within_ns

let note r =
  Atomic.set last_stall (Trace.now_ns ());
  Atomic.incr stall_total;
  if Metrics.enabled () then Stats.incr Metrics.rcu_stalls (Metrics.slot ());
  Trace.record Stall r.slot;
  (Atomic.get handler) r;
  if Atomic.get fail_mode then raise (Stalled r)

(* Environment configuration: REPRO_STALL_MS arms the watchdog at process
   start; REPRO_STALL_MODE=fail switches to fail mode (default warn). *)
let () =
  match Sys.getenv_opt "REPRO_STALL_MS" with
  | None -> ()
  | Some s -> (
      match int_of_string_opt s with
      | Some ms when ms > 0 ->
          let mode =
            match Sys.getenv_opt "REPRO_STALL_MODE" with
            | Some "fail" -> Fail
            | _ -> Warn
          in
          arm ~mode ~threshold_ns:(ms * 1_000_000) ()
      | Some _ | None ->
          Printf.eprintf "repro_rcu: ignoring bad REPRO_STALL_MS %S\n%!" s)
