(** Deferred execution after a grace period ([call_rcu] analogue).

    The paper leaves "efficient memory reclamation" as future work; this
    module supplies the standard construction on top of either RCU flavour:
    callbacks are buffered per thread and executed only after a grace period
    guarantees no reader can still hold a reference to the retired data.
    Under a GC the callbacks are observational (statistics, pool recycling),
    but the ordering guarantee is the real, tested artefact. *)

module Make (R : Rcu_intf.S) : sig
  type t

  val create : ?batch:int -> R.t -> t
  (** A per-thread deferral buffer over RCU domain [r]. Once [batch]
      callbacks accumulate (default 32), the next {!defer} triggers
      [R.synchronize] and runs them. Not shareable between threads. *)

  val defer : t -> ?shadow:Repro_sanitizer.Sanitizer.record -> (unit -> unit) -> unit
  (** Enqueue [f] to run after a future grace period. May flush.

      [shadow], when given, is the object's reclamation-sanitizer record:
      it is marked [Deferred] here — rejecting a double-enqueue of the
      same object with [Sanitizer.Violation] (kind [Double_free]) before
      the queue is touched — and [Reclaimed] when [f] runs after its
      grace period. Callers pass it only while the sanitizer is armed. *)

  val flush : t -> unit
  (** Run all pending callbacks after a grace period. The grace-period
      cookie recorded at the newest {!defer} makes the wait conditional
      ([R.cond_synchronize]): if a full grace period already elapsed since
      that enqueue — e.g. another updater synchronized in the meantime —
      the synchronize is elided entirely (counted by the
      [defer_gp_elided] metric). *)

  val drain : t -> unit
  (** Flush repeatedly until nothing is pending, including callbacks
      enqueued {e by} the flushed callbacks. Call at thread teardown so a
      queue shorter than [batch] is never leaked; [Citrus.unregister] and
      the rcutorture writers do. *)

  val pending : t -> int
  (** Number of callbacks waiting for a grace period. *)

  val executed : t -> int
  (** Total callbacks run since creation. *)
end
