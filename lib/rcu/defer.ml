(* Fault point: when it fires, a flush pays a second (redundant but
   harmless) grace period — the "extra grace period" fault that shakes out
   callers accidentally relying on flush-count = grace-period-count. *)
let fault_flush = Repro_fault.Fault.register "defer.flush"

module San = Repro_sanitizer.Sanitizer

module Make (R : Rcu_intf.S) = struct
  type t = {
    rcu : R.t;
    batch : int;
    mutable queue : (unit -> unit) list; (* newest first *)
    mutable queued : int;
    mutable executed : int;
    (* Grace-period cookie taken at the newest enqueue. [read_gp_seq] is
       monotonic, so a grace period elapsing past this cookie covers every
       callback in the queue — and if one already has by flush time, the
       synchronize is provably redundant and elided. *)
    mutable gp : R.gp_state option;
  }

  let create ?(batch = 32) rcu =
    if batch <= 0 then invalid_arg "Defer.create: batch must be positive";
    { rcu; batch; queue = []; queued = 0; executed = 0; gp = None }

  let flush t =
    if t.queued > 0 then begin
      let callbacks = List.rev t.queue in
      let n = t.queued in
      t.queue <- [];
      t.queued <- 0;
      (match t.gp with
      | Some gp ->
          if R.poll t.rcu gp then begin
            if Repro_sync.Metrics.enabled () then
              Repro_sync.Stats.incr Repro_sync.Metrics.defer_gp_elided
                (Repro_sync.Metrics.slot ())
          end;
          R.cond_synchronize t.rcu gp
      | None -> R.synchronize t.rcu);
      t.gp <- None;
      if Repro_fault.Fault.enabled () && Repro_fault.Fault.fires fault_flush
      then R.synchronize t.rcu;
      List.iter (fun f -> f ()) callbacks;
      t.executed <- t.executed + n;
      (if Repro_sync.Metrics.enabled () then begin
         let s = Repro_sync.Metrics.slot () in
         Repro_sync.Stats.incr Repro_sync.Metrics.defer_flushes s;
         Repro_sync.Stats.add Repro_sync.Metrics.defer_callbacks s n
       end);
      Repro_sync.Trace.record Defer_flush n
    end

  (* [shadow]: the object's reclamation-sanitizer record, when the caller
     tracks one. Transitioned to Deferred here — *before* touching the
     queue, so a double-enqueue of the same object is rejected
     ([Sanitizer.Violation], kind [Double_free]) with the queue unchanged
     instead of silently scheduling a second free — and to Reclaimed when
     the callback runs after its grace period. *)
  let defer t ?shadow f =
    let f =
      match shadow with
      | None -> f
      | Some s ->
          San.on_defer s ~gp:(R.gp_cookie t.rcu);
          fun () ->
            San.on_reclaim ~gp:(R.gp_cookie t.rcu) s;
            f ()
    in
    t.queue <- f :: t.queue;
    t.queued <- t.queued + 1;
    t.gp <- Some (R.read_gp_seq t.rcu);
    if t.queued >= t.batch then flush t

  (* Teardown: flush until the queue is empty, including callbacks that
     themselves defer more work (flush runs callbacks after clearing the
     queue, so such re-deferrals land in the next round). Without this, a
     thread exiting with fewer than [batch] callbacks queued would leak
     them — the silent deferred-free discipline violation this repo's
     robustness tests hunt for. *)
  let rec drain t =
    if t.queued > 0 then begin
      flush t;
      drain t
    end

  let pending t = t.queued
  let executed t = t.executed
end
