module type S = Rcu_intf.S

module Epoch = Epoch_rcu
module Urcu = Urcu
module Qsbr = Qsbr
module Stall = Stall
module Gp = Gp
module Reclaimer = Reclaimer

exception Stalled = Stall.Stalled

let implementations =
  [
    (Epoch_rcu.name, (module Epoch_rcu : S));
    (Urcu.name, (module Urcu : S));
    (Qsbr.name, (module Qsbr : S));
  ]
