(** Multi-domain throughput measurement, reproducing the paper's
    methodology: pre-fill to half the key range, run every thread for a
    fixed wall-clock duration executing randomly chosen operations on
    randomly chosen keys, report overall throughput; repeat and take the
    arithmetic average.

    With [~observe:true] a run additionally captures the serialization
    metrics that explain its throughput: per-operation latency histograms
    (1 op in 16 timed) and a {!Repro_sync.Metrics} snapshot covering the
    measured interval — grace periods paid and their durations, lock
    contention, traversal restarts. See OBSERVABILITY.md. *)

type result = {
  name : string;  (** dictionary name *)
  threads : int;
  total_ops : int;
  contains_ops : int;
  insert_ops : int;
  delete_ops : int;
  wall : float;  (** measured wall-clock seconds *)
  throughput : float;  (** operations per second *)
  final_size : int;
  samples : (float * float) list;
      (** (seconds since start, ops/s within that interval); empty unless
          [sample_interval] was given — stalls (e.g. long grace periods)
          appear as dips *)
  latency : (Workload.op * Latency.histogram) list;
      (** sampled per-operation latency; empty unless [observe] was set,
          and omits operation types that never ran *)
  metrics : (string * float) list;
      (** global serialization-metrics snapshot for the measured interval
          (catalogue in OBSERVABILITY.md); empty unless [observe] was set *)
}

val run :
  ?sample_interval:float ->
  ?observe:bool ->
  (module Repro_dict.Dict.DICT) ->
  Workload.config ->
  result
(** One timed execution. The dictionary's invariant checker runs after the
    clock stops; violations raise.
    @raise Repro_sync.Registry.Full if the structure cannot register all
      [cfg.threads] workers — raised on the calling thread after every
      spawned domain has been joined, so the process is left clean for the
      CLI to report the error.
    With [sample_interval] the aggregate
    progress counter is sampled on that period and reported in [samples].
    With [observe] (default false) the run resets the global
    {!Repro_sync.Metrics} after the prefill, samples operation latency,
    and reports both in the result — at a measured overhead within the
    10% documented in OBSERVABILITY.md. *)

val run_avg :
  ?repeats:int ->
  ?observe:bool ->
  (module Repro_dict.Dict.DICT) ->
  Workload.config ->
  result
(** Arithmetic average over [repeats] runs (paper: 5), reseeding each run
    deterministically from the config seed. Default 1. Latency histograms
    are merged across the repeats; metric values are averaged per key, so
    they keep their per-run meaning. *)
