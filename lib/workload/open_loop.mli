(** Open-loop load generation: Poisson arrivals at a configured offered
    load, independent of service times.

    The closed-loop {!Runner} models a fixed thread pool that issues its
    next operation only when the previous one returns — so when the
    structure slows down, the load generator politely slows down with it
    and the latency tail is under-reported ({e coordinated omission}).
    Serving millions of users is open-loop: requests arrive on their own
    schedule. Here each client domain draws exponential inter-arrival
    gaps (a Poisson process at [rate / clients] per client) fixed at run
    start, and every completed operation is timed from its {e scheduled
    arrival} to its completion — an operation stuck behind a backlog
    reports the full backlog delay. See SERVING.md.

    Clients are first-class: the harness knows nothing about the service
    under load. A factory produces one {!client} per spawned domain
    (registering whatever per-domain state the service needs), and each
    operation reports {!outcome} — [Dropped] models a service shedding
    load (e.g. a full modification queue, see [Repro_server.Mod_queue])
    and is accounted separately from latency. *)

type outcome =
  | Applied of bool
      (** the service executed the operation; the bool is its result
          ([contains]/[insert]/[delete] success), unused by the harness *)
  | Dropped  (** the service refused the operation (backpressure) *)

type client = {
  run_op : Workload.op -> int -> outcome;
      (** execute one operation on the service; called only from the
          client's own domain *)
  finish : unit -> unit;
      (** release per-domain state (unregister handles); called once,
          after the run, on the client's domain *)
}

type spec = {
  clients : int;  (** client domains, each an independent Poisson source *)
  rate : float;  (** aggregate offered load, operations per second *)
  duration : float;  (** seconds of timed execution *)
  mix : Workload.mix;
  key_range : int;
  key_dist : Workload.key_dist;
  seed : int64;
}

val spec :
  ?clients:int ->
  ?rate:float ->
  ?duration:float ->
  ?mix:Workload.mix ->
  ?key_range:int ->
  ?key_dist:Workload.key_dist ->
  ?seed:int64 ->
  unit ->
  spec
(** Defaults: 4 clients, 20k ops/s, 1s, 50% contains mix, key range
    16 384, uniform keys, seed 42.
    @raise Invalid_argument on non-positive clients/rate/duration/range. *)

type result = {
  issued : int;  (** operations issued (scheduled arrivals that ran) *)
  completed : int;  (** operations the service applied *)
  dropped : int;  (** operations the service refused *)
  wall : float;  (** measured wall-clock seconds *)
  offered : float;  (** the configured offered load (ops/s) *)
  achieved : float;  (** completed / wall — under saturation < offered *)
  max_lag_ns : int;
      (** worst observed lateness of an issue relative to its scheduled
          arrival: how far behind the fixed schedule the clients fell *)
  latency : (Workload.op * Latency.histogram) list;
      (** scheduled-arrival-to-completion latency per op type (completed
          operations only; omits op types that never completed) *)
  dropped_by_op : (Workload.op * int) list;
      (** drops per op type; omits op types never dropped *)
}

val run : spec -> (int -> client) -> result
(** [run spec make_client] spawns [spec.clients] domains; each calls
    [make_client i] on its own domain (so per-domain registration happens
    in the right place), generates its Poisson schedule, and issues
    operations until [spec.duration] elapses.
    @raise Repro_sync.Registry.Full if a client cannot register — raised
      on the calling thread after every spawned domain is joined, as
      {!Runner.run} does. *)
