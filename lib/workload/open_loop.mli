(** Open-loop load generation: Poisson arrivals at a configured offered
    load, independent of service times.

    The closed-loop {!Runner} models a fixed thread pool that issues its
    next operation only when the previous one returns — so when the
    structure slows down, the load generator politely slows down with it
    and the latency tail is under-reported ({e coordinated omission}).
    Serving millions of users is open-loop: requests arrive on their own
    schedule. Here each client domain draws exponential inter-arrival
    gaps (a Poisson process at [rate / clients] per client) fixed at run
    start, and every completed operation is timed from its {e scheduled
    arrival} to its completion — an operation stuck behind a backlog
    reports the full backlog delay. See SERVING.md.

    Clients are first-class: the harness knows nothing about the service
    under load. A factory produces one {!client} per spawned domain
    (registering whatever per-domain state the service needs), and each
    operation reports {!outcome}. [Busy] — retryable backpressure such
    as a full or overloaded modification queue — is retried with
    jittered exponential backoff under a per-operation deadline budget
    measured from the scheduled arrival, so retrying cannot hide
    queueing delay; [Dropped] is terminal. Retries and exhausted
    deadlines are accounted separately from drops. *)

type outcome =
  | Applied of bool
      (** the service executed the operation; the bool is its result
          ([contains]/[insert]/[delete] success), unused by the harness *)
  | Busy
      (** retryable reject (queue full, shard degraded, breaker open) —
          retried with backoff while the attempt and deadline budgets
          allow *)
  | Dropped
      (** terminal reject (shard failed, service shutting down) — never
          retried *)
  | Expired
      (** the service accepted the operation but its end-to-end deadline
          elapsed before it was applied (the updater's drain expired it,
          see SERVING.md "Deadline propagation") — terminal: retrying a
          known-late operation only feeds the overload spiral *)

type client = {
  run_op : Workload.op -> int -> int -> outcome;
      (** [run_op op key deadline] executes one operation on the
          service; [deadline] is the operation's absolute completion
          deadline on the monotonic clock (scheduled arrival +
          [spec.deadline_ns]; 0 = none), which the service may propagate
          to expire queued work. Called only from the client's own
          domain *)
  finish : unit -> unit;
      (** release per-domain state (unregister handles); called once,
          after the run, on the client's domain *)
}

type spec = {
  clients : int;  (** client domains, each an independent Poisson source *)
  rate : float;  (** aggregate offered load, operations per second *)
  duration : float;  (** seconds of timed execution *)
  mix : Workload.mix;
  key_range : int;
  key_dist : Workload.key_dist;
  seed : int64;
  max_retries : int;  (** retry budget per operation; 0 = never retry *)
  retry_base_ns : int;
      (** nominal first-retry backoff; doubles per attempt, jittered
          into [0.5, 1.0) of nominal by the client's own stream *)
  deadline_ns : int;
      (** per-operation completion budget measured from the scheduled
          arrival; a retry that would land past it is not issued and the
          operation counts [exhausted]. 0 = no deadline. *)
}

val spec :
  ?clients:int ->
  ?rate:float ->
  ?duration:float ->
  ?mix:Workload.mix ->
  ?key_range:int ->
  ?key_dist:Workload.key_dist ->
  ?seed:int64 ->
  ?max_retries:int ->
  ?retry_base_ns:int ->
  ?deadline_ns:int ->
  unit ->
  spec
(** Defaults: 4 clients, 20k ops/s, 1s, 50% contains mix, key range
    16 384, uniform keys, seed 42, no retries (base 100 µs when
    enabled), no deadline.
    @raise Invalid_argument on non-positive clients/rate/duration/range,
      negative retry or deadline budgets, or non-positive
      [retry_base_ns]. *)

type result = {
  issued : int;  (** operations issued (scheduled arrivals that ran) *)
  completed : int;  (** operations the service applied *)
  dropped : int;
      (** operations that ended in a terminal reject — the service
          refused ([Dropped]) or the retry budget ran out on [Busy] *)
  retries : int;
      (** re-issues performed (not operations: one operation retried
          three times counts 3) *)
  exhausted : int;
      (** operations abandoned because the next retry would land past
          the per-op deadline (or the run ended mid-backoff) — the
          client-side deadline-miss count, distinct from [dropped] *)
  expired : int;
      (** operations the service accepted but expired server-side: the
          queued write's deadline elapsed before the updater applied it
          ([Expired] outcome) — distinct from [exhausted] (the client
          never re-offered) and [dropped] (the service refused) *)
  wall : float;  (** measured wall-clock seconds *)
  offered : float;  (** the configured offered load (ops/s) *)
  achieved : float;  (** completed / wall — under saturation < offered *)
  max_lag_ns : int;
      (** worst observed lateness of an issue relative to its scheduled
          arrival: how far behind the fixed schedule the clients fell *)
  latency : (Workload.op * Latency.histogram) list;
      (** scheduled-arrival-to-completion latency per op type (completed
          operations only — including retried ones, whose backoff time
          is part of their latency; omits op types that never
          completed) *)
  dropped_by_op : (Workload.op * int) list;
      (** terminal drops per op type; omits op types never dropped *)
}
(** Conservation: [issued = completed + dropped + exhausted + expired]. *)

val run : spec -> (int -> client) -> result
(** [run spec make_client] spawns [spec.clients] domains; each calls
    [make_client i] on its own domain (so per-domain registration happens
    in the right place), generates its Poisson schedule, and issues
    operations until [spec.duration] elapses.
    @raise Repro_sync.Registry.Full if a client cannot register — raised
      on the calling thread after every spawned domain is joined, as
      {!Runner.run} does. *)
