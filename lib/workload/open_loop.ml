module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

(* Open-loop load generation: clients draw Poisson arrivals and issue the
   scheduled operation whether or not earlier operations have completed,
   so service-time latency includes the queueing delay a closed-loop
   runner (which waits for each op before drawing the next) structurally
   hides — the "coordinated omission" problem. Every completed operation
   is timed from its *scheduled arrival* to its completion.

   Retryable rejects ([Busy] — backpressure the service expects to
   clear) are retried with jittered exponential backoff, bounded by an
   attempt budget and a per-operation deadline measured from the
   *scheduled arrival* — so retrying never hides queueing delay either:
   a completed-after-retry operation reports its full
   schedule-to-completion latency, and an operation whose deadline
   passes is accounted [exhausted], separately from terminal drops. *)

type outcome = Applied of bool | Busy | Dropped | Expired

type client = {
  run_op : Workload.op -> int -> int -> outcome;
  finish : unit -> unit;
}

type spec = {
  clients : int;
  rate : float;
  duration : float;
  mix : Workload.mix;
  key_range : int;
  key_dist : Workload.key_dist;
  seed : int64;
  max_retries : int;
  retry_base_ns : int;
  deadline_ns : int;
}

let spec ?(clients = 4) ?(rate = 20_000.0) ?(duration = 1.0)
    ?(mix = Workload.contains_50) ?(key_range = 16_384)
    ?(key_dist = Workload.Uniform_keys) ?(seed = 42L) ?(max_retries = 0)
    ?(retry_base_ns = 100_000) ?(deadline_ns = 0) () =
  if clients <= 0 then
    invalid_arg "Open_loop.spec: clients must be positive";
  if rate <= 0.0 then invalid_arg "Open_loop.spec: rate must be positive";
  if duration <= 0.0 then
    invalid_arg "Open_loop.spec: duration must be positive";
  if key_range <= 0 then
    invalid_arg "Open_loop.spec: key_range must be positive";
  if max_retries < 0 then
    invalid_arg "Open_loop.spec: max_retries must be >= 0";
  if retry_base_ns <= 0 then
    invalid_arg "Open_loop.spec: retry_base_ns must be positive";
  if deadline_ns < 0 then
    invalid_arg "Open_loop.spec: deadline_ns must be >= 0";
  {
    clients;
    rate;
    duration;
    mix;
    key_range;
    key_dist;
    seed;
    max_retries;
    retry_base_ns;
    deadline_ns;
  }

type result = {
  issued : int;
  completed : int;
  dropped : int;
  retries : int;
  exhausted : int;
  expired : int;
  wall : float;
  offered : float;
  achieved : float;
  max_lag_ns : int;
  latency : (Workload.op * Latency.histogram) list;
  dropped_by_op : (Workload.op * int) list;
}

(* Per-client accumulators, written only by the owning domain. *)
type tally = {
  mutable t_issued : int;
  mutable t_completed : int;
  mutable t_retries : int;
  mutable t_exhausted : int;
  mutable t_expired : int;
  mutable t_max_lag : int;
  drops : int array; (* indexed by op *)
  hists : Latency.histogram array; (* indexed by op *)
}

let op_index = function
  | Workload.Contains -> 0
  | Workload.Insert -> 1
  | Workload.Delete -> 2

let ops = [ Workload.Contains; Workload.Insert; Workload.Delete ]

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Wait until the monotonic clock reaches [target_ns], sleeping for the
   bulk of long gaps and spinning out the last stretch; checks [stop]
   between sleeps so shutdown is responsive even at very low rates. *)
let wait_until stop target_ns =
  let rec go () =
    if not (Atomic.get stop) then begin
      let remain = target_ns - now_ns () in
      if remain > 500_000 then begin
        (* Sleep in bounded slices; the tail is spun out below. *)
        Unix.sleepf (Float.min 0.005 (float_of_int (remain - 200_000) *. 1e-9));
        go ()
      end
      else if remain > 0 then begin
        Domain.cpu_relax ();
        go ()
      end
    end
  in
  go ()

let run (s : spec) make_client =
  let master = Rng.create s.seed in
  let start = Barrier.create (s.clients + 1) in
  let stop = Atomic.make false in
  let registry_full = Atomic.make false in
  let tallies =
    Array.init s.clients (fun _ ->
        {
          t_issued = 0;
          t_completed = 0;
          t_retries = 0;
          t_exhausted = 0;
          t_expired = 0;
          t_max_lag = 0;
          drops = Array.make 3 0;
          hists = Array.init 3 (fun _ -> Latency.histogram ());
        })
  in
  (* Per-client arrival rate; the aggregate offered load is [s.rate]. *)
  let mean_gap_ns = 1e9 /. (s.rate /. float_of_int s.clients) in
  let worker i tally =
    let client =
      match make_client i with
      | c -> Some c
      | exception Repro_sync.Registry.Full ->
          Atomic.set registry_full true;
          Barrier.wait start;
          None
    in
    match client with
    | None -> ()
    | Some client ->
        let rng = Rng.create (Rng.next64 master) in
        let key_cfg =
          Workload.config ~key_range:s.key_range ~key_dist:s.key_dist ()
        in
        let next_key = Workload.key_generator key_cfg rng in
        Barrier.wait start;
        (* The schedule is fixed at the start: arrival k happens at
           t0 + sum of k exponential gaps, regardless of how long the
           operations take. Falling behind shows up as latency, never as
           fewer issued operations. *)
        let scheduled = ref (now_ns ()) in
        (* One scheduled arrival, through its retry budget. Every issued
           operation reaches exactly one terminal account: completed,
           dropped, exhausted, or expired. The absolute deadline rides
           with every attempt so the service can expire queued work the
           client has already abandoned. *)
        let rec attempt op k oi attempts =
          let deadline =
            if s.deadline_ns = 0 then 0 else !scheduled + s.deadline_ns
          in
          match client.run_op op k deadline with
          | Applied _ ->
              Latency.record tally.hists.(oi) (now_ns () - !scheduled);
              tally.t_completed <- tally.t_completed + 1
          | Dropped -> tally.drops.(oi) <- tally.drops.(oi) + 1
          | Expired ->
              (* The service accepted the write but its deadline elapsed
                 before the updater applied it — terminal; retrying a
                 known-late op would only feed the spiral. *)
              tally.t_expired <- tally.t_expired + 1
          | Busy ->
              if attempts >= s.max_retries then
                tally.drops.(oi) <- tally.drops.(oi) + 1
              else begin
                (* Jittered exponential backoff: double per attempt,
                   scaled into [0.5, 1.0) of the nominal delay by the
                   client's own (deterministic) stream, so retry storms
                   from concurrent clients decorrelate. *)
                let nominal = s.retry_base_ns lsl min attempts 20 in
                let jittered =
                  int_of_float
                    (float_of_int nominal *. (0.5 +. (0.5 *. Rng.float rng)))
                in
                let retry_at = now_ns () + jittered in
                if s.deadline_ns > 0 && retry_at - !scheduled > s.deadline_ns
                then tally.t_exhausted <- tally.t_exhausted + 1
                else begin
                  tally.t_retries <- tally.t_retries + 1;
                  wait_until stop retry_at;
                  if Atomic.get stop then
                    (* Run over before the retry could happen: the
                       operation ends without a service verdict. *)
                    tally.t_exhausted <- tally.t_exhausted + 1
                  else attempt op k oi (attempts + 1)
                end
              end
        in
        let rec loop () =
          if not (Atomic.get stop) then begin
            let u = Rng.float rng in
            let gap = -.Float.log (1.0 -. u) *. mean_gap_ns in
            scheduled := !scheduled + max 1 (int_of_float gap);
            wait_until stop !scheduled;
            if not (Atomic.get stop) then begin
              let issue = now_ns () in
              let lag = issue - !scheduled in
              if lag > tally.t_max_lag then tally.t_max_lag <- lag;
              let op = Workload.pick rng s.mix in
              let k = next_key () in
              tally.t_issued <- tally.t_issued + 1;
              attempt op k (op_index op) 0;
              loop ()
            end
          end
        in
        loop ();
        client.finish ()
  in
  let domains =
    List.init s.clients (fun i ->
        Domain.spawn (fun () -> worker i tallies.(i)))
  in
  Barrier.wait start;
  if Atomic.get registry_full then begin
    Atomic.set stop true;
    List.iter Domain.join domains;
    raise Repro_sync.Registry.Full
  end;
  let t0 = Unix.gettimeofday () in
  Unix.sleepf s.duration;
  Atomic.set stop true;
  List.iter Domain.join domains;
  let wall = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let issued = sum (fun t -> t.t_issued) in
  let completed = sum (fun t -> t.t_completed) in
  let dropped_by_op =
    List.filter_map
      (fun op ->
        let n = sum (fun t -> t.drops.(op_index op)) in
        if n = 0 then None else Some (op, n))
      ops
  in
  let dropped = List.fold_left (fun acc (_, n) -> acc + n) 0 dropped_by_op in
  let latency =
    List.filter_map
      (fun op ->
        let h =
          Latency.merge
            (Array.to_list
               (Array.map (fun t -> t.hists.(op_index op)) tallies))
        in
        if Latency.count h = 0 then None else Some (op, h))
      ops
  in
  {
    issued;
    completed;
    dropped;
    retries = sum (fun t -> t.t_retries);
    exhausted = sum (fun t -> t.t_exhausted);
    expired = sum (fun t -> t.t_expired);
    wall;
    offered = s.rate;
    achieved = float_of_int completed /. wall;
    max_lag_ns =
      Array.fold_left (fun acc t -> max acc t.t_max_lag) 0 tallies;
    latency;
    dropped_by_op;
  }
