module Json = Repro_obs.Json

let schema_version = 1

type point = {
  cfg : Workload.config;
  result : Runner.result;
}

type experiment = {
  name : string;
  points : point list;
}

let op_name = function
  | Workload.Contains -> "contains"
  | Workload.Insert -> "insert"
  | Workload.Delete -> "delete"

let mix_json (m : Workload.mix) =
  Json.Obj
    [
      ("contains_pct", Json.Int m.contains_pct);
      ("insert_pct", Json.Int m.insert_pct);
      ("delete_pct", Json.Int m.delete_pct);
    ]

let config_json (cfg : Workload.config) =
  let role_fields =
    match cfg.role with
    | Workload.Uniform m -> [ ("role", Json.String "uniform"); ("mix", mix_json m) ]
    | Workload.Single_writer m ->
        [ ("role", Json.String "single_writer"); ("writer_mix", mix_json m) ]
  in
  let dist_fields =
    match cfg.key_dist with
    | Workload.Uniform_keys -> [ ("key_dist", Json.String "uniform") ]
    | Workload.Zipf theta ->
        [ ("key_dist", Json.String "zipf"); ("zipf_theta", Json.Float theta) ]
  in
  Json.Obj
    ([
       ("key_range", Json.Int cfg.key_range);
       ("threads", Json.Int cfg.threads);
       ("duration_s", Json.Float cfg.duration);
       ("prefill_fraction", Json.Float cfg.prefill_fraction);
       ("seed", Json.Int (Int64.to_int cfg.seed));
     ]
    @ role_fields @ dist_fields)

let summary_json (s : Latency.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean_ns", Json.Float s.mean_ns);
      ("p50_ns", Json.Float s.p50);
      ("p90_ns", Json.Float s.p90);
      ("p99_ns", Json.Float s.p99);
      ("p999_ns", Json.Float s.p999);
      ("max_ns", Json.Float s.max_ns);
    ]

let point_json { cfg; result = r } =
  Json.Obj
    [
      ("structure", Json.String r.Runner.name);
      ("threads", Json.Int r.Runner.threads);
      ("config", config_json cfg);
      ("throughput_ops_per_s", Json.Float r.Runner.throughput);
      ("wall_s", Json.Float r.Runner.wall);
      ( "ops",
        Json.Obj
          [
            ("total", Json.Int r.Runner.total_ops);
            ("contains", Json.Int r.Runner.contains_ops);
            ("insert", Json.Int r.Runner.insert_ops);
            ("delete", Json.Int r.Runner.delete_ops);
          ] );
      ("final_size", Json.Int r.Runner.final_size);
      ( "latency_ns",
        Json.Obj
          (List.map
             (fun (op, h) -> (op_name op, summary_json (Latency.summarize h)))
             r.Runner.latency) );
      ("metrics", Repro_obs.Export.metrics_json r.Runner.metrics);
    ]

let experiment_json { name; points } =
  Json.Obj
    [
      ("name", Json.String name);
      ("points", Json.List (List.map point_json points));
    ]

let report ?(meta = []) experiments =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("generator", Json.String "citrus-repro bench");
       ("generated_at_unix", Json.Float (Unix.gettimeofday ()));
     ]
    @ meta
    @ [ ("experiments", Json.List (List.map experiment_json experiments)) ])

let write path json = Repro_obs.Export.write_file path json
