module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier
module Metrics = Repro_sync.Metrics

type result = {
  name : string;
  threads : int;
  total_ops : int;
  contains_ops : int;
  insert_ops : int;
  delete_ops : int;
  wall : float;
  throughput : float;
  final_size : int;
  samples : (float * float) list;
  latency : (Workload.op * Latency.histogram) list;
  metrics : (string * float) list;
}

type thread_counts = {
  mutable n_contains : int;
  mutable n_insert : int;
  mutable n_delete : int;
}

(* Observed runs time 1 op in 2^latency_sample_shift: enough samples for
   p99.9 on any run longer than ~0.1s, cheap enough (two clock reads per
   sampled op) to keep instrumentation overhead well under the 10% budget. *)
let latency_sample_shift = 4
let latency_sample_mask = (1 lsl latency_sample_shift) - 1

let run ?sample_interval ?(observe = false)
    (module D : Repro_dict.Dict.DICT) (cfg : Workload.config) =
  let t = D.create ~max_threads:(cfg.threads + 2) () in
  let master = Rng.create cfg.seed in
  (* Pre-fill to [prefill_fraction] of the key range (paper: half). *)
  let setup = D.register t in
  let target =
    int_of_float (float_of_int cfg.key_range *. cfg.prefill_fraction)
  in
  let filled = ref 0 in
  while !filled < target do
    let k = Rng.int master cfg.key_range in
    if D.insert setup k k then incr filled
  done;
  D.unregister setup;
  (* Each worker hammers the dictionary until [stop]; operations run in
     batches of 64 so the stop flag is polled cheaply. *)
  (* Aggregate progress, bumped once per 64-op batch so the sampler never
     contends with the hot path. *)
  let progress = Atomic.make 0 in
  (* A worker that finds the slot registry full cannot just raise: the
     start barrier would never fill and every other domain would hang. It
     records the failure, still joins the barrier, and exits; the main
     thread re-raises [Registry.Full] after the join so CLI frontends can
     report it cleanly. *)
  let registry_full = Atomic.make false in
  let try_register start =
    match D.register t with
    | handle -> Some handle
    | exception Repro_sync.Registry.Full ->
        Atomic.set registry_full true;
        Barrier.wait start;
        None
  in
  let worker mix seed start stop counts =
    match try_register start with
    | None -> ()
    | Some handle ->
    let rng = Rng.create seed in
    let next_key = Workload.key_generator cfg rng in
    Barrier.wait start;
    let rec loop () =
      if not (Atomic.get stop) then begin
        for _ = 1 to 64 do
          let k = next_key () in
          match Workload.pick rng mix with
          | Workload.Contains ->
              ignore (D.contains handle k);
              counts.n_contains <- counts.n_contains + 1
          | Workload.Insert ->
              ignore (D.insert handle k k);
              counts.n_insert <- counts.n_insert + 1
          | Workload.Delete ->
              ignore (D.delete handle k);
              counts.n_delete <- counts.n_delete + 1
        done;
        ignore (Atomic.fetch_and_add progress 64);
        loop ()
      end
    in
    loop ();
    D.unregister handle
  in
  (* The observed variant of the same loop; kept separate so unobserved
     runs execute exactly the pre-instrumentation hot path. *)
  let worker_observed mix seed start stop counts (hc, hi, hd) =
    match try_register start with
    | None -> ()
    | Some handle ->
    let rng = Rng.create seed in
    let next_key = Workload.key_generator cfg rng in
    Barrier.wait start;
    let ops = ref 0 in
    let rec loop () =
      if not (Atomic.get stop) then begin
        for _ = 1 to 64 do
          let k = next_key () in
          let op = Workload.pick rng mix in
          let sampled = !ops land latency_sample_mask = 0 in
          incr ops;
          if sampled then begin
            let t0 = Monotonic_clock.now () in
            (match op with
            | Workload.Contains -> ignore (D.contains handle k)
            | Workload.Insert -> ignore (D.insert handle k k)
            | Workload.Delete -> ignore (D.delete handle k));
            let dt = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
            match op with
            | Workload.Contains -> Latency.record hc dt
            | Workload.Insert -> Latency.record hi dt
            | Workload.Delete -> Latency.record hd dt
          end
          else begin
            match op with
            | Workload.Contains -> ignore (D.contains handle k)
            | Workload.Insert -> ignore (D.insert handle k k)
            | Workload.Delete -> ignore (D.delete handle k)
          end;
          (match op with
          | Workload.Contains -> counts.n_contains <- counts.n_contains + 1
          | Workload.Insert -> counts.n_insert <- counts.n_insert + 1
          | Workload.Delete -> counts.n_delete <- counts.n_delete + 1)
        done;
        ignore (Atomic.fetch_and_add progress 64);
        loop ()
      end
    in
    loop ();
    D.unregister handle
  in
  let start = Barrier.create (cfg.threads + 1) in
  let stop = Atomic.make false in
  let counts =
    Array.init cfg.threads (fun _ ->
        { n_contains = 0; n_insert = 0; n_delete = 0 })
  in
  let histograms =
    Array.init cfg.threads (fun _ ->
        (Latency.histogram (), Latency.histogram (), Latency.histogram ()))
  in
  let mix_for i =
    match cfg.role with
    | Workload.Uniform m -> m
    | Workload.Single_writer m -> if i = 0 then m else Workload.read_only
  in
  (* The global metrics reflect this run only: zero them after the prefill,
     just before the workers start. Runs are sequential per process, so no
     other workload writes into the registry meanwhile. *)
  if observe then Metrics.reset ();
  let domains =
    List.init cfg.threads (fun i ->
        let seed = Rng.next64 master in
        Domain.spawn (fun () ->
            if observe then
              worker_observed (mix_for i) seed start stop counts.(i)
                histograms.(i)
            else worker (mix_for i) seed start stop counts.(i)))
  in
  Barrier.wait start;
  if Atomic.get registry_full then begin
    Atomic.set stop true;
    List.iter Domain.join domains;
    raise Repro_sync.Registry.Full
  end;
  let t0 = Unix.gettimeofday () in
  let samples =
    match sample_interval with
    | None ->
        Unix.sleepf cfg.duration;
        []
    | Some interval ->
        let interval = Float.max interval 0.001 in
        let deadline = t0 +. cfg.duration in
        let rec sample acc last_ops =
          let now = Unix.gettimeofday () in
          if now >= deadline then List.rev acc
          else begin
            Unix.sleepf (Float.min interval (deadline -. now));
            let ops = Atomic.get progress in
            let now' = Unix.gettimeofday () in
            let rate = float_of_int (ops - last_ops) /. (now' -. now) in
            sample ((now' -. t0, rate) :: acc) ops
          end
        in
        sample [] 0
  in
  Atomic.set stop true;
  List.iter Domain.join domains;
  let wall = Unix.gettimeofday () -. t0 in
  (* Snapshot before the invariant check so checker traversals do not
     pollute the run's metrics. *)
  let metrics = if observe then Metrics.snapshot () else [] in
  (* Quiesce background reclamation (call_rcu tables) before checking:
     mid-flight asynchronous deletes legitimately leave locked copies. *)
  D.shutdown t;
  D.check t;
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 counts in
  let contains_ops = sum (fun c -> c.n_contains) in
  let insert_ops = sum (fun c -> c.n_insert) in
  let delete_ops = sum (fun c -> c.n_delete) in
  let total_ops = contains_ops + insert_ops + delete_ops in
  let latency =
    if not observe then []
    else begin
      let all = Array.to_list histograms in
      let pick3 f = Latency.merge (List.map f all) in
      [
        (Workload.Contains, pick3 (fun (c, _, _) -> c));
        (Workload.Insert, pick3 (fun (_, i, _) -> i));
        (Workload.Delete, pick3 (fun (_, _, d) -> d));
      ]
      |> List.filter (fun (_, h) -> Latency.count h > 0)
    end
  in
  {
    name = D.name;
    threads = cfg.threads;
    total_ops;
    contains_ops;
    insert_ops;
    delete_ops;
    wall;
    throughput = float_of_int total_ops /. wall;
    final_size = D.size t;
    samples;
    latency;
    metrics;
  }

let run_avg ?(repeats = 1) ?observe (module D : Repro_dict.Dict.DICT)
    (cfg : Workload.config) =
  if repeats <= 0 then invalid_arg "Runner.run_avg: repeats must be positive";
  let runs =
    List.init repeats (fun i ->
        run ?observe
          (module D)
          { cfg with seed = Int64.add cfg.seed (Int64.of_int i) })
  in
  let favg f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 runs
    /. float_of_int repeats
  in
  let iavg f = int_of_float (favg (fun r -> float_of_int (f r))) in
  (* Latency histograms merge exactly; metrics average per key so counter
     semantics ("per run of [duration] seconds") survive the repeat. *)
  let latency =
    List.filter_map
      (fun op ->
        let hs =
          List.filter_map (fun r -> List.assoc_opt op r.latency) runs
        in
        if hs = [] then None else Some (op, Latency.merge hs))
      [ Workload.Contains; Workload.Insert; Workload.Delete ]
  in
  let metrics =
    match runs with
    | [] -> []
    | first :: _ ->
        List.map
          (fun (key, _) ->
            let mean =
              favg (fun r ->
                  match List.assoc_opt key r.metrics with
                  | Some v -> v
                  | None -> 0.0)
            in
            (key, mean))
          first.metrics
  in
  {
    name = D.name;
    threads = cfg.threads;
    total_ops = iavg (fun r -> r.total_ops);
    contains_ops = iavg (fun r -> r.contains_ops);
    insert_ops = iavg (fun r -> r.insert_ops);
    delete_ops = iavg (fun r -> r.delete_ops);
    wall = favg (fun r -> r.wall);
    throughput = favg (fun r -> r.throughput);
    final_size = iavg (fun r -> r.final_size);
    samples = [];
    latency;
    metrics;
  }
