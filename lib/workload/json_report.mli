(** Schema-versioned JSON benchmark reports.

    Converts observed runner results into the [BENCH_*.json] trajectory
    format documented in OBSERVABILITY.md: a report is a list of
    experiments, each a list of data points, each carrying the workload
    configuration, throughput, sampled latency percentiles, and the
    serialization-metrics snapshot of its run. Produced by
    [bench/main.exe --json] and [citrus_tool stats --json]. *)

val schema_version : int
(** Current report schema version (bump on incompatible change). *)

type point = {
  cfg : Workload.config;  (** the configuration the run used *)
  result : Runner.result;  (** from {!Runner.run} or {!Runner.run_avg},
                               normally with [~observe:true] *)
}

type experiment = {
  name : string;  (** e.g. ["fig8: citrus vs citrus-urcu (50% contains)"] *)
  points : point list;
}

val point_json : point -> Repro_obs.Json.t
(** One data point: structure, threads, config, throughput, op counts,
    [latency_ns] summaries per operation, and [metrics]. *)

val op_name : Workload.op -> string
(** Canonical report field name per operation
    (["contains"]/["insert"]/["delete"]). *)

val summary_json : Latency.summary -> Repro_obs.Json.t
(** A latency summary as the report's [latency_ns] object shape
    ([count], [mean_ns], [p50_ns] … [p999_ns], [max_ns]) — shared by
    every report producer so per-op percentiles parse uniformly
    (the serving reports of [Repro_server.Serve] use it too). *)

val experiment_json : experiment -> Repro_obs.Json.t

val report : ?meta:(string * Repro_obs.Json.t) list -> experiment list -> Repro_obs.Json.t
(** The full document: schema version, generator, timestamp, any [meta]
    fields (e.g. the benchmark scale), then the experiments. *)

val write : string -> Repro_obs.Json.t -> unit
(** Write a document to a file, pretty-printed. *)
