module Rng = Repro_sync.Rng
module Barrier = Repro_sync.Barrier

(* Log-linear bucketing: values < 16 are exact; above, 16 sub-buckets per
   power of two. Bucket count is bounded by 16 + 59*16 for 63-bit values. *)
let n_buckets = 16 + (59 * 16)

type histogram = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : int;
}

let histogram () =
  { buckets = Array.make n_buckets 0; total = 0; sum = 0.0; max_seen = 0 }

let log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let bucket_of v =
  if v < 16 then v
  else begin
    let m = log2 v in
    let sub = (v lsr (m - 4)) land 15 in
    min (n_buckets - 1) (16 + ((m - 4) * 16) + sub)
  end

(* Midpoint of the value range covered by a bucket. *)
let value_of bucket =
  if bucket < 16 then float_of_int bucket
  else begin
    let b = bucket - 16 in
    let m = (b / 16) + 4 in
    let sub = b mod 16 in
    let low = (16 + sub) lsl (m - 4) in
    let width = 1 lsl (m - 4) in
    float_of_int low +. (float_of_int width /. 2.0)
  end

let record h ns =
  let ns = max 0 ns in
  let b = bucket_of ns in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. float_of_int ns;
  if ns > h.max_seen then h.max_seen <- ns

let merge hs =
  let out = histogram () in
  List.iter
    (fun h ->
      Array.iteri (fun i c -> out.buckets.(i) <- out.buckets.(i) + c) h.buckets;
      out.total <- out.total + h.total;
      out.sum <- out.sum +. h.sum;
      if h.max_seen > out.max_seen then out.max_seen <- h.max_seen)
    hs;
  out

let count h = h.total

let percentile h p =
  if h.total = 0 then 0.0
  else begin
    let target =
      int_of_float (ceil (p *. float_of_int h.total)) |> max 1 |> min h.total
    in
    let rec go i seen =
      if i >= n_buckets then float_of_int h.max_seen
      else
        let seen = seen + h.buckets.(i) in
        if seen >= target then value_of i else go (i + 1) seen
    in
    go 0 0
  end

type summary = {
  count : int;
  mean_ns : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max_ns : float;
}

let summarize h =
  {
    count = h.total;
    mean_ns = (if h.total = 0 then 0.0 else h.sum /. float_of_int h.total);
    p50 = percentile h 0.50;
    p90 = percentile h 0.90;
    p99 = percentile h 0.99;
    p999 = percentile h 0.999;
    max_ns = float_of_int h.max_seen;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.0fns p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f" s.count
    s.mean_ns s.p50 s.p90 s.p99 s.p999 s.max_ns

let measure (module D : Repro_dict.Dict.DICT) (cfg : Workload.config) =
  let t = D.create ~max_threads:(cfg.threads + 2) () in
  let master = Rng.create cfg.seed in
  let setup = D.register t in
  let target =
    int_of_float (float_of_int cfg.key_range *. cfg.prefill_fraction)
  in
  let filled = ref 0 in
  while !filled < target do
    let k = Rng.int master cfg.key_range in
    if D.insert setup k k then incr filled
  done;
  D.unregister setup;
  let start = Barrier.create (cfg.threads + 1) in
  let stop = Atomic.make false in
  (* One histogram per thread per op type: no sharing on the hot path. *)
  let histograms =
    Array.init cfg.threads (fun _ -> (histogram (), histogram (), histogram ()))
  in
  let mix_for i =
    match cfg.role with
    | Workload.Uniform m -> m
    | Workload.Single_writer m -> if i = 0 then m else Workload.read_only
  in
  let worker i mix seed =
    let handle = D.register t in
    let rng = Rng.create seed in
    let next_key = Workload.key_generator cfg rng in
    let hc, hi, hd = histograms.(i) in
    Barrier.wait start;
    while not (Atomic.get stop) do
      let k = next_key () in
      let op = Workload.pick rng mix in
      let t0 = Monotonic_clock.now () in
      (match op with
      | Workload.Contains -> ignore (D.contains handle k)
      | Workload.Insert -> ignore (D.insert handle k k)
      | Workload.Delete -> ignore (D.delete handle k));
      let dt = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
      match op with
      | Workload.Contains -> record hc dt
      | Workload.Insert -> record hi dt
      | Workload.Delete -> record hd dt
    done;
    D.unregister handle
  in
  let domains =
    List.init cfg.threads (fun i ->
        let seed = Rng.next64 master in
        Domain.spawn (fun () -> worker i (mix_for i) seed))
  in
  Barrier.wait start;
  Unix.sleepf cfg.duration;
  Atomic.set stop true;
  List.iter Domain.join domains;
  D.shutdown t;
  D.check t;
  let all = Array.to_list histograms in
  let pick3 f = merge (List.map f all) in
  let per_op =
    [
      (Workload.Contains, summarize (pick3 (fun (c, _, _) -> c)));
      (Workload.Insert, summarize (pick3 (fun (_, i, _) -> i)));
      (Workload.Delete, summarize (pick3 (fun (_, _, d) -> d)));
    ]
  in
  List.filter (fun (_, s) -> s.count > 0) per_op
