(* Traced atomics for the model checker (dscheck-style): the same
   signature shape as [Atomic], but every access is an effect the
   scheduler intercepts — a yield point. The cells themselves are plain
   mutable storage: model "domains" are cooperative fibers multiplexed
   on one real domain, so there is never a data race on [v]; the
   *interleavings* of the accesses are what the explorer enumerates.

   Cells are numbered in creation order by a per-run counter the engine
   resets before each execution, so a scenario that allocates its state
   deterministically gets identical access ids run after run — the
   property replay and partial-order reduction both rest on. *)

type access = {
  aids : int list;  (* cells touched; >1 only for [await] *)
  aname : string;
  write : bool;
  op : string;
  mutable repr : string;  (* filled in when the access executes *)
}

type 'a t = { id : int; name : string; mutable v : 'a; show : 'a -> string }
type watched = W : 'a t -> watched

type _ Effect.t +=
  | Step : access * (unit -> 'a) -> 'a Effect.t
  | Await : access * (unit -> bool) -> unit Effect.t

let counter = ref 0
let reset () = counter := 0

let make ?(show = fun _ -> "_") name v =
  let id = !counter in
  incr counter;
  { id; name; v; show }

let make_int name v = make ~show:string_of_int name v

let acc ?(aids = []) ~write ~op a =
  { aids = (match aids with [] -> [ a.id ] | l -> l); aname = a.name;
    write; op; repr = "" }

let get a =
  let r = acc ~write:false ~op:"get" a in
  Effect.perform
    (Step
       ( r,
         fun () ->
           let v = a.v in
           r.repr <- Printf.sprintf "-> %s" (a.show v);
           v ))

let set a x =
  let r = acc ~write:true ~op:"set" a in
  Effect.perform
    (Step
       ( r,
         fun () ->
           r.repr <- a.show x;
           a.v <- x ))

let exchange a x =
  let r = acc ~write:true ~op:"exchange" a in
  Effect.perform
    (Step
       ( r,
         fun () ->
           let old = a.v in
           a.v <- x;
           r.repr <- Printf.sprintf "%s -> %s" (a.show old) (a.show x);
           old ))

let compare_and_set a expect x =
  let r = acc ~write:true ~op:"cas" a in
  Effect.perform
    (Step
       ( r,
         fun () ->
           let ok = a.v == expect in
           if ok then a.v <- x;
           r.repr <-
             Printf.sprintf "%s %s -> %s" (a.show expect)
               (if ok then "hit" else "miss")
               (a.show a.v);
           ok ))

let fetch_and_add (a : int t) n =
  let r = acc ~write:true ~op:"faa" a in
  Effect.perform
    (Step
       ( r,
         fun () ->
           let old = a.v in
           a.v <- old + n;
           r.repr <- Printf.sprintf "%d -> %d" old a.v;
           old ))

let incr a = ignore (fetch_and_add a 1)
let decr a = ignore (fetch_and_add a (-1))

(* Scheduler-only read: no yield, no trace. For [await] conditions (which
   the scheduler evaluates while the fiber is parked) and for final-state
   checks after every fiber finished. Models must not use it to smuggle
   an untraced read into a racy window. *)
let peek a = a.v

(* Untraced initializing store, for building a scenario's starting state
   inside [make] before any fiber runs. *)
let unsafe_init a x = a.v <- x

let watch a = W a

let await watched cond =
  let aids = List.map (fun (W a) -> a.id) watched in
  let names = String.concat "," (List.map (fun (W a) -> a.name) watched) in
  let r = { aids; aname = names; write = false; op = "await"; repr = "" } in
  Effect.perform (Await (r, cond))
