(** Stateless model-checking engine: exhaustive DFS over interleavings
    of small cooperative scenarios, with dynamic partial-order reduction
    (vector-clock backtrack points + sleep sets). Deterministic and
    seedless; counterexamples carry a replayable schedule. *)

exception Property_violation of string

val require : bool -> string -> unit
(** [require cond msg] raises {!Property_violation} [msg] when [cond]
    is false. Usable from scenario bodies and final checks. *)

type scenario = {
  name : string;
  descr : string;
  make : unit -> (string * (unit -> unit)) list * (unit -> unit);
      (** Fresh state per execution: returns the named proc bodies and a
          final check run after every proc finished. Bodies must be
          deterministic given the interleaving, touch shared state only
          through {!Tracedatomic}, and always terminate. *)
}

type cx_step = {
  proc : int;
  pname : string;
  op : string;
  target : string;
  repr : string;
}

type counterexample = {
  schedule : int list;  (** proc choice per step — replay token *)
  steps : cx_step list;
  error : string;
}

type stats = {
  traces : int;  (** complete (or violating) executions *)
  pruned : int;  (** executions cut short by sleep sets *)
  steps_total : int;  (** states visited across all executions *)
  deepest : int;
  exhausted : bool;  (** false iff the state budget stopped exploration *)
}

type result = {
  scenario : string;
  dpor : bool;
  stats : stats;
  counterexample : counterexample option;
}

val explore :
  ?dpor:bool -> ?max_states:int -> ?max_depth:int -> scenario -> result
(** Explore every interleaving (up to the reduction's equivalence) of
    [scenario]. [dpor:false] disables the reduction — full naive DFS,
    for measuring the reduction factor. [max_states] bounds total
    states visited across executions; [max_depth] bounds one
    execution's length (exceeding it is reported as a violation, since
    models must be finite). Stops at the first violation. *)

val replay :
  scenario -> int list -> cx_step list * string option
(** Re-execute a schedule (e.g. a counterexample's), returning the steps
    performed and the violation it reproduces, if any. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_result : Format.formatter -> result -> unit
