(* The scenarios: small, closed models of the racy windows this
   repository's correctness argument hangs on, each a few dozen traced
   accesses so the engine can explore them exhaustively. They are built
   from the same pure encodings as the real code (Repro_rcu.Protocol,
   Repro_citrus.Citrus_proto), so a change to a bit layout or a covered
   predicate flows into the model automatically.

   Each checked property has seeded mutants — the historical bug the
   protocol exists to rule out, switched on structurally (the model
   skips or reorders the same step the real bug would). The mutants
   must produce a counterexample while the controls stay silent; the
   [mutants --model] group of citrus_tool enforces exactly that. *)

module T = Tracedatomic
module P = Repro_rcu.Protocol
module CP = Repro_citrus.Citrus_proto

let require = Engine.require

(* CAS-max posting, the same monotonic rule as the flavours'
   [post_completed]: concurrent scans finish out of order and an older
   scan must never regress the number a newer one published. *)
let rec post_max cell n =
  let cur = T.get cell in
  if cur < n then if not (T.compare_and_set cell cur n) then post_max cell n

(* ---- store buffering: the engine's litmus test ----

   p0: x := 1; r0 := y        p1: y := 1; r1 := x

   Under sequential consistency (which an interleaving explorer checks)
   r0 = r1 = 0 is unreachable: it needs Ry < Wy and Rx < Wx, which with
   program order forms a cycle. Hand-counted interleavings of the four
   accesses: C(4,2) = 6 for naive DFS; 3 Mazurkiewicz classes for DPOR
   (order of Wx/Rx x order of Wy/Ry, minus the cyclic combination). *)
let sb =
  {
    Engine.name = "sb";
    descr = "store-buffering litmus: r0 = r1 = 0 unreachable under SC";
    make =
      (fun () ->
        let x = T.make_int "x" 0 and y = T.make_int "y" 0 in
        let r0 = ref (-1) and r1 = ref (-1) in
        ( [
            ("p0", fun () -> T.set x 1; r0 := T.get y);
            ("p1", fun () -> T.set y 1; r1 := T.get x);
          ],
          fun () ->
            require
              (not (!r0 = 0 && !r1 = 0))
              "both loads read 0: store-buffering outcome under SC" ));
  }

(* ---- epoch-rcu: reader entry vs. concurrent scans ----

   One reader, two updaters. Each updater unpublishes its node, runs the
   epoch synchronize (snapshot, coalesced-skip, claim a scan number,
   scan the reader slot with the overtaken-abort, CAS-max post) and then
   frees. The reader enters its slot, dereferences both nodes it saw
   published, and exits. Property: a node seen published from inside the
   section is never freed while the reader can still touch it.

   Mutants: the scan skipping the in-section wait entirely, and the
   abort firing on a stale overtake target (aborting means *not* waiting
   and *not* posting — safe only when a genuinely newer scan finished). *)
type epoch_mutant = E_none | E_skip_reader_wait | E_stale_abort

let epoch_scenario mutant =
  let name =
    match mutant with
    | E_none -> "epoch"
    | E_skip_reader_wait -> "epoch!skip-reader-wait"
    | E_stale_abort -> "epoch!stale-abort"
  in
  {
    Engine.name;
    descr = "epoch-rcu reader entry vs. two concurrent scans";
    make =
      (fun () ->
        let slot = T.make_int "reader.slot" 0 in
        let gp_started = T.make_int "gp_started" 0 in
        let gp_completed = T.make_int "gp_completed" 0 in
        let published =
          [| T.make_int "published.0" 1; T.make_int "published.1" 1 |]
        in
        let freed = [| T.make_int "freed.0" 0; T.make_int "freed.1" 0 |] in
        let reader () =
          T.set slot (P.Epoch.slot_enter (T.get slot));
          for i = 0 to 1 do
            if T.get published.(i) = 1 then
              require
                (T.get freed.(i) = 0)
                "reader dereferenced a freed node inside its section"
          done;
          T.set slot (P.Epoch.slot_exit (T.get slot))
        in
        let updater i () =
          T.set published.(i) 0;
          (* synchronize *)
          let snap = P.Epoch.snap ~gp_started:(T.get gp_started) in
          if not (P.Epoch.covered ~gp_completed:(T.get gp_completed) ~snap)
          then begin
            let my = T.fetch_and_add gp_started 1 + 1 in
            let s = T.get slot in
            let aborted = ref false in
            let must_wait =
              match mutant with
              | E_skip_reader_wait -> false
              | _ -> P.Epoch.slot_in_section s
            in
            if must_wait then begin
              let overtake = match mutant with E_stale_abort -> my - 1 | _ -> my in
              T.await
                [ T.watch slot; T.watch gp_completed ]
                (fun () ->
                  T.peek slot <> s
                  || P.Epoch.covered
                       ~gp_completed:(T.peek gp_completed)
                       ~snap:overtake);
              (* Woken: either the slot word changed (reader left or
                 re-entered — ABA-safe, the count only grows) or a newer
                 scan overtook us, in which case we abort and post
                 nothing (the overtaking scan already did). *)
              if T.get slot = s then aborted := true
            end;
            if not !aborted then post_max gp_completed my
          end;
          T.set freed.(i) 1
        in
        ( [
            ("reader", reader);
            ("updater.0", updater 0);
            ("updater.1", updater 1);
          ],
          fun () -> () ));
  }

(* ---- urcu: the (completed<<1)|in_progress flip handshake ----

   One reader, one updater performing two sequential deletes (each
   unpublish + synchronize + free). The synchronize is liburcu's: mark
   gp_seq in-progress, flip the phase and wait out ongoing readers —
   twice — then post completed. The reader's racy window is between
   loading the global phase and publishing it in its slot.

   Mutant: a single flip. The classic broken urcu needs two grace
   periods to bite: the reader stalls in the window across the first
   synchronize, then publishes the stale phase; the second synchronize's
   single flip lands back on the reader's phase, sees it as
   not-ongoing, and completes mid-section. *)
type urcu_mutant = U_none | U_single_flip

let urcu_scenario mutant =
  let name =
    match mutant with U_none -> "urcu" | U_single_flip -> "urcu!single-flip"
  in
  {
    Engine.name;
    descr = "urcu two-flip handshake vs. a reader in the stale-phase window";
    make =
      (fun () ->
        let gp_ctr = T.make_int "gp_ctr" 0 in
        let slot = T.make_int "reader.slot" 0 in
        let seq = T.make_int "gp_seq" 0 in
        let published =
          [| T.make_int "published.0" 1; T.make_int "published.1" 1 |]
        in
        let freed = [| T.make_int "freed.0" 0; T.make_int "freed.1" 0 |] in
        let reader () =
          (* Outermost read_lock: load the phase ... publish it. The gap
             between the two accesses is the window. *)
          let phase = T.get gp_ctr in
          T.set slot (P.Urcu.enter_word ~phase);
          for i = 0 to 1 do
            if T.get published.(i) = 1 then
              require
                (T.get freed.(i) = 0)
                "reader dereferenced a freed node inside its section"
          done;
          T.set slot 0
        in
        let flip () =
          let gp_phase = T.get gp_ctr lxor P.Urcu.phase_bit in
          T.set gp_ctr gp_phase;
          let v = T.get slot in
          if P.Urcu.ongoing ~gp_phase v then
            T.await [ T.watch slot ]
              (fun () -> not (P.Urcu.ongoing ~gp_phase (T.peek slot)))
        in
        let synchronize () =
          (* Single updater: the gp_lock serialization is vacuous here
             and elided; gp_seq transitions are the real ones. *)
          let completed = P.Urcu.seq_completed (T.get seq) in
          T.set seq (P.Urcu.seq_in_progress ~completed);
          flip ();
          (match mutant with U_single_flip -> () | U_none -> flip ());
          T.set seq (P.Urcu.seq_idle ~completed:(completed + 1))
        in
        let updater () =
          T.set published.(0) 0;
          synchronize ();
          T.set freed.(0) 1;
          T.set published.(1) 0;
          synchronize ();
          T.set freed.(1) 1
        in
        ([ ("reader", reader); ("updater", updater) ], fun () -> ()));
  }

(* ---- qsbr: quiescence announcements ----

   One reader (an outer section containing a nested read_lock), one
   updater (unpublish + one scan + free). Mutant: the nested read_lock
   refreshes the slot to the current counter — announcing quiescence
   from inside the section, QSBR's cardinal sin (the same seeded bug as
   Qsbr.Buggy.quiescent_in_section). *)
type qsbr_mutant = Q_none | Q_quiesce_in_section

let qsbr_scenario mutant =
  let name =
    match mutant with
    | Q_none -> "qsbr"
    | Q_quiesce_in_section -> "qsbr!quiesce-in-section"
  in
  {
    Engine.name;
    descr = "qsbr quiescence vs. a nested read-side critical section";
    make =
      (fun () ->
        let gp = T.make_int "gp" 1 in
        let slot = T.make_int "reader.slot" 0 in
        let gp_completed = T.make_int "gp_completed" 0 in
        let published = T.make_int "published" 1 in
        let freed = T.make_int "freed" 0 in
        let reader () =
          (* outermost read_lock: go online *)
          T.set slot (T.get gp);
          let p = T.get published in
          (* nested read_lock: a no-op — except under the mutant, where
             it announces a quiescent state mid-section. *)
          (match mutant with
          | Q_quiesce_in_section -> T.set slot (T.get gp)
          | Q_none -> ());
          if p = 1 then
            require (T.get freed = 0)
              "reader dereferenced a freed node inside its section";
          (* outermost read_unlock: go offline *)
          T.set slot 0
        in
        let updater () =
          T.set published 0;
          (* synchronize: advance the counter, wait for the slot, post *)
          let target = T.fetch_and_add gp 2 + 2 in
          let v = T.get slot in
          if P.Qsbr.blocks ~target v then
            T.await [ T.watch slot ]
              (fun () -> not (P.Qsbr.blocks ~target (T.peek slot)));
          post_max gp_completed target;
          T.set freed 1
        in
        ([ ("reader", reader); ("updater", updater) ], fun () -> ()));
  }

(* ---- reclaimer: the bag hand-off cookie ----

   The call_rcu pipeline from lib/rcu/reclaimer.ml over an epoch-style
   grace period: the updater unpublishes, stamps the retired item with
   [read_gp_seq] and hands it to the reclaimer through a bag cell; the
   reclaimer waits for the cookie's grace period (free immediately if
   already covered, else drive a scan) and frees. A fourth proc drives
   one unrelated scan — the grace-period traffic that makes a stale
   cookie dangerous.

   Mutant: the cookie is taken *before* the unpublish (reclaimer.ml
   takes it at enqueue time, after; taking it early is the bug). An
   unrelated scan that completes between cookie and unpublish then
   satisfies the cookie while a reader that saw the node published is
   still inside its section. *)
type reclaimer_mutant = R_none | R_stale_cookie

let reclaimer_scenario mutant =
  let name =
    match mutant with
    | R_none -> "reclaimer"
    | R_stale_cookie -> "reclaimer!stale-cookie"
  in
  {
    Engine.name;
    descr = "call_rcu bag hand-off: read_gp_seq cookie vs. unpublish order";
    make =
      (fun () ->
        let slot = T.make_int "reader.slot" 0 in
        let gp_started = T.make_int "gp_started" 0 in
        let gp_completed = T.make_int "gp_completed" 0 in
        let published = T.make_int "published" 1 in
        let freed = T.make_int "freed" 0 in
        let bag = T.make_int "bag" (-1) in
        let scan () =
          let my = T.fetch_and_add gp_started 1 + 1 in
          let s = T.get slot in
          let aborted = ref false in
          if P.Epoch.slot_in_section s then begin
            T.await
              [ T.watch slot; T.watch gp_completed ]
              (fun () ->
                T.peek slot <> s
                || P.Epoch.covered
                     ~gp_completed:(T.peek gp_completed)
                     ~snap:my);
            if T.get slot = s then aborted := true
          end;
          if not !aborted then post_max gp_completed my
        in
        let reader () =
          T.set slot (P.Epoch.slot_enter (T.get slot));
          if T.get published = 1 then
            require (T.get freed = 0)
              "reader dereferenced a freed node inside its section";
          T.set slot (P.Epoch.slot_exit (T.get slot))
        in
        let updater () =
          match mutant with
          | R_none ->
              (* call_rcu takes the cookie at enqueue time, after the
                 node is unlinked. *)
              T.set published 0;
              let cookie = P.Epoch.snap ~gp_started:(T.get gp_started) in
              T.set bag cookie
          | R_stale_cookie ->
              let cookie = P.Epoch.snap ~gp_started:(T.get gp_started) in
              T.set published 0;
              T.set bag cookie
        in
        let reclaimer () =
          T.await [ T.watch bag ] (fun () -> T.peek bag >= 0);
          let cookie = T.get bag in
          (* cond_synchronize: free straight away when the cookie's
             grace period already elapsed, else drive a scan. *)
          if
            not
              (P.Epoch.covered ~gp_completed:(T.get gp_completed) ~snap:cookie)
          then scan ();
          T.set freed 1
        in
        ( [
            ("reader", reader);
            ("updater", updater);
            ("syncer", scan);
            ("reclaimer", reclaimer);
          ],
          fun () -> () ));
  }

(* ---- citrus: insert + two-child delete vs. two readers ----

   A four-node arena tree (sentinel root -> n2(key 2) with right child
   n3(key 3); n1(key 1) inserted below n2 during the run), traversed by
   two wait-free readers searching different keys with the real
   direction function (Citrus_proto.dir_of_cmp). The updater inserts n1
   (init-then-publish) and then runs the paper's two-child delete of
   key 2: build the copy (succ's key, curr's children), publish it over
   the parent pointer, one grace period, retire curr, unlink succ from
   the copy, another grace period, retire succ — grace periods are the
   epoch scan over both reader slots.

   Property: no reader ever dereferences a freed node (key read after a
   retire that a grace period should have fenced) or a half-published
   one (key still uninitialized, i.e. published before init).

   Mutants: publish the copy before initializing it; retire without any
   grace period. *)
type citrus_mutant = C_none | C_publish_before_init | C_skip_gp

let citrus_scenario mutant =
  let name =
    match mutant with
    | C_none -> "citrus"
    | C_publish_before_init -> "citrus!publish-before-init"
    | C_skip_gp -> "citrus!skip-gp"
  in
  {
    Engine.name;
    descr = "citrus insert + two-child delete vs. two wait-free readers";
    make =
      (fun () ->
        let nnodes = 5 in
        (* ids: 0 root (sentinel, key max_int), 1 n2 (key 2), 2 n1
           (key 1, inserted), 3 n3 (key 3), 4 the delete's copy. -1 = no
           child, key 0 = uninitialized. *)
        let key =
          Array.init nnodes (fun i -> T.make_int (Printf.sprintf "key.%d" i) 0)
        in
        let child =
          Array.init nnodes (fun i ->
              Array.init 2 (fun d ->
                  T.make_int (Printf.sprintf "child.%d.%d" i d) (-1)))
        in
        let freed =
          Array.init nnodes (fun i ->
              T.make_int (Printf.sprintf "freed.%d" i) 0)
        in
        (* Initial tree, built with untraced stores before any fiber
           runs: root.left = n2; n2.right = n3. *)
        T.unsafe_init key.(0) max_int;
        T.unsafe_init key.(1) 2;
        T.unsafe_init key.(3) 3;
        T.unsafe_init child.(0).(CP.left) 1;
        T.unsafe_init child.(1).(CP.right) 3;
        let slots =
          [| T.make_int "reader0.slot" 0; T.make_int "reader1.slot" 0 |]
        in
        let gp_started = T.make_int "gp_started" 0 in
        let gp_completed = T.make_int "gp_completed" 0 in
        let synchronize () =
          match mutant with
          | C_skip_gp -> ()
          | _ ->
              let snap = P.Epoch.snap ~gp_started:(T.get gp_started) in
              if
                not
                  (P.Epoch.covered ~gp_completed:(T.get gp_completed) ~snap)
              then begin
                let my = T.fetch_and_add gp_started 1 + 1 in
                for r = 0 to 1 do
                  let s = T.get slots.(r) in
                  if P.Epoch.slot_in_section s then
                    T.await
                      [ T.watch slots.(r); T.watch gp_completed ]
                      (fun () ->
                        T.peek slots.(r) <> s
                        || P.Epoch.covered
                             ~gp_completed:(T.peek gp_completed)
                             ~snap:my)
                done;
                post_max gp_completed my
              end
        in
        let reader r target_key () =
          T.set slots.(r) (P.Epoch.slot_enter (T.get slots.(r)));
          let rec go id =
            if id >= 0 then begin
              require
                (T.get freed.(id) = 0)
                "reader reached a freed node inside its section";
              let k = T.get key.(id) in
              require (k <> 0)
                "reader reached a half-published (uninitialized) node";
              if k <> target_key then
                go (T.get child.(id).(CP.dir_of_cmp (compare k target_key)))
            end
          in
          go 0;
          T.set slots.(r) (P.Epoch.slot_exit (T.get slots.(r)))
        in
        let updater () =
          (* insert n1 (key 1) as n2's left child: init fully, then one
             publishing store (paper insert). *)
          T.set key.(2) 1;
          T.set child.(1).(CP.left) 2;
          (* two-child delete of n2: successor is n3 (leftmost of the
             right subtree). Build the copy with succ's key and curr's
             children... *)
          let publish () = T.set child.(0).(CP.left) 4 in
          if mutant = C_publish_before_init then publish ();
          let k = T.get key.(3) in
          let cl = T.get child.(1).(CP.left) in
          let cr = T.get child.(1).(CP.right) in
          T.set key.(4) k;
          T.set child.(4).(CP.left) cl;
          T.set child.(4).(CP.right) cr;
          (* ...publish it over the parent pointer (unlinks curr)... *)
          if mutant <> C_publish_before_init then publish ();
          (* ...grace period, retire curr... *)
          synchronize ();
          T.set freed.(1) 1;
          (* ...unlink succ from the copy, grace period, retire succ. *)
          T.set child.(4).(CP.right) (T.get child.(3).(CP.right));
          synchronize ();
          T.set freed.(3) 1
        in
        ( [
            ("reader.k1", reader 0 1);
            ("reader.k3", reader 1 3);
            ("updater", updater);
          ],
          fun () -> () ));
  }

(* ---- registry ---- *)

let controls =
  [
    sb;
    epoch_scenario E_none;
    urcu_scenario U_none;
    qsbr_scenario Q_none;
    reclaimer_scenario R_none;
    citrus_scenario C_none;
  ]

let mutants =
  [
    epoch_scenario E_skip_reader_wait;
    epoch_scenario E_stale_abort;
    urcu_scenario U_single_flip;
    qsbr_scenario Q_quiesce_in_section;
    reclaimer_scenario R_stale_cookie;
    citrus_scenario C_publish_before_init;
    citrus_scenario C_skip_gp;
  ]

let all = controls @ mutants

let find name =
  List.find_opt (fun (s : Engine.scenario) -> s.name = name) all
