(** The protocol scenarios checked by {!Engine.explore}: the store
    buffering litmus, the three RCU flavours' racy windows, the
    call_rcu reclaimer hand-off, and the Citrus insert + two-child
    delete — built from the same pure encodings as the real code
    (Repro_rcu.Protocol, Repro_citrus.Citrus_proto). *)

val sb : Engine.scenario
(** The store-buffering litmus: the engine's own calibration model, with
    hand-countable interleavings (6 naive, 3 reduced). *)

val controls : Engine.scenario list
(** The correct protocols: exploration must find no violation. *)

val mutants : Engine.scenario list
(** Seeded historical bugs (names are ["control!mutation"]): exploration
    must produce a counterexample for every one. *)

val all : Engine.scenario list

val find : string -> Engine.scenario option
(** Look up any scenario (control or mutant) by name. *)
