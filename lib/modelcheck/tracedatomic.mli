(** Traced atomics for the model checker: the [Atomic] signature shape,
    but every access is an effect the engine's cooperative scheduler
    intercepts as a yield point. Use only inside scenario bodies run by
    {!Engine.explore}. *)

type access = {
  aids : int list;  (** cells touched; more than one only for [await] *)
  aname : string;
  write : bool;
  op : string;
  mutable repr : string;  (** human-readable value, filled at execution *)
}

type 'a t
type watched

type _ Effect.t +=
  | Step : access * (unit -> 'a) -> 'a Effect.t
  | Await : access * (unit -> bool) -> unit Effect.t

val reset : unit -> unit
(** Reset the cell-id counter; the engine calls it before every
    execution so ids are deterministic. *)

val make : ?show:('a -> string) -> string -> 'a -> 'a t
val make_int : string -> int -> int t

val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val exchange : 'a t -> 'a -> 'a
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int
val incr : int t -> unit
val decr : int t -> unit

val peek : 'a t -> 'a
(** Untraced read, no yield: for [await] conditions and final-state
    checks only. *)

val unsafe_init : 'a t -> 'a -> unit
(** Untraced initializing store: only for building a scenario's starting
    state inside [make], before any fiber runs. *)

val watch : 'a t -> watched

val await : watched list -> (unit -> bool) -> unit
(** [await watched cond] parks the fiber until [cond ()] is true; the
    proc is disabled meanwhile (if every proc is parked the engine
    reports a deadlock). [cond] must be pure, read cells only via
    {!peek}, and depend only on the [watched] cells — the access is
    modeled as a read of exactly those cells for conflict analysis. *)
