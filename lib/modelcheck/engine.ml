(* Stateless model-checking engine (in the style of dscheck / CHESS):
   scenarios are re-executed from scratch once per explored interleaving,
   with every Tracedatomic access a scheduling point. Exploration is a
   DFS over scheduling choices with dynamic partial-order reduction:

   - persistent-set style backtrack points (Flanagan–Godefroid): after
     each execution, every pair of conflicting, differently-owned,
     causally-unordered accesses (vector clocks decide "unordered") adds
     the later proc to the backtrack set of the earlier access's state;
   - sleep sets: a choice fully explored at a state is propagated into
     each subsequent state's sleep set while it stays independent of the
     steps taken, so commuted permutations of the same trace are pruned
     without executing them.

   Sleep sets only steer the free-run default choice and prune
   sleep-blocked leaves; they never veto a backtrack point.  With
   Flanagan–Godefroid backtrack sets the inserted proc is the racing
   proc itself, not necessarily an initial of the racing suffix, so its
   exploration relies on recursive race discovery — the sleep-set
   covering argument does not apply to it, and filtering backtrack
   candidates through the sleep set loses real schedules (it made a
   4-proc reclaimer model look exhaustively clean while a violating
   interleaving existed).

   Everything is deterministic and seedless: cells are numbered in
   creation order, sets iterate in sorted order, and the only inputs are
   the scenario and the budgets — so a counterexample's schedule (the
   list of proc choices) replays exactly. *)

module T = Tracedatomic
module ISet = Set.Make (Int)

exception Property_violation of string

let require cond msg = if not cond then raise (Property_violation msg)

type scenario = {
  name : string;
  descr : string;
  make : unit -> (string * (unit -> unit)) list * (unit -> unit);
}

type cx_step = {
  proc : int;
  pname : string;
  op : string;
  target : string;
  repr : string;
}

type counterexample = {
  schedule : int list;
  steps : cx_step list;
  error : string;
}

type stats = {
  traces : int;
  pruned : int;
  steps_total : int;
  deepest : int;
  exhausted : bool;
}

type result = {
  scenario : string;
  dpor : bool;
  stats : stats;
  counterexample : counterexample option;
}

(* ---- cooperative fibers ---- *)

type pending =
  | Ready of T.access * (unit -> unit)
  | Waiting of T.access * (unit -> bool) * (unit -> unit)
  | Finished

type proc = { pname : string; mutable state : pending }

(* Run [body] until its first traced access; every subsequent access
   parks the fiber back into [p.state] with a closure that performs the
   access and resumes. The handler is deep, so one [match_with] serves
   the fiber's whole life. *)
let start_proc p body =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> p.state <- Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | T.Step (acc, f) ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  p.state <-
                    Ready (acc, fun () -> Effect.Deep.continue k (f ())))
          | T.Await (acc, cond) ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  p.state <-
                    Waiting (acc, cond, fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }

(* ---- exploration state ---- *)

type node = {
  mutable choice : int;
  mutable backtrack : ISet.t;
  mutable done_ : ISet.t;  (* choices whose subtrees are fully explored *)
  sleep : ISet.t;
  (* The rest is refreshed on every execution through this node. *)
  mutable enabled : ISet.t;
  mutable pend : T.access option array;  (* per-proc pending access here *)
  mutable acc : T.access;  (* access performed by [choice] *)
  mutable pre : int array;  (* chooser's vector clock before the step *)
  mutable clock : int array;  (* and after *)
}

let dummy_access : T.access =
  { aids = []; aname = ""; write = false; op = ""; repr = "" }

let conflict (a : T.access) (b : T.access) =
  (a.write || b.write) && List.exists (fun i -> List.mem i b.aids) a.aids

type run_end = Completed | Sleep_pruned | Violation of string

let explore ?(dpor = true) ?(max_states = 2_000_000) ?(max_depth = 10_000)
    scenario =
  let stack : node option array ref = ref (Array.make 256 None) in
  let ensure i =
    let a = !stack in
    if i >= Array.length a then begin
      let b = Array.make (2 * (i + 1)) None in
      Array.blit a 0 b 0 (Array.length a);
      stack := b
    end
  in
  let traces = ref 0 and pruned = ref 0 and steps_total = ref 0 in
  let deepest = ref 0 in
  let exhausted = ref true in
  let cx = ref None in

  (* One execution: replay the choices of nodes [0..cur_len-1], then
     free-run picking the smallest enabled non-sleeping proc, pushing a
     fresh node per step. Returns (steps executed, how it ended, trace). *)
  let run_one cur_len =
    T.reset ();
    let bodies, final = scenario.make () in
    let nprocs = List.length bodies in
    let procs =
      Array.of_list
        (List.map (fun (pname, _) -> { pname; state = Finished }) bodies)
    in
    List.iteri (fun i (_, body) -> start_proc procs.(i) body) bodies;
    let clocks = Array.init nprocs (fun _ -> Array.make nprocs 0) in
    let wclock = Hashtbl.create 32 and rclock = Hashtbl.create 32 in
    let merge dst src =
      for i = 0 to nprocs - 1 do
        if src.(i) > dst.(i) then dst.(i) <- src.(i)
      done
    in
    let atomic_clock tbl aid =
      match Hashtbl.find_opt tbl aid with
      | Some c -> c
      | None ->
          let c = Array.make nprocs 0 in
          Hashtbl.add tbl aid c;
          c
    in
    let steps = ref [] in
    let i = ref 0 in
    let stop = ref None in
    while !stop = None do
      let enabled = ref ISet.empty in
      let pend = Array.make nprocs None in
      let live = ref false in
      Array.iteri
        (fun p pr ->
          match pr.state with
          | Finished -> ()
          | Ready (a, _) ->
              live := true;
              pend.(p) <- Some a;
              enabled := ISet.add p !enabled
          | Waiting (a, cond, _) ->
              live := true;
              pend.(p) <- Some a;
              if cond () then enabled := ISet.add p !enabled)
        procs;
      if not !live then stop := Some Completed
      else if ISet.is_empty !enabled then
        stop := Some (Violation "deadlock: every live proc is parked in await")
      else if !i >= max_depth then
        stop :=
          Some (Violation "depth budget exceeded: the model has an unbounded path")
      else begin
        let decided =
          if !i < cur_len then begin
            match (!stack).(!i) with
            | Some n ->
                n.enabled <- !enabled;
                n.pend <- pend;
                Some n
            | None -> assert false
          end
          else begin
            let sleep =
              if (not dpor) || !i = 0 then ISet.empty
              else
                match (!stack).(!i - 1) with
                | Some parent ->
                    (* A backtrack point may schedule a proc that is in
                       its own node's sleep set, so the chosen proc must
                       always leave the inherited sleep set: it has
                       moved, and the "already covered" claim was about
                       its previous pending step. *)
                    ISet.filter
                      (fun q ->
                        q <> parent.choice
                        &&
                        match parent.pend.(q) with
                        | Some aq -> not (conflict aq parent.acc)
                        | None -> false)
                      (ISet.union parent.sleep parent.done_)
                | None -> assert false
            in
            let cands = ISet.diff !enabled sleep in
            if ISet.is_empty cands then None
            else begin
              let choice = ISet.min_elt cands in
              ensure !i;
              let n =
                {
                  choice;
                  backtrack =
                    (if dpor then ISet.singleton choice else !enabled);
                  done_ = ISet.empty;
                  sleep;
                  enabled = !enabled;
                  pend;
                  acc = dummy_access;
                  pre = [||];
                  clock = [||];
                }
              in
              (!stack).(!i) <- Some n;
              Some n
            end
          end
        in
        match decided with
        | None -> stop := Some Sleep_pruned
        | Some n ->
            let p = n.choice in
            if not (ISet.mem p !enabled) then
              failwith
                (Printf.sprintf
                   "modelcheck: scheduled proc %d not enabled at step %d — \
                    the scenario is not deterministic"
                   p !i);
            let pr = procs.(p) in
            let c = clocks.(p) in
            c.(p) <- c.(p) + 1;
            let pre = Array.copy c in
            let violation = ref None in
            (match pr.state with
            | Ready (a, run) ->
                List.iter
                  (fun aid ->
                    merge c (atomic_clock wclock aid);
                    if a.write then merge c (atomic_clock rclock aid))
                  a.aids;
                n.acc <- a;
                (try run () with Property_violation m -> violation := Some m);
                List.iter
                  (fun aid ->
                    if a.write then merge (atomic_clock wclock aid) c
                    else merge (atomic_clock rclock aid) c)
                  a.aids
            | Waiting (a, _, run) ->
                (* The successful await is modeled as a read of every
                   watched cell. *)
                List.iter (fun aid -> merge c (atomic_clock wclock aid)) a.aids;
                n.acc <- a;
                (try run () with Property_violation m -> violation := Some m);
                List.iter (fun aid -> merge (atomic_clock rclock aid) c) a.aids
            | Finished -> assert false);
            n.pre <- pre;
            n.clock <- Array.copy c;
            steps :=
              {
                proc = p;
                pname = pr.pname;
                op = n.acc.op;
                target = n.acc.aname;
                repr = n.acc.repr;
              }
              :: !steps;
            incr steps_total;
            incr i;
            (match !violation with
            | Some m -> stop := Some (Violation m)
            | None -> ())
      end
    done;
    let endk =
      match !stop with
      | Some Completed -> (
          try
            final ();
            Completed
          with Property_violation m -> Violation m)
      | Some k -> k
      | None -> assert false
    in
    (!i, endk, List.rev !steps)
  in

  let cur_len = ref 0 in
  let running = ref true in
  while !running do
    if !steps_total >= max_states then begin
      exhausted := false;
      running := false
    end
    else begin
      let executed, endk, trace = run_one !cur_len in
      if executed > !deepest then deepest := executed;
      (match endk with
      | Completed -> incr traces
      | Sleep_pruned -> incr pruned
      | Violation msg ->
          incr traces;
          cx :=
            Some
              {
                schedule = List.map (fun (s : cx_step) -> s.proc) trace;
                steps = trace;
                error = msg;
              };
          running := false);
      if !running then begin
        if dpor then
          (* Backtrack points: for every racing pair (i, j) — conflicting
             accesses by different procs, not ordered by happens-before —
             the later proc (or, if it was not enabled there, every
             enabled proc) must also be tried at the earlier state. *)
          for j = 1 to executed - 1 do
            match (!stack).(j) with
            | None -> assert false
            | Some nj ->
                let q = nj.choice in
                for i' = j - 1 downto 0 do
                  match (!stack).(i') with
                  | None -> assert false
                  | Some ni ->
                      if
                        ni.choice <> q
                        && conflict ni.acc nj.acc
                        && nj.pre.(ni.choice) < ni.clock.(ni.choice)
                      then
                        if ISet.mem q ni.enabled then
                          ni.backtrack <- ISet.add q ni.backtrack
                        else ni.backtrack <- ISet.union ni.backtrack ni.enabled
                done
          done;
        let d = ref executed in
        let advanced = ref false in
        while (not !advanced) && !d > 0 do
          match (!stack).(!d - 1) with
          | None -> assert false
          | Some n ->
              n.done_ <- ISet.add n.choice n.done_;
              let cands = ISet.diff n.backtrack n.done_ in
              if ISet.is_empty cands then decr d
              else begin
                n.choice <- ISet.min_elt cands;
                cur_len := !d;
                advanced := true
              end
        done;
        if not !advanced then running := false
      end
    end
  done;
  {
    scenario = scenario.name;
    dpor;
    stats =
      {
        traces = !traces;
        pruned = !pruned;
        steps_total = !steps_total;
        deepest = !deepest;
        exhausted = !exhausted;
      };
    counterexample = !cx;
  }

(* ---- counterexample replay ---- *)

exception Replay_stop

let replay scenario schedule =
  T.reset ();
  let bodies, final = scenario.make () in
  let procs =
    Array.of_list
      (List.map (fun (pname, _) -> { pname; state = Finished }) bodies)
  in
  List.iteri (fun i (_, body) -> start_proc procs.(i) body) bodies;
  let steps = ref [] in
  let error = ref None in
  let step p run (a : T.access) =
    (try run () with Property_violation m -> error := Some m);
    steps :=
      {
        proc = p;
        pname = procs.(p).pname;
        op = a.op;
        target = a.aname;
        repr = a.repr;
      }
      :: !steps;
    if !error <> None then raise Replay_stop
  in
  (try
     List.iter
       (fun p ->
         match procs.(p).state with
         | Finished -> failwith "replay: scheduled proc already finished"
         | Ready (a, run) -> step p run a
         | Waiting (a, cond, run) ->
             if not (cond ()) then failwith "replay: scheduled proc is parked";
             step p run a)
       schedule
   with Replay_stop -> ());
  if !error = None && Array.for_all (fun pr -> pr.state = Finished) procs then (
    try final () with Property_violation m -> error := Some m);
  (List.rev !steps, !error)

(* ---- printing ---- *)

let pp_counterexample ppf cx =
  Format.fprintf ppf "property violated: %s@\n" cx.error;
  Format.fprintf ppf "replay schedule (proc ids): [%s]@\n"
    (String.concat "; " (List.map string_of_int cx.schedule));
  List.iteri
    (fun k (s : cx_step) ->
      Format.fprintf ppf "  %3d  %-12s %-6s %-22s %s@\n" (k + 1) s.pname s.op
        s.target s.repr)
    cx.steps

let pp_result ppf r =
  Format.fprintf ppf "%-14s %s traces=%d pruned=%d states=%d depth<=%d %s"
    r.scenario
    (if r.dpor then "dpor" else "naive")
    r.stats.traces r.stats.pruned r.stats.steps_total r.stats.deepest
    (if not r.stats.exhausted then "BUDGET-EXCEEDED"
     else
       match r.counterexample with
       | None -> "exhaustive, no violation"
       | Some _ -> "VIOLATION");
  match r.counterexample with
  | None -> ()
  | Some cx -> Format.fprintf ppf "@\n%a" pp_counterexample cx
