(** Reclamation sanitizer: debug-mode grace-period safety checking.

    The paper's correctness argument rests on one invariant: a node is
    reclaimed only after a grace period covering every reader that could
    still reach it. In the C original a violation segfaults; under OCaml's
    GC it silently reads valid memory and every test passes. This module
    restores the missing failure mode.

    Every reclaimable object registers a {!record} (a {e shadow} of the
    node, never reachable from readers except through the node itself)
    that tracks the logical lifetime the C code would give the memory:

    {v Live --on_defer--> Deferred gp --on_reclaim--> Reclaimed (gp, gp') v}

    [on_defer] corresponds to [free] being scheduled (e.g. [Defer.defer])
    and records the grace-period cookie ([read_gp_seq]) current at enqueue;
    [on_reclaim] corresponds to the free actually running after its grace
    period. Instrumented read paths call {!check} on the shadow of every
    node they touch: touching a [Reclaimed] record inside a read-side
    critical section is a logical use-after-free and raises {!Violation}
    with a structured {!report}. The same state machine detects
    double-frees ([on_defer]/[on_reclaim] on an already-retired record)
    and leaked deferrals ({!audit}: records still [Deferred] at teardown).

    Off by default: every instrumented site is gated on {!enabled}, one
    atomic load and a branch — the same discipline as [Metrics] and
    [Fault]. Arm programmatically ({!arm}), per run
    ([citrus_tool torture --sanitize]), or via the environment
    ([REPRO_SANITIZE=1]). See ROBUSTNESS.md for the full design, the
    mutation suite that proves the checker catches seeded bugs, and the
    measured overhead. *)

(** {2 Arming} *)

val enabled : unit -> bool
(** One atomic load; the gate every instrumented site checks first. *)

val arm : unit -> unit
val disarm : unit -> unit

(** {2 Shadow records} *)

type domain
(** A shadow-record namespace, one per tracked structure (e.g. one Citrus
    tree, one torture run). Holds the table of in-flight [Deferred]
    records for the leak {!audit}; memory is bounded by the reclamation
    backlog, not by objects ever allocated. *)

type record
(** The shadow of one reclaimable object. Store it in the object
    ([mutable shadow : record option]) so read paths can check it. *)

type state =
  | Live  (** reachable; reclamation not yet scheduled *)
  | Deferred of int
      (** free scheduled; the [int] is the grace-period cookie at enqueue *)
  | Reclaimed of int * int
      (** free ran: [(cookie at enqueue, cookie at reclaim)]. Any read-side
          touch from here on is a logical use-after-free. *)

val create : string -> domain
(** [create name] — [name] identifies the structure in reports. *)

val domain_name : domain -> string

val register : domain -> record
(** Fresh shadow record in state [Live], with a domain-unique id. *)

val id : record -> int
val state : record -> state

(** {2 Violations} *)

type kind = Use_after_reclaim | Double_free | Leaked_deferral

type report = {
  kind : kind;
  node_id : int;  (** shadow-record id of the offending object *)
  domain : string;  (** owning {!domain}'s name *)
  deferred_gp : int;  (** grace-period cookie at enqueue, -1 if unknown *)
  reclaimed_gp : int;  (** grace-period cookie at reclaim, -1 if unknown *)
  reader_slot : int;  (** detecting reader's slot, -1 if not a read path *)
  reader_cookie : int;
      (** grace-period cookie captured when the detecting reader entered
          its critical section ([reader_cookie <= reclaimed_gp] is the
          smoking gun: the reclaim happened during the section), 0 if not
          captured *)
  backtrace : string;  (** call stack at the detection site *)
}

exception Violation of report
(** Raised by {!check}, {!on_defer} and {!on_reclaim}. A printer is
    registered, so an uncaught violation prints the full report. *)

val kind_to_string : kind -> string
val report_to_string : report -> string

(** {2 Lifecycle transitions} *)

val on_defer : record -> gp:int -> unit
(** Mark the object's free as scheduled at grace-period cookie [gp].
    Raises [Violation {kind = Double_free; _}] if the record is already
    [Deferred] or [Reclaimed] — the same object was queued for a second
    free. *)

val on_reclaim : ?gp:int -> record -> unit
(** Mark the free as executed (at cookie [gp] if given). Tolerates a
    record still [Live] (manual reclamation that never went through a
    queue); raises [Violation {kind = Double_free; _}] if already
    [Reclaimed]. *)

(** {2 Read-side checks}

    All three count into [Metrics.sanitizer_checks]. [slot] defaults to
    the calling domain's id, [cookie] to 0; read paths should pass the
    RCU flavour's [reader_slot] / [reader_cookie] so reports name the
    guilty critical section. *)

val check : ?slot:int -> ?cookie:int -> record -> unit
(** Raise {!Violation} if the record is [Reclaimed]. Use on read paths
    that hold no locks, where unwinding is safe (read locks must be
    released by a [Fun.protect] wrapper at the section boundary). *)

val note : ?slot:int -> ?cookie:int -> record -> unit
(** Like {!check} but records the violation (counter, metric, trace)
    without raising. Use where the caller holds node locks that a raise
    would leak — e.g. the successor walk inside Citrus's two-child
    delete. The run still fails: harnesses read {!violations}. *)

val observe : record -> unit
(** Count the check only, never a violation. For sites where touching a
    [Reclaimed] node is legal in this GC port and merely interesting —
    e.g. post-lock validation, which is specified to return [false] on
    retired nodes. *)

val violations : unit -> int
(** Process-global count of violations detected (raised {e and} noted)
    since start or {!reset_violations}. Counted even when [Metrics] is
    disabled. *)

val reset_violations : unit -> unit

(** {2 Teardown audit} *)

val audit : domain -> report list
(** Records still [Deferred] — frees promised but never executed (e.g.
    [Defer.drain] missed a queue). One [Leaked_deferral] report per
    record, ordered by id. Pure: auditing does not count violations;
    harnesses decide whether leaks fail the run. *)

val deferred_count : domain -> int
(** Number of records currently [Deferred] (the {!audit} size, cheaper). *)
