(* Reclamation sanitizer: a debug-mode grace-period safety checker.

   Under a GC, a broken [synchronize] cannot segfault — a reader touching
   a node the C original would already have freed silently reads valid
   memory, and every existing test passes. This module restores the
   missing failure: each reclaimable object registers a *shadow record*
   whose state tracks the logical lifetime the C code would give it
   (Live -> Deferred at a grace-period cookie -> Reclaimed), and
   instrumented read paths check the shadow of every node they touch.
   Touching a [Reclaimed] record inside a read-side critical section is a
   logical use-after-free and raises {!Violation} with a structured
   report.

   The same state machine gives double-free detection ([on_defer] on a
   record that is already Deferred or Reclaimed) and a teardown leak
   audit ([audit]: records still Deferred — their free was promised but
   never happened).

   Cost discipline: off by default; every instrumented site is
   [if Sanitizer.enabled () then ...] — one atomic load and a branch,
   the Metrics/Fault shape. A domain's shadow table only holds records in
   the Deferred state (inserted by [on_defer], removed by [on_reclaim]),
   so memory stays bounded by the reclamation backlog, not by the number
   of objects ever allocated. *)

module Stats = Repro_sync.Stats
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Spinlock = Repro_sync.Spinlock
module Lockdep = Repro_lockdep.Lockdep

(* The deferred-table guard is an instrumented spinlock (not a raw
   Stdlib.Mutex, which the @lint rule reserves for [Gp.Waitq]): its
   critical sections are a few hashtable operations, and going through
   [Spinlock] puts the sanitizer's own locking under the lockdep
   validator like every other lock in the repository. One Registry-role
   class covers every sanitizer domain's table. *)
let table_cls = Lockdep.new_class Lockdep.Registry "sanitizer/deferred-table"

type kind = Use_after_reclaim | Double_free | Leaked_deferral

type state =
  | Live
  | Deferred of int (* grace-period cookie recorded at enqueue *)
  | Reclaimed of int * int (* (cookie at enqueue, cookie at reclaim) *)

type domain = {
  dname : string;
  mu : Spinlock.t;
  (* Only records currently in the Deferred state, keyed by record id. *)
  deferred : (int, record) Hashtbl.t;
  ids : int Atomic.t;
}

and record = { id : int; owner : domain; state : state Atomic.t }

type report = {
  kind : kind;
  node_id : int;
  domain : string;
  deferred_gp : int;
  reclaimed_gp : int;
  reader_slot : int;
  reader_cookie : int;
  backtrace : string;
}

exception Violation of report

let kind_to_string = function
  | Use_after_reclaim -> "use-after-reclaim"
  | Double_free -> "double-free"
  | Leaked_deferral -> "leaked-deferral"

let report_to_string r =
  Printf.sprintf
    "reclamation sanitizer: %s of shadow record %d in domain %S (deferred at \
     gp %d, reclaimed at gp %d; reader slot %d, entry cookie %d)%s"
    (kind_to_string r.kind) r.node_id r.domain r.deferred_gp r.reclaimed_gp
    r.reader_slot r.reader_cookie
    (if r.backtrace = "" then "" else "\n" ^ r.backtrace)

let () =
  Printexc.register_printer (function
    | Violation r -> Some (report_to_string r)
    | _ -> None)

(* The one-load-and-branch gate every instrumented site consults. *)
let on = Atomic.make false

let enabled () = Atomic.get on
let arm () = Atomic.set on true
let disarm () = Atomic.set on false

(* Violations are counted unconditionally (they are rare and load-bearing
   for the mutation suite); per-touch check counts go through the striped
   Metrics registry so armed readers do not contend on one cell. *)
let violations_total = Atomic.make 0

let violations () = Atomic.get violations_total
let reset_violations () = Atomic.set violations_total 0

let create dname =
  {
    dname;
    mu = Spinlock.create ~cls:table_cls ();
    deferred = Hashtbl.create 64;
    ids = Atomic.make 0;
  }

let domain_name d = d.dname

let register d =
  { id = Atomic.fetch_and_add d.ids 1; owner = d; state = Atomic.make Live }

let id r = r.id
let state r = Atomic.get r.state

let make_report kind r ~slot ~cookie ~bt =
  let deferred_gp, reclaimed_gp =
    match Atomic.get r.state with
    | Live -> (-1, -1)
    | Deferred g -> (g, -1)
    | Reclaimed (d, g) -> (d, g)
  in
  {
    kind;
    node_id = r.id;
    domain = r.owner.dname;
    deferred_gp;
    reclaimed_gp;
    reader_slot = slot;
    reader_cookie = cookie;
    backtrace = bt;
  }

let note_violation rep =
  Atomic.incr violations_total;
  if Metrics.enabled () then
    Stats.incr Metrics.sanitizer_violations (Metrics.slot ());
  Trace.record Sanitize_violation rep.node_id

let backtrace () =
  Printexc.raw_backtrace_to_string (Printexc.get_callstack 24)

let violation kind r ~slot ~cookie =
  let rep = make_report kind r ~slot ~cookie ~bt:(backtrace ()) in
  note_violation rep;
  raise (Violation rep)

let count_check () =
  if Metrics.enabled () then
    Stats.incr Metrics.sanitizer_checks (Metrics.slot ())

let resolve_slot = function Some s -> s | None -> Metrics.slot ()
let resolve_cookie = function Some c -> c | None -> 0

let check ?slot ?cookie r =
  count_check ();
  match Atomic.get r.state with
  | Live | Deferred _ -> ()
  | Reclaimed _ ->
      violation Use_after_reclaim r ~slot:(resolve_slot slot)
        ~cookie:(resolve_cookie cookie)

let note ?slot ?cookie r =
  count_check ();
  match Atomic.get r.state with
  | Live | Deferred _ -> ()
  | Reclaimed _ ->
      (* Same detection as [check], but the caller holds node locks a
         raise would leak — record the violation and let the caller
         finish its (lock-disciplined) control flow. *)
      note_violation
        (make_report Use_after_reclaim r ~slot:(resolve_slot slot)
           ~cookie:(resolve_cookie cookie) ~bt:(backtrace ()))

let observe _r = count_check ()

let on_defer r ~gp =
  if Atomic.compare_and_set r.state Live (Deferred gp) then begin
    let d = r.owner in
    Spinlock.acquire d.mu;
    Hashtbl.replace d.deferred r.id r;
    Spinlock.release d.mu
  end
  else
    (* Already Deferred or Reclaimed: the same object was queued for a
       second free. *)
    violation Double_free r ~slot:(Metrics.slot ()) ~cookie:0

let rec on_reclaim ?gp r =
  match Atomic.get r.state with
  | Reclaimed _ ->
      violation Double_free r ~slot:(Metrics.slot ()) ~cookie:0
  | (Live | Deferred _) as cur ->
      let deferred_gp = match cur with Deferred g -> g | _ -> -1 in
      let reclaimed_gp = match gp with Some g -> g | None -> -1 in
      if Atomic.compare_and_set r.state cur (Reclaimed (deferred_gp, reclaimed_gp))
      then begin
        let d = r.owner in
        Spinlock.acquire d.mu;
        Hashtbl.remove d.deferred r.id;
        Spinlock.release d.mu
      end
      else on_reclaim ?gp r

let deferred_count d =
  Spinlock.acquire d.mu;
  let n = Hashtbl.length d.deferred in
  Spinlock.release d.mu;
  n

let audit d =
  Spinlock.acquire d.mu;
  let leaked = Hashtbl.fold (fun _ r acc -> r :: acc) d.deferred [] in
  Spinlock.release d.mu;
  leaked
  |> List.sort (fun a b -> compare a.id b.id)
  |> List.map (fun r ->
         make_report Leaked_deferral r ~slot:(-1) ~cookie:0 ~bt:"")

(* Environment arming, mirroring REPRO_FAULTS / REPRO_STALL_MS: any
   binary can run sanitized without code changes. *)
let () =
  match Sys.getenv_opt "REPRO_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> arm ()
  | Some _ | None -> ()
