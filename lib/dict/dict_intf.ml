(** Uniform first-class-module interface over every concurrent dictionary in
    the repository (int keys, int values), used by the benchmark harness,
    the randomized test suite, and the linearizability checker.

    The handle indirection exists because some structures keep per-thread
    state (RCU thread records, skiplist RNGs); structures without any wrap
    the shared object. *)

module type DICT = sig
  val name : string
  (** Identifier used in benchmark tables ("citrus", "bonsai", ...). *)

  type t
  type handle

  val create : ?max_threads:int -> unit -> t
  (** [max_threads] bounds concurrent registrations where relevant
      (RCU-based structures); others ignore it. *)

  val register : t -> handle
  (** Per-domain handle. Call once per domain, [unregister] when done. *)

  val unregister : handle -> unit

  val contains : handle -> int -> int option
  val mem : handle -> int -> bool
  val insert : handle -> int -> int -> bool
  val delete : handle -> int -> bool

  val shutdown : t -> unit
  (** Stop any background domains the structure owns (Citrus's call_rcu
      reclaimer), draining their pending work; a no-op for structures
      without one. Must run before the quiescent-state helpers below on
      structures with asynchronous reclamation, and before the process
      exits. Idempotent. *)

  val reclaim_pressure : t -> float
  (** Deferred-reclamation backlog pressure: 0.0 for structures that
      reclaim synchronously (or have no reclaimer), rising to 1.0 as a
      call_rcu tree's retired backlog approaches its watermark. Racy
      snapshot, safe to poll concurrently; the serving layer's
      admission control reads it (SERVING.md, "Reclamation-aware
      admission"). *)

  val with_reader : handle -> (unit -> unit) -> unit
  (** Run the thunk inside one read-side critical section where the
      structure has one (RCU trees: every grace period started while it
      runs must wait for it), plainly otherwise. The chaos harness's
      reader-stall injection seam ([citrus_tool chaos --stall-reader]);
      the thunk must not perform operations that wait for a grace
      period. *)

  (** {2 Quiescent-state helpers} *)

  val size : t -> int
  val to_list : t -> (int * int) list

  val check : t -> unit
  (** Structure-specific invariant check; raises on violation. *)

  val min_key : int
  (** Smallest usable key (inclusive). *)

  val max_key : int
  (** Largest usable key (exclusive) — some structures reserve sentinels. *)
end
