module type DICT = Dict_intf.DICT

module B = Repro_baselines

(* Citrus instantiations share the shape of their generated module; a small
   functor adapts either to DICT. *)
module Citrus_adapter
    (R : Repro_rcu.Rcu.S) (N : sig
      val name : string
    end) : DICT = struct
  module T = Repro_citrus.Citrus.Make (Repro_citrus.Citrus_int.Ord_int) (R)

  let name = N.name

  type t = int T.t
  type handle = int T.handle

  let create ?max_threads () = T.create ?max_threads ()
  let register = T.register
  let unregister = T.unregister
  let contains = T.contains
  let mem = T.mem
  let insert = T.insert
  let delete = T.delete
  let shutdown = T.shutdown
  let reclaim_pressure = T.reclaim_pressure
  let with_reader = T.with_reader
  let size = T.size
  let to_list = T.to_list
  let check = T.check_invariants
  let min_key = min_int
  let max_key = max_int
end

module Citrus_epoch = Citrus_adapter (Repro_rcu.Epoch_rcu) (struct
  let name = "citrus"
end)

module Citrus_urcu = Citrus_adapter (Repro_rcu.Urcu) (struct
  let name = "citrus-urcu"
end)

module Citrus_qsbr = Citrus_adapter (Repro_rcu.Qsbr) (struct
  let name = "citrus-qsbr"
end)

module Rb : DICT = struct
  module T = B.Rb_rcu.Make (Repro_rcu.Epoch_rcu)

  let name = "red-black"

  type t = int T.t
  type handle = int T.handle

  let create ?max_threads () = T.create ?max_threads ()
  let register = T.register
  let unregister = T.unregister
  let contains = T.contains
  let mem = T.mem
  let insert = T.insert
  let delete = T.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = T.size
  let to_list = T.to_list
  let check = T.check_invariants
  let min_key = min_int
  let max_key = max_int
end

module Bonsai : DICT = struct
  let name = "bonsai"

  type t = int B.Bonsai.t
  type handle = t

  let create ?max_threads:_ () = B.Bonsai.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Bonsai.contains
  let mem = B.Bonsai.mem
  let insert = B.Bonsai.insert
  let delete = B.Bonsai.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Bonsai.size
  let to_list = B.Bonsai.to_list
  let check = B.Bonsai.check_invariants
  let min_key = min_int
  let max_key = max_int
end

module Avl : DICT = struct
  let name = "avl"

  type t = int B.Avl.t
  type handle = t

  let create ?max_threads:_ () = B.Avl.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Avl.contains
  let mem = B.Avl.mem
  let insert = B.Avl.insert
  let delete = B.Avl.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Avl.size
  let to_list = B.Avl.to_list
  let check = B.Avl.check_invariants
  let min_key = min_int + 1 (* min_int is the root holder's dummy key *)
  let max_key = max_int
end

module Nm : DICT = struct
  let name = "lock-free"

  type t = int B.Nm_bst.t
  type handle = t

  let create ?max_threads:_ () = B.Nm_bst.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Nm_bst.contains
  let mem = B.Nm_bst.mem
  let insert = B.Nm_bst.insert
  let delete = B.Nm_bst.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Nm_bst.size
  let to_list = B.Nm_bst.to_list
  let check = B.Nm_bst.check_invariants
  let min_key = min_int
  let max_key = max_int - 2 (* three sentinel keys *)
end

module Skiplist : DICT = struct
  let name = "skiplist"

  type t = int B.Skiplist.t
  type handle = int B.Skiplist.handle

  let create ?max_threads:_ () = B.Skiplist.create ()
  let register = B.Skiplist.register
  let unregister _ = ()
  let contains = B.Skiplist.contains
  let mem = B.Skiplist.mem
  let insert = B.Skiplist.insert
  let delete = B.Skiplist.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Skiplist.size
  let to_list = B.Skiplist.to_list
  let check = B.Skiplist.check_invariants
  let min_key = min_int + 1 (* head sentinel *)
  let max_key = max_int (* tail sentinel is max_int itself *)
end

module Ellen : DICT = struct
  let name = "ellen"

  type t = int B.Ellen_bst.t
  type handle = t

  let create ?max_threads:_ () = B.Ellen_bst.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Ellen_bst.contains
  let mem = B.Ellen_bst.mem
  let insert = B.Ellen_bst.insert
  let delete = B.Ellen_bst.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Ellen_bst.size
  let to_list = B.Ellen_bst.to_list
  let check = B.Ellen_bst.check_invariants
  let min_key = min_int
  let max_key = max_int - 1
end

module Lazy_list : DICT = struct
  let name = "lazy-list"

  type t = int B.Lazy_list.t
  type handle = t

  let create ?max_threads:_ () = B.Lazy_list.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Lazy_list.contains
  let mem = B.Lazy_list.mem
  let insert = B.Lazy_list.insert
  let delete = B.Lazy_list.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Lazy_list.size
  let to_list = B.Lazy_list.to_list
  let check = B.Lazy_list.check_invariants
  let min_key = min_int + 1
  let max_key = max_int
end

module Cf : DICT = struct
  let name = "cf-tree"

  type t = int B.Cf_tree.t
  type handle = t

  let create ?max_threads:_ () = B.Cf_tree.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Cf_tree.contains
  let mem = B.Cf_tree.mem
  let insert = B.Cf_tree.insert
  let delete = B.Cf_tree.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Cf_tree.size
  let to_list = B.Cf_tree.to_list
  let check = B.Cf_tree.check_invariants
  let min_key = min_int
  let max_key = max_int (* max_int itself is the sentinel, exclusive bound *)
end

module Rcu_hash : DICT = struct
  let name = "rcu-hash"

  type t = int B.Rcu_hash.t
  type handle = t

  let create ?max_threads:_ () = B.Rcu_hash.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Rcu_hash.contains
  let mem = B.Rcu_hash.mem
  let insert = B.Rcu_hash.insert
  let delete = B.Rcu_hash.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Rcu_hash.size
  let to_list = B.Rcu_hash.to_list
  let check = B.Rcu_hash.check_invariants
  let min_key = min_int
  let max_key = max_int
end

module Coarse : DICT = struct
  let name = "coarse"

  type t = int B.Coarse_bst.t
  type handle = t

  let create ?max_threads:_ () = B.Coarse_bst.create ()
  let register t = t
  let unregister _ = ()
  let contains = B.Coarse_bst.contains
  let mem = B.Coarse_bst.mem
  let insert = B.Coarse_bst.insert
  let delete = B.Coarse_bst.delete
  let shutdown _ = ()
  let reclaim_pressure _ = 0.0
  let with_reader _ f = f ()
  let size = B.Coarse_bst.size
  let to_list = B.Coarse_bst.to_list
  let check = B.Coarse_bst.check_invariants
  let min_key = min_int
  let max_key = max_int
end

let paper_set : (module DICT) list =
  [
    (module Citrus_epoch);
    (module Avl);
    (module Skiplist);
    (module Bonsai);
    (module Rb);
    (module Nm);
  ]

let all : (module DICT) list =
  paper_set
  @ [
      (module Citrus_urcu);
      (module Citrus_qsbr);
      (module Ellen);
      (module Cf);
      (module Rcu_hash);
      (module Lazy_list);
      (module Coarse);
    ]

let find name =
  let matches (module D : DICT) = D.name = name in
  match List.find_opt matches all with
  | Some d -> d
  | None -> raise Not_found
