(** Hash-sharded dictionary service with an asynchronous, supervised
    write path.

    [Make (D)] partitions the key space across [shards] independent
    instances of [D] (each with its own RCU domain registration, lock
    classes and Citrus tree when [D] is a Citrus flavour), routed by a
    splitmix64 hash of the key. Reads ([get]/[mem]) go directly to the
    owning shard's tree — wait-free, as in the paper. Writes are enqueued
    into the shard's bounded {!Mod_queue} and applied by the shard's
    dedicated updater domain, so a client never pays a grace period; the
    updater does, and a grace-period-blocked updater stalls only its own
    shard. Clients either fire-and-forget ([insert]/[delete]) or wait on
    a completion cell ([insert_wait]/[delete_wait]).

    Robustness (see ROBUSTNESS.md, "Serving-layer failure model"): each
    updater runs under a {!Supervisor} — a crash frees the dead domain's
    RCU slot and a restarted incarnation adopts the surviving queue plus
    the crashed one's spliced-but-unapplied batch, so accepted writes
    survive crashes; past the restart budget the shard is marked
    [Failed] (reads keep working, writes reject). Admission is gated by
    a per-shard {!Health} state machine; rejects are typed
    ({!type-reject}) so clients can tell retryable backpressure from
    permanent failure. [shutdown] drains under a deadline and
    force-stops with a structured report instead of blocking forever.

    Lifecycle: [create] (no domains yet) → optional {!val-load} prefill →
    [start] (one supervised updater per shard) → clients [register]/
    operate/[unregister] → [shutdown]. [start] and [shutdown] are
    single-threaded lifecycle calls (the owning thread); everything
    between [register] and [unregister] is safe from any client
    domain. *)

(** Why a write was not admitted (or, for waited writes, was admitted
    and then discarded by a failure path). [Full] and [Overload] are
    retryable — the backlog can drain; [Failed] and [Shutdown] are
    permanent for the shard/router respectively. *)
type reject =
  | Full  (** owning shard's queue at capacity (backpressure) *)
  | Overload
      (** shed: the owning shard is [Degraded] and the write carried no
          completion to wait on *)
  | Failed  (** owning shard exhausted its restart budget *)
  | Shutdown  (** the router is stopping *)

val reject_name : reject -> string
(** ["full" | "overload" | "failed" | "shutdown"] — the JSON-report
    spelling. *)

type drain_report = {
  shard : int;
  queue_depth : int;  (** entries still queued at the deadline *)
  last_drain_ns : int;  (** when the shard's updater last drained *)
  crashes : int;  (** updater crashes over the shard's lifetime *)
  lost : int;  (** accepted writes purged (completions aborted) *)
  wedged : bool;  (** updater never exited; its domain was abandoned *)
}
(** Per-shard record of a forced shutdown, also printed to stderr. *)

type shutdown_result =
  | Drained  (** every shard applied its whole backlog *)
  | Forced of drain_report list
      (** the deadline expired; one report per shard that lost writes or
          had to be abandoned *)

module Make (D : Repro_dict.Dict.DICT) : sig
  type t
  type handle

  val create :
    ?shards:int ->
    ?queue_depth:int ->
    ?drain_batch:int ->
    ?max_clients:int ->
    ?supervisor:Supervisor.policy ->
    ?high_frac:float ->
    ?low_frac:float ->
    ?mutate_forget_backlog:bool ->
    unit ->
    t
  (** Defaults: 4 shards, queue depth 1024, drain batch 64, 64 clients,
      {!Supervisor.default_policy}, health watermarks 0.75/0.25 of the
      queue depth. [max_clients] sizes each shard's registry ([D.create
      ~max_threads:(max_clients + 2)] — clients plus the updater and one
      setup registration). [mutate_forget_backlog] seeds the chaos
      mutation (the supervisor drops the pending batch on restart) — for
      the mutation harness only, see {!Chaos}. No domains are spawned;
      writes enqueued before {!start} sit in the queues.
      @raise Invalid_argument on non-positive parameters. *)

  val n_shards : t -> int

  val shard_of : t -> int -> int
  (** The shard index owning a key (deterministic). *)

  val start : t -> unit
  (** Spawn one supervised updater per shard. Idempotent; no-op after
      {!shutdown}. *)

  val shutdown : ?deadline_ns:int -> t -> shutdown_result
  (** Stop accepting writes (admission is closed under each queue lock,
      so a producer racing the shutdown either gets its entry applied or
      a typed [Shutdown] reject — never a stranded entry), then let each
      updater drain its backlog — every accepted completion resolves —
      returning [Drained]; entries that slipped in behind an exiting
      updater (including a backlog enqueued when {!start} was never
      called) are applied by the shutdown caller itself. If the drain
      exceeds [deadline_ns] (default 5 s): force-stop — updaters exit at
      their next batch boundary, remaining queue entries {e and} any
      wedged updater's unapplied batch are discarded with their
      completions aborted (waiters unblock with a typed reject; all of
      it counts into [lost]), a structured report is emitted per
      affected shard, and wedged updater domains are abandoned rather
      than joined — returning [Forced]. An abandoned domain may still
      apply part of its batch, so after [Forced] the tree contents are
      best-effort. Idempotent (later calls return the first result).
      Clients may still be registered; their writes are rejected and
      reads keep working. *)

  (** {2 Client operations} *)

  val register : t -> handle
  (** Register the calling domain with every shard. One handle per
      domain.
      @raise Repro_sync.Registry.Full if any shard's registry is full
        (no registration is leaked). *)

  val unregister : handle -> unit

  val get : handle -> int -> int option
  (** Direct read on the owning shard's tree (RCU read section; never
      blocks on writers). May miss writes still queued — see SERVING.md,
      "Consistency". Keeps working on [Degraded] and [Failed] shards. *)

  val mem : handle -> int -> bool

  val insert : handle -> int -> int -> (unit, reject) result
  (** Fire-and-forget: [Ok ()] = accepted into the owning shard's queue
      (it will be applied in FIFO order, surviving updater crashes),
      [Error r] = rejected with the typed reason. The tree-level result
      is unobservable; use {!insert_wait} to learn it. *)

  val delete : handle -> int -> (unit, reject) result

  val insert_wait : handle -> int -> int -> (bool, reject) result
  (** Enqueue with a completion cell and spin until the updater applies
      the operation: [Ok result] is the tree-level result ([insert]'s
      "was absent"). [Error] before acceptance is a typed reject (waited
      writes are still admitted on a [Degraded] shard — the waiter is
      the backpressure); [Error Failed]/[Error Shutdown] after
      acceptance means the accepted write was discarded by a failure
      path (shard failed, or shutdown forced past its drain deadline).
      Only call while updaters run (between {!start} and {!shutdown});
      the wait includes the operation's whole queueing delay.

      Post-crash caveat: if an updater crash lands {e inside} the
      dictionary operation after it linearized, the restarted updater's
      idempotent replay returns the no-op answer — the waiter can see
      [Ok false] for a write that took effect. The write itself is never
      lost; only the boolean is weaker across that exact window. *)

  val delete_wait : handle -> int -> (bool, reject) result

  val load : handle -> int -> int -> bool
  (** Direct, queue-bypassing insert into the owning shard — for initial
      bulk load before {!start}. Not ordered with queued writes; do not
      mix with them. *)

  (** {2 Fault injection} *)

  val crash_updater : t -> int -> unit
  (** Arm a one-shot crash of shard [i]'s updater: it raises
      [Fault.Injected "server.updater.crash"] at the next
      entry-application boundary (so the crash always lands with the
      rest of the batch unapplied — the adoption window). Deterministic,
      unlike arming the named fault point with a rate. *)

  (** {2 Monitoring} *)

  val queue_stats : t -> Mod_queue.stats array
  (** Per-shard queue counters (index = shard), each snapshotted under
      its queue lock. *)

  val health : t -> Health.state array
  (** Per-shard health states (index = shard). *)

  val crashes : t -> int array
  (** Per-shard updater crash counts ([[||]] before {!start}). *)

  val restarts : t -> int array

  val restart_latencies_ns : t -> int list
  (** Crash-to-replacement-running samples across all shards — stable
      after {!shutdown}. *)

  val drained : t -> int
  (** Total operations applied across all shards — the aggregate write
      throughput numerator. Racy while running. *)

  val size : t -> int
  val to_list : t -> (int * int) list
  val check : t -> unit
end
