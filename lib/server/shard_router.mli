(** Hash-sharded dictionary service with an asynchronous, supervised
    write path.

    [Make (D)] partitions the key space across [shards] independent
    instances of [D] (each with its own RCU domain registration, lock
    classes and Citrus tree when [D] is a Citrus flavour), routed by a
    splitmix64 hash of the key. Reads ([get]/[mem]) go directly to the
    owning shard's tree — wait-free, as in the paper. Writes are enqueued
    into the shard's bounded {!Mod_queue} and applied by the shard's
    dedicated updater domain, so a client never pays a grace period; the
    updater does, and a grace-period-blocked updater stalls only its own
    shard. Clients either fire-and-forget ([insert]/[delete]) or wait on
    a completion cell ([insert_wait]/[delete_wait]).

    Robustness (see ROBUSTNESS.md, "Serving-layer failure model"): each
    updater runs under a {!Supervisor} — a crash frees the dead domain's
    RCU slot and a restarted incarnation adopts the surviving queue plus
    the crashed one's spliced-but-unapplied batch, so accepted writes
    survive crashes; past the restart budget the shard is marked
    [Failed] (reads keep working, writes reject). Admission is gated by
    a per-shard {!Health} state machine; rejects are typed
    ({!type-reject}) so clients can tell retryable backpressure from
    permanent failure. [shutdown] drains under a deadline and
    force-stops with a structured report instead of blocking forever.

    Lifecycle: [create] (no domains yet) → optional {!val-load} prefill →
    [start] (one supervised updater per shard) → clients [register]/
    operate/[unregister] → [shutdown]. [start] and [shutdown] are
    single-threaded lifecycle calls (the owning thread); everything
    between [register] and [unregister] is safe from any client
    domain. *)

(** Why a write was not admitted (or, for waited writes, was admitted
    and then discarded or expired by a failure path). [Full], [Overload]
    and [Breaker_open] are retryable — the backlog can drain and the
    breaker re-offers; [Expired] is terminal for the operation (its
    deadline is gone); [Failed] and [Shutdown] are permanent for the
    shard/router respectively. *)
type reject =
  | Full  (** owning shard's queue at capacity (backpressure) *)
  | Overload
      (** shed: the owning shard is [Degraded] and the write carried no
          completion to wait on *)
  | Breaker_open
      (** the owning shard's circuit {!Breaker} rejected the write —
          the shard recently crashed or its failure rate tripped; admit
          resumes on the breaker's jittered probe schedule *)
  | Expired
      (** the write's end-to-end deadline elapsed — either before
          admission (dead on arrival) or in the queue (the updater's
          drain expired it unapplied); counts [writes_expired] *)
  | Failed  (** owning shard exhausted its restart budget *)
  | Shutdown  (** the router is stopping *)

val reject_name : reject -> string
(** ["full" | "overload" | "breaker_open" | "expired" | "failed" |
    "shutdown"] — the JSON-report spelling. *)

(** The resolved result of a waited write. [Replayed] is the honest
    post-crash status: the entry was part of a crashed updater's adopted
    batch and was (re-)applied by the replacement, so the predecessor
    may already have applied it once — the boolean is the result {e as
    of the last application} (an [Insert] already applied before the
    crash replays as [Replayed false] even though it took effect). *)
type write_result = Applied of bool | Replayed of bool

val write_result_value : write_result -> bool
(** The tree-level boolean, for callers indifferent to replay. *)

type drain_report = {
  shard : int;
  queue_depth : int;  (** entries still queued at the deadline *)
  last_drain_ns : int;  (** when the shard's updater last drained *)
  crashes : int;  (** updater crashes over the shard's lifetime *)
  lost : int;  (** accepted writes purged (completions aborted) *)
  wedged : bool;  (** updater never exited; its domain was abandoned *)
}
(** Per-shard record of a forced shutdown, also printed to stderr. *)

type shutdown_result =
  | Drained  (** every shard applied its whole backlog *)
  | Forced of drain_report list
      (** the deadline expired; one report per shard that lost writes or
          had to be abandoned *)

module Make (D : Repro_dict.Dict.DICT) : sig
  type t
  type handle

  val create :
    ?shards:int ->
    ?queue_depth:int ->
    ?drain_batch:int ->
    ?max_clients:int ->
    ?supervisor:Supervisor.policy ->
    ?high_frac:float ->
    ?low_frac:float ->
    ?pressure_high:float ->
    ?pressure_low:float ->
    ?breaker:Breaker.config ->
    ?seed:int64 ->
    ?mutate_forget_backlog:bool ->
    ?mutate_breaker_never_opens:bool ->
    ?mutate_skip_deadline:bool ->
    unit ->
    t
  (** Defaults: 4 shards, queue depth 1024, drain batch 64, 64 clients,
      {!Supervisor.default_policy}, health depth watermarks 0.75/0.25 of
      the queue depth, reclamation-pressure latch thresholds 0.75/0.25
      of the reclaimer watermark ({!Health.create}),
      {!Breaker.default_config}, seed 42. [max_clients] sizes each
      shard's registry ([D.create ~max_threads:(max_clients + 2)] —
      clients plus the updater and one setup registration). [seed]
      derives every shard's deterministic jitter streams (breaker open
      intervals, supervisor restart backoff) via per-shard golden-ratio
      salts, so a run is reproducible end to end while shards stay
      decorrelated. [mutate_forget_backlog] (supervisor drops the
      pending batch on restart), [mutate_breaker_never_opens] (breaker
      trips become no-ops) and [mutate_skip_deadline] (the drain applies
      expired entries anyway) seed the chaos mutations — for the
      mutation harness only, see {!Chaos}. No domains are spawned;
      writes enqueued before {!start} sit in the queues.
      @raise Invalid_argument on non-positive parameters. *)

  val n_shards : t -> int

  val shard_of : t -> int -> int
  (** The shard index owning a key (deterministic). *)

  val start : t -> unit
  (** Spawn one supervised updater per shard. Idempotent; no-op after
      {!shutdown}. *)

  val shutdown : ?deadline_ns:int -> t -> shutdown_result
  (** Stop accepting writes (admission is closed under each queue lock,
      so a producer racing the shutdown either gets its entry applied or
      a typed [Shutdown] reject — never a stranded entry), then let each
      updater drain its backlog — every accepted completion resolves —
      returning [Drained]; entries that slipped in behind an exiting
      updater (including a backlog enqueued when {!start} was never
      called) are applied by the shutdown caller itself. If the drain
      exceeds [deadline_ns] (default 5 s): force-stop — updaters exit at
      their next batch boundary, remaining queue entries {e and} any
      wedged updater's unapplied batch are discarded with their
      completions aborted (waiters unblock with a typed reject; all of
      it counts into [lost]), a structured report is emitted per
      affected shard, and wedged updater domains are abandoned rather
      than joined — returning [Forced]. An abandoned domain may still
      apply part of its batch, so after [Forced] the tree contents are
      best-effort. Idempotent (later calls return the first result).
      Clients may still be registered; their writes are rejected and
      reads keep working. *)

  (** {2 Client operations} *)

  val register : t -> handle
  (** Register the calling domain with every shard. One handle per
      domain.
      @raise Repro_sync.Registry.Full if any shard's registry is full
        (no registration is leaked). *)

  val unregister : handle -> unit

  val get : handle -> int -> int option
  (** Direct read on the owning shard's tree (RCU read section; never
      blocks on writers). May miss writes still queued — see SERVING.md,
      "Consistency". Keeps working on [Degraded] and [Failed] shards. *)

  val mem : handle -> int -> bool

  val insert : handle -> ?deadline_ns:int -> int -> int -> (unit, reject) result
  (** Fire-and-forget: [Ok ()] = accepted into the owning shard's queue
      (it will be applied in FIFO order, surviving updater crashes),
      [Error r] = rejected with the typed reason. [deadline_ns] is the
      operation's absolute deadline on the monotonic clock (0/absent =
      none): it rides the queue entry, and the updater's drain resolves
      entries whose deadline has passed as expired {e without} applying
      them — so under overload the backlog sheds its dead work instead
      of serving every live write behind it (SERVING.md, "Deadline
      propagation"). The tree-level result is unobservable; use
      {!insert_wait} to learn it. *)

  val delete : handle -> ?deadline_ns:int -> int -> (unit, reject) result

  val insert_wait :
    handle -> ?deadline_ns:int -> int -> int -> (write_result, reject) result
  (** Enqueue with a completion cell and spin until the updater resolves
      the operation: [Ok (Applied r)] is the tree-level result
      ([insert]'s "was absent"); [Ok (Replayed r)] the post-crash replay
      status (see {!type-write_result}). [Error] before acceptance is a
      typed reject (waited writes are still admitted on a [Degraded]
      shard — the waiter is the backpressure); after acceptance,
      [Error Expired] means the updater expired the queued write at its
      deadline, and [Error Failed]/[Error Shutdown] mean it was
      discarded by a failure path (shard failed, or shutdown forced past
      its drain deadline). Only call while updaters run (between
      {!start} and {!shutdown}); the wait includes the operation's whole
      queueing delay.

      Post-crash caveat: if an updater crash lands {e inside} the
      dictionary operation after it linearized, the restarted updater's
      idempotent replay returns the no-op answer — [Replayed] makes the
      window visible, but the boolean is still only "as of the last
      application". The write itself is never lost. *)

  val delete_wait :
    handle -> ?deadline_ns:int -> int -> (write_result, reject) result

  val load : handle -> int -> int -> bool
  (** Direct, queue-bypassing insert into the owning shard — for initial
      bulk load before {!start}. Not ordered with queued writes; do not
      mix with them. *)

  (** {2 Fault injection} *)

  val crash_updater : t -> int -> unit
  (** Arm a one-shot crash of shard [i]'s updater: it raises
      [Fault.Injected "server.updater.crash"] at the next
      entry-application boundary (so the crash always lands with the
      rest of the batch unapplied — the adoption window). Deterministic,
      unlike arming the named fault point with a rate. *)

  (** {2 Monitoring} *)

  val queue_stats : t -> Mod_queue.stats array
  (** Per-shard queue counters (index = shard), each snapshotted under
      its queue lock. *)

  val health : t -> Health.state array
  (** Per-shard health states (index = shard). *)

  val breaker_states : t -> Breaker.state array
  (** Per-shard circuit-breaker states (index = shard). *)

  val breaker_trips : t -> int
  (** Total breaker Open transitions across all shards. *)

  val breaker_rejects : t -> int
  (** Total writes rejected by breakers across all shards. *)

  val reclaim_pressures : t -> float array
  (** Per-shard reclamation pressure ({!Repro_citrus.Citrus.reclaim_pressure}
      units: fraction of the retired-bag watermark; 0 for dictionaries
      without a background reclaimer). Racy snapshot. *)

  val pressure_latched : t -> bool array
  (** Per-shard reclamation-pressure latches ({!Health.pressure_latched}). *)

  val with_shard_reader : t -> int -> (unit -> unit) -> unit
  (** Chaos seam: hold an RCU read section open on shard [i]'s table
      (via a throwaway registration on the calling domain) for the
      duration of the callback. While it runs, no grace period on that
      shard completes and its retired backlog only grows — the
      stall-reader scenario ({!Chaos}). Do not call from a domain
      already registered with the shard. *)

  val crashes : t -> int array
  (** Per-shard updater crash counts ([[||]] before {!start}). *)

  val restarts : t -> int array

  val restart_latencies_ns : t -> int list
  (** Crash-to-replacement-running samples across all shards — stable
      after {!shutdown}. *)

  val drained : t -> int
  (** Total operations applied across all shards — the aggregate write
      throughput numerator. Racy while running. *)

  val size : t -> int
  val to_list : t -> (int * int) list
  val check : t -> unit
end
