(** Hash-sharded dictionary service with an asynchronous write path.

    [Make (D)] partitions the key space across [shards] independent
    instances of [D] (each with its own RCU domain registration, lock
    classes and Citrus tree when [D] is a Citrus flavour), routed by a
    splitmix64 hash of the key. Reads ([get]/[mem]) go directly to the
    owning shard's tree — wait-free, as in the paper. Writes are enqueued
    into the shard's bounded {!Mod_queue} and applied by the shard's
    dedicated updater domain, so a client never pays a grace period; the
    updater does, and a grace-period-blocked updater stalls only its own
    shard. Clients either fire-and-forget ([insert]/[delete]) or wait on
    a completion cell ([insert_wait]/[delete_wait]). A full queue rejects
    the write (backpressure). Consistency, ordering and tuning are
    documented in SERVING.md.

    Lifecycle: [create] (no domains yet) → optional {!val-load} prefill →
    [start] (spawns one updater per shard) → clients [register]/operate/
    [unregister] → [shutdown] (drains every queue, joins the updaters).
    [start] and [shutdown] are single-threaded lifecycle calls (the
    owning thread); everything between [register] and [unregister] is
    safe from any client domain. *)

module Make (D : Repro_dict.Dict.DICT) : sig
  type t
  type handle

  val create :
    ?shards:int ->
    ?queue_depth:int ->
    ?drain_batch:int ->
    ?max_clients:int ->
    unit ->
    t
  (** Defaults: 4 shards, queue depth 1024, drain batch 64, 64 clients.
      [max_clients] sizes each shard's registry ([D.create
      ~max_threads:(max_clients + 2)] — clients plus the updater and one
      setup registration). No domains are spawned; writes enqueued before
      {!start} sit in the queues.
      @raise Invalid_argument on non-positive parameters. *)

  val n_shards : t -> int

  val shard_of : t -> int -> int
  (** The shard index owning a key (deterministic). *)

  val start : t -> unit
  (** Spawn one updater domain per shard. Idempotent; no-op after
      {!shutdown}. *)

  val shutdown : t -> unit
  (** Stop accepting writes, let each updater drain its backlog (every
      accepted completion resolves), join the updaters. Idempotent.
      Clients may still be registered; their writes are rejected and
      their reads keep working. *)

  (** {2 Client operations} *)

  val register : t -> handle
  (** Register the calling domain with every shard. One handle per
      domain.
      @raise Repro_sync.Registry.Full if any shard's registry is full
        (no registration is leaked). *)

  val unregister : handle -> unit

  val get : handle -> int -> int option
  (** Direct read on the owning shard's tree (RCU read section; never
      blocks on writers). May miss writes still queued — see SERVING.md,
      "Consistency". *)

  val mem : handle -> int -> bool

  val insert : handle -> int -> int -> bool
  (** Fire-and-forget: [true] = accepted into the owning shard's queue
      (it will be applied in FIFO order), [false] = rejected (queue full,
      or the router is shut down). The tree-level result is unobservable;
      use {!insert_wait} to learn it. *)

  val delete : handle -> int -> bool

  val insert_wait : handle -> int -> int -> bool option
  (** Enqueue with a completion cell and spin until the updater applies
      the operation: [Some result] is the tree-level result ([insert]'s
      "was absent"), [None] = rejected. Only call while updaters run
      (between {!start} and {!shutdown}); the wait includes the
      operation's whole queueing delay. *)

  val delete_wait : handle -> int -> bool option

  val load : handle -> int -> int -> bool
  (** Direct, queue-bypassing insert into the owning shard — for initial
      bulk load before {!start}. Not ordered with queued writes; do not
      mix with them. *)

  (** {2 Monitoring (quiescent-state helpers)} *)

  val queue_stats : t -> Mod_queue.stats array
  (** Per-shard queue counters (index = shard). Racy while running. *)

  val drained : t -> int
  (** Total operations applied across all shards — the aggregate write
      throughput numerator. Racy while running. *)

  val size : t -> int
  val to_list : t -> (int * int) list
  val check : t -> unit
end
