module Metrics = Repro_sync.Metrics
module Stats = Repro_sync.Stats
module Trace = Repro_sync.Trace
module Rng = Repro_sync.Rng

(* Supervision for a shard's updater domain: run the updater body, and
   when it dies with an exception, restart it — rate-limited by
   exponential backoff under a windowed restart budget; past the budget
   the shard is declared failed and the chain ends.

   The mechanism is a *chain respawn*: the dying incarnation itself
   spawns its successor (after recording the crash and sleeping the
   backoff), then exits. This gives the whole chain a single logical
   thread of control — the crash bookkeeping ([window_crashes],
   [last_crash_ns], [restart_samples]) is plain mutable state with
   happens-before edges supplied by [Domain.spawn] (reinforced by the
   successor joining its predecessor, below), and there is no monitor
   domain burning a core per shard just to watch for exits. Whatever
   backlog-adoption the restarted updater performs lives in [run]
   itself (see [Shard_router]): the supervisor is policy, not
   mechanism.

   Only the newest incarnation's handle is retained ([latest]). Each
   successor begins by joining its predecessor — which exits right
   after publishing the successor, so the join is near-instant — and
   therefore (a) no handle is ever leaked or accumulated across a
   long-lived shard's restarts, (b) joining the final handle
   transitively joins every domain the chain ever spawned, and (c) by
   the time any chain code runs in the successor, [latest] already
   names it: [done_] can never be observed while [latest] still points
   at a dead predecessor. The first incarnation has no predecessor and
   gates on a flag the spawner sets after publishing instead.

   Lifecycle flags are atomics because *other* domains poll them:
   [done_] tells the shutdown path the chain has exited (so joining
   cannot block on a live incarnation), [failed_] tells the router to
   stop admitting writes. [abort] is polled during backoff sleeps and
   before any respawn, so a forced shutdown never waits out a backoff
   and never gets a fresh updater spawned under it. *)

type policy = {
  max_restarts : int;
  backoff_base_ns : int;
  backoff_max_ns : int;
  reset_after_ns : int;
}

let default_policy =
  {
    max_restarts = 8;
    backoff_base_ns = 1_000_000;
    backoff_max_ns = 100_000_000;
    reset_after_ns = 1_000_000_000;
  }

type t = {
  shard : int;
  policy : policy;
  run : unit -> unit;
  abort : unit -> bool;
  on_failed : exn -> unit;
  on_crash : (exn -> unit) option; (* fires on every crash, before backoff *)
  forget_backlog : (unit -> unit) option; (* seeded chaos mutation *)
  jitter : Rng.t option; (* chain-private: only incarnations draw from it *)
  done_ : bool Atomic.t;
  failed_ : bool Atomic.t;
  crashes : int Atomic.t;
  restarts : int Atomic.t;
  latest : unit Domain.t option Atomic.t; (* newest incarnation, see above *)
  joined : bool Atomic.t;
  (* Chain-private state (single logical thread, see above). *)
  mutable window_crashes : int;
  mutable last_crash_ns : int;
  mutable restart_samples : int list; (* crash-to-running, ns *)
}

let now_ns = Metrics.now_ns

(* Backoff sleep in ~1 ms slices, polling [abort] so a forced shutdown
   is never gated on a supervisor finishing its nap. *)
let sleep_backoff t ns =
  let deadline = now_ns () + ns in
  let rec go () =
    if not (t.abort ()) then begin
      let left = deadline - now_ns () in
      if left > 0 then begin
        Unix.sleepf (Float.min 0.001 (float_of_int left /. 1e9));
        go ()
      end
    end
  in
  go ()

let rec incarnation t ~adopted_at () =
  (match adopted_at with
  | Some crash_ns ->
      let lat = now_ns () - crash_ns in
      t.restart_samples <- lat :: t.restart_samples;
      if Metrics.enabled () then
        Stats.Timer.record Metrics.updater_restart_ns (Metrics.slot ()) lat
  | None -> ());
  match t.run () with
  | () -> Atomic.set t.done_ true (* clean exit: stop requested, drained *)
  | exception e ->
      Atomic.incr t.crashes;
      if Metrics.enabled () then
        Stats.incr Metrics.updater_crashes (Metrics.slot ());
      Trace.record Trace.Updater_crash t.shard;
      (match t.on_crash with
      | Some f -> ( try f e with _ -> ())
      | None -> ());
      let now = now_ns () in
      if t.last_crash_ns > 0 && now - t.last_crash_ns > t.policy.reset_after_ns
      then t.window_crashes <- 0;
      t.last_crash_ns <- now;
      t.window_crashes <- t.window_crashes + 1;
      if t.window_crashes > t.policy.max_restarts then begin
        Atomic.set t.failed_ true;
        (try t.on_failed e with _ -> ());
        Atomic.set t.done_ true
      end
      else if t.abort () then Atomic.set t.done_ true
      else begin
        let shift = min 20 (t.window_crashes - 1) in
        let nominal =
          min t.policy.backoff_max_ns (t.policy.backoff_base_ns lsl shift)
        in
        (* Jitter the backoff into [0.5, 1.0) of nominal when the chain
           was seeded: shards crashed by the same fault then respawn
           decorrelated instead of stampeding back in lockstep, and the
           whole schedule replays under the same seed. The stream is
           chain-private mutable state like the crash window — only the
           (single logical) chain thread draws from it. *)
        let backoff =
          match t.jitter with
          | None -> nominal
          | Some rng ->
              int_of_float
                (float_of_int nominal *. (0.5 +. (0.5 *. Rng.float rng)))
        in
        sleep_backoff t backoff;
        if t.abort () then Atomic.set t.done_ true
        else begin
          (match t.forget_backlog with Some f -> f () | None -> ());
          Atomic.incr t.restarts;
          if Metrics.enabled () then
            Stats.incr Metrics.updater_restarts (Metrics.slot ());
          Trace.record Trace.Updater_restart t.shard;
          spawn_next t ~adopted_at:(Some now)
        end
      end

(* Spawn the next incarnation so [latest] is complete before the chain
   can publish [done_]. The successor first joins its predecessor (for a
   respawn, [prev] is the spawning domain itself, which exits right
   after publishing — so the join also orders the chain-private mutable
   state); the first incarnation instead spins on [ready], set after the
   publication. Either way, no chain code runs in the new domain until
   [latest] names it. *)
and spawn_next t ~adopted_at =
  let prev = Atomic.get t.latest in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        (match prev with Some p -> Domain.join p | None -> ());
        while not (Atomic.get ready) do
          Domain.cpu_relax ()
        done;
        incarnation t ~adopted_at ())
  in
  Atomic.set t.latest (Some d);
  Atomic.set ready true

let start ?(policy = default_policy) ?jitter_seed ?on_crash ?forget_backlog
    ~shard ~abort ~on_failed run =
  if policy.max_restarts < 0 then
    invalid_arg "Supervisor.start: max_restarts must be >= 0";
  if policy.backoff_base_ns <= 0 || policy.backoff_max_ns < policy.backoff_base_ns
  then invalid_arg "Supervisor.start: want 0 < backoff_base_ns <= backoff_max_ns";
  let t =
    {
      shard;
      policy;
      run;
      abort;
      on_failed;
      on_crash;
      forget_backlog;
      jitter = Option.map Rng.create jitter_seed;
      done_ = Atomic.make false;
      failed_ = Atomic.make false;
      crashes = Atomic.make 0;
      restarts = Atomic.make 0;
      latest = Atomic.make None;
      joined = Atomic.make false;
      window_crashes = 0;
      last_crash_ns = 0;
      restart_samples = [];
    }
  in
  spawn_next t ~adopted_at:None;
  t

let shard t = t.shard
let finished t = Atomic.get t.done_
let failed t = Atomic.get t.failed_
let crashes t = Atomic.get t.crashes
let restarts t = Atomic.get t.restarts

let join t =
  (* Only meaningful once [finished]: past that point the chain spawns
     no further incarnation and [latest] names the final one — published
     before it could run, so a true [done_] is never paired with a stale
     handle. Every earlier incarnation was joined by its successor, so
     joining the final handle joins the whole chain. Idempotent (a
     domain may be joined only once). *)
  if Atomic.compare_and_set t.joined false true then
    match Atomic.get t.latest with
    | Some d -> Domain.join d
    | None -> ()

let restart_latencies_ns t = t.restart_samples
