module Spinlock = Repro_sync.Spinlock
module Backoff = Repro_sync.Backoff
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Stats = Repro_sync.Stats
module Fault = Repro_fault.Fault
module Lockdep = Repro_lockdep.Lockdep

(* Bounded MPSC modification queue: many client domains enqueue, one
   updater domain drains. A spinlock-guarded ring rather than a lock-free
   queue on purpose: the critical section is a handful of stores, the
   lock gives lockdep a class to validate (the lock-free baselines are
   invisible to it), and the bound is what produces backpressure — a
   lock-free unbounded queue would just move the overload into memory. *)

type op = Insert of int * int | Delete of int

(* 0 = pending, 1 = completed false, 2 = completed true, 3 = aborted,
   4 = expired, 5 = replayed false, 6 = replayed true.
   A completion is write-once (complete / abort / expire / replay) and
   spin-read (await); no lock, so a waiter costs the updater nothing.
   Every resolver only wins from the pending state — a resolved
   completion stays resolved, so a purge racing the updater's completion
   store never un-resolves a result a waiter may already have read. *)
type completion = int Atomic.t

type status =
  | Pending
  | Done of bool
  | Aborted
  | Expired
  | Replayed of bool

let completion () = Atomic.make 0

let complete c result = ignore (Atomic.compare_and_set c 0 (if result then 2 else 1))

let abort c = ignore (Atomic.compare_and_set c 0 3)

let expire c = ignore (Atomic.compare_and_set c 0 4)

let complete_replayed c result =
  ignore (Atomic.compare_and_set c 0 (if result then 6 else 5))

let status_of_code = function
  | 0 -> Pending
  | 1 -> Done false
  | 2 -> Done true
  | 4 -> Expired
  | 5 -> Replayed false
  | 6 -> Replayed true
  | _ -> Aborted

let peek c = status_of_code (Atomic.get c)

let await c =
  let b = Backoff.create () in
  let rec go () =
    match Atomic.get c with
    | 0 ->
        Backoff.once b;
        go ()
    | code -> status_of_code code
  in
  go ()

type entry = {
  op : op;
  completion : completion option;
  enqueued_at : int;
  deadline_ns : int;
  probe : bool;
}

let dummy =
  {
    op = Delete 0;
    completion = None;
    enqueued_at = 0;
    deadline_ns = 0;
    probe = false;
  }

type t = {
  id : int;
  depth : int;
  lock : Spinlock.t;
  buf : entry array;
  (* The cursors/counters below are guarded by [lock]; [length] reads
     [len] without it (racy snapshot, documented). *)
  mutable head : int; (* next slot to drain *)
  mutable len : int;
  mutable enqueued : int;
  mutable dropped : int;
  mutable drained : int;
  mutable purged : int;
  mutable max_depth : int;
  mutable closed : bool; (* guarded by [lock]; one-way, see [close] *)
  (* Staleness watchdog state, outside the lock: the producer-side check
     must stay cheap and must keep working when the consumer is wedged
     (the very condition it reports), so it cannot depend on the lock
     discipline of the draining side. *)
  last_drain_ns : int Atomic.t;
  last_warn_ns : int Atomic.t;
  drainer : int Atomic.t; (* domain id of the last draining domain; -1 = none *)
}

type stats = {
  enqueued : int;
  dropped : int;
  drained : int;
  purged : int;
  max_depth : int;
  depth : int;
}

(* One lockdep class for every modification-queue lock: the protocol is
   that it is a leaf lock (never held across tree operations — drains
   splice entries out and release before applying), so no dependency
   edge from it to the Tree_node classes may ever appear. *)
let queue_class = Lockdep.new_class Lockdep.Generic "server.mod_queue"

let fp_enqueue = Fault.register "server.enqueue"
let fp_drain = Fault.register "server.drain"
let fp_drain_stall = Fault.register "server.drain.stall"

let create ?(id = 0) ~depth () =
  if depth <= 0 then invalid_arg "Mod_queue.create: depth must be positive";
  {
    id;
    depth;
    lock = Spinlock.create ~cls:queue_class ();
    buf = Array.make depth dummy;
    head = 0;
    len = 0;
    enqueued = 0;
    dropped = 0;
    drained = 0;
    purged = 0;
    max_depth = 0;
    closed = false;
    last_drain_ns = Atomic.make (Metrics.now_ns ());
    last_warn_ns = Atomic.make 0;
    drainer = Atomic.make (-1);
  }

let id (t : t) = t.id
let depth (t : t) = t.depth
let length t = t.len
let last_drain_ns t = Atomic.get t.last_drain_ns
let drainer_domain t = Atomic.get t.drainer

(* --- staleness watchdog ---

   The grace-period [Stall] pattern ported to the write path: a global
   threshold, checked by producers (the side still alive when the updater
   wedges), one report per threshold window. [last_drain_ns] is bumped by
   every [drain] call — including empty splices — so staleness means "the
   updater has not even looked", not "the queue is busy". *)

let stall_threshold = Atomic.make 0 (* ns; 0 = disarmed *)

let set_stall_threshold_ns ns =
  if ns < 0 then
    invalid_arg "Mod_queue.set_stall_threshold_ns: threshold must be >= 0";
  Atomic.set stall_threshold ns

let stall_threshold_ns () = Atomic.get stall_threshold

let check_stall t =
  let thr = Atomic.get stall_threshold in
  if thr > 0 && t.len > 0 then begin
    let now = Metrics.now_ns () in
    let last = Atomic.get t.last_drain_ns in
    if now - last > thr then begin
      let warn = Atomic.get t.last_warn_ns in
      (* One report per window; the CAS elects a single reporter among
         concurrent producers. *)
      if now - warn > thr && Atomic.compare_and_set t.last_warn_ns warn now
      then begin
        if Metrics.enabled () then
          Stats.incr Metrics.mod_queue_stalls (Metrics.slot ());
        Trace.record Trace.Mod_stall t.id;
        let d = Atomic.get t.drainer in
        Printf.eprintf
          "repro_server: mod-queue stall: shard %d not drained for %.1f ms \
           (depth %d/%d, updater domain %s)\n\
           %!"
          t.id
          (float_of_int (now - last) /. 1e6)
          t.len t.depth
          (if d < 0 then "none" else string_of_int d)
      end
    end
  end

type admit = Admitted | Admit_full | Admit_closed

let enqueue t ?completion ?(deadline_ns = 0) ?(probe = false) op =
  (* Fault point fires before the lock so a [Raise] action unwinds with
     the queue untouched. *)
  if Fault.enabled () then Fault.inject fp_enqueue;
  if Atomic.get stall_threshold > 0 then check_stall t;
  let enqueued_at = if Metrics.enabled () then Metrics.now_ns () else 0 in
  Spinlock.acquire t.lock;
  if t.closed then begin
    (* Checked inside the critical section: [close] takes the same lock,
       so once it returns every producer has either landed its entry
       (visible to a later drain or purge) or lands here — nothing can
       slip into a queue whose consumers are gone. *)
    Spinlock.release t.lock;
    Admit_closed
  end
  else if t.len = t.depth then begin
    t.dropped <- t.dropped + 1;
    Spinlock.release t.lock;
    if Metrics.enabled () then Stats.incr Metrics.mod_drops (Metrics.slot ());
    Admit_full
  end
  else begin
    t.buf.((t.head + t.len) mod t.depth)
    <- { op; completion; enqueued_at; deadline_ns; probe };
    t.len <- t.len + 1;
    if t.len > t.max_depth then t.max_depth <- t.len;
    t.enqueued <- t.enqueued + 1;
    Spinlock.release t.lock;
    if Metrics.enabled () then
      Stats.incr Metrics.mod_enqueues (Metrics.slot ());
    Trace.record Trace.Mod_enqueue t.id;
    Admitted
  end

let try_enqueue t ?completion ?deadline_ns ?probe op =
  enqueue t ?completion ?deadline_ns ?probe op = Admitted

let close t =
  Spinlock.acquire t.lock;
  t.closed <- true;
  Spinlock.release t.lock

let is_closed t =
  Spinlock.acquire t.lock;
  let c = t.closed in
  Spinlock.release t.lock;
  c

let drain t ~max =
  if max <= 0 then invalid_arg "Mod_queue.drain: max must be positive";
  if Fault.enabled () then begin
    Fault.inject fp_drain;
    (* A distinct point for wedging the drain side: arm with a [delay_ns]
       action to stall the updater without killing it — the scenario the
       staleness watchdog exists for. *)
    Fault.inject fp_drain_stall
  end;
  Atomic.set t.drainer (Domain.self () :> int);
  Spinlock.acquire t.lock;
  let k = min max t.len in
  let out = Array.init k (fun i -> t.buf.((t.head + i) mod t.depth)) in
  for i = 0 to k - 1 do
    t.buf.((t.head + i) mod t.depth) <- dummy
  done;
  t.head <- (t.head + k) mod t.depth;
  t.len <- t.len - k;
  t.drained <- t.drained + k;
  Spinlock.release t.lock;
  Atomic.set t.last_drain_ns (Metrics.now_ns ());
  if k > 0 then begin
    if Metrics.enabled () then begin
      let slot = Metrics.slot () in
      Stats.add Metrics.mod_drained slot k;
      let now = Metrics.now_ns () in
      Array.iter
        (fun e ->
          if e.enqueued_at > 0 then
            Stats.Timer.record Metrics.mod_queue_wait_ns slot
              (now - e.enqueued_at))
        out
    end;
    Trace.record Trace.Mod_drain k
  end;
  out

let purge t =
  Spinlock.acquire t.lock;
  let k = t.len in
  let out = Array.init k (fun i -> t.buf.((t.head + i) mod t.depth)) in
  for i = 0 to k - 1 do
    t.buf.((t.head + i) mod t.depth) <- dummy
  done;
  t.head <- (t.head + k) mod t.depth;
  t.len <- 0;
  t.purged <- t.purged + k;
  Spinlock.release t.lock;
  Array.iter
    (fun e -> match e.completion with Some c -> abort c | None -> ())
    out;
  if k > 0 && Metrics.enabled () then
    Stats.add Metrics.writes_lost (Metrics.slot ()) k;
  k

let stats (t : t) =
  (* Snapshot under the lock: the counters are mutated together inside the
     critical section, so reading them outside it can tear (an enqueue
     between reading [enqueued] and [drained] yields a torn pair like
     enqueued < drained + len). Stats calls are monitoring-rate, never
     hot-path, so the lock is cheap here. *)
  Spinlock.acquire t.lock;
  let s =
    {
      enqueued = t.enqueued;
      dropped = t.dropped;
      drained = t.drained;
      purged = t.purged;
      max_depth = t.max_depth;
      depth = t.depth;
    }
  in
  Spinlock.release t.lock;
  s
