module Spinlock = Repro_sync.Spinlock
module Backoff = Repro_sync.Backoff
module Metrics = Repro_sync.Metrics
module Trace = Repro_sync.Trace
module Stats = Repro_sync.Stats
module Fault = Repro_fault.Fault
module Lockdep = Repro_lockdep.Lockdep

(* Bounded MPSC modification queue: many client domains enqueue, one
   updater domain drains. A spinlock-guarded ring rather than a lock-free
   queue on purpose: the critical section is a handful of stores, the
   lock gives lockdep a class to validate (the lock-free baselines are
   invisible to it), and the bound is what produces backpressure — a
   lock-free unbounded queue would just move the overload into memory. *)

type op = Insert of int * int | Delete of int

(* 0 = pending, 1 = completed false, 2 = completed true. A completion is
   write-once (complete) / spin-read (await); no lock, so a waiter costs
   the updater nothing. *)
type completion = int Atomic.t

let completion () = Atomic.make 0

let complete c result = Atomic.set c (if result then 2 else 1)

let peek c =
  match Atomic.get c with 0 -> None | 1 -> Some false | _ -> Some true

let await c =
  let b = Backoff.create () in
  let rec go () =
    match Atomic.get c with
    | 0 ->
        Backoff.once b;
        go ()
    | 1 -> false
    | _ -> true
  in
  go ()

type entry = { op : op; completion : completion option; enqueued_at : int }

let dummy = { op = Delete 0; completion = None; enqueued_at = 0 }

type t = {
  id : int;
  depth : int;
  lock : Spinlock.t;
  buf : entry array;
  (* All four cursors/counters below are guarded by [lock]; [stats] and
     [length] read them without it (racy snapshots, documented). *)
  mutable head : int; (* next slot to drain *)
  mutable len : int;
  mutable enqueued : int;
  mutable dropped : int;
  mutable drained : int;
  mutable max_depth : int;
}

type stats = {
  enqueued : int;
  dropped : int;
  drained : int;
  max_depth : int;
  depth : int;
}

(* One lockdep class for every modification-queue lock: the protocol is
   that it is a leaf lock (never held across tree operations — drains
   splice entries out and release before applying), so no dependency
   edge from it to the Tree_node classes may ever appear. *)
let queue_class = Lockdep.new_class Lockdep.Generic "server.mod_queue"

let fp_enqueue = Fault.register "server.enqueue"
let fp_drain = Fault.register "server.drain"

let create ?(id = 0) ~depth () =
  if depth <= 0 then invalid_arg "Mod_queue.create: depth must be positive";
  {
    id;
    depth;
    lock = Spinlock.create ~cls:queue_class ();
    buf = Array.make depth dummy;
    head = 0;
    len = 0;
    enqueued = 0;
    dropped = 0;
    drained = 0;
    max_depth = 0;
  }

let id (t : t) = t.id
let depth (t : t) = t.depth
let length t = t.len

let try_enqueue t ?completion op =
  (* Fault point fires before the lock so a [Raise] action unwinds with
     the queue untouched. *)
  if Fault.enabled () then Fault.inject fp_enqueue;
  let enqueued_at = if Metrics.enabled () then Metrics.now_ns () else 0 in
  Spinlock.acquire t.lock;
  if t.len = t.depth then begin
    t.dropped <- t.dropped + 1;
    Spinlock.release t.lock;
    if Metrics.enabled () then Stats.incr Metrics.mod_drops (Metrics.slot ());
    false
  end
  else begin
    t.buf.((t.head + t.len) mod t.depth) <- { op; completion; enqueued_at };
    t.len <- t.len + 1;
    if t.len > t.max_depth then t.max_depth <- t.len;
    t.enqueued <- t.enqueued + 1;
    Spinlock.release t.lock;
    if Metrics.enabled () then
      Stats.incr Metrics.mod_enqueues (Metrics.slot ());
    Trace.record Trace.Mod_enqueue t.id;
    true
  end

let drain t ~max =
  if max <= 0 then invalid_arg "Mod_queue.drain: max must be positive";
  if Fault.enabled () then Fault.inject fp_drain;
  Spinlock.acquire t.lock;
  let k = min max t.len in
  let out = Array.init k (fun i -> t.buf.((t.head + i) mod t.depth)) in
  for i = 0 to k - 1 do
    t.buf.((t.head + i) mod t.depth) <- dummy
  done;
  t.head <- (t.head + k) mod t.depth;
  t.len <- t.len - k;
  t.drained <- t.drained + k;
  Spinlock.release t.lock;
  if k > 0 then begin
    if Metrics.enabled () then begin
      let slot = Metrics.slot () in
      Stats.add Metrics.mod_drained slot k;
      let now = Metrics.now_ns () in
      Array.iter
        (fun e ->
          if e.enqueued_at > 0 then
            Stats.Timer.record Metrics.mod_queue_wait_ns slot
              (now - e.enqueued_at))
        out
    end;
    Trace.record Trace.Mod_drain k
  end;
  out

let stats (t : t) =
  {
    enqueued = t.enqueued;
    dropped = t.dropped;
    drained = t.drained;
    max_depth = t.max_depth;
    depth = t.depth;
  }
