(** Chaos harness: crash the serving layer on purpose and prove no
    accepted write is lost.

    {!run} drives a {!Shard_router} with open-loop Poisson load while a
    driver domain repeatedly crashes every shard's updater
    ({!Shard_router.crash_updater}, [crashes_per_shard] rounds spread
    across the run) and optionally wedges drains (the
    ["server.drain.stall"] fault point with a [Delay_ns] action at
    [stall_rate]). Each client writes only its private key slice
    ([key mod clients = client index]) and keeps a ledger of its
    {e accepted} writes; one key is written by one client in program
    order into one FIFO shard queue, so the last accepted write per key
    determines its expected final state. After a [Drained] shutdown the
    harness audits the union of ledgers against the tree contents and
    reports {!result.failures} — empty means: zero accepted-write loss,
    no shard failed, every planned crash was delivered, recovery p99
    within bound, clean drain. Arm the reclamation sanitizer and lockdep
    around a run for the full claim (the CLI and tests do).

    {!mutation} is the seeded-bug half: a supervisor that forgets the
    crashed updater's pending batch ([mutate_forget_backlog]) must be
    caught deterministically while the correct one stays silent on the
    identical schedule — the same discipline as the sanitizer and
    lockdep mutation suites (ROBUSTNESS.md). *)

type cfg = {
  shards : int;
  clients : int;
  queue_depth : int;
  drain_batch : int;
  rate : float;  (** aggregate offered load, ops/s *)
  duration : float;  (** seconds of load *)
  key_range : int;  (** per-client harness key range (pre-slicing) *)
  contains_pct : int;  (** read share; the rest splits 2:1 insert:delete *)
  crashes_per_shard : int;  (** forced crash rounds *)
  stall_rate : float;  (** ["server.drain.stall"] firing rate; 0 = off *)
  stall_delay_ns : int;  (** drain-wedge duration per firing *)
  recovery_p99_bound_ns : int;  (** asserted bound on restart latency *)
  seed : int64;
}

val cfg :
  ?shards:int ->
  ?clients:int ->
  ?queue_depth:int ->
  ?drain_batch:int ->
  ?rate:float ->
  ?duration:float ->
  ?key_range:int ->
  ?contains_pct:int ->
  ?crashes_per_shard:int ->
  ?stall_rate:float ->
  ?stall_delay_ns:int ->
  ?recovery_p99_bound_ns:int ->
  ?seed:int64 ->
  unit ->
  cfg
(** Defaults: 4 shards, 4 clients, queue depth 1024, drain batch 64,
    20k ops/s, 2 s, key range 8 192, 20% reads, 3 crashes per shard, no
    stalls (2 ms wedge when armed), 250 ms recovery p99 bound, seed 42.
    @raise Invalid_argument on out-of-range percentages/rates. *)

type result = {
  structure : string;
  load : Repro_workload.Open_loop.result;
  accepted : int;  (** write operations the router accepted *)
  ledger_keys : int;  (** distinct keys with at least one accepted write *)
  crashes : int array;  (** per-shard updater crashes *)
  restarts : int array;  (** per-shard supervisor restarts *)
  recovery_samples : int;
  recovery_p99_ns : int;  (** 0 when no restart happened *)
  health : Health.state array;
  shutdown : Shard_router.shutdown_result;
  failures : string list;  (** empty = every chaos claim held *)
}

val ok : result -> bool
(** [failures = []]. *)

val run : (module Repro_dict.Dict.DICT) -> cfg -> result
(** One chaos run. Spawns [clients] + 1 (driver) domains plus the
    supervised updaters; joins everything before returning.
    @raise Repro_sync.Registry.Full if a client cannot register. *)

val json : cfg -> result -> Repro_obs.Json.t
(** Machine-readable run summary (configuration, accounting, crash and
    recovery numbers, [ok]/[failures]) for [citrus_tool chaos --json]. *)

(** {2 The seeded backlog-loss mutation} *)

type mutation_result = {
  expected : int;  (** writes accepted before the crash *)
  final_size : int;  (** keys actually in the tree after shutdown *)
  lost : int;  (** [expected - final_size] *)
  caught : bool;  (** the audit detected the loss *)
}

val mutation : ?mutate:bool -> (module Repro_dict.Dict.DICT) -> mutation_result
(** Deterministic single-shard scenario: 100 inserts enqueued before
    [start], a one-shot crash armed to fire at entry 0 of the first
    64-entry batch, drain on shutdown. With [mutate:true] (the seeded
    bug: the supervisor drops the pending batch on restart) the batch is
    lost and [caught] is true — deterministically, because the crash
    always lands with the full batch unapplied. With [mutate:false] the
    control must stay silent ([caught = false], nothing lost).
    @raise Invalid_argument if the scenario itself misbehaves (enqueue
      rejected, shutdown forced). *)
