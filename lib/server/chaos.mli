(** Chaos harness: crash the serving layer on purpose and prove no
    accepted write is lost.

    {!run} drives a {!Shard_router} with open-loop Poisson load while a
    driver domain repeatedly crashes every shard's updater
    ({!Shard_router.crash_updater}, [crashes_per_shard] rounds spread
    across the run) and optionally wedges drains (the
    ["server.drain.stall"] fault point with a [Delay_ns] action at
    [stall_rate]). Each client writes only its private key slice
    ([key mod clients = client index]) and keeps a ledger of its
    {e accepted} writes; one key is written by one client in program
    order into one FIFO shard queue, so the last accepted write per key
    determines its expected final state. After a [Drained] shutdown the
    harness audits the union of ledgers against the tree contents and
    reports {!result.failures} — empty means: zero accepted-write loss,
    no shard failed, every planned crash was delivered, recovery p99
    within bound, clean drain. Arm the reclamation sanitizer and lockdep
    around a run for the full claim (the CLI and tests do).

    With [stall_reader] set, a parker domain additionally holds an RCU
    read section open on shard 0 for ~40% of the run
    ({!Shard_router.with_shard_reader}) under a narrowed reclaimer
    watermark ([stall_reader_watermark]), so grace periods stop
    completing: the reclaimer wedges on the first blocked grace period,
    the blocked unlink continuation's node locks convoy the updater,
    and the pressure signal's grace-period-stall term saturates. The
    audit then also requires graceful degradation: the
    reclamation-pressure signal crossed the latch threshold but stayed
    bounded, and at least one circuit breaker opened — overload
    feedback reached admission control — on top of the usual zero-loss
    ledger (chaos writes carry no deadline, so accepted still implies
    applied).

    {!mutation}, {!mutation_breaker} and {!mutation_deadline} are the
    seeded-bug half: a supervisor that forgets the crashed updater's
    pending batch ([mutate_forget_backlog]), a breaker whose trips are
    no-ops ([mutate_breaker_never_opens]) and a drain that applies
    expired entries ([mutate_skip_deadline]) must each be caught
    deterministically while the correct implementation stays silent on
    the identical schedule — the same discipline as the sanitizer and
    lockdep mutation suites (ROBUSTNESS.md). *)

type cfg = {
  shards : int;
  clients : int;
  queue_depth : int;
  drain_batch : int;
  rate : float;  (** aggregate offered load, ops/s *)
  duration : float;  (** seconds of load *)
  key_range : int;  (** per-client harness key range (pre-slicing) *)
  contains_pct : int;  (** read share; the rest splits 2:1 insert:delete *)
  crashes_per_shard : int;  (** forced crash rounds *)
  stall_rate : float;  (** ["server.drain.stall"] firing rate; 0 = off *)
  stall_delay_ns : int;  (** drain-wedge duration per firing *)
  stall_reader : bool;  (** park a reader mid-section on shard 0 *)
  stall_reader_watermark : int;
      (** reclaimer watermark during a [stall_reader] run (narrowed so
          pressure crosses the latch thresholds within a short run) *)
  recovery_p99_bound_ns : int;  (** asserted bound on restart latency *)
  seed : int64;
}

val cfg :
  ?shards:int ->
  ?clients:int ->
  ?queue_depth:int ->
  ?drain_batch:int ->
  ?rate:float ->
  ?duration:float ->
  ?key_range:int ->
  ?contains_pct:int ->
  ?crashes_per_shard:int ->
  ?stall_rate:float ->
  ?stall_delay_ns:int ->
  ?stall_reader:bool ->
  ?stall_reader_watermark:int ->
  ?recovery_p99_bound_ns:int ->
  ?seed:int64 ->
  unit ->
  cfg
(** Defaults: 4 shards, 4 clients, queue depth 1024, drain batch 64,
    20k ops/s, 2 s, key range 8 192, 20% reads, 3 crashes per shard, no
    stalls (2 ms wedge when armed), no parked reader (watermark 128 when
    armed), 250 ms recovery p99 bound, seed 42.
    @raise Invalid_argument on out-of-range percentages/rates. *)

type result = {
  structure : string;
  load : Repro_workload.Open_loop.result;
  accepted : int;  (** write operations the router accepted *)
  ledger_keys : int;  (** distinct keys with at least one accepted write *)
  crashes : int array;  (** per-shard updater crashes *)
  restarts : int array;  (** per-shard supervisor restarts *)
  recovery_samples : int;
  recovery_p99_ns : int;  (** 0 when no restart happened *)
  health : Health.state array;
  breaker_trips : int;  (** total breaker Open transitions, all shards *)
  max_pressure : float;
      (** worst reclamation pressure sampled while the reader was
          parked; 0 unless [stall_reader] *)
  shutdown : Shard_router.shutdown_result;
  failures : string list;  (** empty = every chaos claim held *)
}

val ok : result -> bool
(** [failures = []]. *)

val run : (module Repro_dict.Dict.DICT) -> cfg -> result
(** One chaos run. Spawns [clients] + 1 (driver) domains — plus a
    reader-parker domain when [stall_reader] — plus the supervised
    updaters; joins everything before returning. A [stall_reader] run
    temporarily narrows the global reclaimer watermark around table
    creation and arms the mod-queue staleness watchdog (both restored).
    @raise Repro_sync.Registry.Full if a client cannot register. *)

val json : cfg -> result -> Repro_obs.Json.t
(** Machine-readable run summary (configuration, accounting, crash and
    recovery numbers, [ok]/[failures]) for [citrus_tool chaos --json]. *)

(** {2 The seeded backlog-loss mutation} *)

type mutation_result = {
  expected : int;  (** writes accepted before the crash *)
  final_size : int;  (** keys actually in the tree after shutdown *)
  lost : int;  (** [expected - final_size] *)
  caught : bool;  (** the audit detected the loss *)
}

val mutation : ?mutate:bool -> (module Repro_dict.Dict.DICT) -> mutation_result
(** Deterministic single-shard scenario: 100 inserts enqueued before
    [start], a one-shot crash armed to fire at entry 0 of the first
    64-entry batch, drain on shutdown. With [mutate:true] (the seeded
    bug: the supervisor drops the pending batch on restart) the batch is
    lost and [caught] is true — deterministically, because the crash
    always lands with the full batch unapplied. With [mutate:false] the
    control must stay silent ([caught = false], nothing lost).
    @raise Invalid_argument if the scenario itself misbehaves (enqueue
      rejected, shutdown forced). *)

(** {2 The seeded breaker mutation} *)

type breaker_mutation_result = {
  crash_seen : bool;  (** the armed updater crash fired *)
  tripped : bool;  (** the breaker recorded an Open transition *)
  rejected : bool;  (** the post-crash write got [Breaker_open] *)
  caught : bool;  (** the crash-to-breaker feedback chain is broken *)
}

val mutation_breaker :
  ?mutate:bool -> (module Repro_dict.Dict.DICT) -> breaker_mutation_result
(** Deterministic single-shard scenario: one armed crash consumed by one
    write, then a second write while the breaker should be open (the
    open interval is configured at 2 s nominal, so jitter keeps it
    >= 1 s — far wider than the write). The control trips at crash time
    via the supervisor's [on_crash] hook and rejects the second write
    with [Breaker_open] ([caught = false]); with [mutate:true]
    ([mutate_breaker_never_opens]) the trip is a no-op, the write is
    admitted, and [caught] is true.
    @raise Invalid_argument if the scenario itself misbehaves. *)

(** {2 The seeded deadline mutation} *)

type deadline_mutation_result = {
  queued : int;  (** writes accepted into the queue before [start] *)
  applied : int;  (** keys in the tree after shutdown *)
  caught : bool;  (** expired work reached the tree *)
}

val mutation_deadline :
  ?mutate:bool -> (module Repro_dict.Dict.DICT) -> deadline_mutation_result
(** Deterministic single-shard scenario: 50 inserts enqueued before
    [start] with a 20 ms deadline (live at admission, so the
    dead-on-arrival check passes), a 60 ms sleep, then [start] and
    drain. Every entry is expired by the time the first drain runs: the
    control applies none ([applied = 0], [caught = false]); with
    [mutate:true] ([mutate_skip_deadline]) the drain applies all 50 and
    [caught] is true.
    @raise Invalid_argument if the scenario itself misbehaves. *)
